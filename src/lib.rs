//! # stencil-stack
//!
//! A from-scratch Rust reproduction of *"A shared compilation stack for
//! distributed-memory parallelism in stencil DSLs"* (ASPLOS 2024): the
//! `stencil`/`dmp`/`mpi` dialect stack, two DSL frontends (Devito-like
//! symbolic PDEs and PSyclone-like Fortran kernels), an SSA+Regions IR
//! framework, execution substrates (interpreter, compiled kernels,
//! simulated MPI), and performance models regenerating every figure and
//! table of the paper's evaluation.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `examples/` for runnable entry points. Everything is re-exported from
//! [`stencil_core`]:
//!
//! ```
//! use stencil_stack::prelude::*;
//!
//! // Listing 5 of the paper: model 1D heat diffusion symbolically...
//! let grid = Grid::new(vec![126]);
//! let u = TimeFunction::new("u", &grid, 2);
//! let eqn = Eq::new(u.dt(), u.laplace() * 0.5);
//! let update = solve(&eqn, &u.forward()).unwrap();
//! let op = Operator::new(vec![Eq::new(u.forward(), update)]).unwrap().on_grid(grid);
//!
//! // ...and compile it through the shared stack.
//! let module = op.compile().unwrap();
//! let lowered = compile(module, &CompileOptions::shared_cpu()).unwrap();
//! assert!(lowered.text.contains("scf.parallel"));
//! ```

pub use stencil_core::*;

/// Commonly used items (re-export of [`stencil_core::prelude`]).
pub mod prelude {
    pub use stencil_core::prelude::*;
}
