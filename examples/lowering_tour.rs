//! A tour of the paper's Fig. 4: global stencil → rank-local stencil +
//! dmp.swap → mpi → func.call @MPI_* with mpich magic constants.
//!
//! Prints the IR after each stage so the reader can follow the
//! declarative halo exchange becoming buffer packing, neighbour-rank
//! arithmetic, boundary guards, isend/irecv pairs and a waitall barrier.
//!
//! Run with: `cargo run --example lowering_tour`

use stencil_stack::prelude::*;

fn main() {
    let mut module = stencil_stack::stencil::samples::jacobi_1d(128);

    println!("=== 1. global stencil program ===");
    stencil_stack::stencil::ShapeInference.run(&mut module).unwrap();
    println!("{}", print_module(&module));

    println!("=== 2. rank-local + dmp.swap (distribute over #dmp.grid<2>) ===");
    stencil_stack::dmp::DistributeStencil::new(vec![2]).run(&mut module).unwrap();
    stencil_stack::stencil::ShapeInference.run(&mut module).unwrap();
    stencil_stack::dmp::EliminateRedundantSwaps.run(&mut module).unwrap();
    println!("{}", print_module(&module));

    println!("=== 3. loops over memrefs (stencil-to-loops) ===");
    stencil_stack::stencil::StencilToLoops.run(&mut module).unwrap();
    println!("{}", print_module(&module));

    println!("=== 4. mpi dialect (dmp-to-mpi) ===");
    stencil_stack::mpi::DmpToMpi.run(&mut module).unwrap();
    println!("{}", print_module(&module));

    println!("=== 5. func.call @MPI_* with mpich ABI constants ===");
    stencil_stack::mpi::MpiToFunc.run(&mut module).unwrap();
    println!("{}", print_module(&module));

    // Verify against the full registry and point out the Listing 4 magic
    // numbers.
    let reg = standard_registry();
    verify_module(&module, Some(&reg)).expect("valid at every level");
    let text = print_module(&module);
    assert!(text.contains("1275070475"), "MPI_DOUBLE (Listing 4)");
    assert!(text.contains("1140850688"), "MPI_COMM_WORLD (Listing 4)");
    println!("final module verifies; mpich constants 1275070475 / 1140850688 present ✓");

    // And it still runs — as a 2-rank SPMD program over SimMPI.
    let n = 128i64;
    let core = (n - 2) / 2;
    let input: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin()).collect();
    let input_ref = &input;
    let (results, world) = run_spmd(&module, "jacobi", 2, &move |rank| {
        let start = rank as i64 * core;
        let data: Vec<f64> = (0..core + 2).map(|i| input_ref[(start + i) as usize]).collect();
        vec![
            ArgSpec::Buffer { shape: vec![core + 2], data: data.clone() },
            ArgSpec::Buffer { shape: vec![core + 2], data },
        ]
    })
    .expect("SPMD run");
    println!(
        "2-rank run exchanged {} halo messages ({} elements); rank steps: {:?}",
        world.total_sent_messages(),
        world.total_sent_elements(),
        results.iter().map(|r| r.steps).collect::<Vec<_>>()
    );
}
