//! The isotropic acoustic wave equation, distributed over four simulated
//! MPI ranks (2×2 grid) — the paper's DMP pipeline end to end, with a
//! serial run as the correctness reference.
//!
//! Run with: `cargo run --release --example distributed_wave`

use std::sync::Arc;
use stencil_stack::prelude::*;

fn main() {
    let n = 128i64;
    let op = problems::acoustic_wave(&[n, n], 4, 1.0).expect("valid operator");
    let shape = op.field_shape();
    let steps = 40usize;
    println!(
        "wave on {n}x{n}, so4 ({} stencil points, {} time buffers), {} steps",
        op.stencil_points(),
        op.num_buffers(),
        steps
    );

    // Initial condition: a Gaussian pulse, at rest.
    let (h, w) = (shape[0], shape[1]);
    let mut init = vec![0.0f64; (h * w) as usize];
    for y in 0..h {
        for x in 0..w {
            let dy = (y - h / 2) as f64 / n as f64;
            let dx = (x - w / 2) as f64 / n as f64;
            init[(y * w + x) as usize] = (-(dx * dx + dy * dy) * 400.0).exp();
        }
    }

    // Serial reference.
    let mut serial = vec![init.clone(), init.clone(), init.clone()];
    let last = op.run(&mut serial, steps, 2).expect("serial run");
    let want = serial[last].clone();

    // Distributed: compile the rank-local module once, run 4 rank threads.
    let dist = op.compile_distributed(&[2, 2]).expect("distributes");
    println!("--- rank-local module contains dmp.swap halo exchanges ---");
    let swaps = {
        let mut n = 0;
        dist.walk(|o| {
            if o.name == "dmp.swap" {
                n += 1;
            }
        });
        n
    };
    println!("dmp.swap ops per step: {swaps}");

    let world = SimWorld::new(4);
    let core = n / 2;
    let local = core + op.halo_lo[0] + op.halo_hi[0];
    let results: Vec<(usize, Vec<f64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4i64)
            .map(|rank| {
                let world = Arc::clone(&world);
                let op = op.clone();
                let dist = &dist;
                let init = &init;
                scope.spawn(move || {
                    let (ry, rx) = (rank / 2, rank % 2);
                    let mut data = Vec::with_capacity((local * local) as usize);
                    for y in 0..local {
                        for x in 0..local {
                            let gy = ry * core + y;
                            let gx = rx * core + x;
                            data.push(init[(gy * w + gx) as usize]);
                        }
                    }
                    let mut bufs = vec![data.clone(), data.clone(), data];
                    let last = op
                        .run_distributed(dist, &mut bufs, steps, 1, &world, rank)
                        .expect("rank run");
                    (last, bufs[last].clone())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Gather and compare the owned interiors.
    let r = op.halo_lo[0];
    let mut max_err = 0.0f64;
    for (rank, (_, out)) in results.iter().enumerate() {
        let (ry, rx) = ((rank as i64) / 2, (rank as i64) % 2);
        for y in 0..core {
            for x in 0..core {
                let gy = ry * core + y + r;
                let gx = rx * core + x + r;
                let got = out[((y + r) * local + (x + r)) as usize];
                let exp = want[(gy * w + gx) as usize];
                max_err = max_err.max((got - exp).abs());
            }
        }
    }
    println!("4 ranks vs serial: max |error| = {max_err:.3e} over {} points", (n * n));
    println!(
        "halo traffic: {} messages, {} elements",
        world.total_sent_messages(),
        world.total_sent_elements()
    );
    assert!(max_err < 1e-9, "distributed run must match serial");
    println!("distributed wave propagation matches the serial solver ✓");
}
