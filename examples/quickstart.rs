//! Quickstart: the paper's Listing 1 (1D 3-point Jacobi), end to end.
//!
//! Builds the stencil-level IR, prints it at every lowering level of the
//! shared stack, and executes both the reference and the lowered form.
//!
//! Run with: `cargo run --example quickstart`

use stencil_stack::prelude::*;

fn main() {
    // --- 1. The stencil-level program (paper Listing 1) -----------------
    let module = stencil_stack::stencil::samples::jacobi_1d(128);
    println!("=== stencil level (Listing 1) ===");
    println!("{}", print_module(&module));

    // --- 2. Shape inference + lowering through the shared stack ---------
    let lowered = compile(module.clone(), &CompileOptions::shared_cpu()).expect("compiles");
    println!("=== after the shared CPU pipeline ({:?}) ===", lowered.pipeline);
    println!("{}", lowered.text);

    // --- 3. Execute both levels and compare -----------------------------
    let mut reference = module;
    stencil_stack::stencil::ShapeInference.run(&mut reference).expect("shape inference");

    let input: Vec<f64> = (0..128).map(|i| (i as f64 * 0.1).sin()).collect();
    let run = |m: &Module| {
        let src = BufView::from_data(vec![128], input.clone());
        let dst = BufView::from_data(vec![128], input.clone());
        Interpreter::new(m)
            .call_function("jacobi", vec![RtValue::Buffer(src), RtValue::Buffer(dst.clone())])
            .expect("executes");
        dst.to_vec()
    };
    let at_stencil_level = run(&reference);
    let at_loop_level = run(&lowered.module);
    assert_eq!(at_stencil_level, at_loop_level);
    println!("reference and lowered execution agree on all 128 points ✓");
    println!("u[63] after one Jacobi step: {:.6}", at_loop_level[63]);
}
