//! The PSyclone path (paper §5.2): Fortran in, shared stack out.
//!
//! Parses the PW-advection and tracer-advection Fortran kernels, shows
//! stencil recognition and the fusion statistics of §6.2 (PW: 3 → 1
//! region; tracer advection: 24 → 18 regions), and executes the fused PW
//! kernel.
//!
//! Run with: `cargo run --release --example psyclone_advection`

use stencil_stack::prelude::*;
use stencil_stack::psyclone::kernels;

fn main() {
    println!("--- PW advection (MONC) ---");
    println!("{}", kernels::PW_ADVECTION_SRC.trim());
    let pw = kernels::pw_advection(64, 64, 32).expect("builds");
    println!(
        "\nstencils recognized: {} | regions before fusion: {} | after: {}",
        pw.kernel.stencils.len(),
        pw.regions_before,
        pw.regions_after
    );
    assert_eq!((pw.regions_before, pw.regions_after), (3, 1));

    println!("\n--- tracer advection (NEMO-style MUSCL, 6 tracers) ---");
    let ta = kernels::tracer_advection(64, 32, 16).expect("builds");
    println!(
        "stencils recognized: {} | regions before fusion: {} | after: {}",
        ta.kernel.stencils.len(),
        ta.regions_before,
        ta.regions_after
    );
    assert_eq!((ta.regions_before, ta.regions_after), (24, 18));
    println!("(dependencies through the slope/flux work arrays block further fusion — §6.2)");

    // Execute the fused PW kernel with the compiled engine.
    let pipeline = compile_pipeline(&pw.module, "pw_advection").expect("compiles");
    println!(
        "\nfused PW pipeline: {} apply step(s), {:.1} flops/point",
        pipeline.num_apply_steps(),
        pipeline.flops_per_step() as f64 / pipeline.points_per_step().max(1) as f64
    );
    let mut runner = Runner::new(pipeline.clone(), 4);
    let mut args: Vec<Vec<f64>> = pw
        .module
        .lookup_symbol("pw_advection")
        .map(|f| {
            let fty = stencil_stack::dialects::func::FuncOp(f).function_type().clone();
            fty.inputs
                .iter()
                .enumerate()
                .map(|(i, ty)| {
                    let stencil_stack::ir::Type::Field(fld) = ty else { panic!() };
                    let len: i64 = fld.bounds.shape().iter().product();
                    (0..len).map(|x| ((x + i as i64) as f64 * 0.002).sin()).collect()
                })
                .collect()
        })
        .expect("function exists");
    runner.step(&mut args).expect("runs");
    let su_norm: f64 = args[3].iter().map(|v| v * v).sum::<f64>().sqrt();
    println!("after one step: |su| = {su_norm:.4} (momentum source field written) ✓");

    // The paper's Fig. 10a barrier observation, through the model.
    let profile_pw = stencil_stack::perf::KernelProfile::from_pipeline("pw", 3, &pipeline);
    let ta_pipeline = compile_pipeline(&ta.module, "tra_adv").expect("compiles");
    let profile_ta = stencil_stack::perf::KernelProfile::from_pipeline("traadv", 3, &ta_pipeline);
    println!(
        "\nparallel regions per step: pw = {}, traadv = {} → the paper's kmp_wait_template \
         overhead hits traadv at small problem sizes (see fig10 bench)",
        profile_pw.regions, profile_ta.regions
    );
}
