//! Heat diffusion through the Devito-like frontend (the paper's
//! Listing 5), executed with the compiled-kernel engine on all cores.
//!
//! Run with: `cargo run --release --example heat_diffusion`

use std::time::Instant;
use stencil_stack::prelude::*;

fn main() {
    // u_t = α ∇²u on a 512×512 grid, 9-point stencil (space order 4).
    let op = problems::heat(&[512, 512], 4, 0.5).expect("valid operator");
    println!(
        "operator: {} | stencil points: {} | flops/point: {} (factorized)",
        op.func_name,
        op.stencil_points(),
        op.flops_per_point()
    );

    // Show the generated stencil IR.
    let module = op.compile().expect("compiles");
    println!("--- stencil IR (truncated) ---");
    for line in print_module(&module).lines().take(18) {
        println!("{line}");
    }
    println!("...\n");

    // Initial condition: a hot square in the centre.
    let shape = op.field_shape();
    let (h, w) = (shape[0], shape[1]);
    let mut init = vec![0.0f64; (h * w) as usize];
    for y in 200..312 {
        for x in 200..312 {
            init[(y * w + x) as usize] = 1.0;
        }
    }

    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let steps = 200;
    let mut buffers = vec![init.clone(), init];
    let start = Instant::now();
    let last = op.run(&mut buffers, steps, threads).expect("runs");
    let elapsed = start.elapsed().as_secs_f64();

    let final_field = &buffers[last];
    let peak = final_field.iter().cloned().fold(0.0f64, f64::max);
    let mass: f64 = final_field.iter().sum();
    let points = 512.0 * 512.0 * steps as f64;
    println!(
        "{steps} steps on {threads} threads: {:.3}s  ({:.3} GPts/s measured)",
        elapsed,
        points / elapsed / 1e9
    );
    // Heat must have leaked past the edge of the (initially sharp) block,
    // while the maximum never exceeds the initial temperature.
    let just_outside = final_field[(196 * w + 256) as usize];
    println!(
        "peak temperature {peak:.4}, heat just outside the block {just_outside:.3e}, \
         total heat {mass:.1}"
    );
    assert!(peak <= 1.0 + 1e-12);
    assert!(just_outside > 0.0, "diffusion front has moved");

    // The analytic ARCHER2 model for comparison (this machine is not an
    // EPYC-7742 node; see EXPERIMENTS.md).
    let pipeline = compile_pipeline(&module, "step").expect("pipeline");
    let profile = stencil_stack::perf::KernelProfile::from_pipeline("heat2d-9pt", 2, &pipeline);
    let node = stencil_stack::perf::archer2_node();
    let modeled = stencil_stack::perf::node_throughput(
        &profile,
        &node,
        stencil_stack::perf::CpuPipeline::Xdsl,
    );
    println!("ARCHER2-node model for this kernel: {modeled:.2} GPts/s");
}
