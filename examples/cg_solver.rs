//! Matrix-free conjugate gradients on the shared stack: solve the
//! implicit heat system `(I − λ∇²) x = b` without ever forming a
//! matrix. The inner loop is a distributed stencil apply (`A·p`, halo
//! exchanges included) interleaved with exact global reductions
//! (`p·Ap`, `‖r‖²`) whose scalar results drive α, β, and the
//! convergence test — and the whole residual trajectory is bit-identical
//! between the serial solve and any rank/thread/strategy combination.
//!
//! Run with: `cargo run --release --example cg_solver`

use stencil_stack::cg::{solve, solve_distributed, CgConfig};

fn main() {
    let cfg = CgConfig { threads: 2, ..CgConfig::new(96) };
    println!(
        "solving (I − {}∇²) x = b on a {n}×{n} interior, tol {:e}",
        cfg.lam,
        cfg.tol,
        n = cfg.n
    );

    // Serial reference.
    let serial = solve(&cfg).expect("serial solve");
    println!(
        "serial:       {} iterations, converged = {}, ‖r‖ = {:.3e}",
        serial.iterations,
        serial.converged,
        serial.residuals.last().unwrap()
    );

    // The same solve on 4 simulated ranks, overlapped halo exchanges.
    let dist = solve_distributed(&cfg, "recursive-bisection", None, vec![4], true)
        .expect("distributed solve");
    println!(
        "4 ranks (rb): {} iterations, converged = {}, ‖r‖ = {:.3e}",
        dist.iterations,
        dist.converged,
        dist.residuals.last().unwrap()
    );

    // The determinism guarantee, checked end to end.
    let identical = serial.residuals.len() == dist.residuals.len()
        && serial.residuals.iter().zip(&dist.residuals).all(|(a, b)| a.to_bits() == b.to_bits());
    println!("residual trajectories bit-identical: {identical}");
    assert!(identical);

    println!("\nresidual trajectory (every 4th iteration):");
    for (k, r) in serial.residuals.iter().enumerate().step_by(4) {
        println!("  iter {k:>3}: ‖r‖ = {r:.6e}");
    }
}
