//! Pipeline ablation through `sten-opt`: one Devito operator, three
//! pipeline-string variants, timing and cache-hit reporting.
//!
//! The paper's frontends compose *named* passes the way `mlir-opt` /
//! `xdsl-opt` do; here the pipeline is literally a string, so ablating a
//! design choice (fusion, tiling, cleanup) means editing a string — and
//! the content-addressed compile cache makes recompiling the same
//! operator under the same pipeline near-free.
//!
//! Run with: `cargo run --example opt_pipelines`

use stencil_stack::opt::format_timing_report;
use stencil_stack::prelude::*;

fn main() {
    // One 2D heat operator from the Devito-like frontend (paper §6.1).
    let op = problems::heat(&[128, 128], 4, 0.5).expect("heat operator");
    let module = op.compile().expect("stencil-level module");

    // Three variants of the shared-CPU lowering, as pipeline strings.
    let variants = [
        ("no-fusion, untiled", "shape-inference,convert-stencil-to-loops"),
        (
            "fused + tiled",
            "shape-inference,stencil-fusion,stencil-horizontal-fusion,shape-inference,\
             convert-stencil-to-loops,tile-parallel-loops{tile=32:4}",
        ),
        (
            "fused + tiled + cleanup",
            "shape-inference,stencil-fusion,stencil-horizontal-fusion,shape-inference,\
             convert-stencil-to-loops,tile-parallel-loops{tile=32:4},canonicalize,licm,cse,dce",
        ),
        // The same cleanup written in nested form: `func.func(...)`
        // anchors the group so the scheduler runs it per-function in
        // parallel. Flat and nested spellings normalise to the same
        // canonical pipeline — identical bytes, shared cache entry.
        (
            "fused + tiled + nested cleanup",
            "shape-inference,stencil-fusion,stencil-horizontal-fusion,shape-inference,\
             convert-stencil-to-loops,tile-parallel-loops{tile=32:4},\
             func.func(canonicalize,licm,cse,dce)",
        ),
    ];

    let driver = Driver::new().with_verify_each(true);
    for (label, pipeline) in variants {
        println!("=== variant: {label} ===");
        println!("pipeline: {pipeline}");
        let start = std::time::Instant::now();
        let out = driver.run_str(module.clone(), pipeline).expect("pipeline runs");
        let elapsed = start.elapsed();
        println!("canonical: {}", out.canonical_pipeline);
        let mut ops = 0usize;
        out.module.walk(|_| ops += 1);
        println!(
            "cache: {} | wall: {:.3} ms | {} passes | {ops} ops in output",
            if out.cache_hit { "hit " } else { "miss" },
            elapsed.as_secs_f64() * 1e3,
            out.pipeline.len(),
        );
        print!("{}", format_timing_report(&out.timings));
        print!("{}", stencil_stack::opt::format_func_timing_report(&out.func_timings));

        // Compile the exact same operator again: the content-addressed
        // cache returns the result without running a single pass.
        let start = std::time::Instant::now();
        let warm = driver.run_str(module.clone(), pipeline).expect("warm run");
        assert!(warm.cache_hit, "second compile must hit the cache");
        assert_eq!(warm.text, out.text);
        println!(
            "recompile: cache hit in {:.3} ms (cold was {:.3} ms)\n",
            start.elapsed().as_secs_f64() * 1e3,
            elapsed.as_secs_f64() * 1e3,
        );
    }

    let stats = CompileCache::global().stats();
    println!(
        "cache totals: {} hits / {} misses / {} entries",
        stats.hits, stats.misses, stats.entries
    );
}
