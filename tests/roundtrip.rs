//! Printer/parser round-trips at every lowering level, plus randomized
//! round-trip tests over generated IR (seeded, deterministic — see
//! `common::Rng`).

mod common;

use common::Rng;
use stencil_stack::prelude::*;

fn assert_round_trip(m: &Module, label: &str) {
    let text = print_module(m);
    let reparsed = parse_module(&text).unwrap_or_else(|e| panic!("{label}: {e}\n{text}"));
    assert_eq!(print_module(&reparsed), text, "{label} round-trip");
    // The reparsed module must also verify.
    verify_module(&reparsed, Some(&standard_registry()))
        .unwrap_or_else(|e| panic!("{label}: reparsed module fails verification: {e}"));
}

#[test]
fn every_lowering_level_round_trips() {
    let mut m = stencil_stack::stencil::samples::heat_2d(24, 0.1);
    assert_round_trip(&m, "stencil level");
    stencil_stack::stencil::ShapeInference.run(&mut m).unwrap();
    assert_round_trip(&m, "shape-inferred");
    stencil_stack::dmp::DistributeStencil::new(vec![2, 2]).run(&mut m).unwrap();
    stencil_stack::stencil::ShapeInference.run(&mut m).unwrap();
    assert_round_trip(&m, "distributed (dmp)");
    stencil_stack::stencil::StencilToLoops.run(&mut m).unwrap();
    assert_round_trip(&m, "loops");
    stencil_stack::mpi::DmpToMpi.run(&mut m).unwrap();
    assert_round_trip(&m, "mpi dialect");
    stencil_stack::mpi::MpiToFunc.run(&mut m).unwrap();
    assert_round_trip(&m, "func/MPI calls");
}

#[test]
fn devito_and_psyclone_outputs_round_trip() {
    let op = problems::acoustic_wave(&[16, 16], 4, 1.0).unwrap();
    assert_round_trip(&op.compile().unwrap(), "devito wave");
    assert_round_trip(&op.compile_with_time_loop(4).unwrap(), "devito time loop");
    let pw = stencil_stack::psyclone::kernels::pw_advection(8, 8, 4).unwrap();
    assert_round_trip(&pw.module, "psyclone pw advection");
    let ta = stencil_stack::psyclone::kernels::tracer_advection(8, 4, 2).unwrap();
    assert_round_trip(&ta.module, "psyclone tracer advection");
}

// ---------------------------------------------------------------------------
// Randomized IR round-trips: build arbitrary (but valid) arith/scf modules
// and check print → parse → print is the identity.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum GenOp {
    ConstF(f64),
    ConstI(i64),
    AddF(usize, usize),
    MulF(usize, usize),
    AddI(usize, usize),
    Cmp(usize, usize),
    Select(usize, usize, usize),
    Loop(Vec<GenOp>),
}

fn gen_op(depth: u32, rng: &mut Rng) -> GenOp {
    // 1-in-5 chance of a nested loop while depth remains.
    if depth > 0 && rng.chance(1, 5) {
        let len = rng.range_usize(1, 4);
        return GenOp::Loop((0..len).map(|_| gen_op(depth - 1, rng)).collect());
    }
    match rng.range_usize(0, 7) {
        0 => GenOp::ConstF(rng.range_f64(-1e3, 1e3)),
        1 => GenOp::ConstI(rng.range_i64(-1000, 1000)),
        2 => GenOp::AddF(rng.range_usize(0, 8), rng.range_usize(0, 8)),
        3 => GenOp::MulF(rng.range_usize(0, 8), rng.range_usize(0, 8)),
        4 => GenOp::AddI(rng.range_usize(0, 8), rng.range_usize(0, 8)),
        5 => GenOp::Cmp(rng.range_usize(0, 8), rng.range_usize(0, 8)),
        _ => GenOp::Select(rng.range_usize(0, 8), rng.range_usize(0, 8), rng.range_usize(0, 8)),
    }
}

fn gen_ops(depth: u32, max_len: usize, rng: &mut Rng) -> Vec<GenOp> {
    let len = rng.range_usize(1, max_len);
    (0..len).map(|_| gen_op(depth, rng)).collect()
}

/// Materializes generated ops into a module, tracking value pools by type
/// so operand picks are always type-correct.
fn build(ops: &[GenOp]) -> Module {
    use stencil_stack::dialects::arith;
    let mut m = Module::new();
    let seed_f = arith::const_f64(&mut m.values, 1.0);
    let seed_i = arith::const_index(&mut m.values, 1);
    let mut floats = vec![seed_f.result(0)];
    let mut ints = vec![seed_i.result(0)];
    let mut bools = Vec::new();
    m.body_mut().ops.push(seed_f);
    m.body_mut().ops.push(seed_i);

    fn emit(
        gen: &[GenOp],
        vt: &mut stencil_stack::ir::ValueTable,
        out: &mut Vec<stencil_stack::ir::Op>,
        floats: &mut Vec<stencil_stack::ir::Value>,
        ints: &mut Vec<stencil_stack::ir::Value>,
        bools: &mut Vec<stencil_stack::ir::Value>,
    ) {
        use stencil_stack::dialects::{arith, scf};
        for g in gen {
            match g {
                GenOp::ConstF(v) => {
                    let op = arith::const_f64(vt, *v);
                    floats.push(op.result(0));
                    out.push(op);
                }
                GenOp::ConstI(v) => {
                    let op = arith::const_index(vt, *v);
                    ints.push(op.result(0));
                    out.push(op);
                }
                GenOp::AddF(a, b) => {
                    let op = arith::addf(vt, floats[a % floats.len()], floats[b % floats.len()]);
                    floats.push(op.result(0));
                    out.push(op);
                }
                GenOp::MulF(a, b) => {
                    let op = arith::mulf(vt, floats[a % floats.len()], floats[b % floats.len()]);
                    floats.push(op.result(0));
                    out.push(op);
                }
                GenOp::AddI(a, b) => {
                    let op = arith::addi(vt, ints[a % ints.len()], ints[b % ints.len()]);
                    ints.push(op.result(0));
                    out.push(op);
                }
                GenOp::Cmp(a, b) => {
                    let op = arith::cmpi(
                        vt,
                        arith::CmpIPredicate::Slt,
                        ints[a % ints.len()],
                        ints[b % ints.len()],
                    );
                    bools.push(op.result(0));
                    out.push(op);
                }
                GenOp::Select(c, a, b) => {
                    if bools.is_empty() {
                        continue;
                    }
                    let op = arith::select(
                        vt,
                        bools[c % bools.len()],
                        floats[a % floats.len()],
                        floats[b % floats.len()],
                    );
                    floats.push(op.result(0));
                    out.push(op);
                }
                GenOp::Loop(body) => {
                    let lo = ints[0];
                    // Loops capture the *current* pools; values defined
                    // inside must not escape, so emit into a fresh pool
                    // copy.
                    let mut f2 = floats.clone();
                    let mut i2 = ints.clone();
                    let mut b2 = bools.clone();
                    let op = scf::for_loop(vt, lo, lo, lo, vec![], |vt2, iv, _| {
                        i2.push(iv);
                        let mut inner = Vec::new();
                        emit(body, vt2, &mut inner, &mut f2, &mut i2, &mut b2);
                        inner.push(scf::yield_op(vec![]));
                        inner
                    });
                    out.push(op);
                }
            }
        }
    }

    let mut body = std::mem::take(&mut m.body_mut().ops);
    emit(ops, &mut m.values, &mut body, &mut floats, &mut ints, &mut bools);
    m.body_mut().ops = body;
    m
}

#[test]
fn random_modules_round_trip() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed);
        let ops = gen_ops(2, 24, &mut rng);
        let m = build(&ops);
        verify_module(&m, Some(&standard_registry()))
            .unwrap_or_else(|e| panic!("seed {seed}: generated IR is invalid: {e}"));
        let text = print_module(&m);
        let re = parse_module(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
        assert_eq!(print_module(&re), text, "seed {seed}");
    }
}

#[test]
fn random_modules_survive_optimization() {
    use std::sync::Arc;
    for seed in 0..64u64 {
        let mut rng = Rng::new(1000 + seed);
        let ops = gen_ops(1, 16, &mut rng);
        let mut m = build(&ops);
        let reg = Arc::new(standard_registry());
        stencil_stack::dialects::canonicalize::Canonicalize.run(&mut m).unwrap();
        stencil_stack::ir::transforms::CommonSubexprElimination::new(Arc::clone(&reg))
            .run(&mut m)
            .unwrap();
        stencil_stack::ir::transforms::DeadCodeElimination::new(reg).run(&mut m).unwrap();
        verify_module(&m, Some(&standard_registry()))
            .unwrap_or_else(|e| panic!("seed {seed}: optimized IR is invalid: {e}"));
    }
}
