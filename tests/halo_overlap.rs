//! Overlapped halo exchange ≡ synchronous execution, bit for bit.
//!
//! The acceptance bar for communication/computation overlap: on random
//! 1D/2D/3D stencils over *uneven* domains, across every decomposition
//! strategy and every executor tier, the overlapped pipeline
//! (`distribute-stencil{overlap=true}` → `SwapBegin` / interior /
//! `SwapWait` / boundary shells) produces exactly the bytes of the
//! synchronous pipeline — and diagonal exchanges
//! (`diagonals=true`) make corner-touching stencils match the serial
//! reference, where face-only exchanges silently read stale corners.

mod common;

use common::Rng;
use std::sync::Arc;
use stencil_stack::dialects::{arith, func};
use stencil_stack::dmp::{make_strategy, DistributeStencil};
use stencil_stack::ir::{FieldType, TempType, Type};
use stencil_stack::prelude::*;
use stencil_stack::stencil::ops;
use stencil_stack::stencil::ShapeInference;

#[derive(Clone, Debug)]
struct RandStencil {
    /// (offset per dim, coefficient) terms.
    terms: Vec<(Vec<i64>, f64)>,
    dims: usize,
    radius: i64,
}

/// Random symmetric stencil (the dmp exchange is a symmetric pairwise
/// swap, so every term is mirrored). `corners=false` keeps offsets on the
/// axes (face exchanges suffice); `corners=true` allows full-box offsets.
fn rand_stencil(dims: usize, radius: i64, corners: bool, rng: &mut Rng) -> RandStencil {
    let num_terms = rng.range_usize(1, 5);
    let mut terms: Vec<(Vec<i64>, f64)> = (0..num_terms)
        .map(|_| {
            let offset: Vec<i64> = if corners {
                (0..dims).map(|_| rng.range_i64(-radius, radius + 1)).collect()
            } else {
                // One random axis gets the displacement; the rest are 0.
                let axis = rng.range_usize(0, dims);
                (0..dims)
                    .map(|d| if d == axis { rng.range_i64(-radius, radius + 1) } else { 0 })
                    .collect()
            };
            (offset, rng.range_f64(-2.0, 2.0))
        })
        .collect();
    let mirrored: Vec<(Vec<i64>, f64)> =
        terms.iter().map(|(o, c)| (o.iter().map(|x| -x).collect(), 0.5 * c)).collect();
    terms.extend(mirrored);
    RandStencil { terms, dims, radius }
}

/// Builds `dst[core] = Σ c_i · src[x + o_i]` over an `n^dims` core with a
/// `radius`-cell halo.
fn build(st: &RandStencil, n: i64) -> Module {
    let dims = st.dims;
    let mut m = Module::new();
    let bounds = Bounds::from_shape(&vec![n; dims]).grown(st.radius);
    let fld = Type::Field(FieldType::new(bounds, Type::F64));
    let (mut f, args) = func::definition(&mut m.values, "rand", vec![fld.clone(), fld], vec![]);
    let (src, dst) = (args[0], args[1]);
    let ld = ops::load(&mut m.values, src);
    let t = ld.result(0);
    f.region_block_mut(0).ops.push(ld);
    let terms = st.terms.clone();
    let ap = ops::apply(
        &mut m.values,
        vec![t],
        vec![Type::Temp(TempType::unknown(dims, Type::F64))],
        move |vt, a| {
            let mut body = Vec::new();
            let mut acc: Option<stencil_stack::ir::Value> = None;
            for (off, c) in &terms {
                let access = ops::access(vt, a[0], off.clone());
                let av = access.result(0);
                body.push(access);
                let cv_op = arith::const_f64(vt, *c);
                let cv = cv_op.result(0);
                body.push(cv_op);
                let mul = arith::mulf(vt, cv, av);
                let mv = mul.result(0);
                body.push(mul);
                acc = Some(match acc {
                    None => mv,
                    Some(prev) => {
                        let add = arith::addf(vt, prev, mv);
                        let v = add.result(0);
                        body.push(add);
                        v
                    }
                });
            }
            body.push(ops::ret(vec![acc.expect("at least one term")]));
            body
        },
    );
    let out = ap.result(0);
    let body = &mut f.region_block_mut(0).ops;
    body.push(ap);
    body.push(ops::store(out, dst, vec![0; dims], vec![n; dims]));
    body.push(func::ret(vec![]));
    m.body_mut().ops.push(f);
    ShapeInference.run(&mut m).unwrap();
    m
}

/// The balanced chunk of every decomposed dimension for `coords` in
/// `layout`, as `(offset, size)` per dimension (trailing dims whole).
fn rank_chunks(n: i64, dims: usize, layout: &[i64], coords: &[i64]) -> Vec<(i64, i64)> {
    (0..dims)
        .map(|d| {
            let parts = layout.get(d).copied().unwrap_or(1);
            let coord = coords.get(d).copied().unwrap_or(0);
            stencil_stack::dmp::balanced_chunk(n, parts, coord)
        })
        .collect()
}

/// Scatters the rank's local buffer (core chunk plus a per-dimension
/// `halos[d]`-cell halo — `radius` at depth 1, `depth·radius` along
/// decomposed dimensions under temporal blocking) out of the global
/// buffer of extent `n + 2*radius` per dimension. Local halo cells past
/// the global pad are dead (never read into owned results) and filled
/// with `0.0`.
fn scatter(
    global: &[f64],
    n: i64,
    radius: i64,
    chunks: &[(i64, i64)],
    halos: &[i64],
) -> (Vec<i64>, Vec<f64>) {
    let dims = chunks.len();
    let gext = n + 2 * radius;
    let shape: Vec<i64> = chunks.iter().zip(halos).map(|(&(_, s), &h)| s + 2 * h).collect();
    let mut data = Vec::with_capacity(shape.iter().product::<i64>() as usize);
    let mut p = vec![0i64; dims];
    loop {
        let mut flat = 0i64;
        let mut in_range = true;
        for d in 0..dims {
            let g = chunks[d].0 + p[d] - (halos[d] - radius);
            if g < 0 || g >= gext {
                in_range = false;
                break;
            }
            flat = flat * gext + g;
        }
        data.push(if in_range { global[flat as usize] } else { 0.0 });
        let mut d = dims;
        let mut done = false;
        loop {
            if d == 0 {
                done = true;
                break;
            }
            d -= 1;
            p[d] += 1;
            if p[d] < shape[d] {
                break;
            }
            p[d] = 0;
        }
        if done {
            return (shape, data);
        }
    }
}

/// Writes the rank's owned core cells back into the global buffer.
fn gather(
    global: &mut [f64],
    local: &[f64],
    n: i64,
    radius: i64,
    chunks: &[(i64, i64)],
    halos: &[i64],
) {
    let dims = chunks.len();
    let gext = n + 2 * radius;
    let shape: Vec<i64> = chunks.iter().zip(halos).map(|(&(_, s), &h)| s + 2 * h).collect();
    let core = Bounds::new(chunks.iter().zip(halos).map(|(&(_, s), &h)| (h, h + s)).collect());
    for p in core.points() {
        let mut lflat = 0i64;
        let mut gflat = 0i64;
        for d in 0..dims {
            lflat = lflat * shape[d] + p[d];
            gflat = gflat * gext + chunks[d].0 + radius + (p[d] - halos[d]);
        }
        global[gflat as usize] = local[lflat as usize];
    }
}

/// Per-dimension local halo widths for a rank: `depth·radius` along
/// decomposed dimensions, plain `radius` elsewhere.
fn local_halos(radius: i64, depth: i64, dims: usize, layout: &[i64]) -> Vec<i64> {
    (0..dims)
        .map(|d| if layout.get(d).is_some_and(|&p| p > 1) { depth * radius } else { radius })
        .collect()
}

/// Compiles one module per rank and runs `timesteps` ping-pong steps of
/// the SPMD pipeline over SimMPI; returns every rank's final `src`
/// buffer (post-swap, so halos are compared too).
#[allow(clippy::too_many_arguments)] // test driver threads its full configuration
fn run_distributed(
    modules: &[Module],
    layouts: &[Vec<i64>],
    n: i64,
    radius: i64,
    depth: i64,
    global: &[f64],
    tier: Option<TierKind>,
    threads: usize,
    timesteps: usize,
) -> Vec<Vec<f64>> {
    let ranks = modules.len();
    let world = SimWorld::new(ranks);
    let mut outs: Vec<Vec<f64>> = vec![Vec::new(); ranks];
    std::thread::scope(|scope| {
        for (rank, out) in outs.iter_mut().enumerate() {
            let world = Arc::clone(&world);
            let module = &modules[rank];
            let layout = &layouts[rank];
            scope.spawn(move || {
                let mut pipeline = compile_pipeline(module, "rand").unwrap();
                pipeline.respecialize(tier);
                let dims = pipeline.arg_shapes[0].len();
                let coords = stencil_stack::dmp::decomposition::rank_to_coords(rank as i64, layout);
                let chunks = rank_chunks(n, dims, layout, &coords);
                let halos = local_halos(radius, depth, dims, layout);
                let (shape, data) = scatter(global, n, radius, &chunks, &halos);
                assert_eq!(
                    shape, pipeline.arg_shapes[0],
                    "rank {rank}: scatter shape must match the distributed field"
                );
                let mut args = vec![data.clone(), data];
                let mut runner = Runner::new(pipeline, threads);
                for _ in 0..timesteps {
                    runner.step_distributed(&mut args, &world, rank as i64).unwrap();
                    args.swap(0, 1);
                }
                *out = args[0].clone();
            });
        }
    });
    outs
}

/// Distributes `make()` once per rank under `strategy` (with optional
/// overlap/diagonals), returning the modules and each one's layout.
#[allow(clippy::type_complexity)]
#[allow(clippy::too_many_arguments)] // test driver threads its full configuration
fn per_rank_modules(
    make: &dyn Fn() -> Module,
    grid: &[i64],
    strategy: &str,
    factors: Option<Vec<i64>>,
    overlap: bool,
    diagonals: bool,
    depth: i64,
) -> (Vec<Module>, Vec<Vec<i64>>) {
    let ranks: i64 = grid.iter().product();
    let mut modules = Vec::new();
    let mut layouts = Vec::new();
    for rank in 0..ranks {
        let mut m = make();
        DistributeStencil::with_strategy(
            grid.to_vec(),
            make_strategy(strategy, factors.clone()).unwrap(),
        )
        .for_rank(rank)
        .with_overlap(overlap)
        .with_diagonals(diagonals)
        .with_depth(stencil_stack::dmp::HaloDepth::Fixed(depth))
        .run(&mut m)
        .unwrap();
        ShapeInference.run(&mut m).unwrap();
        let f = m.lookup_symbol("rand").unwrap();
        let layout = f
            .attr("dmp.grid")
            .and_then(stencil_stack::ir::Attribute::as_grid)
            .expect("distributed module records its layout")
            .to_vec();
        layouts.push(layout);
        modules.push(m);
    }
    (modules, layouts)
}

#[test]
fn overlap_equals_sync_bitwise_across_strategies_and_tiers() {
    // Uneven domains: no strategy divides these extents evenly.
    #[allow(clippy::type_complexity)] // (dims, n, grid, custom-grid factors) rows
    let cases: [(usize, i64, Vec<i64>, Option<Vec<i64>>); 3] = [
        (1, 13, vec![2], Some(vec![2])),
        (2, 10, vec![2, 2], Some(vec![1, 4])),
        (3, 7, vec![2, 2], Some(vec![2, 2, 1])),
    ];
    for (dims, n, grid, factors) in cases {
        for seed in 0..2u64 {
            let mut rng = Rng::new(4200 + seed * 31 + dims as u64);
            let radius = 1 + (seed as i64 % 2); // halo width 1 or 2
            let st = rand_stencil(dims, radius, dims > 1, &mut rng);
            let gsize = ((n + 2 * radius) as usize).pow(dims as u32);
            let global: Vec<f64> =
                (0..gsize).map(|i| ((i as f64) * 0.21 + seed as f64 * 0.13).sin()).collect();
            for (strategy, factors) in [
                ("standard-slicing", None),
                ("recursive-bisection", None),
                ("custom-grid", factors.clone()),
            ] {
                let make = || build(&st, n);
                let (sync_m, layouts) =
                    per_rank_modules(&make, &grid, strategy, factors.clone(), false, false, 1);
                let (over_m, layouts2) =
                    per_rank_modules(&make, &grid, strategy, factors.clone(), true, false, 1);
                assert_eq!(layouts, layouts2);
                for tier in [
                    TierKind::Eval,
                    TierKind::OptBytecode,
                    TierKind::WeightedSum,
                    TierKind::TemplateJit,
                ] {
                    for threads in [1usize, 2] {
                        let a = run_distributed(
                            &sync_m,
                            &layouts,
                            n,
                            radius,
                            1,
                            &global,
                            Some(tier),
                            threads,
                            3,
                        );
                        let b = run_distributed(
                            &over_m,
                            &layouts,
                            n,
                            radius,
                            1,
                            &global,
                            Some(tier),
                            threads,
                            3,
                        );
                        assert_eq!(
                            a, b,
                            "dims {dims} seed {seed} {strategy} tier {tier:?} threads {threads}: \
                             overlap must be bit-identical to sync"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn deep_halo_onions_are_disjoint_and_covering() {
    use stencil_stack::dmp::{deep_phase_regions, HaloRegionSplit};
    let inside = |b: &Bounds, p: &[i64]| b.0.iter().zip(p).all(|(&(l, u), &x)| l <= x && x < u);
    let mut rng = Rng::new(2026);
    for round in 0..30usize {
        let dims = 1 + round % 3;
        let core = Bounds::new(
            (0..dims)
                .map(|_| {
                    let lo = rng.range_i64(-3, 3);
                    (lo, lo + rng.range_i64(2, 9))
                })
                .collect(),
        );
        let lo_w: Vec<i64> = (0..dims).map(|_| rng.range_i64(0, 3)).collect();
        let mut hi_w: Vec<i64> = (0..dims).map(|_| rng.range_i64(0, 3)).collect();
        if lo_w.iter().chain(&hi_w).all(|&w| w == 0) {
            hi_w[0] = 1;
        }
        for k in 1..=4i64 {
            let regions = deep_phase_regions(&core, &lo_w, &hi_w, k);
            assert_eq!(regions.len(), k as usize);
            assert_eq!(*regions.last().unwrap(), core, "round {round} k {k}: last phase is core");
            // Phases nest: each later region sits inside the previous
            // one (the onion shrinks by one halo width per step).
            for j in 1..regions.len() {
                assert!(
                    regions[j - 1].contains(&regions[j]),
                    "round {round} k {k}: phase {j} must nest in phase {}",
                    j - 1
                );
            }
            // The phase-0 split against the full k-wide exchange is a
            // partition: every point lands in exactly one of interior +
            // shells, and nothing leaks outside phase 0.
            let deep_lo: Vec<i64> = lo_w.iter().map(|w| w * k).collect();
            let deep_hi: Vec<i64> = hi_w.iter().map(|w| w * k).collect();
            let split = HaloRegionSplit::compute(&regions[0], &deep_lo, &deep_hi);
            for p in regions[0].points() {
                let hits = usize::from(inside(&split.interior, &p))
                    + split.shells.iter().filter(|s| inside(&s.bounds, &p)).count();
                assert_eq!(hits, 1, "round {round} k {k}: point {p:?} covered exactly once");
            }
            assert!(regions[0].contains(&split.interior));
            for s in &split.shells {
                assert!(regions[0].contains(&s.bounds), "round {round} k {k}: shell inside");
            }
        }
    }
}

#[test]
fn temporal_blocking_depths_are_bit_identical_across_strategies_and_tiers() {
    // Owned cores after any number of steps must not depend on the
    // exchange cadence: depth=k (one width-k·r exchange per k steps, with
    // redundant shell compute) ≡ depth=1 overlap ≡ synchronous, across
    // every strategy and executor tier. Multi-dimensional decompositions
    // need diagonals=true at depth>1 (trapezoid phases read corner halo
    // cells), so the 2D baseline runs with diagonals too.
    #[allow(clippy::type_complexity)] // (dims, n, grid, custom-grid factors) rows
    let cases: [(usize, i64, Vec<i64>, Option<Vec<i64>>); 2] =
        [(1, 24, vec![2], Some(vec![2])), (2, 12, vec![2, 2], Some(vec![2, 2]))];
    for (dims, n, grid, factors) in cases {
        let mut rng = Rng::new(777 + dims as u64);
        let radius = 1i64;
        let st = rand_stencil(dims, radius, dims > 1, &mut rng);
        let diagonals = dims > 1;
        let gsize = ((n + 2 * radius) as usize).pow(dims as u32);
        let global: Vec<f64> = (0..gsize).map(|i| ((i as f64) * 0.19).sin()).collect();
        let gather_cores = |outs: &[Vec<f64>], layouts: &[Vec<i64>], depth: i64| -> Vec<f64> {
            let mut got = vec![0.0; gsize];
            for (rank, out) in outs.iter().enumerate() {
                let layout = &layouts[rank];
                let coords = stencil_stack::dmp::decomposition::rank_to_coords(rank as i64, layout);
                let chunks = rank_chunks(n, dims, layout, &coords);
                let halos = local_halos(radius, depth, dims, layout);
                gather(&mut got, out, n, radius, &chunks, &halos);
            }
            got
        };
        for (strategy, factors) in [
            ("standard-slicing", None),
            ("recursive-bisection", None),
            ("custom-grid", factors.clone()),
        ] {
            let make = || build(&st, n);
            let (sync_m, layouts) =
                per_rank_modules(&make, &grid, strategy, factors.clone(), false, diagonals, 1);
            for tier in [
                TierKind::Eval,
                TierKind::OptBytecode,
                TierKind::WeightedSum,
                TierKind::TemplateJit,
            ] {
                let base = gather_cores(
                    &run_distributed(&sync_m, &layouts, n, radius, 1, &global, Some(tier), 1, 4),
                    &layouts,
                    1,
                );
                for (depth, overlap) in [(1, true), (2, true), (4, true), (4, false)] {
                    let (deep_m, dl) = per_rank_modules(
                        &make,
                        &grid,
                        strategy,
                        factors.clone(),
                        overlap,
                        diagonals,
                        depth,
                    );
                    assert_eq!(layouts, dl);
                    let got = gather_cores(
                        &run_distributed(&deep_m, &dl, n, radius, depth, &global, Some(tier), 1, 4),
                        &dl,
                        depth,
                    );
                    assert_eq!(
                        got, base,
                        "dims {dims} {strategy} tier {tier:?} depth {depth} overlap {overlap}: \
                         owned cores must be bit-identical to the synchronous baseline"
                    );
                }
            }
        }
    }
}

/// Serial reference: `timesteps` ping-pong steps of the same function on
/// the undistributed module.
fn run_serial(module: &Module, n: i64, radius: i64, global: &[f64], timesteps: usize) -> Vec<f64> {
    let dims = {
        let f = module.lookup_symbol("rand").unwrap();
        match &stencil_stack::dialects::func::FuncOp(f).function_type().inputs[0] {
            Type::Field(fl) => fl.bounds.rank(),
            other => panic!("unexpected arg {other:?}"),
        }
    };
    let shape = vec![n + 2 * radius; dims];
    let mut bufs = [
        BufView::from_data(shape.clone(), global.to_vec()),
        BufView::from_data(shape, global.to_vec()),
    ];
    for _ in 0..timesteps {
        Interpreter::new(module)
            .call_function(
                "rand",
                vec![RtValue::Buffer(bufs[0].clone()), RtValue::Buffer(bufs[1].clone())],
            )
            .unwrap();
        bufs.swap(0, 1);
    }
    bufs[0].to_vec()
}

#[test]
fn diagonal_exchanges_fix_corner_reading_stencils() {
    // A stencil that reads the (-1,-1)/(1,1) corners: face-only
    // exchanges leave rank-corner halo cells stale.
    let st = RandStencil {
        terms: vec![
            (vec![1, 1], 0.4),
            (vec![-1, -1], 0.2),
            (vec![1, 0], -0.3),
            (vec![-1, 0], -0.15),
        ],
        dims: 2,
        radius: 1,
    };
    let n = 9i64; // uneven on a 2x2 grid: 5+4 per dimension
    let gsize = ((n + 2) * (n + 2)) as usize;
    let global: Vec<f64> = (0..gsize).map(|i| (i as f64 * 0.17).cos()).collect();
    let serial = build(&st, n);
    let want = run_serial(&serial, n, 1, &global, 2);

    let make = || build(&st, n);
    let run = |diagonals: bool, overlap: bool| {
        let (modules, layouts) =
            per_rank_modules(&make, &[2, 2], "standard-slicing", None, overlap, diagonals, 1);
        let outs = run_distributed(&modules, &layouts, n, 1, 1, &global, None, 1, 2);
        let mut got = global.clone();
        for (rank, out) in outs.iter().enumerate() {
            let coords =
                stencil_stack::dmp::decomposition::rank_to_coords(rank as i64, &layouts[rank]);
            let chunks = rank_chunks(n, 2, &layouts[rank], &coords);
            gather(&mut got, out, n, 1, &chunks, &[1; 2]);
        }
        got
    };

    // With corner exchanges the distributed run matches serial exactly —
    // overlapped or not.
    assert_eq!(run(true, false), want, "diagonals=true matches serial bit-for-bit");
    assert_eq!(run(true, true), want, "diagonals+overlap matches serial bit-for-bit");
    // Without them the second step reads stale corners: the silent wrong
    // answer this option exists to fix.
    assert_ne!(run(false, false), want, "face-only exchanges leave corners stale");
}

#[test]
fn overlapped_mpi_lowering_matches_serial_interpreted() {
    // The dmp→mpi overlap path (begin / interior loop / per-receive wait
    // / shells) interpreted over SimMPI, against the serial reference.
    let n = 16i64;
    let shape = vec![n + 2, n + 2];
    let size = ((n + 2) * (n + 2)) as usize;
    let global: Vec<f64> = (0..size).map(|i| (i as f64 * 0.05).cos()).collect();

    let mut serial = stencil_stack::stencil::samples::heat_2d(n, 0.1);
    ShapeInference.run(&mut serial).unwrap();
    let src = BufView::from_data(shape.clone(), global.clone());
    let dst = BufView::from_data(shape.clone(), global.clone());
    Interpreter::new(&serial)
        .call_function("heat", vec![RtValue::Buffer(src), RtValue::Buffer(dst.clone())])
        .unwrap();
    let want = dst.to_vec();

    let mut m = stencil_stack::stencil::samples::heat_2d(n, 0.1);
    ShapeInference.run(&mut m).unwrap();
    DistributeStencil::new(vec![2, 2]).with_overlap(true).run(&mut m).unwrap();
    ShapeInference.run(&mut m).unwrap();
    stencil_stack::stencil::StencilToLoops.run(&mut m).unwrap();
    stencil_stack::mpi::DmpToMpi.run(&mut m).unwrap();
    stencil_stack::mpi::MpiToFunc.run(&mut m).unwrap();
    let text = sten_ir_text(&m);
    assert!(text.contains("MPI_Wait"), "split barrier survives to func level: {text}");

    let core = n / 2;
    let local = core + 2;
    let g = &global;
    let full = (n + 2) as usize;
    let (results, _) = run_spmd(&m, "heat", 4, &move |rank| {
        let (ry, rx) = ((rank as i64) / 2, (rank as i64) % 2);
        let mut data = Vec::new();
        for y in 0..local {
            for x in 0..local {
                data.push(g[(ry * core + y) as usize * full + (rx * core + x) as usize]);
            }
        }
        vec![
            ArgSpec::Buffer { shape: vec![local, local], data: data.clone() },
            ArgSpec::Buffer { shape: vec![local, local], data },
        ]
    })
    .unwrap();

    let mut got = global.clone();
    for (rank, res) in results.iter().enumerate() {
        let (ry, rx) = ((rank as i64) / 2, (rank as i64) % 2);
        let out = &res.buffers[1];
        for y in 1..=core {
            for x in 1..=core {
                got[(ry * core + y) as usize * full + (rx * core + x) as usize] =
                    out[(y * local + x) as usize];
            }
        }
    }
    assert_eq!(got, want, "overlapped MPI lowering must match serial bit-for-bit");
}

fn sten_ir_text(m: &Module) -> String {
    stencil_stack::ir::print_module(m)
}
