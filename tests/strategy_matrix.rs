//! Distributed end-to-end runs across the decomposition-strategy matrix.
//!
//! The acceptance bar for pluggable decomposition: a 127×127
//! (non-divisible) domain distributes onto a 2×2 grid under every
//! strategy, lowers to the func/MPI level, runs over SimMPI with one
//! module per rank, and matches the single-rank stencil-level result
//! bit-for-bit.
//!
//! CI runs this suite once per strategy by setting
//! `STEN_DECOMP_STRATEGY=standard-slicing|recursive-bisection|custom-grid`,
//! each with overlapped halo exchange on and off (`STEN_OVERLAP=1|0`)
//! and a temporal-blocking halo depth (`STEN_HALO_DEPTH=1|2|4`); without
//! the variables every strategy × overlap combination runs at depths 1
//! and 2 in one process. On this func/MPI path a deep halo is exchanged
//! every step (same messages, more volume) — the depth axis checks the
//! widened buffers and exchanges stay bit-correct end to end.
//!
//! A second matrix leg runs the same uneven domain through the compiled
//! executor (`Runner::step_distributed`) per top tier — template-JIT
//! and weighted-sum, or the tier `STEN_EXEC_TIER` pins.

use std::sync::Arc;
use stencil_stack::prelude::*;

fn overlap_modes() -> Vec<bool> {
    match std::env::var("STEN_OVERLAP") {
        Ok(v) if matches!(v.as_str(), "1" | "on" | "true") => vec![true],
        Ok(v) if matches!(v.as_str(), "0" | "off" | "false") => vec![false],
        Ok(other) => panic!("unknown STEN_OVERLAP '{other}' (expected 0|1)"),
        Err(_) => vec![false, true],
    }
}

fn halo_depths() -> Vec<i64> {
    match std::env::var("STEN_HALO_DEPTH") {
        Ok(v) => {
            let k = v.parse::<i64>().ok().filter(|&k| k >= 1);
            vec![k.unwrap_or_else(|| panic!("bad STEN_HALO_DEPTH '{v}' (expected 1|2|4)"))]
        }
        Err(_) => vec![1, 2],
    }
}

fn strategy_names() -> Vec<&'static str> {
    const ALL: [&str; 3] = ["standard-slicing", "recursive-bisection", "custom-grid"];
    match std::env::var("STEN_DECOMP_STRATEGY") {
        Ok(name) => {
            let name = ALL
                .iter()
                .find(|s| **s == name)
                .unwrap_or_else(|| panic!("unknown STEN_DECOMP_STRATEGY '{name}'"));
            vec![name]
        }
        Err(_) => ALL.to_vec(),
    }
}

/// Executor tiers for the compiled-executor matrix run: the top two
/// rungs of the ladder by default (template-JIT plus the weighted-sum
/// tier it falls back to), or just the pinned one when CI sets
/// `STEN_EXEC_TIER`.
fn exec_tiers() -> Vec<TierKind> {
    match std::env::var("STEN_EXEC_TIER") {
        Ok(v) => match TierKind::parse(&v).expect("valid STEN_EXEC_TIER") {
            Some(t) => vec![t],
            None => vec![TierKind::TemplateJit, TierKind::WeightedSum],
        },
        Err(_) => vec![TierKind::TemplateJit, TierKind::WeightedSum],
    }
}

/// Compiles heat-2d once per rank through the textual pipeline (the same
/// strings `sten-opt -p` takes), returning the per-rank modules and the
/// layout the strategy chose.
fn compile_per_rank(
    n: i64,
    strategy: &str,
    ranks: i64,
    overlap: bool,
    depth: i64,
) -> (Vec<Module>, Vec<i64>) {
    let driver = Driver::new().with_verify_each(true);
    // custom-grid takes an explicit factorization: 1x4 refactors the 2x2
    // request into column slabs, exercising a layout neither of the other
    // strategies produces here.
    let factors = if strategy == "custom-grid" { "factors=1x4 " } else { "" };
    let overlap_opt = if overlap { "overlap=true " } else { "" };
    // depth>1 on a multi-dimensionally decomposed grid requires corner
    // exchanges; diagonals=true is a no-op on single-dim layouts.
    let depth_opt =
        if depth > 1 { format!("depth={depth} diagonals=true ") } else { String::new() };
    let modules: Vec<Module> = (0..ranks)
        .map(|rank| {
            let pipeline = format!(
                "shape-inference,distribute-stencil{{{depth_opt}{factors}grid=2x2 \
                 {overlap_opt}rank={rank} strategy={strategy}}},shape-inference,\
                 dmp-eliminate-redundant-swaps,convert-stencil-to-loops,dmp-to-mpi,mpi-to-func"
            );
            driver
                .run_str(stencil_stack::stencil::samples::heat_2d(n, 0.1), &pipeline)
                .unwrap_or_else(|e| panic!("{strategy} rank {rank}: {e}"))
                .module
        })
        .collect();
    let func = modules[0].lookup_symbol("heat").unwrap();
    let layout = func
        .attr("dmp.grid")
        .and_then(stencil_stack::ir::Attribute::as_grid)
        .expect("distributed module records its rank layout")
        .to_vec();
    (modules, layout)
}

#[test]
fn uneven_heat127_matches_single_rank_for_every_strategy() {
    let n = 127i64; // 127 is prime: no 2x2 grid divides it
    let shape = vec![n + 2, n + 2];
    let size = ((n + 2) * (n + 2)) as usize;
    let global: Vec<f64> = (0..size).map(|i| (i as f64 * 0.013).sin()).collect();

    // Single-rank stencil-level reference.
    let mut serial = stencil_stack::stencil::samples::heat_2d(n, 0.1);
    stencil_stack::stencil::ShapeInference.run(&mut serial).unwrap();
    let src = BufView::from_data(shape.clone(), global.clone());
    let dst = BufView::from_data(shape.clone(), global.clone());
    Interpreter::new(&serial)
        .call_function("heat", vec![RtValue::Buffer(src), RtValue::Buffer(dst.clone())])
        .unwrap();
    let want = dst.to_vec();

    for strategy in strategy_names() {
        for overlap in overlap_modes() {
            for depth in halo_depths() {
                let (modules, layout) = compile_per_rank(n, strategy, 4, overlap, depth);
                assert_eq!(layout.iter().product::<i64>(), 4, "{strategy}");
                let chunk =
                    |d: usize, coord: i64| stencil_stack::dmp::balanced_chunk(n, layout[d], coord);
                let coords_of =
                    |rank: i64| stencil_stack::dmp::decomposition::rank_to_coords(rank, &layout);
                // Local halo width per dimension: depth cells along
                // decomposed dims, 1 elsewhere (cells past the global pad
                // are dead and zero-filled).
                let halo = |d: usize| if layout[d] > 1 { depth } else { 1 };
                let (hy, hx) = (halo(0), halo(1));

                let g = &global;
                let full = n + 2;
                let (results, world) = run_spmd_modules(&modules, "heat", &move |rank| {
                    let c = coords_of(rank as i64);
                    let (oy, sy) = chunk(0, c[0]);
                    let (ox, sx) = chunk(1, *c.get(1).unwrap_or(&0));
                    let mut data = Vec::with_capacity(((sy + 2 * hy) * (sx + 2 * hx)) as usize);
                    for y in 0..sy + 2 * hy {
                        for x in 0..sx + 2 * hx {
                            let gy = oy + y - (hy - 1);
                            let gx = ox + x - (hx - 1);
                            let ok = gy >= 0 && gy < full && gx >= 0 && gx < full;
                            data.push(if ok { g[(gy * full + gx) as usize] } else { 0.0 });
                        }
                    }
                    vec![
                        ArgSpec::Buffer {
                            shape: vec![sy + 2 * hy, sx + 2 * hx],
                            data: data.clone(),
                        },
                        ArgSpec::Buffer { shape: vec![sy + 2 * hy, sx + 2 * hx], data },
                    ]
                })
                .unwrap();
                assert!(world.total_sent_messages() > 0, "{strategy}: halo exchange happened");

                let mut got = global.clone();
                for (rank, res) in results.iter().enumerate() {
                    let c = coords_of(rank as i64);
                    let (oy, sy) = chunk(0, c[0]);
                    let (ox, sx) = chunk(1, *c.get(1).unwrap_or(&0));
                    let out = &res.buffers[1];
                    for y in hy..hy + sy {
                        for x in hx..hx + sx {
                            got[((oy + 1 + y - hy) * full + ox + 1 + x - hx) as usize] =
                                out[(y * (sx + 2 * hx) + x) as usize];
                        }
                    }
                }
                assert_eq!(
                    got, want,
                    "{strategy} overlap={overlap} depth={depth}: distributed run must match \
                     single-rank bit-for-bit"
                );
            }
        }
    }
}

/// The same uneven domain through the *compiled* executor: per-rank
/// stencil-level modules (halo exchanges still `dmp.swap`) run on
/// [`Runner::step_distributed`] over SimMPI, once per top executor
/// tier, and must match the single-rank interpreter bit-for-bit. This
/// is the strategy-matrix leg of the tier coverage — the template-JIT
/// tier has to survive every decomposition layout, not just the square
/// grids the bench kernels use.
#[test]
fn uneven_heat127_exec_tiers_match_single_rank_for_every_strategy() {
    let n = 127i64;
    let full = n + 2;
    let size = (full * full) as usize;
    let global: Vec<f64> = (0..size).map(|i| (i as f64 * 0.013).sin()).collect();

    // Single-rank stencil-level reference.
    let mut serial = stencil_stack::stencil::samples::heat_2d(n, 0.1);
    stencil_stack::stencil::ShapeInference.run(&mut serial).unwrap();
    let src = BufView::from_data(vec![full, full], global.clone());
    let dst = BufView::from_data(vec![full, full], global.clone());
    Interpreter::new(&serial)
        .call_function("heat", vec![RtValue::Buffer(src), RtValue::Buffer(dst.clone())])
        .unwrap();
    let want = dst.to_vec();

    let driver = Driver::new().with_verify_each(true);
    for strategy in strategy_names() {
        let factors = if strategy == "custom-grid" { "factors=1x4 " } else { "" };
        let modules: Vec<Module> = (0..4)
            .map(|rank| {
                let pipeline = format!(
                    "shape-inference,distribute-stencil{{{factors}grid=2x2 rank={rank} \
                     strategy={strategy}}},shape-inference,dmp-eliminate-redundant-swaps"
                );
                driver
                    .run_str(stencil_stack::stencil::samples::heat_2d(n, 0.1), &pipeline)
                    .unwrap_or_else(|e| panic!("{strategy} rank {rank}: {e}"))
                    .module
            })
            .collect();
        let layout = modules[0]
            .lookup_symbol("heat")
            .unwrap()
            .attr("dmp.grid")
            .and_then(stencil_stack::ir::Attribute::as_grid)
            .expect("distributed module records its rank layout")
            .to_vec();
        let chunk = |d: usize, coord: i64| stencil_stack::dmp::balanced_chunk(n, layout[d], coord);
        let coords_of =
            |rank: i64| stencil_stack::dmp::decomposition::rank_to_coords(rank, &layout);

        for tier in exec_tiers() {
            let world = SimWorld::new(4);
            let mut outs: Vec<Vec<f64>> = vec![Vec::new(); 4];
            std::thread::scope(|scope| {
                for (rank, out) in outs.iter_mut().enumerate() {
                    let world = Arc::clone(&world);
                    let module = &modules[rank];
                    let (chunk, coords_of, global) = (&chunk, &coords_of, &global);
                    scope.spawn(move || {
                        let mut pipeline = compile_pipeline(module, "heat").unwrap();
                        pipeline.respecialize(Some(tier));
                        let c = coords_of(rank as i64);
                        let (oy, sy) = chunk(0, c[0]);
                        let (ox, sx) = chunk(1, *c.get(1).unwrap_or(&0));
                        // Local field = core + the 1-cell pad; local
                        // (y, x) sits at global (oy + y, ox + x).
                        assert_eq!(
                            pipeline.arg_shapes[0],
                            vec![sy + 2, sx + 2],
                            "{strategy} rank {rank}: local field shape"
                        );
                        let mut data = Vec::with_capacity(((sy + 2) * (sx + 2)) as usize);
                        for y in 0..sy + 2 {
                            for x in 0..sx + 2 {
                                data.push(global[((oy + y) * full + ox + x) as usize]);
                            }
                        }
                        let mut args = vec![data.clone(), data];
                        let mut runner = Runner::new(pipeline, 1);
                        runner.step_distributed(&mut args, &world, rank as i64).unwrap();
                        *out = args[1].clone();
                    });
                }
            });
            assert!(world.total_sent_messages() > 0, "{strategy}: halo exchange happened");

            let mut got = global.clone();
            for (rank, res) in outs.iter().enumerate() {
                let c = coords_of(rank as i64);
                let (oy, sy) = chunk(0, c[0]);
                let (ox, sx) = chunk(1, *c.get(1).unwrap_or(&0));
                for y in 1..=sy {
                    for x in 1..=sx {
                        got[((oy + y) * full + ox + x) as usize] = res[(y * (sx + 2) + x) as usize];
                    }
                }
            }
            assert_eq!(
                got, want,
                "{strategy} tier {tier:?}: compiled distributed run must match \
                 single-rank bit-for-bit"
            );
        }
    }
}

#[test]
fn strategies_share_results_but_not_cache_entries() {
    // The same module under distinct strategies must compile to distinct
    // cache keys (the strategy is part of the canonical pipeline), while
    // an even decomposition produces the same numbers under both.
    let opts_std = CompileOptions::distributed(vec![2, 2]);
    let opts_rb =
        CompileOptions::distributed_with_strategy(vec![2, 2], DecompStrategy::RecursiveBisection);
    assert_ne!(opts_std.pipeline_string(), opts_rb.pipeline_string());

    let m = || stencil_stack::stencil::samples::heat_2d(32, 0.1);
    let cold_std = compile(m(), &opts_std).unwrap();
    let cold_rb = compile(m(), &opts_rb).unwrap();
    // Second compiles hit their own entries — the strategies did not
    // collide in the cache.
    assert!(compile(m(), &opts_std).unwrap().cache_hit);
    assert!(compile(m(), &opts_rb).unwrap().cache_hit);

    // On an even 32×32 domain both lower to the same 2x2 layout and the
    // executed results agree.
    let init: Vec<f64> = (0..34 * 34).map(|i| (i as f64 * 0.07).cos()).collect();
    let run = |module: &Module| {
        let core = 16i64;
        let local = core + 2;
        let g = init.clone();
        let (results, _) = run_spmd(module, "heat", 4, &move |rank| {
            let (ry, rx) = ((rank as i64) / 2, (rank as i64) % 2);
            let mut data = Vec::new();
            for y in 0..local {
                for x in 0..local {
                    data.push(g[((ry * core + y) * 34 + rx * core + x) as usize]);
                }
            }
            vec![
                ArgSpec::Buffer { shape: vec![local, local], data: data.clone() },
                ArgSpec::Buffer { shape: vec![local, local], data },
            ]
        })
        .unwrap();
        results.into_iter().map(|r| r.buffers[1].clone()).collect::<Vec<_>>()
    };
    assert_eq!(run(&cold_std.module), run(&cold_rb.module));
}
