//! Fault-injection property suite: self-healing distributed execution.
//!
//! The acceptance bar for the resilience plane: random 1D stencils,
//! across every decomposition strategy and executor tier, driven through
//! [`run_resilient`] under random seeded fault schedules (drops,
//! duplicates, reorders, delay spikes, rank stalls, rank crashes) must
//! either finish **bit-identical** to the fault-free run or return a
//! structured [`ExecError`] — never hang, never panic, never silently
//! produce wrong bytes. Plans with no timing-sensitive faults (pure
//! drop/duplicate/reorder, or a crash the checkpoint/restart driver can
//! roll back) are required to succeed outright.
//!
//! CI reruns the matrix via `STEN_FAULT_SEED` (pin one schedule seed),
//! `STEN_DECOMP_STRATEGY`, and `STEN_EXEC_TIER`.

mod common;

use common::Rng;
use std::sync::Arc;
use std::time::Duration;
use stencil_stack::dialects::{arith, func};
use stencil_stack::dmp::decomposition::neighbor_rank;
use stencil_stack::dmp::{make_strategy, DistributeStencil};
use stencil_stack::exec::{
    run_resilient, CheckpointStore, ExecError, Pipeline, ResilientConfig, ResilientReport,
};
use stencil_stack::interp::sim_mpi::Externals as _;
use stencil_stack::interp::{FaultAction, FaultPlan, MpiEnv, MpiError, Reliability};
use stencil_stack::ir::{ExchangeAttr, FieldType, TempType, Type};
use stencil_stack::mpi::dmp_to_mpi::tag_for_direction;
use stencil_stack::prelude::*;
use stencil_stack::stencil::{ops, ShapeInference};

const RANKS: usize = 2;
const RADIUS: i64 = 1;

fn strategy_names() -> Vec<&'static str> {
    const ALL: [&str; 3] = ["standard-slicing", "recursive-bisection", "custom-grid"];
    match std::env::var("STEN_DECOMP_STRATEGY") {
        Ok(name) => {
            let name = ALL
                .iter()
                .find(|s| **s == name)
                .unwrap_or_else(|| panic!("unknown STEN_DECOMP_STRATEGY '{name}'"));
            vec![name]
        }
        Err(_) => ALL.to_vec(),
    }
}

fn tiers() -> Vec<TierKind> {
    match TierKind::from_env() {
        Some(t) => vec![t],
        None => vec![TierKind::Eval, TierKind::OptBytecode, TierKind::WeightedSum],
    }
}

/// Fault-schedule seeds: `STEN_FAULT_SEED` pins one, otherwise four per
/// matrix cell (3 strategies × 3 tiers × 4 seeds = 36 runs ≥ the
/// 30-schedule acceptance floor).
fn fault_seeds() -> Vec<u64> {
    match std::env::var("STEN_FAULT_SEED") {
        Ok(s) => {
            vec![s.parse().unwrap_or_else(|_| panic!("STEN_FAULT_SEED '{s}' is not an integer"))]
        }
        Err(_) => vec![1, 2, 3, 4],
    }
}

/// Builds `dst[0..n) = Σ c_i · src[x + o_i]` over an `n`-cell 1D core
/// with a 1-cell halo, from random mirrored radius-1 terms.
fn rand_module(rng: &mut Rng, n: i64) -> Module {
    let mut terms: Vec<(i64, f64)> = (0..rng.range_usize(1, 4))
        .map(|_| (rng.range_i64(-RADIUS, RADIUS + 1), rng.range_f64(-2.0, 2.0)))
        .collect();
    let mirrored: Vec<(i64, f64)> = terms.iter().map(|&(o, c)| (-o, 0.5 * c)).collect();
    terms.extend(mirrored);

    let mut m = Module::new();
    let bounds = Bounds::from_shape(&[n]).grown(RADIUS);
    let fld = Type::Field(FieldType::new(bounds, Type::F64));
    let (mut f, args) = func::definition(&mut m.values, "rand", vec![fld.clone(), fld], vec![]);
    let (src, dst) = (args[0], args[1]);
    let ld = ops::load(&mut m.values, src);
    let t = ld.result(0);
    f.region_block_mut(0).ops.push(ld);
    let ap = ops::apply(
        &mut m.values,
        vec![t],
        vec![Type::Temp(TempType::unknown(1, Type::F64))],
        move |vt, a| {
            let mut body = Vec::new();
            let mut acc: Option<stencil_stack::ir::Value> = None;
            for &(off, c) in &terms {
                let access = ops::access(vt, a[0], vec![off]);
                let av = access.result(0);
                body.push(access);
                let cv_op = arith::const_f64(vt, c);
                let cv = cv_op.result(0);
                body.push(cv_op);
                let mul = arith::mulf(vt, cv, av);
                let mv = mul.result(0);
                body.push(mul);
                acc = Some(match acc {
                    None => mv,
                    Some(prev) => {
                        let add = arith::addf(vt, prev, mv);
                        let v = add.result(0);
                        body.push(add);
                        v
                    }
                });
            }
            body.push(ops::ret(vec![acc.expect("at least one term")]));
            body
        },
    );
    let out = ap.result(0);
    let body = &mut f.region_block_mut(0).ops;
    body.push(ap);
    body.push(ops::store(out, dst, vec![0], vec![n]));
    body.push(func::ret(vec![]));
    m.body_mut().ops.push(f);
    ShapeInference.run(&mut m).unwrap();
    m
}

/// Distributes `m` over [`RANKS`] ranks under `strategy` and compiles it
/// at `tier`. The even 1D split makes one pipeline valid on every rank
/// (boundary exchanges resolve to `None` at runtime).
fn distributed_pipeline(mut m: Module, strategy: &str, tier: TierKind) -> Pipeline {
    let factors = (strategy == "custom-grid").then(|| vec![RANKS as i64]);
    DistributeStencil::with_strategy(vec![RANKS as i64], make_strategy(strategy, factors).unwrap())
        .run(&mut m)
        .unwrap();
    ShapeInference.run(&mut m).unwrap();
    let mut pipeline = compile_pipeline(&m, "rand").unwrap();
    pipeline.respecialize(Some(tier));
    pipeline
}

/// The rank's initial local buffer, scattered out of `global`.
fn scatter(global: &[f64], local: i64, core: i64, rank: usize) -> Vec<f64> {
    let start = rank as i64 * core;
    (0..local).map(|i| global[(start + i) as usize]).collect()
}

/// Fault-free reference: `steps` ping-pong timesteps per rank on a plain
/// [`SimWorld`]; returns each rank's final `[src, dst]` argument pair.
fn reference_run(
    pipeline: &Pipeline,
    global: &[f64],
    core: i64,
    steps: usize,
) -> Vec<Vec<Vec<f64>>> {
    let local = pipeline.arg_shapes[0][0];
    let world = SimWorld::new(RANKS);
    let mut outs: Vec<Vec<Vec<f64>>> = vec![Vec::new(); RANKS];
    std::thread::scope(|scope| {
        for (rank, out) in outs.iter_mut().enumerate() {
            let world = Arc::clone(&world);
            let pipeline = pipeline.clone();
            scope.spawn(move || {
                let data = scatter(global, local, core, rank);
                let mut args = vec![data.clone(), data];
                let mut runner = Runner::new(pipeline, 1);
                for _ in 0..steps {
                    runner.step_distributed(&mut args, &world, rank as i64).unwrap();
                    args.swap(0, 1);
                }
                *out = args;
            });
        }
    });
    outs
}

fn resilient_run(
    pipeline: &Pipeline,
    global: &[f64],
    core: i64,
    steps: usize,
    plan: Arc<FaultPlan>,
    interval: u64,
) -> (Vec<Vec<Vec<f64>>>, Result<ResilientReport, ExecError>) {
    let local = pipeline.arg_shapes[0][0];
    let mut args_per_rank: Vec<Vec<Vec<f64>>> = (0..RANKS)
        .map(|rank| {
            let data = scatter(global, local, core, rank);
            vec![data.clone(), data]
        })
        .collect();
    let store = CheckpointStore::in_memory();
    let cfg = ResilientConfig {
        steps: steps as u64,
        checkpoint_interval: interval,
        max_recoveries: 3,
        reliability: Reliability::default(),
        threads: 1,
        rotate_args: true,
    };
    let result = run_resilient(pipeline, &mut args_per_rank, plan, &store, &cfg, &Tracer::new());
    (args_per_rank, result)
}

/// The tentpole property: every random fault schedule either heals to
/// the exact fault-free bytes or surfaces a structured error — and
/// schedules without timing-sensitive faults must heal.
#[test]
fn random_fault_schedules_heal_bitwise_or_fail_typed() {
    let n = 12i64;
    let steps = 6usize;
    let mut checked = 0u32;
    for (t, tier) in tiers().into_iter().enumerate() {
        for (s, strategy) in strategy_names().into_iter().enumerate() {
            for seed in fault_seeds() {
                let cell = seed ^ ((t as u64) << 17) ^ ((s as u64) << 9);
                let mut rng = Rng::new(0xFA17 ^ cell.wrapping_mul(0x9E3779B97F4A7C15));
                let global: Vec<f64> =
                    (0..(n + 2 * RADIUS)).map(|_| rng.range_f64(-10.0, 10.0)).collect();
                let pipeline = distributed_pipeline(rand_module(&mut rng, n), strategy, tier);
                let core = n / RANKS as i64;
                let reference = reference_run(&pipeline, &global, core, steps);

                let faults = 1 + (rng.next_u64() % 3) as usize;
                let plan = Arc::new(FaultPlan::random(cell, RANKS, steps as u64, faults));
                let timing_sensitive = plan.actions().any(|a| {
                    matches!(a, FaultAction::DelaySpike { .. } | FaultAction::RankStall { .. })
                });
                let (healed, result) =
                    resilient_run(&pipeline, &global, core, steps, Arc::clone(&plan), 2);
                match result {
                    Ok(report) => {
                        assert_eq!(
                            healed, reference,
                            "fault schedule (seed {cell}, {faults} faults) healed to wrong \
                             bytes under {strategy}/{tier:?}"
                        );
                        if plan.has_crash() {
                            assert!(
                                report.recoveries >= 1,
                                "a crash plan that succeeded must have rolled back"
                            );
                        }
                    }
                    Err(e) => assert!(
                        timing_sensitive,
                        "schedule (seed {cell}) has no timing-sensitive fault yet failed \
                         under {strategy}/{tier:?}: {e}"
                    ),
                }
                checked += 1;
            }
        }
    }
    // One STEN_* pin narrows the matrix; the full run clears the floor.
    let pinned = std::env::var("STEN_FAULT_SEED").is_ok()
        || std::env::var("STEN_DECOMP_STRATEGY").is_ok()
        || std::env::var("STEN_EXEC_TIER").is_ok();
    assert!(pinned || checked >= 30, "only {checked} schedules exercised");
}

/// A fault-free pass through the whole resilience plane (reliable
/// protocol, checkpoints, digest barriers) is bit-identical to the plain
/// distributed runner and performs no recoveries.
#[test]
fn fault_free_resilient_run_is_bit_identical() {
    let n = 12i64;
    let steps = 5usize;
    let mut rng = Rng::new(0xC1EA);
    let global: Vec<f64> = (0..(n + 2 * RADIUS)).map(|_| rng.range_f64(-10.0, 10.0)).collect();
    let pipeline =
        distributed_pipeline(rand_module(&mut rng, n), "standard-slicing", TierKind::Eval);
    let core = n / RANKS as i64;
    let reference = reference_run(&pipeline, &global, core, steps);
    let (healed, result) =
        resilient_run(&pipeline, &global, core, steps, Arc::new(FaultPlan::new()), 2);
    let report = result.expect("a fault-free run cannot fail");
    assert_eq!(healed, reference, "resilience plane must be invisible without faults");
    assert_eq!(report.recoveries, 0);
    assert!(report.checkpoints >= RANKS as u64, "step-0 baseline always deposited");
    assert_eq!(report.replayed_steps, 0);
}

/// Satellite: an injected crash poisons the world, so peers blocked in
/// an exchange return a structured error naming the culprit instead of
/// hanging forever.
#[test]
fn crash_poisons_peers_instead_of_hanging() {
    let n = 8i64;
    let mut rng = Rng::new(0xDEAD);
    let pipeline =
        distributed_pipeline(rand_module(&mut rng, n), "standard-slicing", TierKind::Eval);
    let local = pipeline.arg_shapes[0][0];
    let core = n / RANKS as i64;
    let global: Vec<f64> = (0..(n + 2 * RADIUS)).map(|i| i as f64).collect();
    let plan = Arc::new(FaultPlan::new().with_rank_fault(1, 0, FaultAction::RankCrash));
    let rel = Reliability { swap_timeout_ms: 10, max_retries: 3, collective_timeout_ms: 500 };
    let world =
        SimWorld::new_resilient(RANKS, Duration::ZERO, Tracer::disabled(), Some(plan), Some(rel));
    let mut errs: Vec<Option<ExecError>> = vec![None; RANKS];
    std::thread::scope(|scope| {
        for (rank, err) in errs.iter_mut().enumerate() {
            let world = Arc::clone(&world);
            let pipeline = pipeline.clone();
            let data = scatter(&global, local, core, rank);
            scope.spawn(move || {
                let mut args = vec![data.clone(), data];
                let mut runner = Runner::new(pipeline, 1);
                *err = runner.step_distributed_checked(&mut args, &world, rank as i64).err();
            });
        }
    });
    assert_eq!(
        errs[1],
        Some(ExecError::InjectedCrash { rank: 1, step: 0 }),
        "the crashed rank reports the injected fault"
    );
    match &errs[0] {
        Some(ExecError::Mpi(MpiError::Poisoned { by_rank: 1, .. })) => {}
        other => panic!("peer must observe rank 1's poison, got {other:?}"),
    }
}

/// Satellite: a neighbour that never answers (tag mismatch, dead rank)
/// exhausts the bounded retry budget and surfaces [`ExecError::SwapTimeout`].
#[test]
fn absent_peer_is_a_swap_timeout_not_a_hang() {
    let n = 8i64;
    let mut rng = Rng::new(0xBEEF);
    let pipeline =
        distributed_pipeline(rand_module(&mut rng, n), "standard-slicing", TierKind::Eval);
    let local = pipeline.arg_shapes[0][0];
    let rel = Reliability { swap_timeout_ms: 5, max_retries: 2, collective_timeout_ms: 200 };
    let world = SimWorld::new_resilient(RANKS, Duration::ZERO, Tracer::disabled(), None, Some(rel));
    let data: Vec<f64> = (0..local).map(|i| i as f64).collect();
    let mut args = vec![data.clone(), data];
    let mut runner = Runner::new(pipeline, 1);
    // Rank 1 never participates.
    match runner.step_distributed_checked(&mut args, &world, 0) {
        Err(ExecError::SwapTimeout { rank: 0, neighbor: 1, attempts, waited_ms, .. }) => {
            assert_eq!(attempts, 2, "full retry budget consumed");
            assert!(waited_ms >= 5 + 10 + 20, "exponential backoff accumulated");
        }
        other => panic!("expected a swap timeout, got {other:?}"),
    }
}

/// Satellite: truncated or misaligned exchange direction vectors are
/// rejected by `neighbor_rank` instead of resolving to a wrong peer.
#[test]
fn malformed_direction_vectors_are_rejected() {
    let err = neighbor_rank(0, &[2, 2], &[1]).unwrap_err();
    assert!(err.contains("1 components") && err.contains("2 dimensions"), "got: {err}");
    let err = neighbor_rank(0, &[2], &[0, 1]).unwrap_err();
    assert!(err.contains("does not decompose"), "got: {err}");
    // The well-formed cases still resolve.
    assert_eq!(neighbor_rank(0, &[2], &[1]).unwrap(), Some(1));
    assert_eq!(neighbor_rank(0, &[2], &[-1]).unwrap(), None, "domain boundary");
}

/// Satellite: a halo message whose element count does not match the
/// declared receive region is a diagnosed error in the interpreter's
/// `dmp.swap`, naming ranks, tag, and region.
#[test]
fn wrong_size_halo_is_rejected_by_the_interpreter_swap() {
    let world = SimWorld::new(RANKS);
    let w = Arc::clone(&world);
    let sender = std::thread::spawn(move || {
        // Two elements where the receive region holds one.
        w.send(1, 0, tag_for_direction(&[-1]) as i32, vec![7.0, 8.0]);
        // Drain rank 0's outbound so nothing lingers.
        w.recv(1, 0, tag_for_direction(&[1]) as i32).unwrap()
    });
    let mut env = MpiEnv::new(Arc::clone(&world), 0);
    let view = BufView::from_data(vec![6], (0..6).map(|i| i as f64).collect());
    let exchanges = [ExchangeAttr::new(vec![5], vec![1], vec![-1], vec![1])];
    let err = env.dmp_swap(&view, &[2], &exchanges).unwrap_err();
    assert!(err.contains("2 elements") && err.contains("expected 1"), "got: {err}");
    sender.join().unwrap();
}

/// Satellite: same guarantee in the compiled reliable protocol — a
/// correctly-framed payload of the wrong size is a structured unpack
/// error, not a buffer overrun or silent corruption.
#[test]
fn wrong_size_reliable_frame_is_rejected_by_the_executor() {
    let n = 8i64;
    let mut rng = Rng::new(0xF00D);
    let pipeline =
        distributed_pipeline(rand_module(&mut rng, n), "standard-slicing", TierKind::Eval);
    let local = pipeline.arg_shapes[0][0];
    let rel = Reliability { swap_timeout_ms: 20, max_retries: 1, collective_timeout_ms: 200 };
    let world = SimWorld::new_resilient(RANKS, Duration::ZERO, Tracer::disabled(), None, Some(rel));
    // Rank 1 frames swap 0 / sequence 1 correctly but ships two payload
    // words where the receive region holds one.
    world.send(1, 0, tag_for_direction(&[-1]) as i32, vec![0.0, 1.0, 9.0, 9.0]);
    let data: Vec<f64> = (0..local).map(|i| i as f64).collect();
    let mut args = vec![data.clone(), data];
    let mut runner = Runner::new(pipeline, 1);
    match runner.step_distributed_checked(&mut args, &world, 0) {
        Err(ExecError::Exec(msg)) => {
            assert!(msg.contains("does not match"), "got: {msg}");
        }
        other => panic!("expected a structured unpack error, got {other:?}"),
    }
}
