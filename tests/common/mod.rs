//! Shared test support: a tiny deterministic PRNG.
//!
//! The randomized suites (`roundtrip`, `properties`, `random_stencils`)
//! were written against `proptest`, which the offline build environment
//! cannot fetch. They now draw from this xorshift64* generator instead:
//! every case is a function of its seed, so failures reproduce exactly by
//! re-running the named seed.

/// A deterministic xorshift64* pseudo-random generator.
pub struct Rng(u64);

// Each integration-test crate compiles its own copy of this module and
// uses a different subset of the helpers.
#[allow(dead_code)]
impl Rng {
    /// Creates a generator from `seed` (any value, including 0).
    pub fn new(seed: u64) -> Rng {
        // Splash the seed so small consecutive seeds diverge immediately.
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x2545_F491_4F6C_DD1D | 1)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as i64
    }

    /// Uniform index in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_i64(lo as i64, hi as i64) as usize
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }
}

#[test]
fn rng_is_deterministic_and_in_range() {
    let mut a = Rng::new(7);
    let mut b = Rng::new(7);
    for _ in 0..100 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
    let mut r = Rng::new(1);
    for _ in 0..1000 {
        let v = r.range_i64(-3, 3);
        assert!((-3..3).contains(&v));
        let f = r.range_f64(0.5, 2.0);
        assert!((0.5..2.0).contains(&f));
    }
    // Different seeds diverge.
    assert_ne!(Rng::new(0).next_u64(), Rng::new(1).next_u64());
}
