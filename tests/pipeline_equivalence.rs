//! The stack's core semantic guarantee: the same program produces the
//! same field at every lowering level and on every execution substrate.
//!
//! Levels compared: stencil-dialect reference interpretation, lowered
//! scf+memref interpretation, the fully optimized shared-CPU pipeline,
//! the compiled bytecode executor (serial and multithreaded), and SPMD
//! distributed execution over SimMPI (dmp level and func/MPI level).

use std::sync::Arc;
use stencil_stack::prelude::*;

fn run_interp(m: &Module, func: &str, shapes: &[Vec<i64>], init: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let bufs: Vec<BufView> =
        shapes.iter().zip(init).map(|(s, d)| BufView::from_data(s.clone(), d.clone())).collect();
    let args: Vec<RtValue> = bufs.iter().map(|b| RtValue::Buffer(b.clone())).collect();
    Interpreter::new(m).call_function(func, args).expect("interpretation succeeds");
    bufs.iter().map(BufView::to_vec).collect()
}

#[test]
fn heat2d_all_levels_agree() {
    let n = 20i64;
    let shape = vec![n + 2, n + 2];
    let size = ((n + 2) * (n + 2)) as usize;
    let init: Vec<f64> = (0..size).map(|i| (i as f64 * 0.043).sin()).collect();
    let shapes = vec![shape.clone(), shape.clone()];
    let inits = vec![init.clone(), init.clone()];

    // Level 1: stencil dialect reference semantics.
    let mut reference = stencil_stack::stencil::samples::heat_2d(n, 0.1);
    stencil_stack::stencil::ShapeInference.run(&mut reference).unwrap();
    let want = run_interp(&reference, "heat", &shapes, &inits)[1].clone();

    // Level 2: loops over memrefs.
    let mut loops = reference.clone();
    stencil_stack::stencil::StencilToLoops.run(&mut loops).unwrap();
    assert_eq!(run_interp(&loops, "heat", &shapes, &inits)[1], want);

    // Level 3: the full optimized shared-CPU pipeline (tiling, folding,
    // LICM, CSE, DCE).
    let compiled =
        compile(stencil_stack::stencil::samples::heat_2d(n, 0.1), &CompileOptions::shared_cpu())
            .unwrap();
    assert_eq!(run_interp(&compiled.module, "heat", &shapes, &inits)[1], want);

    // Level 4: compiled bytecode execution, serial and multithreaded.
    for threads in [1usize, 6] {
        let pipeline = compile_pipeline(&reference, "heat").unwrap();
        let mut args = inits.clone();
        Runner::new(pipeline, threads).step(&mut args).unwrap();
        assert_eq!(args[1], want, "executor with {threads} threads");
    }
}

#[test]
fn jacobi_distributed_func_level_matches_reference_on_many_rank_counts() {
    let n = 128i64;
    let input: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).cos()).collect();

    let mut reference = stencil_stack::stencil::samples::jacobi_1d(n);
    stencil_stack::stencil::ShapeInference.run(&mut reference).unwrap();
    let want =
        run_interp(&reference, "jacobi", &[vec![n], vec![n]], &[input.clone(), input.clone()])[1]
            .clone();

    for ranks in [2i64, 3, 6, 9] {
        // global core 126 divides by 2, 3, 6, 9.
        let compiled = compile(
            stencil_stack::stencil::samples::jacobi_1d(n),
            &CompileOptions::distributed(vec![ranks]),
        )
        .unwrap();
        let core = (n - 2) / ranks;
        // Discover the local buffer extent from the lowered signature.
        let f = compiled.module.lookup_symbol("jacobi").unwrap();
        let fty = stencil_stack::dialects::func::FuncOp(f).function_type().clone();
        let stencil_stack::ir::Type::MemRef(mt) = &fty.inputs[0] else {
            panic!("lowered arg should be a memref")
        };
        let local = mt.shape[0];
        let input_ref = &input;
        let (results, _) = run_spmd(&compiled.module, "jacobi", ranks as usize, &move |rank| {
            let start = rank as i64 * core;
            let data: Vec<f64> = (0..local).map(|i| input_ref[(start + i) as usize]).collect();
            vec![
                ArgSpec::Buffer { shape: vec![local], data: data.clone() },
                ArgSpec::Buffer { shape: vec![local], data },
            ]
        })
        .unwrap();
        let mut got = input.clone();
        for (rank, res) in results.iter().enumerate() {
            let start = rank as i64 * core;
            for l in 1..=core {
                got[(start + l) as usize] = res.buffers[1][l as usize];
            }
        }
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!((g - w).abs() < 1e-12, "{ranks} ranks, point {i}: {g} vs {w}");
        }
    }
}

#[test]
fn multi_step_wave_exec_vs_interp_time_loop() {
    // The devito operator's driver rotation against the IR-level scf.for
    // time loop, over several steps of a wave (three time buffers).
    let op = problems::acoustic_wave(&[48], 2, 1.0).unwrap();
    let shape = op.field_shape();
    let len: i64 = shape.iter().product();
    let init: Vec<f64> = (0..len)
        .map(|i| {
            let x = i as f64 / len as f64 - 0.5;
            (-x * x * 150.0).exp()
        })
        .collect();
    let steps = 7usize;

    let mut bufs = vec![init.clone(), init.clone(), init.clone()];
    let last = op.run(&mut bufs, steps, 1).unwrap();
    let from_driver = bufs[last].clone();

    let m = op.compile_with_time_loop(steps as i64).unwrap();
    let views: Vec<BufView> =
        (0..3).map(|_| BufView::from_data(shape.clone(), init.clone())).collect();
    Interpreter::new(&m)
        .call_function("run", views.iter().map(|b| RtValue::Buffer(b.clone())).collect())
        .unwrap();
    // The driver reports which buffer index holds the final field; the IR
    // loop rotated identically.
    let from_ir = views[last].to_vec();
    for (a, b) in from_driver.iter().zip(&from_ir) {
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }
}

#[test]
fn distributed_multi_step_heat_2x2_matches_serial() {
    let op = problems::heat(&[32, 32], 2, 0.5).unwrap();
    let shape = op.field_shape();
    let w = shape[1];
    let len: i64 = shape.iter().product();
    let init: Vec<f64> = (0..len).map(|i| (i as f64 * 0.031).sin()).collect();
    let steps = 5usize;

    let mut serial = vec![init.clone(), init.clone()];
    let last = op.run(&mut serial, steps, 1).unwrap();
    let want = serial[last].clone();

    let dist = op.compile_distributed(&[2, 2]).unwrap();
    let world = SimWorld::new(4);
    let core = 16i64;
    let r = op.halo_lo[0];
    let local = core + 2 * r;
    let results: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4i64)
            .map(|rank| {
                let world = Arc::clone(&world);
                let op = op.clone();
                let dist = &dist;
                let init = &init;
                scope.spawn(move || {
                    let (ry, rx) = (rank / 2, rank % 2);
                    let mut data = Vec::new();
                    for y in 0..local {
                        for x in 0..local {
                            let gy = ry * core + y;
                            let gx = rx * core + x;
                            data.push(init[(gy * w + gx) as usize]);
                        }
                    }
                    let mut bufs = vec![data.clone(), data];
                    let last = op.run_distributed(dist, &mut bufs, steps, 1, &world, rank).unwrap();
                    bufs[last].clone()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (rank, out) in results.iter().enumerate() {
        let (ry, rx) = ((rank as i64) / 2, (rank as i64) % 2);
        for y in 0..core {
            for x in 0..core {
                let gy = ry * core + y + r;
                let gx = rx * core + x + r;
                let got = out[((y + r) * local + (x + r)) as usize];
                let exp = want[(gy * w + gx) as usize];
                assert!((got - exp).abs() < 1e-12, "rank {rank} ({y},{x}): {got} vs {exp}");
            }
        }
    }
    assert!(world.total_sent_messages() > 0);
}

#[test]
fn psyclone_kernel_fused_vs_unfused_execution() {
    // PW advection with and without fusion produces identical fields.
    let fused = stencil_stack::psyclone::kernels::pw_advection(16, 16, 8).unwrap();
    // Rebuild without fusion by re-lowering.
    let sub =
        stencil_stack::psyclone::parse_fortran(stencil_stack::psyclone::kernels::PW_ADVECTION_SRC)
            .unwrap();
    let cfg = std::collections::HashMap::from([
        ("nx".to_string(), 16i64),
        ("ny".to_string(), 16i64),
        ("nz".to_string(), 8i64),
    ]);
    let scalars = std::collections::HashMap::from([
        ("tcx".to_string(), 0.1f64),
        ("tcy".to_string(), 0.1f64),
        ("tcz".to_string(), 0.05f64),
    ]);
    let kernel = stencil_stack::psyclone::recognize_stencils(&sub, &cfg).unwrap();
    let unfused = stencil_stack::psyclone::lower_subroutine(&kernel, &scalars).unwrap();

    let f = unfused.lookup_symbol("pw_advection").unwrap();
    let fty = stencil_stack::dialects::func::FuncOp(f).function_type().clone();
    let shapes: Vec<Vec<i64>> = fty
        .inputs
        .iter()
        .map(|t| {
            let stencil_stack::ir::Type::Field(fld) = t else { panic!() };
            fld.bounds.shape()
        })
        .collect();
    let inits: Vec<Vec<f64>> = shapes
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let len: i64 = s.iter().product();
            (0..len).map(|x| ((x + i as i64) as f64 * 0.013).cos()).collect()
        })
        .collect();
    let a = run_interp(&unfused, "pw_advection", &shapes, &inits);
    let b = run_interp(&fused.module, "pw_advection", &shapes, &inits);
    assert_eq!(a, b, "fusion preserves PW advection semantics");
}
