//! Distributed global reductions: the determinism acceptance suite.
//!
//! `stencil.reduce` folds through exact accumulators (superaccumulated
//! sums, total-order min/max lattices), so a distributed reduction —
//! local partial over each rank's owned core, then `dmp.allreduce` —
//! must be *bit-identical* to the serial interpreter, for every
//! decomposition strategy, executor tier, and worker-thread count, over
//! random fields of every supported rank. The CG end-to-end test closes
//! the loop: a full implicit solve's residual trajectory (dozens of
//! dependent reductions, α/β scalar feedback, a convergence predicate)
//! matches the serial reference bit for bit.
//!
//! CI reruns the suite across the strategy matrix via
//! `STEN_DECOMP_STRATEGY`; `STEN_EXEC_TIER` pins the executor tier the
//! same way (unset = all three in one process).

mod common;

use std::sync::Arc;

use common::Rng;
use stencil_stack::cg;
use stencil_stack::dmp::{make_strategy, DistributeStencil};
use stencil_stack::exec::{compile_module_tiered, Runner, TierKind};
use stencil_stack::interp::{BufView, Interpreter, RtValue, SimWorld};
use stencil_stack::ir::{Bounds, Module, Pass as _, Type};
use stencil_stack::stencil::{samples, ShapeInference};

fn strategy_names() -> Vec<&'static str> {
    const ALL: [&str; 3] = ["standard-slicing", "recursive-bisection", "custom-grid"];
    match std::env::var("STEN_DECOMP_STRATEGY") {
        Ok(name) => {
            let name = ALL
                .iter()
                .find(|s| **s == name)
                .unwrap_or_else(|| panic!("unknown STEN_DECOMP_STRATEGY '{name}'"));
            vec![name]
        }
        Err(_) => ALL.to_vec(),
    }
}

fn tiers() -> Vec<TierKind> {
    match TierKind::from_env() {
        Some(t) => vec![t],
        None => vec![TierKind::Eval, TierKind::OptBytecode, TierKind::WeightedSum],
    }
}

fn factors_for(strategy: &str) -> Option<Vec<i64>> {
    (strategy == "custom-grid").then(|| vec![2])
}

/// Extracts the row-major values of box `lb` out of the row-major global
/// buffer over box `gb` (both in the same global coordinates).
fn extract(global: &[f64], gb: &Bounds, lb: &Bounds) -> Vec<f64> {
    let gext: Vec<i64> = gb.0.iter().map(|&(l, h)| h - l).collect();
    let dims = gb.rank();
    let mut out = Vec::new();
    let mut idx: Vec<i64> = lb.0.iter().map(|&(l, _)| l).collect();
    loop {
        let mut flat = 0i64;
        for d in 0..dims {
            flat = flat * gext[d] + (idx[d] - gb.0[d].0);
        }
        out.push(global[flat as usize]);
        let mut d = dims;
        loop {
            if d == 0 {
                return out;
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < lb.0[d].1 {
                break;
            }
            idx[d] = lb.0[d].0;
        }
    }
}

/// The local field bounds the distribute pass assigned to `func`'s first
/// argument (global coordinates).
fn local_field_bounds(m: &Module, func: &str) -> Bounds {
    let f = m.lookup_symbol(func).unwrap();
    let arg = f.region_block(0).args[0];
    match m.values.ty(arg) {
        Type::Field(ft) => ft.bounds.clone(),
        other => panic!("field argument expected, got {other:?}"),
    }
}

#[test]
fn distributed_reduce_matches_serial_interpreter_bit_for_bit() {
    for dims in 1..=3usize {
        for kind in ["sum", "dot", "min", "max"] {
            let mut rng = Rng::new(0xD07 + dims as u64 * 31 + kind.len() as u64);
            // Random field box (nonzero lower bounds included) and a
            // reduce range inset from it — big enough along dim 0 for
            // two ranks.
            let field = Bounds::new(
                (0..dims)
                    .map(|_| {
                        let lo = rng.range_i64(-2, 3);
                        (lo, lo + rng.range_i64(7, 11))
                    })
                    .collect(),
            );
            let range = Bounds::new(field.0.iter().map(|&(lo, hi)| (lo + 1, hi - 1)).collect());
            let gsize = field.0.iter().map(|&(l, h)| (h - l) as usize).product::<usize>();
            let arity = if kind == "dot" { 2 } else { 1 };
            let data: Vec<Vec<f64>> = (0..arity)
                .map(|_| (0..gsize).map(|_| rng.range_f64(-1e6, 1e6)).collect())
                .collect();

            // Serial interpreter reference.
            let mut serial_m = samples::reduce_nd(kind, field.clone(), range.clone());
            ShapeInference.run(&mut serial_m).unwrap();
            let gshape: Vec<i64> = field.0.iter().map(|&(l, h)| h - l).collect();
            let rt_args: Vec<RtValue> = data
                .iter()
                .map(|d| RtValue::Buffer(BufView::from_data(gshape.clone(), d.clone())))
                .collect();
            let want = match Interpreter::new(&serial_m)
                .call_function("reduce", rt_args)
                .unwrap()
                .as_slice()
            {
                [RtValue::Float(v)] => *v,
                other => panic!("expected one float, got {other:?}"),
            };

            for strategy in strategy_names() {
                // Per-rank modules (uneven extents make them heterogeneous).
                let per_rank: Vec<Module> = (0..2)
                    .map(|rank| {
                        let mut m = samples::reduce_nd(kind, field.clone(), range.clone());
                        ShapeInference.run(&mut m).unwrap();
                        DistributeStencil::with_strategy(
                            vec![2],
                            make_strategy(strategy, factors_for(strategy)).unwrap(),
                        )
                        .for_rank(rank)
                        .run(&mut m)
                        .unwrap();
                        ShapeInference.run(&mut m).unwrap();
                        m
                    })
                    .collect();
                for tier in tiers() {
                    for threads in [1usize, 2] {
                        let world = SimWorld::new(2);
                        let mut got = [0.0f64; 2];
                        let field = &field;
                        std::thread::scope(|scope| {
                            for (rank, out) in got.iter_mut().enumerate() {
                                let world = Arc::clone(&world);
                                let m = &per_rank[rank];
                                let data = &data;
                                scope.spawn(move || {
                                    let lb = local_field_bounds(m, "reduce");
                                    let p = compile_module_tiered(m, "reduce", Some(tier)).unwrap();
                                    let mut args: Vec<Vec<f64>> =
                                        data.iter().map(|d| extract(d, field, &lb)).collect();
                                    let mut runner = Runner::new(p, threads);
                                    runner
                                        .step_distributed(&mut args, &world, rank as i64)
                                        .unwrap();
                                    *out = runner.scalar_outputs()[0];
                                });
                            }
                        });
                        for (rank, v) in got.iter().enumerate() {
                            assert_eq!(
                                v.to_bits(),
                                want.to_bits(),
                                "{dims}D {kind} × {strategy} × {} × {threads} threads, \
                                 rank {rank}: {v} != serial {want}",
                                tier.name(),
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn cg_residual_trajectory_matches_serial_bit_for_bit() {
    for tier in tiers() {
        let cfg = cg::CgConfig { tier: Some(tier), ..cg::CgConfig::new(20) };
        let serial = cg::solve(&cfg).unwrap();
        assert!(serial.converged, "{}: {:?}", tier.name(), serial.residuals);
        for strategy in strategy_names() {
            for threads in [1usize, 2] {
                let cfg = cg::CgConfig { threads, ..cfg.clone() };
                let dist =
                    cg::solve_distributed(&cfg, strategy, factors_for(strategy), vec![2], true)
                        .unwrap();
                assert_eq!(
                    dist.residuals.len(),
                    serial.residuals.len(),
                    "{strategy} × {} × {threads} threads",
                    tier.name()
                );
                for (k, (a, b)) in dist.residuals.iter().zip(&serial.residuals).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{strategy} × {} × {threads} threads, iteration {k}: {a} != {b}",
                        tier.name()
                    );
                }
                assert_eq!(dist.x, serial.x, "{strategy}: gathered solution differs");
            }
        }
    }
}
