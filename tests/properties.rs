//! Property-based tests of the stack's core invariants, driven by the
//! seeded deterministic generator in `common::Rng`.

mod common;

use common::Rng;
use stencil_stack::dmp::decomposition::{
    coords_to_rank, neighbor_rank, rank_to_coords, CustomGrid, DecompositionStrategy,
    RecursiveBisection, StandardSlicing,
};
use stencil_stack::prelude::*;

/// For random (possibly uneven) domains and grids, every strategy's
/// per-rank cores tile the global core exactly: disjoint and covering,
/// with per-dimension sizes differing by at most one cell.
#[test]
fn decomposition_partitions_the_domain() {
    for seed in 0..128u64 {
        let mut rng = Rng::new(seed);
        let dims_n = rng.range_usize(1, 4);
        let grid: Vec<i64> =
            (0..rng.range_usize(1, dims_n + 1)).map(|_| rng.range_i64(1, 5)).collect();
        let lb = rng.range_i64(-10, 10);
        // Uneven on purpose: extents need not divide by the grid, only
        // fit at least one cell per rank along each decomposed dim.
        let mut dims = Vec::new();
        for d in 0..dims_n {
            let g = grid.get(d).copied().unwrap_or(1);
            dims.push((lb, lb + g + rng.range_i64(0, 20)));
        }
        let global = Bounds::new(dims);
        let ranks: i64 = grid.iter().product();

        let strategies: Vec<Box<dyn DecompositionStrategy>> = vec![
            Box::new(StandardSlicing::new()),
            Box::new(RecursiveBisection::new()),
            Box::new(CustomGrid::new(grid.clone())),
        ];
        for s in &strategies {
            let Ok(layout) = s.layout(&global, &grid) else {
                // recursive-bisection may refuse grids it cannot place
                // (more ranks than cells in every splittable dim).
                continue;
            };
            assert_eq!(layout.iter().product::<i64>(), ranks, "seed {seed} {}", s.name());
            let mut covered = std::collections::HashSet::new();
            let mut per_dim_sizes: Vec<std::collections::HashSet<i64>> =
                vec![std::collections::HashSet::new(); global.rank()];
            for r in 0..ranks {
                let coords = rank_to_coords(r, &layout);
                let local = s
                    .local_core(&global, &layout, &coords)
                    .unwrap_or_else(|e| panic!("seed {seed} {}: rank {r}: {e}", s.name()));
                assert!(global.contains(&local), "seed {seed} {}", s.name());
                assert!(local.num_points() > 0, "seed {seed} {}: empty rank", s.name());
                for (d, sizes) in per_dim_sizes.iter_mut().enumerate() {
                    sizes.insert(local.size(d));
                }
                // Mark every owned cell: disjointness is exact.
                for pt in local.points() {
                    assert!(
                        covered.insert(pt.clone()),
                        "seed {seed} {}: cell {pt:?} owned twice",
                        s.name()
                    );
                }
            }
            // Disjoint (asserted above) + full count ⟹ covering.
            assert_eq!(covered.len() as i64, global.num_points(), "seed {seed} {}", s.name());
            // Balanced: sizes along each dim differ by at most one.
            for (d, sizes) in per_dim_sizes.iter().enumerate() {
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "seed {seed} {} dim {d}: {sizes:?}", s.name());
            }
        }
    }
}

/// Exchange declarations mirror between neighbours: what rank r sends
/// toward direction +d is exactly what rank r+1 expects to receive in
/// its low halo (same size; send region of one maps onto the receive
/// region of the other under the core-size translation).
#[test]
fn exchanges_mirror_between_neighbors() {
    for seed in 0..128u64 {
        let mut rng = Rng::new(seed);
        let core_size = rng.range_i64(2, 12);
        let halo = rng.range_i64(1, 3);
        let grid0 = rng.range_i64(2, 5);

        let core = Bounds::new(vec![(0, core_size)]);
        let field = core.grown(halo);
        let s = StandardSlicing::new();
        let ex = s.exchanges(&field, &core, &[grid0], &[halo], &[halo]);
        assert_eq!(ex.len(), 2, "seed {seed}");
        let low = ex.iter().find(|e| e.to == vec![-1]).unwrap();
        let high = ex.iter().find(|e| e.to == vec![1]).unwrap();
        assert_eq!(&low.size, &high.size, "seed {seed}");
        // The upper neighbour's low-halo receive region, shifted by the
        // core size, equals this rank's high-side send region.
        let send_at_high = high.send_at()[0];
        let recv_at_low = low.at[0];
        assert_eq!(send_at_high, recv_at_low + core_size, "seed {seed}");
        // Tags match: the tag used to send toward +1 equals the tag the
        // neighbour uses to receive from -1.
        let send_tag = stencil_stack::mpi::dmp_to_mpi::tag_for_direction(&high.to);
        let neg: Vec<i64> = low.to.iter().map(|t| -t).collect();
        let recv_tag = stencil_stack::mpi::dmp_to_mpi::tag_for_direction(&neg);
        assert_eq!(send_tag, recv_tag, "seed {seed}");
    }
}

/// Rank ↔ coordinate mappings are inverse bijections, and neighbour
/// lookups respect grid boundaries.
#[test]
fn rank_coordinate_bijection() {
    for seed in 0..128u64 {
        let mut rng = Rng::new(seed);
        let grid: Vec<i64> = (0..rng.range_usize(1, 4)).map(|_| rng.range_i64(1, 5)).collect();
        let total: i64 = grid.iter().product();
        let mut seen = std::collections::HashSet::new();
        for r in 0..total {
            let c = rank_to_coords(r, &grid);
            assert_eq!(coords_to_rank(&c, &grid), Some(r), "seed {seed}");
            assert!(seen.insert(c.clone()), "seed {seed}");
            for d in 0..grid.len() {
                let mut dir = vec![0i64; grid.len()];
                dir[d] = 1;
                match neighbor_rank(r, &grid, &dir).unwrap() {
                    Some(n) => {
                        let mut back = vec![0i64; grid.len()];
                        back[d] = -1;
                        assert_eq!(neighbor_rank(n, &grid, &back).unwrap(), Some(r), "seed {seed}");
                    }
                    None => assert_eq!(c[d], grid[d] - 1, "seed {seed}"),
                }
            }
        }
    }
}

/// Fornberg weights reproduce the derivative of polynomials exactly
/// (degree < number of points).
#[test]
fn fornberg_weights_are_exact_on_polynomials() {
    for seed in 0..128u64 {
        let mut rng = Rng::new(seed);
        let radius = rng.range_usize(1, 4);
        let m = rng.range_usize(1, 3);
        let scale = rng.range_f64(0.1, 2.0);

        let xs: Vec<f64> = (-(radius as i64)..=radius as i64).map(|i| i as f64 * scale).collect();
        if m >= xs.len() {
            continue;
        }
        let w = stencil_stack::devito::fd_weights(0.0, &xs, m);
        // Differentiate x^k for k = 0..xs.len(): d^m/dx^m x^k at 0 is
        // k!/(k-m)! · 0^(k-m) — nonzero only at k = m, where it is m!.
        for k in 0..xs.len() {
            let got: f64 = xs.iter().zip(&w).map(|(x, wi)| wi * x.powi(k as i32)).sum();
            let want = if k == m { (1..=m).product::<usize>() as f64 } else { 0.0 };
            let tol = 1e-7 * (1.0 + w.iter().map(|x| x.abs()).sum::<f64>());
            assert!((got - want).abs() < tol, "seed {seed} k={k}: {got} vs {want}");
        }
    }
}

/// Bounds algebra: grow/translate/intersect behave like interval
/// arithmetic.
#[test]
fn bounds_algebra() {
    for seed in 0..128u64 {
        let mut rng = Rng::new(seed);
        let lb = rng.range_i64(-50, 50);
        let size = rng.range_i64(1, 40);
        let shift = rng.range_i64(-20, 20);
        let grow = rng.range_i64(0, 6);

        let b = Bounds::new(vec![(lb, lb + size)]);
        assert_eq!(b.grown(grow).num_points(), size + 2 * grow, "seed {seed}");
        let t = b.translated(&[shift]);
        assert_eq!(t.num_points(), b.num_points(), "seed {seed}");
        let self_inter = b.intersect(&b);
        assert_eq!(self_inter.as_ref(), Some(&b), "seed {seed}");
        let disjoint = b.translated(&[size + 1]);
        assert!(b.intersect(&disjoint).is_none(), "seed {seed}");
        // Intersection with a translate has the expected size.
        if shift.abs() < size {
            let inter = b.intersect(&t).unwrap();
            assert_eq!(inter.num_points(), size - shift.abs(), "seed {seed}");
        }
    }
}

/// Redundant-swap elimination never changes distributed results.
#[test]
fn swap_dedup_preserves_semantics() {
    for seed in 0..12u64 {
        let n = 64i64;
        let input: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.1 + seed as f64).sin()).collect();

        // Build a distributed jacobi with a duplicated swap, then dedup.
        let mut m = stencil_stack::stencil::samples::jacobi_1d(n);
        stencil_stack::stencil::ShapeInference.run(&mut m).unwrap();
        stencil_stack::dmp::DistributeStencil::new(vec![2]).run(&mut m).unwrap();
        stencil_stack::stencil::ShapeInference.run(&mut m).unwrap();
        // Duplicate every dmp.swap.
        {
            let f = m.lookup_symbol_mut("jacobi").unwrap();
            let block = f.region_block_mut(0);
            let mut ops = Vec::new();
            for op in block.ops.drain(..) {
                let dup = (op.name == "dmp.swap").then(|| op.clone());
                ops.push(op);
                if let Some(d) = dup {
                    ops.push(d);
                }
            }
            block.ops = ops;
        }
        let run = |m: &Module, input: &[f64]| {
            let core = (n - 2) / 2;
            let input = input.to_vec();
            let (results, world) = run_spmd(m, "jacobi", 2, &move |rank| {
                let start = rank as i64 * core;
                let data: Vec<f64> = (0..core + 2).map(|i| input[(start + i) as usize]).collect();
                vec![
                    ArgSpec::Buffer { shape: vec![core + 2], data: data.clone() },
                    ArgSpec::Buffer { shape: vec![core + 2], data },
                ]
            })
            .unwrap();
            let outs: Vec<Vec<f64>> = results.into_iter().map(|r| r.buffers[1].clone()).collect();
            (outs, world.total_sent_messages())
        };
        let (with_dup, msgs_dup) = run(&m, &input);
        stencil_stack::dmp::EliminateRedundantSwaps.run(&mut m).unwrap();
        let (deduped, msgs_dedup) = run(&m, &input);
        assert_eq!(with_dup, deduped, "seed {seed}");
        assert!(
            msgs_dedup < msgs_dup,
            "seed {seed}: dedup reduced traffic: {msgs_dup} -> {msgs_dedup}"
        );
    }
}

#[test]
fn solve_round_trips_through_equations() {
    // Substituting the solved update back into the equation satisfies it:
    // with diff = lhs − rhs = a·u_forward + rest, solve returns
    // update = −rest/a, so a·update + rest must vanish identically.
    for dt in [0.1, 0.25, 0.5] {
        for alpha in [0.1, 1.0, 2.5] {
            let grid = Grid::new(vec![30]).with_dt(dt);
            let u = TimeFunction::new("u", &grid, 2);
            let eqn = Eq::new(u.dt(), u.laplace() * alpha);
            let update = solve(&eqn, &u.forward()).unwrap();
            let mut diff = eqn.lhs.clone() - eqn.rhs.clone();
            let fwd = u.forward();
            let (fwd_access, _) = fwd.terms.iter().next().unwrap();
            let a = diff.coeff(fwd_access);
            assert!(a != 0.0);
            diff.terms.remove(fwd_access);
            let residual = update * a + diff;
            let scale: f64 = residual.terms.values().map(|c| c.abs()).fold(a.abs(), f64::max);
            for (acc, c) in residual.terms {
                assert!(c.abs() < 1e-9 * scale, "{acc}: {c}");
            }
        }
    }
}
