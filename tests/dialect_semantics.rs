//! Semantics tests for the less-travelled corners of the dialect set:
//! `stencil.combine`, `stencil.dyn_access`/`stencil.index`, and execution
//! at the *mpi-dialect* level (before the func lowering).

use stencil_stack::dialects::{arith, func};
use stencil_stack::ir::{FieldType, TempType, Type};
use stencil_stack::prelude::*;
use stencil_stack::stencil::ops;

fn registry() -> stencil_stack::ir::DialectRegistry {
    standard_registry()
}

/// out[i] = combine(dim 0 at 32): left half from (u+1), right half from
/// (u*2).
fn combine_module(n: i64, split: i64) -> Module {
    let mut m = Module::new();
    let fld = Type::Field(FieldType::new(Bounds::new(vec![(0, n)]), Type::F64));
    let (mut f, args) = func::definition(&mut m.values, "comb", vec![fld.clone(), fld], vec![]);
    let (src, dst) = (args[0], args[1]);
    let ld = ops::load(&mut m.values, src);
    let t = ld.result(0);
    f.region_block_mut(0).ops.push(ld);
    let plus = ops::apply(
        &mut m.values,
        vec![t],
        vec![Type::Temp(TempType::unknown(1, Type::F64))],
        |vt, a| {
            let c = ops::access(vt, a[0], vec![0]);
            let one = arith::const_f64(vt, 1.0);
            let v = arith::addf(vt, c.result(0), one.result(0));
            let out = v.result(0);
            vec![c, one, v, ops::ret(vec![out])]
        },
    );
    let pv = plus.result(0);
    f.region_block_mut(0).ops.push(plus);
    let times = ops::apply(
        &mut m.values,
        vec![t],
        vec![Type::Temp(TempType::unknown(1, Type::F64))],
        |vt, a| {
            let c = ops::access(vt, a[0], vec![0]);
            let two = arith::const_f64(vt, 2.0);
            let v = arith::mulf(vt, c.result(0), two.result(0));
            let out = v.result(0);
            vec![c, two, v, ops::ret(vec![out])]
        },
    );
    let tv = times.result(0);
    f.region_block_mut(0).ops.push(times);
    let comb = ops::combine(&mut m.values, 0, split, pv, tv);
    let cv = comb.result(0);
    f.region_block_mut(0).ops.push(comb);
    f.region_block_mut(0).ops.push(ops::store(cv, dst, vec![0], vec![n]));
    f.region_block_mut(0).ops.push(func::ret(vec![]));
    m.body_mut().ops.push(f);
    stencil_stack::stencil::ShapeInference.run(&mut m).unwrap();
    m
}

#[test]
fn combine_selects_by_split_at_both_levels() {
    let (n, split) = (64i64, 32i64);
    let m = combine_module(n, split);
    verify_module(&m, Some(&registry())).unwrap();
    let input: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let run = |m: &Module| {
        let src = BufView::from_data(vec![n], input.clone());
        let dst = BufView::from_data(vec![n], vec![0.0; n as usize]);
        Interpreter::new(m)
            .call_function("comb", vec![RtValue::Buffer(src), RtValue::Buffer(dst.clone())])
            .unwrap();
        dst.to_vec()
    };
    let got = run(&m);
    for i in 0..n as usize {
        let want = if (i as i64) < split { input[i] + 1.0 } else { input[i] * 2.0 };
        assert_eq!(got[i], want, "at {i}");
    }
    // The loop-level lowering agrees.
    let mut lowered = m.clone();
    stencil_stack::stencil::StencilToLoops.run(&mut lowered).unwrap();
    verify_module(&lowered, Some(&registry())).unwrap();
    assert_eq!(run(&lowered), got, "combine lowering preserves semantics");
}

/// out[i] = u[reversed index] via stencil.index + dyn_access.
#[test]
fn dyn_access_and_index_reverse_a_field() {
    let n = 32i64;
    let mut m = Module::new();
    let fld = Type::Field(FieldType::new(Bounds::new(vec![(0, n)]), Type::F64));
    let (mut f, args) = func::definition(&mut m.values, "rev", vec![fld.clone(), fld], vec![]);
    let (src, dst) = (args[0], args[1]);
    let ld = ops::load(&mut m.values, src);
    let t = ld.result(0);
    f.region_block_mut(0).ops.push(ld);
    let ap = ops::apply(
        &mut m.values,
        vec![t],
        vec![Type::Temp(TempType::unknown(1, Type::F64))],
        |vt, a| {
            // idx = (n-1) - i
            let i = ops::index(vt, 0, 0);
            let iv = i.result(0);
            let nm1 = arith::const_index(vt, n - 1);
            let nv = nm1.result(0);
            let sub = arith::subi(vt, nv, iv);
            let sv = sub.result(0);
            let d = ops::dyn_access(vt, a[0], vec![sv]);
            let out = d.result(0);
            vec![i, nm1, sub, d, ops::ret(vec![out])]
        },
    );
    let av = ap.result(0);
    f.region_block_mut(0).ops.push(ap);
    f.region_block_mut(0).ops.push(ops::store(av, dst, vec![0], vec![n]));
    f.region_block_mut(0).ops.push(func::ret(vec![]));
    m.body_mut().ops.push(f);
    stencil_stack::stencil::ShapeInference.run(&mut m).unwrap();
    verify_module(&m, Some(&registry())).unwrap();

    let input: Vec<f64> = (0..n).map(|i| (i as f64).exp2().min(1e6)).collect();
    let run = |m: &Module| {
        let src = BufView::from_data(vec![n], input.clone());
        let dst = BufView::from_data(vec![n], vec![0.0; n as usize]);
        Interpreter::new(m)
            .call_function("rev", vec![RtValue::Buffer(src), RtValue::Buffer(dst.clone())])
            .unwrap();
        dst.to_vec()
    };
    let got = run(&m);
    for i in 0..n as usize {
        assert_eq!(got[i], input[n as usize - 1 - i], "reversed at {i}");
    }
    // And at the loop level.
    let mut lowered = m.clone();
    stencil_stack::stencil::StencilToLoops.run(&mut lowered).unwrap();
    assert_eq!(run(&lowered), got);
}

/// Distributed execution at the *mpi dialect* level (DmpToMpi applied but
/// MpiToFunc not): the interpreter executes mpi.* ops directly against
/// SimMPI.
#[test]
fn mpi_dialect_level_execution_matches_func_level() {
    let n = 128i64;
    let input: Vec<f64> = (0..n).map(|i| (i as f64 * 0.19).sin()).collect();
    let build = |to_func: bool| {
        let mut m = stencil_stack::stencil::samples::jacobi_1d(n);
        stencil_stack::stencil::ShapeInference.run(&mut m).unwrap();
        stencil_stack::dmp::DistributeStencil::new(vec![2]).run(&mut m).unwrap();
        stencil_stack::stencil::ShapeInference.run(&mut m).unwrap();
        stencil_stack::stencil::StencilToLoops.run(&mut m).unwrap();
        stencil_stack::mpi::DmpToMpi.run(&mut m).unwrap();
        if to_func {
            stencil_stack::mpi::MpiToFunc.run(&mut m).unwrap();
        }
        m
    };
    let run = |m: &Module| {
        let core = (n - 2) / 2;
        let input = input.clone();
        let (results, _) = run_spmd(m, "jacobi", 2, &move |rank| {
            let start = rank as i64 * core;
            let data: Vec<f64> = (0..core + 2).map(|i| input[(start + i) as usize]).collect();
            vec![
                ArgSpec::Buffer { shape: vec![core + 2], data: data.clone() },
                ArgSpec::Buffer { shape: vec![core + 2], data },
            ]
        })
        .unwrap();
        results.into_iter().map(|r| r.buffers[1].clone()).collect::<Vec<_>>()
    };
    let at_mpi_level = run(&build(false));
    let at_func_level = run(&build(true));
    assert_eq!(at_mpi_level, at_func_level);
}

/// Collectives through the mpi dialect: a 4-rank allreduce and bcast
/// round-trip (exercising the interpreter's collective argument
/// marshalling and SimMPI's rendezvous).
#[test]
fn mpi_collectives_execute() {
    use stencil_stack::ir::MemRefType;
    let mut m = Module::new();
    let (mut f, _args) = func::definition(&mut m.values, "coll", vec![], vec![]);
    let buf =
        stencil_stack::dialects::memref::alloc(&mut m.values, MemRefType::new(vec![2], Type::F64));
    let bufv = buf.result(0);
    // buf = [rank, 1.0]
    let rank_op = stencil_stack::mpi::ops::comm_rank(&mut m.values);
    let rv = rank_op.result(0);
    let rank_idx = arith::sitofp(&mut m.values, rv, Type::F64);
    let rf = rank_idx.result(0);
    let zero = arith::const_index(&mut m.values, 0);
    let one_i = arith::const_index(&mut m.values, 1);
    let one_f = arith::const_f64(&mut m.values, 1.0);
    let (zv, ov, ofv) = (zero.result(0), one_i.result(0), one_f.result(0));
    let st0 = stencil_stack::dialects::memref::store(rf, bufv, vec![zv]);
    let st1 = stencil_stack::dialects::memref::store(ofv, bufv, vec![ov]);
    let unwrap = stencil_stack::mpi::ops::unwrap_memref(&mut m.values, bufv);
    let (ptr, cnt, dt) = (unwrap.result(0), unwrap.result(1), unwrap.result(2));
    let allreduce = stencil_stack::mpi::ops::allreduce(ptr, ptr, cnt, dt, "sum");
    for op in [buf, rank_op, rank_idx, zero, one_i, one_f, st0, st1, unwrap, allreduce] {
        f.region_block_mut(0).ops.push(op);
    }
    // Read back the reduced values and return them.
    let ld0 = stencil_stack::dialects::memref::load(&mut m.values, bufv, vec![zv]);
    let ld1 = stencil_stack::dialects::memref::load(&mut m.values, bufv, vec![ov]);
    let (r0, r1) = (ld0.result(0), ld1.result(0));
    f.region_block_mut(0).ops.push(ld0);
    f.region_block_mut(0).ops.push(ld1);
    f.region_block_mut(0).ops.push(func::ret(vec![r0, r1]));
    // Fix the signature (two f64 results).
    f.set_attr(
        "function_type",
        stencil_stack::ir::Attribute::Type(Type::Function(Box::new(
            stencil_stack::ir::FunctionType::new(vec![], vec![Type::F64, Type::F64]),
        ))),
    );
    m.body_mut().ops.push(f);
    verify_module(&m, Some(&registry())).unwrap();

    let world = SimWorld::new(4);
    let results: Vec<(f64, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|rank| {
                let world = std::sync::Arc::clone(&world);
                let m = &m;
                scope.spawn(move || {
                    let env = stencil_stack::interp::MpiEnv::new(world, rank);
                    let mut interp = Interpreter::with_externals(m, Box::new(env));
                    let out = interp.call_function("coll", vec![]).unwrap();
                    (out[0].as_float().unwrap(), out[1].as_float().unwrap())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (sum_ranks, sum_ones) in results {
        assert_eq!(sum_ranks, 0.0 + 1.0 + 2.0 + 3.0);
        assert_eq!(sum_ones, 4.0);
    }
}
