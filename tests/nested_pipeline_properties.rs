//! Property tests for the nested pipeline refactor (seeded in-repo Rng,
//! same generator family as `random_stencils.rs`): for *any* random flat
//! pipeline over *any* random multi-function stencil module,
//!
//! * the auto-nested canonical form (`func.func(...)` groups) produces
//!   byte-identical module text to the flat spelling,
//! * the canonical form round-trips through parse ∘ print,
//! * and the parallel scheduler (threads=auto) produces byte-identical
//!   text to threads=1.

mod common;

use common::Rng;
use stencil_stack::dialects::{arith, func};
use stencil_stack::ir::{FieldType, TempType, Type};
use stencil_stack::prelude::*;
use stencil_stack::stencil::ops;

/// Builds a module with `funcs` functions, each computing a random
/// weighted sum of random-offset accesses (the `random_stencils.rs`
/// generator, multi-function).
fn rand_module(funcs: usize, dims: usize, rng: &mut Rng) -> Module {
    let n = 12i64;
    let radius = 2i64;
    let mut m = Module::new();
    for fi in 0..funcs {
        let bounds = Bounds::from_shape(&vec![n; dims]).grown(radius);
        let fld = Type::Field(FieldType::new(bounds, Type::F64));
        let name = format!("rand_{fi}");
        let (mut f, args) = func::definition(&mut m.values, &name, vec![fld.clone(), fld], vec![]);
        let (src, dst) = (args[0], args[1]);
        let ld = ops::load(&mut m.values, src);
        let t = ld.result(0);
        f.region_block_mut(0).ops.push(ld);
        let terms: Vec<(Vec<i64>, f64)> = (0..rng.range_usize(1, 6))
            .map(|_| {
                let offset: Vec<i64> = (0..dims).map(|_| rng.range_i64(-2, 3)).collect();
                (offset, rng.range_f64(-2.0, 2.0))
            })
            .collect();
        let ap = ops::apply(
            &mut m.values,
            vec![t],
            vec![Type::Temp(TempType::unknown(dims, Type::F64))],
            move |vt, a| {
                let mut body = Vec::new();
                let mut acc: Option<stencil_stack::ir::Value> = None;
                for (off, c) in &terms {
                    let access = ops::access(vt, a[0], off.clone());
                    let av = access.result(0);
                    body.push(access);
                    let cv_op = arith::const_f64(vt, *c);
                    let cv = cv_op.result(0);
                    body.push(cv_op);
                    let mul = arith::mulf(vt, cv, av);
                    let mv = mul.result(0);
                    body.push(mul);
                    acc = Some(match acc {
                        None => mv,
                        Some(prev) => {
                            let add = arith::addf(vt, prev, mv);
                            let v = add.result(0);
                            body.push(add);
                            v
                        }
                    });
                }
                body.push(ops::ret(vec![acc.expect("at least one term")]));
                body
            },
        );
        let out = ap.result(0);
        let body = &mut f.region_block_mut(0).ops;
        body.push(ap);
        body.push(ops::store(out, dst, vec![0; dims], vec![n; dims]));
        body.push(func::ret(vec![]));
        m.body_mut().ops.push(f);
    }
    m
}

/// Draws a random flat pipeline: the lowering backbone with random
/// optional passes, then a random-order mix of the function-anchored
/// cleanups interleaved (sometimes) with module-anchored annotation
/// passes — so nesting must split and regroup correctly.
fn rand_flat_pipeline(rng: &mut Rng) -> String {
    let mut p = String::from("shape-inference");
    if rng.chance(1, 2) {
        p.push_str(",stencil-fusion,shape-inference");
    }
    p.push_str(",convert-stencil-to-loops");
    if rng.chance(1, 2) {
        p.push_str(",tile-parallel-loops{tile=8:4}");
    }
    let cleanups = ["canonicalize", "licm", "cse", "dce"];
    let rounds = rng.range_usize(1, 4);
    for _ in 0..rounds {
        for &pass in &cleanups {
            if rng.chance(2, 3) {
                p.push(',');
                p.push_str(pass);
            }
        }
        if rng.chance(1, 3) {
            p.push_str(",gpu-map-parallel-loops");
        }
    }
    p
}

#[test]
fn random_flat_pipelines_equal_their_auto_nested_form() {
    for seed in 0..32u64 {
        let mut rng = Rng::new(9000 + seed);
        let funcs = rng.range_usize(1, 5);
        let dims = rng.range_usize(1, 3);
        let module = rand_module(funcs, dims, &mut rng);
        let flat = rand_flat_pipeline(&mut rng);

        let driver = Driver::new().with_cache(None).with_verify_each(true);
        let flat_out = driver
            .run_str(module.clone(), &flat)
            .unwrap_or_else(|e| panic!("seed {seed}, pipeline '{flat}': {e}"));

        // The canonical nested form round-trips and runs to the same
        // bytes as the flat spelling.
        let nested = flat_out.canonical_pipeline.clone();
        let reparsed = PipelineSpec::parse(&nested)
            .unwrap_or_else(|e| panic!("seed {seed}: canonical form '{nested}' reparses: {e}"));
        assert_eq!(reparsed.to_string(), nested, "seed {seed}: canonical print round-trips");
        let nested_out = driver
            .run_str(module.clone(), &nested)
            .unwrap_or_else(|e| panic!("seed {seed}, nested '{nested}': {e}"));
        assert_eq!(
            nested_out.text, flat_out.text,
            "seed {seed}: flat '{flat}' vs nested '{nested}'"
        );
        assert_eq!(nested_out.canonical_pipeline, nested, "seed {seed}: nesting is idempotent");

        // Parallel scheduling is pure scheduling: threads=1 and
        // threads=auto agree byte-for-byte.
        let serial_out = Driver::new()
            .with_cache(None)
            .with_parallelism(1)
            .run_str(module.clone(), &flat)
            .unwrap();
        assert_eq!(serial_out.text, flat_out.text, "seed {seed}: serial vs auto threads");
    }
}
