//! Randomized whole-stack equivalence: arbitrary generated stencil
//! programs (random offsets, coefficients, dimensionality) produce
//! identical fields at every level — stencil-dialect reference
//! interpretation, the optimized shared-CPU pipeline, the compiled
//! bytecode executor, and (for 1D programs with divisible cores) a 2-rank
//! distributed run over SimMPI. Cases are seeded and deterministic (see
//! `common::Rng`).

mod common;

use common::Rng;
use stencil_stack::dialects::{arith, func};
use stencil_stack::ir::{FieldType, TempType, Type};
use stencil_stack::prelude::*;
use stencil_stack::stencil::ops;

#[derive(Clone, Debug)]
struct RandStencil {
    /// (offset per dim, coefficient) terms.
    terms: Vec<(Vec<i64>, f64)>,
    dims: usize,
}

fn rand_stencil(dims: usize, rng: &mut Rng) -> RandStencil {
    let num_terms = rng.range_usize(1, 6);
    let mut terms: Vec<(Vec<i64>, f64)> = (0..num_terms)
        .map(|_| {
            let offset: Vec<i64> = (0..dims).map(|_| rng.range_i64(-2, 3)).collect();
            (offset, rng.range_f64(-2.0, 2.0))
        })
        .collect();
    // The dmp exchange is a symmetric pairwise swap (as in the paper),
    // so keep the generated halo symmetric: mirror every term.
    let mirrored: Vec<(Vec<i64>, f64)> =
        terms.iter().map(|(o, c)| (o.iter().map(|x| -x).collect(), 0.5 * c)).collect();
    terms.extend(mirrored);
    RandStencil { terms, dims }
}

/// Builds `out = Σ c_i · u[x + o_i]` over an interior store range.
fn build(st: &RandStencil, n: i64) -> Module {
    let dims = st.dims;
    let radius = 2i64;
    let mut m = Module::new();
    let bounds = Bounds::from_shape(&vec![n; dims]).grown(radius);
    let fld = Type::Field(FieldType::new(bounds, Type::F64));
    let (mut f, args) = func::definition(&mut m.values, "rand", vec![fld.clone(), fld], vec![]);
    let (src, dst) = (args[0], args[1]);
    let ld = ops::load(&mut m.values, src);
    let t = ld.result(0);
    f.region_block_mut(0).ops.push(ld);
    let terms = st.terms.clone();
    let ap = ops::apply(
        &mut m.values,
        vec![t],
        vec![Type::Temp(TempType::unknown(dims, Type::F64))],
        move |vt, a| {
            let mut body = Vec::new();
            let mut acc: Option<stencil_stack::ir::Value> = None;
            for (off, c) in &terms {
                let access = ops::access(vt, a[0], off.clone());
                let av = access.result(0);
                body.push(access);
                let cv_op = arith::const_f64(vt, *c);
                let cv = cv_op.result(0);
                body.push(cv_op);
                let mul = arith::mulf(vt, cv, av);
                let mv = mul.result(0);
                body.push(mul);
                acc = Some(match acc {
                    None => mv,
                    Some(prev) => {
                        let add = arith::addf(vt, prev, mv);
                        let v = add.result(0);
                        body.push(add);
                        v
                    }
                });
            }
            let out = acc.expect("at least one term");
            body.push(ops::ret(vec![out]));
            body
        },
    );
    let out = ap.result(0);
    let body = &mut f.region_block_mut(0).ops;
    body.push(ap);
    body.push(ops::store(out, dst, vec![0; dims], vec![n; dims]));
    body.push(func::ret(vec![]));
    m.body_mut().ops.push(f);
    stencil_stack::stencil::ShapeInference.run(&mut m).unwrap();
    m
}

fn reference(st: &RandStencil, n: i64, input: &[f64]) -> Vec<f64> {
    // Direct evaluation, independent of the whole stack.
    let radius = 2i64;
    let ext = n + 2 * radius;
    let dims = st.dims;
    let mut out = input.to_vec();
    let idx = |p: &[i64]| -> usize {
        let mut flat = 0i64;
        for &pv in p {
            flat = flat * ext + (pv + radius);
        }
        flat as usize
    };
    let mut p = vec![0i64; dims];
    loop {
        let mut v = 0.0;
        for (off, c) in &st.terms {
            let q: Vec<i64> = (0..dims).map(|d| p[d] + off[d]).collect();
            v += c * input[idx(&q)];
        }
        out[idx(&p)] = v;
        let mut d = dims;
        let mut done = false;
        loop {
            if d == 0 {
                done = true;
                break;
            }
            d -= 1;
            p[d] += 1;
            if p[d] < n {
                break;
            }
            p[d] = 0;
        }
        if done {
            return out;
        }
    }
}

fn close(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= 1e-9 * (1.0 + x.abs()))
}

#[test]
fn random_1d_stencils_agree_at_all_levels() {
    for seed in 0..24u64 {
        let mut rng = Rng::new(seed);
        let st = rand_stencil(1, &mut rng);
        let n = 16i64;
        let m = build(&st, n);
        let ext = (n + 4) as usize;
        let input: Vec<f64> =
            (0..ext).map(|i| ((i as f64) * 0.37 + seed as f64 * 0.11).sin()).collect();
        let want = reference(&st, n, &input);

        // Level A: stencil-dialect interpretation.
        let run = |m: &Module| {
            let src = BufView::from_data(vec![n + 4], input.clone());
            let dst = BufView::from_data(vec![n + 4], input.clone());
            Interpreter::new(m)
                .call_function("rand", vec![RtValue::Buffer(src), RtValue::Buffer(dst.clone())])
                .unwrap();
            dst.to_vec()
        };
        let a = run(&m);
        assert!(close(&a, &want), "seed {seed}: stencil level vs direct reference");

        // Level B: full optimized shared-CPU pipeline.
        let compiled = compile(m.clone(), &CompileOptions::shared_cpu()).unwrap();
        assert!(close(&run(&compiled.module), &want), "seed {seed}: optimized pipeline");

        // Level C: compiled bytecode executor.
        let pipeline = compile_pipeline(&m, "rand").unwrap();
        let mut args = vec![input.clone(), input.clone()];
        Runner::new(pipeline, 1).step(&mut args).unwrap();
        assert!(close(&args[1], &want), "seed {seed}: bytecode executor");

        // Level D: 2-rank distributed over SimMPI (n divisible by 2).
        let dist = compile(m, &CompileOptions::distributed(vec![2])).unwrap();
        let core = n / 2;
        let f = dist.module.lookup_symbol("rand").unwrap();
        let fty = stencil_stack::dialects::func::FuncOp(f).function_type().clone();
        let stencil_stack::ir::Type::MemRef(mt) = &fty.inputs[0] else {
            panic!("lowered arg is a memref")
        };
        let local = mt.shape[0];
        let input_ref = input.clone();
        let (results, _) = run_spmd(&dist.module, "rand", 2, &move |rank| {
            let start = rank as i64 * core;
            let data: Vec<f64> = (0..local).map(|i| input_ref[(start + i) as usize]).collect();
            vec![
                ArgSpec::Buffer { shape: vec![local], data: data.clone() },
                ArgSpec::Buffer { shape: vec![local], data },
            ]
        })
        .unwrap();
        let mut got = input.clone();
        let r = 2i64;
        for (rank, res) in results.iter().enumerate() {
            let start = rank as i64 * core;
            for l in 0..core {
                got[(start + l + r) as usize] = res.buffers[1][(l + r) as usize];
            }
        }
        assert!(close(&got, &want), "seed {seed}: 2-rank distributed");
    }
}

/// Every specialized executor tier must be **bit-for-bit** identical to
/// the seed `KernelProgram::eval` path — serial and through the worker
/// pool at 2 and 4 threads — on random stencils of every rank the
/// monomorphized row walkers cover (1D/2D/3D).
#[test]
fn specialized_tiers_bit_identical_to_eval() {
    for (dims, n, seeds) in [(1usize, 24i64, 10u64), (2, 12, 10), (3, 6, 6)] {
        for seed in 0..seeds {
            let mut rng = Rng::new(9000 + seed * 37 + dims as u64);
            let st = rand_stencil(dims, &mut rng);
            let m = build(&st, n);
            let ext: usize = ((n + 4) as usize).pow(dims as u32);
            let input: Vec<f64> =
                (0..ext).map(|i| ((i as f64) * 0.19 + seed as f64 * 0.05).sin()).collect();
            let pipeline = compile_pipeline(&m, "rand").unwrap();

            // Reference: the seed eval interpreter, serial.
            let mut evalp = pipeline.clone();
            evalp.respecialize(Some(TierKind::Eval));
            let mut want = vec![input.clone(), input.clone()];
            Runner::new(evalp, 1).step(&mut want).unwrap();

            for tier in [
                TierKind::Eval,
                TierKind::OptBytecode,
                TierKind::WeightedSum,
                TierKind::TemplateJit,
            ] {
                for threads in [1usize, 2, 4] {
                    let mut p = pipeline.clone();
                    p.respecialize(Some(tier));
                    let mut args = vec![input.clone(), input.clone()];
                    Runner::new(p, threads).step(&mut args).unwrap();
                    assert_eq!(
                        args[1], want[1],
                        "dims {dims} seed {seed} tier {tier:?} threads {threads}"
                    );
                }
            }
            // Random mul-add chains are flat scaled-tap folds, well
            // inside the template-JIT grammar (<= 12 terms), so automatic
            // selection must reach the top tier (unless the run pins one
            // through the environment).
            if std::env::var("STEN_EXEC_TIER").is_err() {
                let lines = pipeline.tier_summary();
                assert!(
                    lines.iter().all(|l| l.contains("template-jit")),
                    "dims {dims} seed {seed}: {lines:?}"
                );
            }
        }
    }
}

#[test]
fn random_2d_stencils_agree() {
    for seed in 0..24u64 {
        let mut rng = Rng::new(5000 + seed);
        let st = rand_stencil(2, &mut rng);
        let n = 10i64;
        let m = build(&st, n);
        let ext = ((n + 4) * (n + 4)) as usize;
        let input: Vec<f64> =
            (0..ext).map(|i| ((i as f64) * 0.23 + seed as f64 * 0.07).cos()).collect();
        let want = reference(&st, n, &input);

        let run = |m: &Module| {
            let src = BufView::from_data(vec![n + 4, n + 4], input.clone());
            let dst = BufView::from_data(vec![n + 4, n + 4], input.clone());
            Interpreter::new(m)
                .call_function("rand", vec![RtValue::Buffer(src), RtValue::Buffer(dst.clone())])
                .unwrap();
            dst.to_vec()
        };
        assert!(close(&run(&m), &want), "seed {seed}: stencil level");
        let compiled = compile(m.clone(), &CompileOptions::shared_cpu()).unwrap();
        assert!(close(&run(&compiled.module), &want), "seed {seed}: optimized pipeline");
        let pipeline = compile_pipeline(&m, "rand").unwrap();
        let mut args = vec![input.clone(), input.clone()];
        Runner::new(pipeline, 4).step(&mut args).unwrap();
        assert!(close(&args[1], &want), "seed {seed}: threaded executor");
    }
}
