//! The `sten-opt` driver subsystem, exercised through `stencil-core`:
//!
//! * golden equivalence — every §5 target's registered pipeline string
//!   lowers `stencil::samples::heat_2d` to exactly the text the
//!   pre-refactor hand-built `PassManager` pipeline produced;
//! * the content-addressed compile cache — a warm repeat of the same
//!   compile returns the identical result without executing a single
//!   pass (observed through the driver's pass-run counter);
//! * pipeline strings as data — targets expose canonical, re-parseable
//!   pipeline strings.

use std::sync::Arc;
use stencil_stack::opt::{pipelines, target_passes, PipelineSpec};
use stencil_stack::prelude::*;
use stencil_stack::{dmp, ir, stencil as sten, CompileOptions, Target};

/// The §5 lowering flows exactly as `stencil-core::compile` hard-coded
/// them before the pass registry existed: a hand-built `PassManager` per
/// target. The golden tests compare the registry-resolved pipeline
/// strings against this reference.
fn legacy_compile(mut module: Module, options: &CompileOptions) -> String {
    let registry = Arc::new(standard_registry());
    let mut pm = ir::PassManager::new().with_verifier(Arc::clone(&registry));
    pm.add(sten::ShapeInference);
    if options.fuse {
        pm.add(sten::StencilFusion);
        pm.add(sten::HorizontalFusion);
        pm.add(sten::ShapeInference);
    }
    match &options.target {
        Target::SharedCpu { tile } => {
            pm.add(sten::StencilToLoops);
            pm.add(sten::TileParallelLoops::new(tile.clone()));
        }
        Target::DistributedCpu { topology, strategy, overlap, diagonals, depth } => {
            let strategy =
                dmp::make_strategy(strategy.name(), strategy.factors().map(<[i64]>::to_vec))
                    .unwrap();
            pm.add(
                dmp::DistributeStencil::with_strategy(topology.clone(), strategy)
                    .with_overlap(*overlap)
                    .with_diagonals(*diagonals)
                    .with_depth(*depth),
            );
            pm.add(sten::ShapeInference);
            pm.add(dmp::EliminateRedundantSwaps);
            pm.add(sten::StencilToLoops);
            pm.add(stencil_stack::mpi::DmpToMpi);
            pm.add(stencil_stack::mpi::MpiToFunc);
        }
        Target::Gpu => {
            pm.add(sten::StencilToLoops);
            pm.add(target_passes::GpuMapParallel);
        }
        Target::Fpga { optimized } => {
            pm.add(target_passes::HlsMarkDataflow { optimized: *optimized });
        }
    }
    if options.optimize && !matches!(options.target, Target::Fpga { .. }) {
        pm.add(stencil_stack::dialects::canonicalize::Canonicalize);
        pm.add(stencil_stack::dialects::licm::LoopInvariantCodeMotion::new(Arc::clone(&registry)));
        pm.add(ir::transforms::CommonSubexprElimination::new(Arc::clone(&registry)));
        pm.add(ir::transforms::DeadCodeElimination::new(registry));
    }
    pm.run(&mut module).unwrap();
    print_module(&module)
}

fn all_targets() -> Vec<(&'static str, CompileOptions)> {
    vec![
        ("shared-cpu", CompileOptions::shared_cpu()),
        ("distributed", CompileOptions::distributed(vec![2, 2])),
        ("gpu", CompileOptions::gpu()),
        ("fpga", CompileOptions::fpga(false)),
        ("fpga-optimized", CompileOptions::fpga(true)),
    ]
}

#[test]
fn golden_every_target_pipeline_matches_the_prerefactor_compiler() {
    for (label, options) in all_targets() {
        let module = sten::samples::heat_2d(32, 0.1);
        let want = legacy_compile(module.clone(), &options);
        // Cache off so the registry-resolved pipeline demonstrably runs.
        let got = compile(module, &options.clone().with_cache(false))
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert!(!got.cache_hit);
        assert_eq!(got.text, want, "{label}: pipeline-string lowering differs from pre-refactor");
    }
}

#[test]
fn golden_unfused_unoptimized_variants_also_match() {
    for fuse in [false, true] {
        for optimize in [false, true] {
            let mut options = CompileOptions::shared_cpu();
            options.fuse = fuse;
            options.optimize = optimize;
            let module = sten::samples::heat_2d(24, 0.1);
            let want = legacy_compile(module.clone(), &options);
            let got = compile(module, &options.with_cache(false)).unwrap();
            assert_eq!(got.text, want, "fuse={fuse} optimize={optimize}");
        }
    }
}

#[test]
fn target_pipeline_strings_are_canonical_data() {
    for (label, options) in all_targets() {
        let text = options.pipeline_string();
        let spec = PipelineSpec::parse(&text).unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_eq!(spec.to_string(), text, "{label}: string is canonical");
        assert!(!spec.is_empty(), "{label}");
    }
    // The option values thread through.
    let opts = CompileOptions {
        target: Target::SharedCpu { tile: vec![64, 8] },
        ..CompileOptions::shared_cpu()
    };
    assert!(opts.pipeline_string().contains("tile-parallel-loops{tile=64:8}"));
    assert_eq!(
        CompileOptions::distributed(vec![3, 2]).pipeline_string(),
        pipelines::distributed(&[3, 2], true, true),
    );
}

#[test]
fn warm_cache_hit_skips_pass_execution_entirely() {
    // A module size no other test uses, so this test owns its cache entry.
    let make = || sten::samples::heat_2d(29, 0.1);
    let options = CompileOptions::shared_cpu();

    let cold = compile(make(), &options).unwrap();
    let runs_after_cold = stencil_stack::opt::stats::passes_run();
    assert_eq!(cold.timings.len(), cold.pipeline.len(), "every pass timed");

    let warm = compile(make(), &options).unwrap();
    assert!(warm.cache_hit, "repeat compile must hit the cache");
    assert_eq!(
        stencil_stack::opt::stats::passes_run(),
        runs_after_cold,
        "a warm cache hit must not execute any pass"
    );
    assert_eq!(warm.text, cold.text);
    assert_eq!(print_module(&warm.module), print_module(&cold.module));
    assert_eq!(warm.pipeline, cold.pipeline);

    // Changing the module, the pipeline, or the options misses.
    let other_module = compile(sten::samples::heat_2d(31, 0.1), &options).unwrap();
    assert!(!other_module.cache_hit, "different module must miss");
    let mut untiled = options.clone();
    untiled.target = Target::SharedCpu { tile: vec![16] };
    let other_pipeline = compile(make(), &untiled).unwrap();
    assert!(!other_pipeline.cache_hit, "different pipeline must miss");
    let uncached = compile(make(), &options.with_cache(false)).unwrap();
    assert!(!uncached.cache_hit, "cache off never reports a hit");
}

#[test]
fn compile_reports_pipeline_and_timings() {
    let out = compile(
        sten::samples::jacobi_1d(96),
        &CompileOptions::distributed(vec![2]).with_cache(false),
    )
    .unwrap();
    assert_eq!(out.pipeline.first().copied(), Some("stencil-shape-inference"));
    assert!(out.pipeline.contains(&"distribute-stencil"));
    assert!(out.pipeline.contains(&"dmp-to-mpi"));
    assert_eq!(out.timings.len(), out.pipeline.len());
    for (t, name) in out.timings.iter().zip(&out.pipeline) {
        assert_eq!(&t.name, name, "timings follow pipeline order");
    }
    let report = stencil_stack::opt::format_timing_report(&out.timings);
    assert!(report.contains("dmp-to-mpi"), "{report}");
}

#[test]
fn driver_is_usable_directly_from_the_prelude() {
    let out = Driver::new()
        .with_verify_each(true)
        .with_cache(None)
        .run_str(sten::samples::jacobi_1d(48), "shape-inference,convert-stencil-to-loops,cse,dce")
        .unwrap();
    assert!(out.text.contains("scf.parallel"));
    assert!(!out.text.contains("stencil."), "fully lowered");
}
