//! Tracing must never perturb results.
//!
//! Every configuration runs twice — once with a disabled tracer, once
//! with a recording one threaded through `SimWorld` and every rank's
//! `Runner` (worker threads included) — and the final buffers must be
//! bit-identical. The recording run must also actually record: a trace
//! that silently drops events would pass the identity check while
//! breaking the observability contract, so the span inventory is
//! asserted alongside.

mod common;

use common::Rng;
use std::sync::Arc;
use std::time::Duration;
use stencil_stack::dialects::{arith, func};
use stencil_stack::dmp::{make_strategy, DistributeStencil};
use stencil_stack::ir::{FieldType, TempType, Type};
use stencil_stack::prelude::*;
use stencil_stack::stencil::ops;
use stencil_stack::stencil::ShapeInference;

#[derive(Clone, Debug)]
struct RandStencil {
    /// (offset per dim, coefficient) terms.
    terms: Vec<(Vec<i64>, f64)>,
    dims: usize,
    radius: i64,
}

/// Random symmetric axis-aligned stencil (face exchanges suffice).
fn rand_stencil(dims: usize, radius: i64, rng: &mut Rng) -> RandStencil {
    let num_terms = rng.range_usize(1, 4);
    let mut terms: Vec<(Vec<i64>, f64)> = (0..num_terms)
        .map(|_| {
            let axis = rng.range_usize(0, dims);
            let offset: Vec<i64> = (0..dims)
                .map(|d| if d == axis { rng.range_i64(-radius, radius + 1) } else { 0 })
                .collect();
            (offset, rng.range_f64(-2.0, 2.0))
        })
        .collect();
    // At least one off-center tap, so every case actually exchanges
    // halos (otherwise no comm events exist to assert on).
    if terms.iter().all(|(o, _)| o.iter().all(|&x| x == 0)) {
        terms[0].0[0] = radius;
    }
    let mirrored: Vec<(Vec<i64>, f64)> =
        terms.iter().map(|(o, c)| (o.iter().map(|x| -x).collect(), 0.5 * c)).collect();
    terms.extend(mirrored);
    RandStencil { terms, dims, radius }
}

/// Builds `dst[core] = Σ c_i · src[x + o_i]` over an `n^dims` core with a
/// `radius`-cell halo.
fn build(st: &RandStencil, n: i64) -> Module {
    let dims = st.dims;
    let mut m = Module::new();
    let bounds = Bounds::from_shape(&vec![n; dims]).grown(st.radius);
    let fld = Type::Field(FieldType::new(bounds, Type::F64));
    let (mut f, args) = func::definition(&mut m.values, "rand", vec![fld.clone(), fld], vec![]);
    let (src, dst) = (args[0], args[1]);
    let ld = ops::load(&mut m.values, src);
    let t = ld.result(0);
    f.region_block_mut(0).ops.push(ld);
    let terms = st.terms.clone();
    let ap = ops::apply(
        &mut m.values,
        vec![t],
        vec![Type::Temp(TempType::unknown(dims, Type::F64))],
        move |vt, a| {
            let mut body = Vec::new();
            let mut acc: Option<stencil_stack::ir::Value> = None;
            for (off, c) in &terms {
                let access = ops::access(vt, a[0], off.clone());
                let av = access.result(0);
                body.push(access);
                let cv_op = arith::const_f64(vt, *c);
                let cv = cv_op.result(0);
                body.push(cv_op);
                let mul = arith::mulf(vt, cv, av);
                let mv = mul.result(0);
                body.push(mul);
                acc = Some(match acc {
                    None => mv,
                    Some(prev) => {
                        let add = arith::addf(vt, prev, mv);
                        let v = add.result(0);
                        body.push(add);
                        v
                    }
                });
            }
            body.push(ops::ret(vec![acc.expect("at least one term")]));
            body
        },
    );
    let out = ap.result(0);
    let body = &mut f.region_block_mut(0).ops;
    body.push(ap);
    body.push(ops::store(out, dst, vec![0; dims], vec![n; dims]));
    body.push(func::ret(vec![]));
    m.body_mut().ops.push(f);
    ShapeInference.run(&mut m).unwrap();
    m
}

/// The balanced chunk of every decomposed dimension for `coords` in
/// `layout`, as `(offset, size)` per dimension (trailing dims whole).
fn rank_chunks(n: i64, dims: usize, layout: &[i64], coords: &[i64]) -> Vec<(i64, i64)> {
    (0..dims)
        .map(|d| {
            let parts = layout.get(d).copied().unwrap_or(1);
            let coord = coords.get(d).copied().unwrap_or(0);
            stencil_stack::dmp::balanced_chunk(n, parts, coord)
        })
        .collect()
}

/// Scatters the rank's local buffer (core chunk plus `radius` halo) out
/// of the global buffer of extent `n + 2*radius` per dimension.
fn scatter(global: &[f64], n: i64, radius: i64, chunks: &[(i64, i64)]) -> Vec<f64> {
    let dims = chunks.len();
    let gext = n + 2 * radius;
    let shape: Vec<i64> = chunks.iter().map(|&(_, s)| s + 2 * radius).collect();
    let mut data = Vec::with_capacity(shape.iter().product::<i64>() as usize);
    let mut p = vec![0i64; dims];
    loop {
        let mut flat = 0i64;
        for d in 0..dims {
            flat = flat * gext + chunks[d].0 + p[d];
        }
        data.push(global[flat as usize]);
        let mut d = dims;
        let mut done = false;
        loop {
            if d == 0 {
                done = true;
                break;
            }
            d -= 1;
            p[d] += 1;
            if p[d] < shape[d] {
                break;
            }
            p[d] = 0;
        }
        if done {
            return data;
        }
    }
}

/// Distributes `make()` once per rank under `strategy`, returning the
/// modules and each one's layout.
#[allow(clippy::type_complexity)]
fn per_rank_modules(
    make: &dyn Fn() -> Module,
    grid: &[i64],
    strategy: &str,
    factors: Option<Vec<i64>>,
    overlap: bool,
) -> (Vec<Module>, Vec<Vec<i64>>) {
    let ranks: i64 = grid.iter().product();
    let mut modules = Vec::new();
    let mut layouts = Vec::new();
    for rank in 0..ranks {
        let mut m = make();
        DistributeStencil::with_strategy(
            grid.to_vec(),
            make_strategy(strategy, factors.clone()).unwrap(),
        )
        .for_rank(rank)
        .with_overlap(overlap)
        .run(&mut m)
        .unwrap();
        ShapeInference.run(&mut m).unwrap();
        let f = m.lookup_symbol("rand").unwrap();
        let layout = f
            .attr("dmp.grid")
            .and_then(stencil_stack::ir::Attribute::as_grid)
            .expect("distributed module records its layout")
            .to_vec();
        layouts.push(layout);
        modules.push(m);
    }
    (modules, layouts)
}

/// Compiles one module per rank and runs `timesteps` ping-pong steps of
/// the SPMD pipeline over SimMPI. With `Some(tracer)`, the world and
/// every runner (2 worker threads) record into it; with `None` the run
/// is completely untraced.
#[allow(clippy::too_many_arguments)] // test driver threads its full configuration
fn run_distributed(
    modules: &[Module],
    layouts: &[Vec<i64>],
    n: i64,
    radius: i64,
    global: &[f64],
    tier: TierKind,
    timesteps: usize,
    tracer: Option<&Tracer>,
) -> Vec<Vec<f64>> {
    let ranks = modules.len();
    let world = match tracer {
        Some(t) => SimWorld::new_traced(ranks, Duration::from_micros(20), t.clone()),
        None => SimWorld::new(ranks),
    };
    let mut outs: Vec<Vec<f64>> = vec![Vec::new(); ranks];
    std::thread::scope(|scope| {
        for (rank, out) in outs.iter_mut().enumerate() {
            let world = Arc::clone(&world);
            let module = &modules[rank];
            let layout = &layouts[rank];
            scope.spawn(move || {
                let mut pipeline = compile_pipeline(module, "rand").unwrap();
                pipeline.respecialize(Some(tier));
                let dims = pipeline.arg_shapes[0].len();
                let coords = stencil_stack::dmp::decomposition::rank_to_coords(rank as i64, layout);
                let chunks = rank_chunks(n, dims, layout, &coords);
                let data = scatter(global, n, radius, &chunks);
                let mut args = vec![data.clone(), data];
                let mut runner = Runner::new(pipeline, 2);
                if let Some(t) = tracer {
                    runner = runner.with_trace(t, rank as u32);
                }
                for _ in 0..timesteps {
                    runner.step_distributed(&mut args, &world, rank as i64).unwrap();
                    args.swap(0, 1);
                }
                *out = args[0].clone();
            });
        }
    });
    outs
}

#[test]
fn traced_runs_are_bit_identical_to_untraced() {
    // Uneven domains: no strategy divides these extents evenly.
    #[allow(clippy::type_complexity)] // (dims, n, grid, custom-grid factors) rows
    let cases: [(usize, i64, Vec<i64>, Option<Vec<i64>>); 3] = [
        (1, 13, vec![2], Some(vec![2])),
        (2, 10, vec![2, 2], Some(vec![1, 4])),
        (3, 7, vec![2, 2], Some(vec![2, 2, 1])),
    ];
    for (dims, n, grid, factors) in cases {
        let mut rng = Rng::new(9100 + dims as u64);
        let radius = 1 + (dims as i64 % 2);
        let st = rand_stencil(dims, radius, &mut rng);
        let gsize = ((n + 2 * radius) as usize).pow(dims as u32);
        let global: Vec<f64> = (0..gsize).map(|i| ((i as f64) * 0.19 + 0.07).sin()).collect();
        for (strategy, factors) in [
            ("standard-slicing", None),
            ("recursive-bisection", None),
            ("custom-grid", factors.clone()),
        ] {
            let make = || build(&st, n);
            for overlap in [false, true] {
                let (modules, layouts) =
                    per_rank_modules(&make, &grid, strategy, factors.clone(), overlap);
                for tier in [TierKind::Eval, TierKind::OptBytecode, TierKind::WeightedSum] {
                    let plain =
                        run_distributed(&modules, &layouts, n, radius, &global, tier, 3, None);
                    let tracer = Tracer::new();
                    let traced = run_distributed(
                        &modules,
                        &layouts,
                        n,
                        radius,
                        &global,
                        tier,
                        3,
                        Some(&tracer),
                    );
                    assert_eq!(
                        plain, traced,
                        "dims {dims} {strategy} overlap {overlap} tier {tier:?}: \
                         tracing must not perturb results"
                    );

                    // The recording run really recorded: executor spans
                    // from every rank, comm events from the sim world,
                    // and task spans from the worker lanes.
                    let events = tracer.events();
                    let ranks = modules.len() as u32;
                    for rank in 0..ranks {
                        assert!(
                            events
                                .iter()
                                .any(|e| e.pid == rank && matches!(e.kind, SpanKind::Apply { .. })),
                            "rank {rank} recorded apply spans"
                        );
                        assert!(
                            events
                                .iter()
                                .any(|e| e.pid == rank
                                    && matches!(e.kind, SpanKind::Timestep { .. })),
                            "rank {rank} recorded timestep spans"
                        );
                    }
                    assert!(
                        events.iter().any(|e| matches!(e.kind, SpanKind::MsgSend { .. })),
                        "sim world recorded send instants"
                    );
                    assert!(
                        events.iter().any(|e| matches!(e.kind, SpanKind::MsgRecv { .. })),
                        "sim world recorded recv spans"
                    );
                    assert!(
                        events.iter().any(|e| e.tid > 0 && matches!(e.kind, SpanKind::Task)),
                        "worker lanes recorded task spans"
                    );
                }
            }
        }
    }
}
