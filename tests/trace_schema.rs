//! Chrome-trace export schema: a traced 2-rank overlapped heat-2d run
//! emits valid trace-event JSON (every event carries `ph`/`ts`/`pid`/
//! `tid`, spans nest properly, ranks map to distinct `pid` tracks), and
//! the aggregated report shows communication hidden behind interior
//! compute on the overlap path — and none on the synchronous path.

use std::sync::Arc;
use std::time::Duration;
use stencil_stack::dmp::DistributeStencil;
use stencil_stack::prelude::*;
use stencil_stack::stencil::{samples, ShapeInference};
use stencil_stack::trace::chrome;

const RANKS: usize = 2;
const TIMESTEPS: usize = 3;

/// Runs heat-2d on a 2x1 grid over SimMPI with a recording tracer and
/// 2 worker threads per rank; returns the merged event log.
fn run_traced(overlap: bool) -> Vec<stencil_stack::trace::Event> {
    let n = 32i64;
    let mut modules = Vec::new();
    for rank in 0..RANKS {
        let mut m = samples::heat_2d(n, 0.1);
        ShapeInference.run(&mut m).unwrap();
        DistributeStencil::new(vec![2, 1])
            .for_rank(rank as i64)
            .with_overlap(overlap)
            .run(&mut m)
            .unwrap();
        ShapeInference.run(&mut m).unwrap();
        modules.push(m);
    }
    let tracer = Tracer::new();
    let world = SimWorld::new_traced(RANKS, Duration::from_micros(200), tracer.clone());
    std::thread::scope(|scope| {
        for (rank, module) in modules.iter().enumerate() {
            let world = Arc::clone(&world);
            let tracer = &tracer;
            scope.spawn(move || {
                let pipeline = compile_pipeline(module, "heat").unwrap();
                let len: i64 = pipeline.arg_shapes[0].iter().product();
                let data: Vec<f64> =
                    (0..len).map(|i| ((i + rank as i64) as f64 * 0.03).sin()).collect();
                let mut args = vec![data.clone(), data];
                let mut runner = Runner::new(pipeline, 2).with_trace(tracer, rank as u32);
                for _ in 0..TIMESTEPS {
                    runner.step_distributed(&mut args, &world, rank as i64).unwrap();
                    args.swap(0, 1);
                }
            });
        }
    });
    tracer.events()
}

#[test]
fn overlapped_run_exports_a_valid_chrome_trace() {
    let events = run_traced(true);
    let json = chrome::to_json(&events, &[]);
    let stats = chrome::validate(&json).expect("exported trace validates");

    assert!(stats.spans > 0, "trace contains duration events");
    assert!(stats.instants > 0, "trace contains send instants");
    for rank in 0..RANKS as u32 {
        assert!(stats.pids.contains(&rank), "rank {rank} has its own pid track");
    }
    assert!(
        stats.tracks.iter().any(|&(_, tid)| tid > 0),
        "worker lanes appear as sub-tracks: {:?}",
        stats.tracks
    );
    // Spot-check the labels that anchor the timeline in Perfetto.
    for needle in ["swap#0 begin", "swap#0 wait", "apply interior", "timestep 0", "send→"] {
        assert!(json.contains(needle), "trace JSON mentions {needle:?}");
    }
}

#[test]
fn report_shows_hidden_comm_on_overlap_and_none_on_sync() {
    let overlapped = TraceReport::from_events(&run_traced(true));
    assert_eq!(overlapped.ranks, RANKS);
    assert_eq!(overlapped.timesteps, TIMESTEPS as u64);
    assert!(overlapped.msgs_sent > 0, "halo exchange sent messages");
    assert!(
        overlapped.comm_hidden_ns > 0,
        "interior compute overlaps the swap window: {overlapped}"
    );
    assert!(overlapped.overlap_efficiency() > 0.0);

    let sync = TraceReport::from_events(&run_traced(false));
    assert_eq!(sync.comm_hidden_ns, 0, "synchronous pipeline waits before any apply: {sync}");
    assert!(sync.msgs_sent > 0);
}
