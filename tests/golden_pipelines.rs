//! Golden pins for the §5 target pipelines.
//!
//! The files under `tests/golden/` hold the exact textual IR each target
//! pipeline produced *before* the pass manager grew operation anchors and
//! parallel per-function scheduling. Every refactor of the scheduler, the
//! nested pipeline syntax, or the function-scoped pass entry points must
//! keep these bytes identical: nested pipelines are a scheduling notion,
//! not a semantic one.
//!
//! Regenerate (only when an intentional semantic change is reviewed) with:
//! `STEN_GOLDEN_BLESS=1 cargo test --test golden_pipelines`

use stencil_stack::prelude::*;
use stencil_stack::{stencil as sten, CompileOptions};

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn cases() -> Vec<(&'static str, CompileOptions)> {
    vec![
        ("shared-cpu", CompileOptions::shared_cpu()),
        ("distributed-2x2", CompileOptions::distributed(vec![2, 2])),
        ("gpu", CompileOptions::gpu()),
        ("fpga", CompileOptions::fpga(false)),
        ("fpga-optimized", CompileOptions::fpga(true)),
    ]
}

#[test]
fn golden_targets_produce_byte_identical_ir() {
    let bless = std::env::var_os("STEN_GOLDEN_BLESS").is_some();
    if bless {
        std::fs::create_dir_all(golden_dir()).unwrap();
    }
    for (label, options) in cases() {
        let module = sten::samples::heat_2d(32, 0.1);
        let got = compile(module, &options.with_cache(false))
            .unwrap_or_else(|e| panic!("{label}: {e}"))
            .text;
        let path = golden_dir().join(format!("{label}.ir"));
        if bless {
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{label}: missing golden file {}: {e}", path.display()));
        assert_eq!(
            got,
            want,
            "{label}: lowered IR differs from the pre-refactor golden file {}",
            path.display()
        );
    }
}
