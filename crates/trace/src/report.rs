//! Aggregated text report over a recorded trace: per-run comm-exposed vs
//! comm-hidden time, overlap efficiency, per-direction halo bytes, and
//! the pack/unpack vs compute ratio.
//!
//! *Comm-hidden* time is the part of each swap's in-flight window —
//! from the end of its `SwapBegin` (sends posted) to the end of the
//! matching `SwapWait` (halos landed) — that the rank spent inside
//! `Apply` spans, i.e. transit time covered by useful compute.
//! *Comm-exposed* time is what blocking receives actually stalled for
//! (the duration of `blocked` [`SpanKind::MsgRecv`] spans). On a
//! synchronous pipeline every apply runs after the wait completes, so
//! hidden time is structurally zero; the overlapped pipeline's interior
//! apply sits inside the window and shows up as hidden time.

use std::collections::HashMap;
use std::fmt;

use crate::{Event, SpanKind};

/// Aggregates computed from a trace (see [`TraceReport::from_events`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceReport {
    /// Distinct rank pids that recorded executor or message events.
    pub ranks: usize,
    /// Max timesteps recorded by any rank.
    pub timesteps: u64,
    /// Total time inside `Apply` spans, all ranks.
    pub compute_ns: u64,
    /// Total time inside `Pack`/`Unpack` spans, all ranks.
    pub pack_unpack_ns: u64,
    /// Total time blocking receives stalled for delivery.
    pub comm_exposed_ns: u64,
    /// Total apply time spent inside swap in-flight windows.
    pub comm_hidden_ns: u64,
    /// Messages deposited into mailboxes.
    pub msgs_sent: u64,
    /// Total message payload bytes.
    pub bytes_sent: u64,
    /// Receives that found their message already delivered.
    pub recv_immediate: u64,
    /// Receives that had to block for delivery.
    pub recv_blocked: u64,
    /// Total time folding local reduction partials (`Reduce{partial}`).
    pub reduce_partial_ns: u64,
    /// Total time in allreduce rendezvous (`Reduce{allreduce}`): exchange
    /// plus the wait for the slowest rank's contribution.
    pub reduce_wait_ns: u64,
    /// Allreduce rendezvous completed (counted across all ranks).
    pub allreduces: u64,
    /// Packed halo payload per exchange direction, sorted by direction.
    pub halo_bytes_by_direction: Vec<(Vec<i64>, u64)>,
    /// Faults injected by the fault plan, by kind (sorted by name).
    pub faults_by_kind: Vec<(&'static str, u64)>,
    /// Timed-out exchanges that were re-requested.
    pub retries: u64,
    /// Checkpoint snapshots taken (across all ranks).
    pub checkpoints: u64,
    /// Total time inside checkpoint spans.
    pub checkpoint_ns: u64,
    /// Cohort rollbacks to a checkpoint.
    pub recoveries: u64,
    /// Total time inside recovery spans (respawn + restore).
    pub recovery_ns: u64,
}

/// Sums the intersection of `spans` with the merged `windows` (both as
/// `(start, end)` interval lists; `windows` must be sorted and disjoint).
fn overlap_ns(windows: &[(u64, u64)], spans: &[(u64, u64)]) -> u64 {
    let mut total = 0;
    for &(s0, s1) in spans {
        for &(w0, w1) in windows {
            let lo = s0.max(w0);
            let hi = s1.min(w1);
            if hi > lo {
                total += hi - lo;
            }
        }
    }
    total
}

/// Merges an interval list into sorted, disjoint intervals.
fn merge(mut intervals: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    intervals.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(intervals.len());
    for (start, end) in intervals {
        match out.last_mut() {
            Some((_, prev_end)) if start <= *prev_end => *prev_end = (*prev_end).max(end),
            _ => out.push((start, end)),
        }
    }
    out
}

impl TraceReport {
    /// Computes every aggregate from a merged event list (as returned by
    /// [`crate::Tracer::events`]). Compiler-pass spans are ignored.
    pub fn from_events(events: &[Event]) -> TraceReport {
        let mut report = TraceReport::default();
        let mut rank_pids: Vec<u32> = Vec::new();
        let mut timesteps_by_pid: HashMap<u32, u64> = HashMap::new();
        // Per pid: swap id → (begin spans, wait spans), in start order
        // (events come pre-sorted by start time).
        type SwapPairs = HashMap<usize, (Vec<(u64, u64)>, Vec<(u64, u64)>)>;
        let mut swaps_by_pid: HashMap<u32, SwapPairs> = HashMap::new();
        let mut applies_by_pid: HashMap<u32, Vec<(u64, u64)>> = HashMap::new();
        let mut halo: HashMap<Vec<i64>, u64> = HashMap::new();

        for e in events {
            match &e.kind {
                SpanKind::Pass { .. } => continue,
                _ => {
                    if !rank_pids.contains(&e.pid) {
                        rank_pids.push(e.pid);
                    }
                }
            }
            match &e.kind {
                SpanKind::Timestep { .. } => {
                    *timesteps_by_pid.entry(e.pid).or_insert(0) += 1;
                }
                SpanKind::Apply { .. } => {
                    report.compute_ns += e.dur_ns;
                    applies_by_pid.entry(e.pid).or_default().push((e.start_ns, e.end_ns()));
                }
                SpanKind::SwapBegin { swap, .. } => {
                    swaps_by_pid
                        .entry(e.pid)
                        .or_default()
                        .entry(*swap)
                        .or_default()
                        .0
                        .push((e.start_ns, e.end_ns()));
                }
                SpanKind::SwapWait { swap } => {
                    swaps_by_pid
                        .entry(e.pid)
                        .or_default()
                        .entry(*swap)
                        .or_default()
                        .1
                        .push((e.start_ns, e.end_ns()));
                }
                SpanKind::Pack { dir, bytes } => {
                    report.pack_unpack_ns += e.dur_ns;
                    *halo.entry(dir.clone()).or_insert(0) += bytes;
                }
                SpanKind::Unpack { .. } => report.pack_unpack_ns += e.dur_ns,
                SpanKind::MsgSend { bytes, .. } => {
                    report.msgs_sent += 1;
                    report.bytes_sent += bytes;
                }
                SpanKind::MsgRecv { blocked, .. } => {
                    if *blocked {
                        report.recv_blocked += 1;
                        report.comm_exposed_ns += e.dur_ns;
                    } else {
                        report.recv_immediate += 1;
                    }
                }
                SpanKind::Reduce { phase, .. } => {
                    if *phase == "allreduce" {
                        report.reduce_wait_ns += e.dur_ns;
                        report.allreduces += 1;
                    } else {
                        report.reduce_partial_ns += e.dur_ns;
                    }
                }
                SpanKind::Fault { fault, .. } => {
                    match report.faults_by_kind.iter_mut().find(|(k, _)| k == fault) {
                        Some((_, n)) => *n += 1,
                        None => report.faults_by_kind.push((fault, 1)),
                    }
                }
                SpanKind::Retry { .. } => report.retries += 1,
                SpanKind::Checkpoint { .. } => {
                    report.checkpoints += 1;
                    report.checkpoint_ns += e.dur_ns;
                }
                SpanKind::Recovery { .. } => {
                    report.recoveries += 1;
                    report.recovery_ns += e.dur_ns;
                }
                SpanKind::Pass { .. } | SpanKind::Copy { .. } | SpanKind::Task => {}
            }
        }

        report.ranks = rank_pids.len();
        report.timesteps = timesteps_by_pid.values().copied().max().unwrap_or(0);

        // Comm-hidden: per pid, the k-th begin of a swap id pairs with
        // the k-th wait; the in-flight window runs from the begin's end
        // (sends posted) to the wait's end (halos landed). Windows merge
        // before intersecting so a shared interior apply is not counted
        // once per swap.
        for (pid, swaps) in &swaps_by_pid {
            let mut windows = Vec::new();
            for (begins, waits) in swaps.values() {
                for (b, w) in begins.iter().zip(waits) {
                    if w.1 > b.1 {
                        windows.push((b.1, w.1));
                    }
                }
            }
            let windows = merge(windows);
            if let Some(applies) = applies_by_pid.get(pid) {
                report.comm_hidden_ns += overlap_ns(&windows, applies);
            }
        }

        report.halo_bytes_by_direction = halo.into_iter().collect();
        report.halo_bytes_by_direction.sort();
        report.faults_by_kind.sort();
        report
    }

    /// Fraction of communication time covered by compute:
    /// `hidden / (hidden + exposed)`; 0 when no communication occurred.
    pub fn overlap_efficiency(&self) -> f64 {
        let total = self.comm_hidden_ns + self.comm_exposed_ns;
        if total == 0 {
            0.0
        } else {
            self.comm_hidden_ns as f64 / total as f64
        }
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

impl fmt::Display for TraceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace report: {} ranks, {} timesteps", self.ranks, self.timesteps)?;
        writeln!(f, "  compute            {:>10.3} ms", ms(self.compute_ns))?;
        let pack_pct = if self.compute_ns == 0 {
            0.0
        } else {
            100.0 * self.pack_unpack_ns as f64 / self.compute_ns as f64
        };
        writeln!(
            f,
            "  pack/unpack        {:>10.3} ms  ({pack_pct:.1}% of compute)",
            ms(self.pack_unpack_ns)
        )?;
        writeln!(f, "  comm hidden        {:>10.3} ms", ms(self.comm_hidden_ns))?;
        writeln!(f, "  comm exposed       {:>10.3} ms", ms(self.comm_exposed_ns))?;
        writeln!(f, "  overlap efficiency {:>9.1}%", 100.0 * self.overlap_efficiency())?;
        writeln!(f, "  messages sent      {:>10}  ({} bytes)", self.msgs_sent, self.bytes_sent)?;
        writeln!(
            f,
            "  recvs              immediate {}, blocked {}",
            self.recv_immediate, self.recv_blocked
        )?;
        if self.allreduces > 0 || self.reduce_partial_ns > 0 {
            writeln!(
                f,
                "  reductions         partial {:.3} ms, allreduce wait {:.3} ms ({} allreduces)",
                ms(self.reduce_partial_ns),
                ms(self.reduce_wait_ns),
                self.allreduces
            )?;
        }
        if !self.halo_bytes_by_direction.is_empty() {
            writeln!(f, "  halo bytes by direction:")?;
            for (dir, bytes) in &self.halo_bytes_by_direction {
                writeln!(f, "    {dir:?}  {bytes}")?;
            }
        }
        if !self.faults_by_kind.is_empty() {
            let total: u64 = self.faults_by_kind.iter().map(|(_, n)| n).sum();
            let kinds: Vec<String> =
                self.faults_by_kind.iter().map(|(k, n)| format!("{k} {n}")).collect();
            writeln!(f, "  faults injected    {:>10}  ({})", total, kinds.join(", "))?;
        }
        if self.retries > 0 {
            writeln!(f, "  retries            {:>10}", self.retries)?;
        }
        if self.checkpoints > 0 {
            writeln!(
                f,
                "  checkpoints        {:>10}  ({:.3} ms)",
                self.checkpoints,
                ms(self.checkpoint_ns)
            )?;
        }
        if self.recoveries > 0 {
            writeln!(
                f,
                "  recoveries         {:>10}  ({:.3} ms)",
                self.recoveries,
                ms(self.recovery_ns)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(pid: u32, start: u64, end: u64, kind: SpanKind) -> Event {
        Event { pid, tid: 0, start_ns: start, dur_ns: end - start, kind }
    }

    fn apply(pid: u32, start: u64, end: u64, region: &str) -> Event {
        span(
            pid,
            start,
            end,
            SpanKind::Apply { tier: "eval", region: region.to_string(), points: 1 },
        )
    }

    #[test]
    fn overlapped_pipeline_shows_hidden_time() {
        // begin [0,100], interior apply [100,600], wait [600,700],
        // boundary apply [700,800]: window = [100,700], hidden = 500.
        let events = vec![
            span(0, 0, 100, SpanKind::SwapBegin { swap: 0, bytes: 80 }),
            apply(0, 100, 600, "interior"),
            span(0, 600, 700, SpanKind::SwapWait { swap: 0 }),
            span(
                0,
                610,
                690,
                SpanKind::MsgRecv { src: 1, dst: 0, tag: 3, bytes: 80, blocked: true },
            ),
            apply(0, 700, 800, "boundary[1]"),
            span(0, 0, 800, SpanKind::Timestep { index: 0 }),
        ];
        let r = TraceReport::from_events(&events);
        assert_eq!(r.ranks, 1);
        assert_eq!(r.timesteps, 1);
        assert_eq!(r.compute_ns, 600);
        assert_eq!(r.comm_hidden_ns, 500);
        assert_eq!(r.comm_exposed_ns, 80);
        assert_eq!(r.recv_blocked, 1);
        let eff = r.overlap_efficiency();
        assert!((eff - 500.0 / 580.0).abs() < 1e-9, "efficiency {eff}");
        assert!(format!("{r}").contains("overlap efficiency"));
    }

    #[test]
    fn sync_pipeline_has_zero_hidden_time() {
        // begin [0,100], wait [100,300], apply [300,800]: the apply
        // starts after the window closes, so nothing is hidden.
        let events = vec![
            span(0, 0, 100, SpanKind::SwapBegin { swap: 0, bytes: 80 }),
            span(0, 100, 300, SpanKind::SwapWait { swap: 0 }),
            apply(0, 300, 800, ""),
        ];
        let r = TraceReport::from_events(&events);
        assert_eq!(r.comm_hidden_ns, 0);
        assert_eq!(r.overlap_efficiency(), 0.0);
    }

    #[test]
    fn overlapping_swap_windows_do_not_double_count() {
        // Two swaps in flight across the same interior apply [200,700]:
        // windows [100,600] and [150,650] merge to [100,650] → 450.
        let events = vec![
            span(0, 0, 100, SpanKind::SwapBegin { swap: 0, bytes: 8 }),
            span(0, 100, 150, SpanKind::SwapBegin { swap: 1, bytes: 8 }),
            apply(0, 200, 700, "interior"),
            span(0, 590, 600, SpanKind::SwapWait { swap: 0 }),
            span(0, 640, 650, SpanKind::SwapWait { swap: 1 }),
        ];
        let r = TraceReport::from_events(&events);
        assert_eq!(r.comm_hidden_ns, 450);
    }

    #[test]
    fn reduce_spans_aggregate_by_phase() {
        let events = vec![
            span(0, 0, 100, SpanKind::Reduce { phase: "partial", bytes: 1024, parts: 2 }),
            span(0, 100, 250, SpanKind::Reduce { phase: "allreduce", bytes: 552, parts: 4 }),
            span(1, 0, 80, SpanKind::Reduce { phase: "partial", bytes: 1024, parts: 2 }),
        ];
        let r = TraceReport::from_events(&events);
        assert_eq!(r.reduce_partial_ns, 180);
        assert_eq!(r.reduce_wait_ns, 150);
        assert_eq!(r.allreduces, 1);
        assert!(format!("{r}").contains("allreduce wait"));
    }

    #[test]
    fn halo_bytes_group_by_direction_and_sends_total() {
        let events = vec![
            span(0, 0, 10, SpanKind::Pack { dir: vec![1, 0], bytes: 64 }),
            span(0, 20, 30, SpanKind::Pack { dir: vec![-1, 0], bytes: 64 }),
            span(1, 5, 15, SpanKind::Pack { dir: vec![1, 0], bytes: 64 }),
            span(0, 40, 50, SpanKind::Unpack { dir: vec![1, 0], bytes: 64 }),
            Event {
                pid: 0,
                tid: 0,
                start_ns: 11,
                dur_ns: 0,
                kind: SpanKind::MsgSend { src: 0, dst: 1, tag: 2, bytes: 64, latency_us: 0 },
            },
        ];
        let r = TraceReport::from_events(&events);
        assert_eq!(r.halo_bytes_by_direction, vec![(vec![-1, 0], 64), (vec![1, 0], 128)]);
        assert_eq!(r.msgs_sent, 1);
        assert_eq!(r.bytes_sent, 64);
        assert_eq!(r.pack_unpack_ns, 40);
        assert_eq!(r.ranks, 2);
    }
}
