//! # sten-trace — structured tracing for the whole stack
//!
//! Per-rank span timelines (passes, executor steps, worker tasks) and
//! message-level communication events, with two export backends:
//! Chrome trace-event JSON ([`chrome`]) loadable in Perfetto /
//! `chrome://tracing`, and an aggregated text report ([`report`]) that
//! computes the overlap metrics the benchmarks assert on — comm-exposed
//! vs comm-hidden time, overlap efficiency, per-direction halo bytes,
//! pack/unpack vs compute ratio.
//!
//! **Zero cost when off.** A [`Tracer`] is a cheap clonable handle,
//! `None` when disabled; every recording entry point checks that option
//! first and returns before touching a clock, taking a lock, or invoking
//! the [`SpanKind`]-building closure — so a disabled sink neither
//! allocates nor synchronizes on the hot path (asserted to ≤ 2%
//! throughput delta by the `exec_throughput` bench).
//!
//! **Lock-free recording when on.** Hot-path recorders go through a
//! [`TraceLane`] — a per-thread owned buffer keyed by `(pid, tid)` —
//! that only pushes to its local `Vec`; lanes merge into the shared
//! event list on [`TraceLane::flush`] (and on drop). Counters are fixed
//! [`Counter`] slots backed by atomics. Only low-frequency emitters (one
//! event per MPI message, one span per compiler pass) record directly
//! through the shared list.
//!
//! ```
//! use sten_trace::{Counter, SpanKind, Tracer};
//!
//! let tracer = Tracer::new();
//! let mut lane = tracer.lane(0, 0); // rank 0, main thread
//! let t0 = lane.start();
//! // ... work ...
//! lane.span(t0, || SpanKind::Copy { points: 64 });
//! tracer.count(Counter::MsgsSent, 1);
//! lane.flush();
//! let json = sten_trace::chrome::to_json(&tracer.events(), &[]);
//! assert!(json.contains("\"traceEvents\""));
//! ```

pub mod chrome;
pub mod json;
pub mod report;

pub use report::TraceReport;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The `pid` used for compiler-side (pass) spans, far above any rank id.
pub const COMPILER_PID: u32 = 1_000_000;

/// Fixed counter slots (the generalization of SimMPI's old ad-hoc
/// `Mutex<u64>` counters), backed by atomics.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Messages sent.
    MsgsSent = 0,
    /// Elements sent (communication volume).
    ElementsSent = 1,
    /// Blocking receives whose message had already arrived (overlap hid
    /// the transit time).
    RecvImmediate = 2,
    /// Blocking receives that had to wait for delivery.
    RecvBlocked = 3,
    /// Faults injected by a fault plan.
    FaultsInjected = 4,
    /// Timed-out exchanges re-requested (swap or allreduce retries).
    Retries = 5,
    /// Checkpoints taken by the resilient runner.
    Checkpoints = 6,
    /// Cohort rollbacks to a checkpoint after a fault.
    Recoveries = 7,
}

impl Counter {
    /// Every counter, in slot order.
    pub const ALL: [Counter; COUNTER_SLOTS] = [
        Counter::MsgsSent,
        Counter::ElementsSent,
        Counter::RecvImmediate,
        Counter::RecvBlocked,
        Counter::FaultsInjected,
        Counter::Retries,
        Counter::Checkpoints,
        Counter::Recoveries,
    ];

    /// Stable name (report keys).
    pub fn name(self) -> &'static str {
        match self {
            Counter::MsgsSent => "msgs-sent",
            Counter::ElementsSent => "elements-sent",
            Counter::RecvImmediate => "recv-immediate",
            Counter::RecvBlocked => "recv-blocked",
            Counter::FaultsInjected => "faults-injected",
            Counter::Retries => "retries",
            Counter::Checkpoints => "checkpoints",
            Counter::Recoveries => "recoveries",
        }
    }
}

/// Number of [`Counter`] slots.
pub const COUNTER_SLOTS: usize = 8;

/// What a recorded event describes. Variants carry the attributes the
/// Chrome exporter emits as `args` and the report aggregates over.
#[derive(Clone, Debug, PartialEq)]
pub enum SpanKind {
    /// One compiler pass (from the PassManager's after-pass hook).
    Pass {
        /// Canonical pass name.
        name: &'static str,
    },
    /// One whole executor timestep (`Runner::step*`).
    Timestep {
        /// 0-based timestep index of this runner.
        index: u64,
    },
    /// One `Step::Apply` (full, interior, or one boundary shell).
    Apply {
        /// Executor tier name (`eval` | `opt-bytecode` | `weighted-sum`).
        tier: &'static str,
        /// Region label (empty = full, `interior`, `boundary[..]`).
        region: String,
        /// Grid points executed.
        points: i64,
    },
    /// One `Step::SwapBegin` (pack + post sends).
    SwapBegin {
        /// Swap id within the pipeline.
        swap: usize,
        /// Declared exchange payload in bytes.
        bytes: u64,
    },
    /// One `Step::SwapWait` (receive + unpack).
    SwapWait {
        /// Swap id within the pipeline.
        swap: usize,
    },
    /// One `Step::Copy`.
    Copy {
        /// Points copied.
        points: i64,
    },
    /// One worker-pool job (a chunk of an apply) on a worker lane.
    Task,
    /// Packing one outgoing halo slab into its message buffer.
    Pack {
        /// Exchange direction (the `dmp` direction vector).
        dir: Vec<i64>,
        /// Payload bytes.
        bytes: u64,
    },
    /// Unpacking one received halo slab into the local buffer.
    Unpack {
        /// Exchange direction the halo came from.
        dir: Vec<i64>,
        /// Payload bytes.
        bytes: u64,
    },
    /// A message deposited into a SimMPI mailbox (instant event).
    MsgSend {
        /// Sending rank.
        src: i32,
        /// Receiving rank.
        dst: i32,
        /// Message tag.
        tag: i32,
        /// Payload bytes.
        bytes: u64,
        /// Simulated delivery latency in microseconds.
        latency_us: u64,
    },
    /// One phase of a global reduction.
    Reduce {
        /// `partial` (local fold over the owned core) or `allreduce`
        /// (rendezvous exchanging accumulator wire payloads — the span
        /// covers any wait for the slowest rank).
        phase: &'static str,
        /// Payload: points folded (`partial`) or wire bytes exchanged
        /// (`allreduce`).
        bytes: u64,
        /// Participants: worker chunks merged (`partial`) or ranks
        /// combined (`allreduce`).
        parts: u32,
    },
    /// A blocking SimMPI receive (span covers any wait for delivery).
    MsgRecv {
        /// Sending rank.
        src: i32,
        /// Receiving rank.
        dst: i32,
        /// Message tag.
        tag: i32,
        /// Payload bytes.
        bytes: u64,
        /// Whether the receive had to block for delivery (exposed
        /// communication time) or found the message already there.
        blocked: bool,
    },
    /// A fault injected by a [fault plan] (instant event): the trace
    /// shows exactly what was injured and when.
    ///
    /// [fault plan]: self
    Fault {
        /// Fault kind (`drop` | `duplicate` | `reorder` | `delay-spike`
        /// | `rank-stall` | `rank-crash`).
        fault: &'static str,
        /// The rank the fault acts on (receiver for message faults).
        rank: i32,
        /// Human-readable specifics (peer, tag, delay, step, ...).
        detail: String,
    },
    /// A timed-out exchange being re-requested (instant event).
    Retry {
        /// What timed out (`swap#3`, `allreduce`, ...).
        target: String,
        /// 1-based retry attempt number.
        attempt: u32,
    },
    /// One checkpoint snapshot (owned cores + scalar slots).
    Checkpoint {
        /// Timestep the snapshot captures (state *before* this step).
        step: u64,
        /// Serialized payload bytes.
        bytes: u64,
    },
    /// One cohort rollback: respawn + restore from a checkpoint.
    Recovery {
        /// 1-based recovery attempt number.
        attempt: u32,
        /// Timestep the cohort rolled back to.
        step: u64,
    },
}

impl SpanKind {
    /// Whether this kind renders as a Chrome instant (`ph:"i"`) instead
    /// of a complete span (`ph:"X"`).
    pub fn is_instant(&self) -> bool {
        matches!(self, SpanKind::MsgSend { .. } | SpanKind::Fault { .. } | SpanKind::Retry { .. })
    }

    /// Display name (the Chrome `name` field).
    pub fn label(&self) -> String {
        match self {
            SpanKind::Pass { name } => format!("pass {name}"),
            SpanKind::Timestep { index } => format!("timestep {index}"),
            SpanKind::Apply { tier, region, .. } if region.is_empty() => format!("apply {tier}"),
            SpanKind::Apply { tier, region, .. } => format!("apply {} {tier}", region.trim_end()),
            SpanKind::SwapBegin { swap, .. } => format!("swap#{swap} begin"),
            SpanKind::SwapWait { swap } => format!("swap#{swap} wait"),
            SpanKind::Copy { .. } => "copy".to_string(),
            SpanKind::Task => "task".to_string(),
            SpanKind::Reduce { phase, .. } => format!("reduce {phase}"),
            SpanKind::Pack { dir, .. } => format!("pack {dir:?}"),
            SpanKind::Unpack { dir, .. } => format!("unpack {dir:?}"),
            SpanKind::MsgSend { dst, tag, .. } => format!("send→{dst} tag {tag}"),
            SpanKind::MsgRecv { src, tag, blocked, .. } => {
                format!("recv←{src} tag {tag}{}", if *blocked { " (blocked)" } else { "" })
            }
            SpanKind::Fault { fault, rank, .. } => format!("fault {fault} @rank {rank}"),
            SpanKind::Retry { target, attempt } => format!("retry {target} #{attempt}"),
            SpanKind::Checkpoint { step, .. } => format!("checkpoint @step {step}"),
            SpanKind::Recovery { attempt, step } => {
                format!("recovery #{attempt} → step {step}")
            }
        }
    }
}

/// One recorded event on a `(pid, tid)` track.
#[derive(Clone, Debug)]
pub struct Event {
    /// Process track (rank id, or [`COMPILER_PID`]).
    pub pid: u32,
    /// Thread track (0 = main, 1.. = worker lanes).
    pub tid: u32,
    /// Start, nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// What happened.
    pub kind: SpanKind,
}

impl Event {
    /// End time, nanoseconds since the epoch.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

struct Shared {
    epoch: Instant,
    events: Mutex<Vec<Event>>,
    counters: [AtomicU64; COUNTER_SLOTS],
}

impl Shared {
    #[inline]
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// A handle on one trace: clone freely (an `Arc` when enabled, nothing
/// when disabled) and hand it to every layer that should record.
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<Shared>>);

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("enabled", &self.is_enabled()).finish()
    }
}

impl Tracer {
    /// An enabled tracer with its epoch at now.
    pub fn new() -> Tracer {
        Tracer(Some(Arc::new(Shared {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
        })))
    }

    /// The disabled sink: every operation is a no-op.
    pub fn disabled() -> Tracer {
        Tracer(None)
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Nanoseconds since the epoch (0 when disabled — no clock read).
    #[inline]
    pub fn now(&self) -> u64 {
        match &self.0 {
            None => 0,
            Some(s) => s.now_ns(),
        }
    }

    /// A per-thread recording lane for track `(pid, tid)`.
    pub fn lane(&self, pid: u32, tid: u32) -> TraceLane {
        TraceLane { shared: self.0.clone(), pid, tid, buf: Vec::new() }
    }

    /// Adds `n` to a counter slot (relaxed atomic; no-op when disabled).
    #[inline]
    pub fn count(&self, counter: Counter, n: u64) {
        if let Some(s) = &self.0 {
            s.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value of a counter slot (0 when disabled).
    pub fn counter(&self, counter: Counter) -> u64 {
        match &self.0 {
            None => 0,
            Some(s) => s.counters[counter as usize].load(Ordering::Relaxed),
        }
    }

    /// Records a span started at `t0` (from [`Tracer::now`]) ending now,
    /// directly into the shared list (one lock — for low-frequency
    /// emitters without a lane, e.g. per-message SimMPI events).
    pub fn record_span(&self, pid: u32, tid: u32, t0: u64, kind: impl FnOnce() -> SpanKind) {
        if let Some(s) = &self.0 {
            let t1 = s.now_ns();
            let event =
                Event { pid, tid, start_ns: t0, dur_ns: t1.saturating_sub(t0), kind: kind() };
            s.events.lock().expect("trace events lock").push(event);
        }
    }

    /// Records an instant event directly into the shared list.
    pub fn record_instant(&self, pid: u32, tid: u32, kind: impl FnOnce() -> SpanKind) {
        if let Some(s) = &self.0 {
            let event = Event { pid, tid, start_ns: s.now_ns(), dur_ns: 0, kind: kind() };
            s.events.lock().expect("trace events lock").push(event);
        }
    }

    /// A snapshot of every merged event, sorted by start time. Lanes
    /// buffer locally: flush them (or drop their owners) first.
    pub fn events(&self) -> Vec<Event> {
        match &self.0 {
            None => Vec::new(),
            Some(s) => {
                let mut events = s.events.lock().expect("trace events lock").clone();
                events.sort_by_key(|e| (e.start_ns, std::cmp::Reverse(e.dur_ns)));
                events
            }
        }
    }
}

/// A per-thread recording buffer for one `(pid, tid)` track.
///
/// Pushes are lock-free (an owned `Vec`); the buffer merges into the
/// tracer's shared list on [`TraceLane::flush`] and on drop. A lane from
/// a disabled tracer never allocates, reads a clock, or evaluates the
/// kind closure.
pub struct TraceLane {
    shared: Option<Arc<Shared>>,
    pid: u32,
    tid: u32,
    buf: Vec<Event>,
}

impl std::fmt::Debug for TraceLane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceLane")
            .field("enabled", &self.shared.is_some())
            .field("pid", &self.pid)
            .field("tid", &self.tid)
            .finish()
    }
}

impl TraceLane {
    /// A lane that records nothing.
    pub fn disabled() -> TraceLane {
        TraceLane { shared: None, pid: 0, tid: 0, buf: Vec::new() }
    }

    /// Whether this lane records.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Start timestamp for a span (0 when disabled — no clock read).
    #[inline]
    pub fn start(&self) -> u64 {
        match &self.shared {
            None => 0,
            Some(s) => s.now_ns(),
        }
    }

    /// Records a span from `t0` (a [`TraceLane::start`] value) to now.
    /// The kind closure only runs when enabled, so building labels or
    /// cloning direction vectors costs nothing when tracing is off.
    #[inline]
    pub fn span(&mut self, t0: u64, kind: impl FnOnce() -> SpanKind) {
        let Some(s) = &self.shared else { return };
        let t1 = s.now_ns();
        self.buf.push(Event {
            pid: self.pid,
            tid: self.tid,
            start_ns: t0,
            dur_ns: t1.saturating_sub(t0),
            kind: kind(),
        });
    }

    /// Records an instant event on this lane.
    #[inline]
    pub fn instant(&mut self, kind: impl FnOnce() -> SpanKind) {
        let Some(s) = &self.shared else { return };
        let event =
            Event { pid: self.pid, tid: self.tid, start_ns: s.now_ns(), dur_ns: 0, kind: kind() };
        self.buf.push(event);
    }

    /// Merges buffered events into the tracer's shared list.
    pub fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        if let Some(s) = &self.shared {
            s.events.lock().expect("trace events lock").append(&mut self.buf);
        } else {
            self.buf.clear();
        }
    }
}

impl Drop for TraceLane {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing_and_never_runs_closures() {
        let t = Tracer::disabled();
        let mut lane = t.lane(0, 0);
        assert!(!t.is_enabled());
        assert_eq!(t.now(), 0);
        assert_eq!(lane.start(), 0);
        lane.span(0, || panic!("kind closure must not run when disabled"));
        lane.instant(|| panic!("kind closure must not run when disabled"));
        t.record_span(0, 0, 0, || panic!("must not run"));
        t.record_instant(0, 0, || panic!("must not run"));
        t.count(Counter::MsgsSent, 5);
        assert_eq!(t.counter(Counter::MsgsSent), 0);
        lane.flush();
        assert!(t.events().is_empty());
    }

    #[test]
    fn lanes_buffer_until_flush_and_merge_on_drop() {
        let t = Tracer::new();
        let mut lane = t.lane(3, 1);
        let t0 = lane.start();
        lane.span(t0, || SpanKind::Task);
        assert!(t.events().is_empty(), "unflushed events stay in the lane");
        lane.flush();
        let events = t.events();
        assert_eq!(events.len(), 1);
        assert_eq!((events[0].pid, events[0].tid), (3, 1));
        // Drop-flush.
        let mut lane2 = t.lane(3, 2);
        lane2.instant(|| SpanKind::MsgSend { src: 0, dst: 1, tag: 9, bytes: 8, latency_us: 0 });
        drop(lane2);
        assert_eq!(t.events().len(), 2);
    }

    #[test]
    fn counters_accumulate_across_clones() {
        let t = Tracer::new();
        let t2 = t.clone();
        t.count(Counter::RecvBlocked, 2);
        t2.count(Counter::RecvBlocked, 3);
        assert_eq!(t.counter(Counter::RecvBlocked), 5);
        for c in Counter::ALL {
            assert!(!c.name().is_empty());
        }
    }

    #[test]
    fn events_are_sorted_by_start_time() {
        let t = Tracer::new();
        let a0 = t.now();
        std::thread::sleep(std::time::Duration::from_millis(1));
        t.record_span(0, 0, a0, || SpanKind::Timestep { index: 0 }); // long, early
        t.record_instant(0, 0, || SpanKind::MsgSend {
            src: 0,
            dst: 1,
            tag: 0,
            bytes: 0,
            latency_us: 0,
        });
        let events = t.events();
        assert_eq!(events.len(), 2);
        assert!(events[0].start_ns <= events[1].start_ns);
        assert!(matches!(events[0].kind, SpanKind::Timestep { .. }));
    }
}
