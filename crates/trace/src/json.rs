//! A minimal recursive-descent JSON parser, used by
//! [`crate::chrome::validate`] to schema-check emitted traces without an
//! external dependency. It accepts standard JSON (RFC 8259) and keeps
//! object keys in document order.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, keys in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses one JSON document (rejecting trailing garbage).
///
/// # Errors
/// Reports the byte offset and nature of the first syntax error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: input.as_bytes(), at: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.at));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.at) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.at))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.at)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.at..].starts_with(text.as_bytes()) {
            self.at += text.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.at))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.at))?;
                            self.at += 4;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(format!(
                                "bad escape '\\{}' at byte {}",
                                other as char, self.at
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = &self.bytes[self.at..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.at += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.at += 1;
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.at += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

/// Escapes `s` for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true}, "e": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "line1\nline\"2\"\t\\end\u{0001}";
        let doc = format!("{{\"k\": \"{}\"}}", escape(original));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(original));
    }
}
