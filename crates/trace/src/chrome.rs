//! Chrome trace-event export (the JSON object format of the Trace Event
//! spec), loadable in Perfetto (<https://ui.perfetto.dev>) and
//! `chrome://tracing`: one process track per rank (plus one for the
//! compiler), one thread track per lane (`main`, `worker N`).
//!
//! [`validate`] re-parses an emitted document with [`crate::json`] and
//! schema-checks it — every event has `ph`/`pid`/`tid` (and `ts`/`dur`
//! where its phase requires them), spans on a track are properly nested,
//! and ranks map to distinct `pid`s — so tests and benches can assert
//! traces are well-formed without an external tooling dependency.

use crate::json::{escape, parse};
use crate::{Event, SpanKind, COMPILER_PID};

/// Formats nanoseconds as the spec's microsecond timestamps, keeping
/// nanosecond precision (3 decimals).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn process_name(pid: u32, overrides: &[(u32, String)]) -> String {
    if let Some((_, name)) = overrides.iter().find(|(p, _)| *p == pid) {
        return name.clone();
    }
    if pid == COMPILER_PID {
        "compiler".to_string()
    } else {
        format!("rank {pid}")
    }
}

fn thread_name(tid: u32) -> String {
    if tid == 0 {
        "main".to_string()
    } else {
        format!("worker {tid}")
    }
}

fn category(kind: &SpanKind) -> &'static str {
    match kind {
        SpanKind::Pass { .. } => "compiler",
        SpanKind::Timestep { .. } | SpanKind::Apply { .. } | SpanKind::Copy { .. } => "exec",
        SpanKind::Task => "task",
        SpanKind::SwapBegin { .. }
        | SpanKind::SwapWait { .. }
        | SpanKind::Pack { .. }
        | SpanKind::Unpack { .. }
        | SpanKind::Reduce { .. }
        | SpanKind::MsgSend { .. }
        | SpanKind::MsgRecv { .. } => "comm",
        SpanKind::Fault { .. }
        | SpanKind::Retry { .. }
        | SpanKind::Checkpoint { .. }
        | SpanKind::Recovery { .. } => "resilience",
    }
}

fn args_json(kind: &SpanKind) -> String {
    fn dir(d: &[i64]) -> String {
        format!("\"{d:?}\"")
    }
    match kind {
        SpanKind::Pass { name } => format!("{{\"pass\":\"{}\"}}", escape(name)),
        SpanKind::Timestep { index } => format!("{{\"timestep\":{index}}}"),
        SpanKind::Apply { tier, region, points } => format!(
            "{{\"tier\":\"{}\",\"region\":\"{}\",\"points\":{points}}}",
            escape(tier),
            escape(region.trim())
        ),
        SpanKind::SwapBegin { swap, bytes } => format!("{{\"swap\":{swap},\"bytes\":{bytes}}}"),
        SpanKind::SwapWait { swap } => format!("{{\"swap\":{swap}}}"),
        SpanKind::Copy { points } => format!("{{\"points\":{points}}}"),
        SpanKind::Task => "{}".to_string(),
        SpanKind::Pack { dir: d, bytes } => {
            format!("{{\"dir\":{},\"bytes\":{bytes}}}", dir(d))
        }
        SpanKind::Unpack { dir: d, bytes } => {
            format!("{{\"dir\":{},\"bytes\":{bytes}}}", dir(d))
        }
        SpanKind::Reduce { phase, bytes, parts } => format!(
            "{{\"phase\":\"{}\",\"bytes\":{bytes},\"parts\":{parts}}}",
            escape(phase)
        ),
        SpanKind::MsgSend { src, dst, tag, bytes, latency_us } => format!(
            "{{\"src\":{src},\"dst\":{dst},\"tag\":{tag},\"bytes\":{bytes},\"latency_us\":{latency_us}}}"
        ),
        SpanKind::MsgRecv { src, dst, tag, bytes, blocked } => format!(
            "{{\"src\":{src},\"dst\":{dst},\"tag\":{tag},\"bytes\":{bytes},\"blocked\":{blocked}}}"
        ),
        SpanKind::Fault { fault, rank, detail } => format!(
            "{{\"fault\":\"{}\",\"rank\":{rank},\"detail\":\"{}\"}}",
            escape(fault),
            escape(detail)
        ),
        SpanKind::Retry { target, attempt } => {
            format!("{{\"target\":\"{}\",\"attempt\":{attempt}}}", escape(target))
        }
        SpanKind::Checkpoint { step, bytes } => format!("{{\"step\":{step},\"bytes\":{bytes}}}"),
        SpanKind::Recovery { attempt, step } => {
            format!("{{\"attempt\":{attempt},\"step\":{step}}}")
        }
    }
}

/// Renders `events` as a Chrome trace-event JSON document.
///
/// `process_names` overrides the default `rank N`/`compiler` process
/// labels per pid (benches use it to label `case/variant` worlds).
pub fn to_json(events: &[Event], process_names: &[(u32, String)]) -> String {
    let mut events: Vec<&Event> = events.iter().collect();
    events.sort_by_key(|e| (e.start_ns, std::cmp::Reverse(e.dur_ns)));

    // Distinct tracks, in first-seen pid order.
    let mut pids: Vec<u32> = Vec::new();
    let mut tracks: Vec<(u32, u32)> = Vec::new();
    for e in &events {
        if !pids.contains(&e.pid) {
            pids.push(e.pid);
        }
        if !tracks.contains(&(e.pid, e.tid)) {
            tracks.push((e.pid, e.tid));
        }
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |line: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str("  ");
        out.push_str(&line);
    };

    for (i, &pid) in pids.iter().enumerate() {
        push(
            format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(&process_name(pid, process_names))
            ),
            &mut out,
        );
        push(
            format!(
                "{{\"ph\":\"M\",\"name\":\"process_sort_index\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"sort_index\":{i}}}}}"
            ),
            &mut out,
        );
    }
    for &(pid, tid) in &tracks {
        push(
            format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(&thread_name(tid))
            ),
            &mut out,
        );
        push(
            format!(
                "{{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"sort_index\":{tid}}}}}"
            ),
            &mut out,
        );
    }

    for e in &events {
        let name = escape(&e.kind.label());
        let cat = category(&e.kind);
        let args = args_json(&e.kind);
        let line = if e.kind.is_instant() {
            format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"{name}\",\"cat\":\"{cat}\",\
                 \"pid\":{},\"tid\":{},\"ts\":{},\"args\":{args}}}",
                e.pid,
                e.tid,
                us(e.start_ns)
            )
        } else {
            format!(
                "{{\"ph\":\"X\",\"name\":\"{name}\",\"cat\":\"{cat}\",\
                 \"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{args}}}",
                e.pid,
                e.tid,
                us(e.start_ns),
                us(e.dur_ns)
            )
        };
        push(line, &mut out);
    }
    out.push_str("\n]}\n");
    out
}

/// Summary of a validated trace document.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceStats {
    /// All events, including metadata records.
    pub total_events: usize,
    /// Complete (`ph:"X"`) spans.
    pub spans: usize,
    /// Instant (`ph:"i"`) events.
    pub instants: usize,
    /// Distinct pids carrying spans or instants, ascending.
    pub pids: Vec<u32>,
    /// Distinct `(pid, tid)` tracks carrying spans or instants, ascending.
    pub tracks: Vec<(u32, u32)>,
}

/// Parses and schema-validates a Chrome trace-event document.
///
/// Checks: the root is `{"traceEvents": [...]}`; every event carries
/// `ph`/`pid`/`tid` (plus `name`, and `ts`/`dur` as its phase requires);
/// complete spans on each `(pid, tid)` track are properly nested
/// (disjoint or contained, never partially overlapping).
///
/// # Errors
/// Reports the first malformed event or nesting violation.
pub fn validate(json_text: &str) -> Result<TraceStats, String> {
    let doc = parse(json_text).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing 'traceEvents' key")?
        .as_arr()
        .ok_or("'traceEvents' is not an array")?;

    let mut stats = TraceStats { total_events: events.len(), ..TraceStats::default() };
    // (pid, tid) → spans as (start, end) in integer nanoseconds.
    type TrackSpans = Vec<((u32, u32), Vec<(i64, i64)>)>;
    let mut spans_by_track: TrackSpans = Vec::new();

    for (i, e) in events.iter().enumerate() {
        let field =
            |key: &str| e.get(key).ok_or_else(|| format!("event #{i} missing '{key}': {e:?}"));
        let num = |key: &str| -> Result<f64, String> {
            field(key)?.as_f64().ok_or_else(|| format!("event #{i} '{key}' is not a number"))
        };
        let ph = field("ph")?
            .as_str()
            .ok_or_else(|| format!("event #{i} 'ph' is not a string"))?
            .to_string();
        let pid = num("pid")? as u32;
        let tid = num("tid")? as u32;
        if field("name")?.as_str().is_none() {
            return Err(format!("event #{i} 'name' is not a string"));
        }
        match ph.as_str() {
            "M" => {
                field("args")?;
            }
            "i" => {
                num("ts")?;
                stats.instants += 1;
                if !stats.pids.contains(&pid) {
                    stats.pids.push(pid);
                }
                if !stats.tracks.contains(&(pid, tid)) {
                    stats.tracks.push((pid, tid));
                }
            }
            "X" => {
                let ts = num("ts")?;
                let dur = num("dur")?;
                if dur < 0.0 {
                    return Err(format!("event #{i} has negative dur"));
                }
                stats.spans += 1;
                if !stats.pids.contains(&pid) {
                    stats.pids.push(pid);
                }
                if !stats.tracks.contains(&(pid, tid)) {
                    stats.tracks.push((pid, tid));
                }
                // µs with 3 decimals → exact integer nanoseconds.
                let start = (ts * 1000.0).round() as i64;
                let end = start + (dur * 1000.0).round() as i64;
                match spans_by_track.iter_mut().find(|(k, _)| *k == (pid, tid)) {
                    Some((_, v)) => v.push((start, end)),
                    None => spans_by_track.push(((pid, tid), vec![(start, end)])),
                }
            }
            other => return Err(format!("event #{i} has unknown phase '{other}'")),
        }
    }

    // Nesting check per track: sorted by (start asc, end desc), every
    // span must be disjoint from or contained in the enclosing one.
    for ((pid, tid), mut spans) in spans_by_track {
        spans.sort_by_key(|&(start, end)| (start, std::cmp::Reverse(end)));
        let mut stack: Vec<(i64, i64)> = Vec::new();
        for (start, end) in spans {
            while let Some(&(_, top_end)) = stack.last() {
                if top_end <= start {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(top_start, top_end)) = stack.last() {
                if !(start >= top_start && end <= top_end) {
                    return Err(format!(
                        "track ({pid},{tid}): span [{start},{end}]ns partially overlaps \
                         enclosing [{top_start},{top_end}]ns"
                    ));
                }
            }
            stack.push((start, end));
        }
    }

    stats.pids.sort_unstable();
    stats.tracks.sort_unstable();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpanKind, Tracer};

    #[test]
    fn emitted_traces_validate() {
        let t = Tracer::new();
        let mut lane = t.lane(0, 0);
        let outer = lane.start();
        let inner = lane.start();
        lane.span(inner, || SpanKind::Apply {
            tier: "eval",
            region: "interior ".to_string(),
            points: 100,
        });
        lane.span(outer, || SpanKind::Timestep { index: 0 });
        lane.instant(|| SpanKind::MsgSend { src: 0, dst: 1, tag: 4, bytes: 800, latency_us: 20 });
        lane.flush();
        let mut worker = t.lane(1, 2);
        let w0 = worker.start();
        worker.span(w0, || SpanKind::Task);
        worker.flush();

        let json = to_json(&t.events(), &[(1, "rank one".to_string())]);
        let stats = validate(&json).unwrap();
        assert_eq!(stats.spans, 3);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.pids, vec![0, 1]);
        assert_eq!(stats.tracks, vec![(0, 0), (1, 2)]);
        assert!(json.contains("\"rank one\""), "process-name override applied");
        assert!(json.contains("\"worker 2\""), "worker lanes get named sub-tracks");
    }

    #[test]
    fn validate_rejects_missing_fields_and_bad_nesting() {
        assert!(validate("not json").is_err());
        assert!(validate("{\"other\":[]}").is_err());
        let no_ph = r#"{"traceEvents":[{"name":"x","pid":0,"tid":0}]}"#;
        assert!(validate(no_ph).unwrap_err().contains("missing 'ph'"));
        let no_dur = r#"{"traceEvents":[{"ph":"X","name":"x","pid":0,"tid":0,"ts":1}]}"#;
        assert!(validate(no_dur).unwrap_err().contains("missing 'dur'"));
        // Partial overlap on one track: [0,10] vs [5,15].
        let overlap = r#"{"traceEvents":[
            {"ph":"X","name":"a","pid":0,"tid":0,"ts":0,"dur":10},
            {"ph":"X","name":"b","pid":0,"tid":0,"ts":5,"dur":10}
        ]}"#;
        assert!(validate(overlap).unwrap_err().contains("partially overlaps"));
        // The same intervals on different tracks are fine.
        let two_tracks = r#"{"traceEvents":[
            {"ph":"X","name":"a","pid":0,"tid":0,"ts":0,"dur":10},
            {"ph":"X","name":"b","pid":0,"tid":1,"ts":5,"dur":10}
        ]}"#;
        assert!(validate(two_tracks).is_ok());
    }
}
