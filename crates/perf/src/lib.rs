//! # sten-perf — machine models and analytic performance prediction
//!
//! The paper evaluates on ARCHER2 (dual AMD EPYC 7742 nodes, Slingshot
//! interconnect), Cirrus (NVIDIA V100) and an Alveo U280 FPGA — hardware
//! this reproduction does not have. Following the substitution rule in
//! DESIGN.md, this crate models those machines mechanistically:
//!
//! * [`machine`] — published hardware parameters (peak flops, STREAM-class
//!   bandwidth, network α/β, launch overheads, DDR latency);
//! * [`profile`] — kernel characteristics **measured from the real
//!   compiled IR** (flops/point, stencil points, regions per step come
//!   from `sten-exec` pipelines, not hand estimates);
//! * [`cpu`] — single-node roofline + strong-scaling α-β communication
//!   model (Figs. 7, 8, 10a, 11);
//! * [`gpu`] — V100 model with per-kernel launch/sync overhead and
//!   managed-memory penalties (Figs. 9, 10b);
//! * [`fpga`] — dataflow pipeline model: Von-Neumann initial design vs
//!   shift-buffer optimized design (Table 1).
//!
//! Every efficiency constant is documented at its definition; the intent
//! (per DESIGN.md) is to reproduce the *shape* of each figure — who wins,
//! by roughly what factor, where crossovers fall — not absolute numbers
//! from a machine we cannot measure.

pub mod cpu;
pub mod fpga;
pub mod gpu;
pub mod machine;
pub mod profile;

pub use cpu::{node_throughput, strong_scaling, CpuPipeline, ScalingConfig};
pub use fpga::{fpga_throughput, FpgaDesign};
pub use gpu::{gpu_throughput, GpuPipeline};
pub use machine::{alveo_u280, archer2_node, slingshot, v100, CpuNode, Fpga, Gpu, Interconnect};
pub use profile::KernelProfile;
