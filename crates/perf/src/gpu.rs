//! V100 GPU model (Figs. 9 and 10b).
//!
//! `time/step = max(mem, flops) + regions × launch` with pipeline-specific
//! parameters:
//!
//! * **xDSL CUDA lowering** — the out-of-the-box MLIR GPU path: explicit
//!   device allocation, tiled kernels, but "MLIR invokes a synchronous
//!   kernel execution for each parallel loop" (§6.2), so every region pays
//!   the synchronous launch cost;
//! * **OpenACC (Devito)** — asynchronously pipelined launches, lower
//!   achieved bandwidth than the CUDA lowering (collapse/tile clauses
//!   versus tuned tiling), as Fig. 9 shows for the 3D kernels;
//! * **OpenACC managed memory (PSyclone)** — additionally pays unified-
//!   memory page-fault servicing ("a large number of unified memory GPU
//!   page faults which do not occur with xDSL", §6.2).

use crate::machine::Gpu;
use crate::profile::KernelProfile;

/// Which GPU code path produced the executable.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum GpuPipeline {
    /// The shared stack's CUDA lowering (explicit memory, tiled, but
    /// synchronous launches).
    XdslCuda,
    /// OpenACC with explicit data clauses (the Devito baseline of
    /// Fig. 9; collapse/tile schedules degrade in 3D).
    OpenAcc,
    /// OpenACC with managed (unified) memory (the PSyclone PW-advection
    /// baseline of Fig. 10b: every step re-migrates data).
    OpenAccManaged,
    /// OpenACC from the NVIDIA compiler on resident data (the PSyclone
    /// tracer-advection baseline: simple loops that nvc schedules well).
    OpenAccPsyclone,
}

impl GpuPipeline {
    /// Fraction of HBM bandwidth achieved.
    pub fn bandwidth_efficiency(self, dims: usize) -> f64 {
        match self {
            // Tuned tiling holds up in 3D; Devito-style OpenACC
            // collapse/tile schedules degrade there (Fig. 9: 1.5-1.7x
            // for 3D kernels); nvc on the simple tracer loops keeps up.
            GpuPipeline::XdslCuda | GpuPipeline::OpenAccPsyclone => 0.75,
            GpuPipeline::OpenAcc | GpuPipeline::OpenAccManaged => {
                if dims >= 3 {
                    0.45
                } else {
                    0.70
                }
            }
        }
    }

    /// Fraction of peak flops achieved.
    pub fn flop_efficiency(self) -> f64 {
        match self {
            GpuPipeline::XdslCuda => 0.55,
            _ => 0.45,
        }
    }

    /// Per-region launch overhead, seconds.
    pub fn launch_overhead_s(self, gpu: &Gpu) -> f64 {
        match self {
            GpuPipeline::XdslCuda => gpu.sync_launch_us * 1e-6,
            _ => gpu.async_launch_us * 1e-6,
        }
    }

    /// Whether managed-memory page faults apply.
    pub fn managed(self) -> bool {
        matches!(self, GpuPipeline::OpenAccManaged)
    }

    /// Effective migration bandwidth for managed memory (NVLink-class
    /// re-migration of the working set each step), GB/s.
    pub fn migration_bw_gbs(self) -> Option<f64> {
        self.managed().then_some(66.0)
    }
}

/// Seconds per timestep on the GPU.
pub fn gpu_step_time(profile: &KernelProfile, gpu: &Gpu, pipeline: GpuPipeline) -> f64 {
    let bytes = profile.bytes_per_point(true) * profile.points;
    let flops = profile.flops_per_point * profile.points;
    // Managed memory caps the effective bandwidth at the migration rate
    // (the working set is re-migrated as kernels fault it back in).
    let bw = match pipeline.migration_bw_gbs() {
        Some(mig) => mig.min(pipeline.bandwidth_efficiency(profile.dims) * gpu.mem_bw_gbs),
        None => pipeline.bandwidth_efficiency(profile.dims) * gpu.mem_bw_gbs,
    };
    let t_mem = bytes / (bw * 1e9);
    let t_flop = flops / (pipeline.flop_efficiency() * gpu.peak_gflops_f32 * 1e9);
    let t_launch = profile.regions as f64 * pipeline.launch_overhead_s(gpu);
    let t_fault = if pipeline.managed() {
        // A fixed fault-servicing burst per kernel launch dominates small
        // problems — this is what makes the Fig. 10b speedup fall from
        // x24 (8m points) to x11 (134m points).
        let faults_per_launch = 130.0;
        faults_per_launch * profile.regions as f64 * gpu.page_fault_us * 1e-6
    } else {
        0.0
    };
    t_mem.max(t_flop) + t_launch + t_fault
}

/// GPU throughput in GPts/s.
pub fn gpu_throughput(profile: &KernelProfile, gpu: &Gpu, pipeline: GpuPipeline) -> f64 {
    profile.points / gpu_step_time(profile, gpu, pipeline) / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::v100;

    fn profile(dims: usize, flops: f64, points: f64, regions: usize) -> KernelProfile {
        KernelProfile {
            name: "k".into(),
            dims,
            points,
            flops_per_point: flops,
            loads_per_point: flops / 2.0,
            input_buffers: 1.0,
            output_buffers: 1.0,
            radius: 1,
            regions,
            dtype_bytes: 4.0,
        }
    }

    #[test]
    fn fig9_xdsl_beats_openacc_more_in_3d() {
        let gpu = v100();
        let p2 = profile(2, 10.0, 8192.0 * 8192.0, 1);
        let p3 = profile(3, 12.0, 512.0f64.powi(3), 1);
        let r2 = gpu_throughput(&p2, &gpu, GpuPipeline::XdslCuda)
            / gpu_throughput(&p2, &gpu, GpuPipeline::OpenAcc);
        let r3 = gpu_throughput(&p3, &gpu, GpuPipeline::XdslCuda)
            / gpu_throughput(&p3, &gpu, GpuPipeline::OpenAcc);
        assert!(r2 > 0.95 && r2 < 1.3, "2D near parity: {r2}");
        assert!(r3 > 1.4 && r3 < 1.9, "3D clear win: {r3}");
    }

    #[test]
    fn fig10b_managed_memory_gap_shrinks_with_size() {
        // PW advection: xDSL vs managed-memory PSyclone. Paper: x24.14 at
        // 8m points, x11.01 at 134m.
        let gpu = v100();
        let speedup = |points: f64| {
            let p = profile(3, 30.0, points, 1);
            gpu_throughput(&p, &gpu, GpuPipeline::XdslCuda)
                / gpu_throughput(&p, &gpu, GpuPipeline::OpenAccManaged)
        };
        let s_small = speedup(8e6);
        let s_large = speedup(134e6);
        assert!(s_small > 10.0, "order-of-magnitude at small sizes: {s_small}");
        assert!(s_large < s_small, "gap shrinks with size: {s_large} < {s_small}");
        assert!(s_large > 3.0, "still a large win at 134m: {s_large}");
    }

    #[test]
    fn fig10b_many_kernels_hurt_xdsl() {
        // Tracer advection: 18 synchronous launches per step make xDSL
        // slower than PSyclone at small sizes (paper: x0.62 at 4m), near
        // parity at large (x0.95 at 128m).
        let gpu = v100();
        let ratio = |points: f64| {
            let p = profile(3, 20.0, points, 18);
            gpu_throughput(&p, &gpu, GpuPipeline::XdslCuda)
                / gpu_throughput(&p, &gpu, GpuPipeline::OpenAcc)
        };
        let small = ratio(4e6);
        let large = ratio(128e6);
        assert!(small < 1.0, "xDSL behind at 4m: {small}");
        assert!(large > small, "catching up with size");
    }

    #[test]
    fn launch_overhead_scales_with_regions() {
        let gpu = v100();
        let p1 = profile(3, 10.0, 1e6, 1);
        let p18 = profile(3, 10.0, 1e6, 18);
        assert!(
            gpu_step_time(&p18, &gpu, GpuPipeline::XdslCuda)
                > gpu_step_time(&p1, &gpu, GpuPipeline::XdslCuda)
        );
    }
}
