//! Hardware parameters of the paper's evaluation machines, from their
//! public specifications (§6: "ARCHER2 HPE Cray EX Supercomputer nodes
//! comprising a dual AMD EPYC 7742 64-core 2.25GHz processor with 128
//! cores [...] HPE Slingshot interconnect with 200 Gb/s bandwidth";
//! "Cirrus GPU compute nodes consisting of four NVIDIA Tesla
//! V100-SXM2-16GB"; "an Alveo U280 FPGA").

/// A CPU node.
#[derive(Clone, Debug)]
pub struct CpuNode {
    /// Human-readable name.
    pub name: &'static str,
    /// Cores per node.
    pub cores: u32,
    /// Base clock in GHz.
    pub freq_ghz: f64,
    /// fp32 lanes per SIMD unit (AVX2: 8).
    pub simd_f32: u32,
    /// Fused multiply-add units per core (EPYC 7742: 2 FMA pipes).
    pub fma_pipes: u32,
    /// Aggregate STREAM-class memory bandwidth, GB/s (8 memory channels ×
    /// 2 sockets of DDR4-3200 deliver ~380 GB/s measured on ARCHER2).
    pub mem_bw_gbs: f64,
    /// NUMA regions (drives the 8-ranks × 16-threads layout of §6.1).
    pub numa_regions: u32,
}

impl CpuNode {
    /// Peak fp32 Gflop/s: `cores × freq × simd × 2 (FMA) × pipes`.
    pub fn peak_gflops_f32(&self) -> f64 {
        self.cores as f64 * self.freq_ghz * self.simd_f32 as f64 * 2.0 * self.fma_pipes as f64
    }
}

/// The ARCHER2 compute node.
pub fn archer2_node() -> CpuNode {
    CpuNode {
        name: "ARCHER2 (2x AMD EPYC 7742)",
        cores: 128,
        freq_ghz: 2.25,
        simd_f32: 8,
        fma_pipes: 2,
        mem_bw_gbs: 380.0,
        numa_regions: 8,
    }
}

/// A cluster interconnect in α-β form.
#[derive(Clone, Debug)]
pub struct Interconnect {
    /// Name.
    pub name: &'static str,
    /// Per-message latency (α), microseconds.
    pub latency_us: f64,
    /// Per-link bandwidth (1/β), GB/s (200 Gb/s Slingshot ≈ 25 GB/s).
    pub bandwidth_gbs: f64,
}

/// The Slingshot dragonfly interconnect.
pub fn slingshot() -> Interconnect {
    Interconnect { name: "HPE Slingshot", latency_us: 2.0, bandwidth_gbs: 25.0 }
}

/// A GPU accelerator.
#[derive(Clone, Debug)]
pub struct Gpu {
    /// Name.
    pub name: &'static str,
    /// HBM bandwidth, GB/s.
    pub mem_bw_gbs: f64,
    /// Peak fp32 Gflop/s.
    pub peak_gflops_f32: f64,
    /// Cost of one *synchronous* kernel launch (the paper's nsys finding:
    /// "superfluous synchronization overhead on each kernel launch"), µs.
    pub sync_launch_us: f64,
    /// Cost of an asynchronously pipelined launch, µs.
    pub async_launch_us: f64,
    /// Cost of servicing one managed-memory page fault, µs (unified
    /// memory; drives the Fig. 10b PW-advection gap).
    pub page_fault_us: f64,
    /// Page size for managed-memory accounting, bytes.
    pub page_bytes: f64,
}

/// The Cirrus V100-SXM2-16GB.
pub fn v100() -> Gpu {
    Gpu {
        name: "NVIDIA V100-SXM2-16GB",
        mem_bw_gbs: 900.0,
        peak_gflops_f32: 15_700.0,
        sync_launch_us: 10.0,
        async_launch_us: 4.0,
        page_fault_us: 25.0,
        page_bytes: 65_536.0, // driver migrates in 64KiB chunks
    }
}

/// An FPGA card.
#[derive(Clone, Debug)]
pub struct Fpga {
    /// Name.
    pub name: &'static str,
    /// Kernel clock, MHz (typical achieved HLS clock on the U280).
    pub freq_mhz: f64,
    /// DDR4 bandwidth per bank, GB/s.
    pub ddr_bw_gbs: f64,
    /// DDR access latency, nanoseconds (random access — what the naive
    /// Von-Neumann design pays per stencil read).
    pub ddr_latency_ns: f64,
    /// Fraction of cycles the optimized dataflow pipeline retires a cell
    /// (stalls from region handshakes and boundary refills).
    pub pipeline_efficiency: f64,
    /// Outstanding DDR requests the naive design keeps in flight
    /// (limited HLS load pipelining).
    pub memory_parallelism: f64,
}

/// The Alveo U280.
pub fn alveo_u280() -> Fpga {
    Fpga {
        name: "AMD Xilinx Alveo U280",
        freq_mhz: 300.0,
        ddr_bw_gbs: 38.0,
        ddr_latency_ns: 180.0,
        pipeline_efficiency: 0.45,
        memory_parallelism: 3.5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archer2_peak_matches_spec_math() {
        let node = archer2_node();
        // 128 × 2.25 × 8 × 2 × 2 = 9216 Gflop/s fp32.
        assert_eq!(node.peak_gflops_f32(), 9216.0);
        assert_eq!(node.numa_regions, 8);
    }

    #[test]
    fn interconnect_and_gpu_are_plausible() {
        let net = slingshot();
        assert!(net.bandwidth_gbs > 10.0 && net.latency_us < 10.0);
        let gpu = v100();
        assert!(gpu.mem_bw_gbs > 800.0);
        assert!(gpu.sync_launch_us > gpu.async_launch_us);
    }

    #[test]
    fn fpga_clock_bounds_ideal_throughput() {
        let f = alveo_u280();
        // One cell per cycle at 300 MHz = 0.3 GPts/s upper bound.
        assert!((f.freq_mhz * 1e6 / 1e9 - 0.3).abs() < 1e-12);
    }
}
