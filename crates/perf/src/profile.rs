//! Kernel profiles: the workload half of the performance model.
//!
//! Profiles are extracted from **real compiled pipelines** (the bytecode
//! the `sten-exec` crate produces from the actual IR), so flop counts
//! reflect the optimization level that produced the IR — e.g. Devito's
//! factorization (`OptLevel::Advanced`) versus the plain xDSL pipeline.

use sten_exec::{Pipeline, Step};

/// What the model needs to know about one timestep of a kernel.
#[derive(Clone, Debug)]
pub struct KernelProfile {
    /// Label (e.g. "heat3d-13pt").
    pub name: String,
    /// Spatial dimensionality.
    pub dims: usize,
    /// Grid points written per timestep.
    pub points: f64,
    /// Floating-point ops per written point.
    pub flops_per_point: f64,
    /// Stencil loads issued per written point (from the real bytecode).
    pub loads_per_point: f64,
    /// Distinct input buffers read per apply (time levels etc.).
    pub input_buffers: f64,
    /// Output buffers written.
    pub output_buffers: f64,
    /// Largest stencil radius.
    pub radius: i64,
    /// Apply regions per timestep (parallel regions / GPU kernels).
    pub regions: usize,
    /// Element size in bytes (the paper uses fp32).
    pub dtype_bytes: f64,
}

impl KernelProfile {
    /// Builds a profile from a compiled pipeline.
    pub fn from_pipeline(name: &str, dims: usize, pipeline: &Pipeline) -> KernelProfile {
        let points = pipeline.points_per_step().max(1) as f64;
        let flops = pipeline.flops_per_step() as f64 / points;
        let mut total_loads = 0.0f64;
        let mut input_buffers = 0.0f64;
        let mut output_buffers = 0.0f64;
        let mut radius = 0i64;
        let mut regions = 0usize;
        for step in &pipeline.steps {
            if let Step::Apply { kernel, inputs, outputs, region } = step {
                regions += 1;
                total_loads += kernel.program.loads as f64 * region.points(&kernel.range) as f64;
                input_buffers += inputs.len() as f64;
                output_buffers += outputs.len() as f64;
                // The true per-axis radius from the kernel's recorded
                // per-dimension access offsets (the flattened
                // `Instr::LoadInput` displacement mixes in row strides,
                // which used to inflate this to the clamp value).
                radius = radius.max(kernel.program.radius());
            }
        }
        let regions_f = regions.max(1) as f64;
        KernelProfile {
            name: name.to_string(),
            dims,
            points,
            flops_per_point: flops,
            loads_per_point: total_loads / points,
            input_buffers: input_buffers / regions_f,
            output_buffers: output_buffers / regions_f,
            radius,
            regions: regions.max(1),
            dtype_bytes: 4.0,
        }
    }

    /// Builds a profile analytically (for paper-scale problems too large
    /// to compile locally): supply the measured small-scale pipeline's
    /// per-point numbers and scale the point count.
    pub fn scaled_points(mut self, points: f64) -> KernelProfile {
        self.points = points;
        self
    }

    /// Re-labels the profile.
    pub fn named(mut self, name: &str) -> KernelProfile {
        self.name = name.to_string();
        self
    }

    /// Streaming memory traffic per written point, in bytes.
    ///
    /// Model: each distinct input buffer is read once per point
    /// (streaming reuse of neighbouring accesses in cache), each output is
    /// written once plus a read-for-ownership; 3D kernels with radius > 1
    /// pay a plane-reuse penalty when the working set of `2r+1` planes
    /// overflows cache — reduced by tiling.
    pub fn bytes_per_point(&self, tiled: bool) -> f64 {
        let base = (self.input_buffers + 2.0 * self.output_buffers) * self.dtype_bytes;
        let spill = if self.dims >= 3 && self.radius > 1 {
            let factor = if tiled { 0.08 } else { 0.25 };
            factor * self.radius as f64 * self.dtype_bytes
        } else {
            0.0
        };
        base + spill
    }

    /// Arithmetic intensity (flops per byte) under the given locality.
    pub fn arithmetic_intensity(&self, tiled: bool) -> f64 {
        self.flops_per_point / self.bytes_per_point(tiled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sten_ir::Pass as _;

    fn profile_of(so: usize, dims: &[i64]) -> KernelProfile {
        let op = sten_devito::problems::heat(dims, so, 0.5).unwrap();
        let module = op.compile().unwrap();
        let pipeline = sten_exec::compile_module(&module, "step").unwrap();
        KernelProfile::from_pipeline("heat", dims.len(), &pipeline)
    }

    #[test]
    fn profile_reflects_real_ir() {
        let p = profile_of(2, &[32, 32]);
        assert_eq!(p.regions, 1);
        assert_eq!(p.points, 32.0 * 32.0);
        assert!(p.flops_per_point >= 5.0, "5-pt stencil: {}", p.flops_per_point);
        assert_eq!(p.input_buffers, 1.0);
        assert_eq!(p.output_buffers, 1.0);
    }

    #[test]
    fn radius_is_per_dimension_not_flattened() {
        // Space order 2 → radius 1 in every dimension, even in 3D where
        // the flattened displacement of a z-neighbour is a whole plane.
        assert_eq!(profile_of(2, &[16, 16, 16]).radius, 1);
        assert_eq!(profile_of(2, &[32, 32]).radius, 1);
        // Space order 6 → radius 3.
        assert_eq!(profile_of(6, &[16, 16, 16]).radius, 3);
    }

    #[test]
    fn intensity_rises_with_space_order() {
        let lo = profile_of(2, &[16, 16, 16]);
        let hi = profile_of(6, &[16, 16, 16]);
        assert!(
            hi.arithmetic_intensity(true) > lo.arithmetic_intensity(true),
            "{} vs {}",
            hi.arithmetic_intensity(true),
            lo.arithmetic_intensity(true)
        );
    }

    #[test]
    fn tiling_reduces_3d_traffic() {
        let p = profile_of(6, &[16, 16, 16]);
        assert!(p.bytes_per_point(true) < p.bytes_per_point(false));
        // 2D kernels have no spill term.
        let p2 = profile_of(6, &[32, 32]);
        assert_eq!(p2.bytes_per_point(true), p2.bytes_per_point(false));
    }

    #[test]
    fn multi_region_kernels_count_regions() {
        let k = sten_psyclone::kernels::tracer_advection(16, 8, 4).unwrap();
        let m = k.module.clone();
        let _ = m; // pipeline compiles from the fused module directly
        let pipeline = sten_exec::compile_module(&k.module, "tra_adv").unwrap();
        let p = KernelProfile::from_pipeline("traadv", 3, &pipeline);
        assert_eq!(p.regions, 18, "fused region count flows into the model");
        sten_stencil::StencilToLoops.run(&mut m.clone()).unwrap();
    }
}
