//! Alveo U280 dataflow model (Table 1).
//!
//! §6.2: "The Initial version represents the algorithm running on the FPGA
//! unchanged from its Von Neumann based CPU design, whereas the optimized
//! version has been transformed by the compiler into a form tuned for
//! dataflow architectures [...] the use of a 3D shift buffer [...] enables
//! all the current grid cell's stencil values to be provided to the
//! calculation each cycle but one value needs to be read from DDR external
//! memory per cycle."
//!
//! * **Initial**: every stencil read is an individual DDR access at full
//!   latency — the pipeline cannot be initiated more than once per
//!   serialized read chain.
//! * **Optimized**: the shift buffer turns the access stream into one DDR
//!   read per cell; the pipeline retires one cell per cycle, degraded by
//!   the handshake/stall efficiency, and bounded by streaming DDR
//!   bandwidth.

use crate::machine::Fpga;
use crate::profile::KernelProfile;

/// Which FPGA design is modelled.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FpgaDesign {
    /// Von-Neumann port: per-read DDR latency.
    Initial,
    /// Dataflow + shift-buffer (the stack's automatic transformation).
    Optimized,
}

/// Throughput in GPts/s.
pub fn fpga_throughput(profile: &KernelProfile, fpga: &Fpga, design: FpgaDesign) -> f64 {
    // Stencil reads per written cell come from the really-compiled
    // bytecode (loads_per_point is normalised to written points, so fused
    // multi-output kernels are already accounted for).
    let reads_per_cell = profile.loads_per_point.max(1.0);
    match design {
        FpgaDesign::Initial => {
            // Each read pays the DDR latency, with limited pipelining of
            // outstanding requests.
            let ns_per_cell = reads_per_cell * fpga.ddr_latency_ns / fpga.memory_parallelism;
            1.0 / ns_per_cell
        }
        FpgaDesign::Optimized => {
            // One cell per cycle, degraded by stalls; deeper multi-region
            // dataflow graphs (tracer advection: 18 regions) pay extra
            // handshake stalls; bounded by streaming DDR traffic.
            let region_stall = (profile.regions.max(1) as f64).powf(1.0 / 3.0);
            let cycle_rate = fpga.freq_mhz * 1e6 * fpga.pipeline_efficiency / region_stall / 1e9;
            let stream_rate = fpga.ddr_bw_gbs / (2.0 * profile.dtype_bytes); // GPts/s
            cycle_rate.min(stream_rate)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::alveo_u280;

    fn profile(loads: f64, inputs: f64) -> KernelProfile {
        KernelProfile {
            name: "k".into(),
            dims: 3,
            points: 8e6,
            flops_per_point: loads * 2.0,
            loads_per_point: loads,
            input_buffers: inputs,
            output_buffers: 1.0,
            radius: 1,
            regions: 1,
            dtype_bytes: 4.0,
        }
    }

    #[test]
    fn table1_magnitudes() {
        // Paper Table 1: initial ~1e-3 GPts/s, optimized ~0.1-0.15,
        // improvements of 100-214x.
        let fpga = alveo_u280();
        let p = profile(19.0, 1.0); // PW-advection-like (19 loads/cell)
        let initial = fpga_throughput(&p, &fpga, FpgaDesign::Initial);
        let optimized = fpga_throughput(&p, &fpga, FpgaDesign::Optimized);
        assert!(initial > 1e-4 && initial < 1e-2, "initial {initial}");
        assert!(optimized > 0.05 && optimized < 0.3, "optimized {optimized}");
        let improvement = optimized / initial;
        assert!(improvement > 80.0 && improvement < 400.0, "improvement {improvement}x");
    }

    #[test]
    fn optimized_design_is_clock_or_bandwidth_bound() {
        let fpga = alveo_u280();
        let p = profile(10.0, 1.0);
        let t = fpga_throughput(&p, &fpga, FpgaDesign::Optimized);
        let clock_bound = fpga.freq_mhz * 1e6 * fpga.pipeline_efficiency / 1e9;
        assert!(t <= clock_bound + 1e-12);
    }

    #[test]
    fn heavier_stencils_are_slower_initially() {
        let fpga = alveo_u280();
        let light = fpga_throughput(&profile(5.0, 1.0), &fpga, FpgaDesign::Initial);
        let heavy = fpga_throughput(&profile(20.0, 2.0), &fpga, FpgaDesign::Initial);
        assert!(heavy < light);
    }

    #[test]
    fn falls_short_of_v100_as_in_paper() {
        // "the FPGA numbers reported in table 1 fall short of the NVIDIA
        // V100 GPU performance".
        let fpga = alveo_u280();
        let gpu = crate::machine::v100();
        let p = profile(19.0, 1.0);
        let f = fpga_throughput(&p, &fpga, FpgaDesign::Optimized);
        let g = crate::gpu::gpu_throughput(&p, &gpu, crate::gpu::GpuPipeline::XdslCuda);
        assert!(g > f, "V100 {g} > U280 {f}");
    }
}
