//! CPU single-node roofline and multi-node strong-scaling models.
//!
//! ## Single node (Figs. 7, 10a)
//!
//! `time/point = max(bytes / (bw_eff · BW), flops / (flop_eff · peak))`
//! plus a per-parallel-region barrier term (the `kmp_wait_template`
//! effect of §6.2). The pipeline-dependent efficiencies are the model's
//! calibrated constants:
//!
//! | pipeline | flop_eff (2D/3D) | bw_eff (2D/3D) | barrier | rationale |
//! |---|---|---|---|---|
//! | xDSL            | 0.20 / 0.05 | 0.85 / 0.65 | 25 µs/region | "limited vectorization performance of our current lowered LLVM IR" (§6.1): simple 2D inner loops still auto-vectorize, deep 3D nests mostly do not, and their address arithmetic also costs effective bandwidth; the scf→omp lowering opens one parallel region (and barrier) per stencil region |
//! | Devito (native) | 0.35 | 0.60 / 0.80 | 5 µs | vendor-compiler AVX2 vectorization (≈1/3 of FMA peak is typical for real stencils); Devito's cache blocking is tuned for the 3D production workloads, while its 2D configuration leaves bandwidth on the table at the 8-rank NUMA layout — this is where the paper's 2D xDSL wins come from |
//! | Cray-PSyclone   | 0.30 | 0.80 | 5 µs | "the Cray compiler is undertaking numerous HPC optimizations" |
//! | GNU-PSyclone    | 0.05 | 0.35 | 5 µs | "PSyclone with the GNU compiler is performing considerably worse": neither vectorized nor streaming-friendly |
//!
//! ## Strong scaling (Figs. 8, 11)
//!
//! `T(R ranks) = T_comp/R + α·messages + volume/(β·overlap)`; Devito's
//! "more advanced communication techniques" (diagonal exchanges,
//! §6.1/Bisbas et al. 2023) are modelled as partial overlap of
//! communication with computation.

use crate::machine::{CpuNode, Interconnect};
use crate::profile::KernelProfile;

/// Which compilation pipeline produced the executable.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CpuPipeline {
    /// The shared stack (this paper).
    Xdsl,
    /// Native Devito (flop-reduced, vendor-vectorized).
    DevitoNative,
    /// PSyclone compiled with the Cray compiler.
    PsycloneCray,
    /// PSyclone compiled with the GNU compiler.
    PsycloneGnu,
}

impl CpuPipeline {
    /// Fraction of peak flops the pipeline's code achieves.
    pub fn flop_efficiency(self, dims: usize) -> f64 {
        match self {
            CpuPipeline::Xdsl => {
                if dims >= 3 {
                    0.05
                } else {
                    0.20
                }
            }
            CpuPipeline::DevitoNative => 0.35,
            CpuPipeline::PsycloneCray => 0.30,
            CpuPipeline::PsycloneGnu => 0.05,
        }
    }

    /// Fraction of STREAM bandwidth the pipeline's loops achieve.
    pub fn bandwidth_efficiency(self, dims: usize) -> f64 {
        match self {
            CpuPipeline::Xdsl => {
                if dims >= 3 {
                    0.65
                } else {
                    0.85
                }
            }
            CpuPipeline::DevitoNative => {
                if dims >= 3 {
                    0.80
                } else {
                    0.60
                }
            }
            CpuPipeline::PsycloneCray => 0.80,
            CpuPipeline::PsycloneGnu => 0.35,
        }
    }

    /// Whether the generated loops are cache-tiled (affects the 3D
    /// plane-spill term of [`KernelProfile::bytes_per_point`]).
    pub fn tiled(self) -> bool {
        !matches!(self, CpuPipeline::PsycloneGnu)
    }

    /// Thread-barrier cost per parallel region per timestep, µs.
    pub fn barrier_us(self) -> f64 {
        match self {
            CpuPipeline::Xdsl => 25.0,
            _ => 5.0,
        }
    }
}

/// Seconds for one timestep on one node.
pub fn node_step_time(profile: &KernelProfile, node: &CpuNode, pipeline: CpuPipeline) -> f64 {
    let bytes = profile.bytes_per_point(pipeline.tiled()) * profile.points;
    let flops = profile.flops_per_point * profile.points;
    let t_mem = bytes / (pipeline.bandwidth_efficiency(profile.dims) * node.mem_bw_gbs * 1e9);
    let t_flop = flops / (pipeline.flop_efficiency(profile.dims) * node.peak_gflops_f32() * 1e9);
    let t_barrier = profile.regions as f64 * pipeline.barrier_us() * 1e-6;
    t_mem.max(t_flop) + t_barrier
}

/// Single-node throughput in GPts/s (the paper's unit).
pub fn node_throughput(profile: &KernelProfile, node: &CpuNode, pipeline: CpuPipeline) -> f64 {
    profile.points / node_step_time(profile, node, pipeline) / 1e9
}

/// Strong-scaling configuration.
#[derive(Clone, Debug)]
pub struct ScalingConfig {
    /// MPI ranks per node (8 on ARCHER2, one per NUMA region).
    pub ranks_per_node: u32,
    /// Cartesian decomposition rank (3 for the Devito benchmarks, 2 for
    /// the PSyclone ocean-model runs).
    pub decomp_dims: usize,
    /// Fraction of communication hidden behind computation (Devito's
    /// diagonal/overlapped exchanges: 0.55; plain xDSL swaps: 0.0).
    pub comm_overlap: f64,
    /// Global grid extents.
    pub global_shape: Vec<i64>,
}

/// Distributes `total` ranks over `dims` dimensions as evenly as possible
/// (mirrors `MPI_Dims_create` for powers of two).
pub fn rank_grid(total: u64, dims: usize) -> Vec<i64> {
    let mut grid = vec![1i64; dims];
    let mut remaining = total;
    let mut d = 0;
    while remaining > 1 {
        // Peel factors of two round-robin; odd remainders go to dim 0.
        let f = if remaining % 2 == 0 { 2 } else { remaining };
        grid[d % dims] *= f as i64;
        remaining /= f;
        d += 1;
    }
    grid.sort_unstable_by(|a, b| b.cmp(a));
    grid
}

/// Throughput in GPts/s on `nodes` nodes.
pub fn strong_scaling(
    profile: &KernelProfile,
    node: &CpuNode,
    net: &Interconnect,
    config: &ScalingConfig,
    pipeline: CpuPipeline,
    nodes: u64,
) -> f64 {
    let ranks = nodes * config.ranks_per_node as u64;
    let grid = rank_grid(ranks, config.decomp_dims);
    // Rank-local extents.
    let mut local: Vec<f64> = config.global_shape.iter().map(|&s| s as f64).collect();
    for (d, &g) in grid.iter().enumerate() {
        local[d] /= g as f64;
    }
    // Compute: the node model at 1/nodes of the points (ranks within a
    // node share its roofline).
    let local_profile = profile.clone().scaled_points(profile.points / nodes as f64);
    let t_comp = node_step_time(&local_profile, node, pipeline);
    // Communication per rank per step: two faces per decomposed dim.
    let r = profile.radius.max(1) as f64;
    let mut volume_bytes = 0.0;
    let mut messages = 0.0;
    #[allow(clippy::needless_range_loop)] // parallel indexing into grid/local
    for d in 0..config.decomp_dims.min(local.len()) {
        if grid[d] < 2 {
            continue;
        }
        let face: f64 =
            local.iter().enumerate().filter(|&(e, _)| e != d).map(|(_, &s)| s).product();
        volume_bytes += 2.0 * face * r * profile.dtype_bytes * profile.input_buffers;
        messages += 2.0 * profile.regions as f64;
    }
    let t_comm_raw = messages * net.latency_us * 1e-6 + volume_bytes / (net.bandwidth_gbs * 1e9);
    let t_comm = t_comm_raw * (1.0 - config.comm_overlap);
    profile.points / (t_comp + t_comm) / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{archer2_node, slingshot};

    fn heat_profile(dims: usize, flops: f64, radius: i64, points: f64) -> KernelProfile {
        KernelProfile {
            name: "heat".into(),
            dims,
            points,
            flops_per_point: flops,
            loads_per_point: flops / 2.0,
            input_buffers: 1.0,
            output_buffers: 1.0,
            radius,
            regions: 1,
            dtype_bytes: 4.0,
        }
    }

    #[test]
    fn xdsl_wins_low_intensity_2d() {
        // Fig. 7a left: 2D heat, low AI → memory bound → xDSL's better
        // streaming wins by ~1.2-1.5x.
        let p = heat_profile(2, 8.0, 1, 16384.0 * 16384.0);
        let node = archer2_node();
        let xdsl = node_throughput(&p, &node, CpuPipeline::Xdsl);
        let devito = node_throughput(&p, &node, CpuPipeline::DevitoNative);
        let ratio = xdsl / devito;
        assert!(ratio > 1.1 && ratio < 1.6, "ratio {ratio}");
    }

    #[test]
    fn devito_wins_high_intensity_3d() {
        // Fig. 7a right: 3D high-SDO → xDSL compute bound → Devito's
        // vectorization + factorization wins (paper: xDSL at 0.6-0.8x).
        let p = heat_profile(3, 50.0, 3, 1024.0 * 1024.0 * 1024.0);
        let node = archer2_node();
        let xdsl = node_throughput(&p, &node, CpuPipeline::Xdsl);
        // Devito's factorized kernel does fewer flops for the same stencil.
        let mut p_devito = p.clone();
        p_devito.flops_per_point = 36.0;
        let devito = node_throughput(&p_devito, &node, CpuPipeline::DevitoNative);
        let ratio = xdsl / devito;
        assert!(ratio > 0.3 && ratio < 0.9, "ratio {ratio}");
    }

    #[test]
    fn gnu_trails_cray_and_xdsl() {
        // Fig. 10a: Cray ≈ xDSL (slight xDSL edge), GNU considerably
        // worse.
        // PW-advection-like: moderate flops keep xDSL memory-bound.
        let p = heat_profile(3, 14.0, 1, 512.0 * 512.0 * 512.0);
        let node = archer2_node();
        let xdsl = node_throughput(&p, &node, CpuPipeline::Xdsl);
        let cray = node_throughput(&p, &node, CpuPipeline::PsycloneCray);
        let gnu = node_throughput(&p, &node, CpuPipeline::PsycloneGnu);
        // xDSL and Cray land close to each other (Fig. 10a: slight edges
        // either way across sizes), both well ahead of GNU.
        let parity = xdsl / cray;
        assert!((0.7..1.3).contains(&parity), "near parity: {parity}");
        assert!(cray / gnu > 1.5, "GNU clearly behind: {}", cray / gnu);
    }

    #[test]
    fn barrier_overhead_hurts_many_region_kernels_at_small_sizes() {
        // Fig. 10a tracer advection: 18 regions × 25 µs dominates small
        // problems for xDSL, amortizes at larger ones.
        let mk = |points: f64| KernelProfile { regions: 18, ..heat_profile(3, 20.0, 1, points) };
        let node = archer2_node();
        let small_ratio = node_throughput(&mk(4e6), &node, CpuPipeline::Xdsl)
            / node_throughput(&mk(4e6), &node, CpuPipeline::PsycloneCray);
        let large_ratio = node_throughput(&mk(128e6), &node, CpuPipeline::Xdsl)
            / node_throughput(&mk(128e6), &node, CpuPipeline::PsycloneCray);
        assert!(small_ratio < 1.0, "xDSL behind at small sizes: {small_ratio}");
        assert!(large_ratio > small_ratio, "gap narrows with size");
    }

    #[test]
    fn rank_grid_is_balanced() {
        assert_eq!(rank_grid(8, 3), vec![2, 2, 2]);
        assert_eq!(rank_grid(1024, 3), vec![16, 8, 8]);
        assert_eq!(rank_grid(16, 2), vec![4, 4]);
        assert_eq!(rank_grid(1, 3), vec![1, 1, 1]);
    }

    #[test]
    fn scaling_curves_match_figure8_shape() {
        let p = heat_profile(3, 30.0, 2, 1024.0f64.powi(3));
        let node = archer2_node();
        let net = slingshot();
        let xdsl_cfg = ScalingConfig {
            ranks_per_node: 8,
            decomp_dims: 3,
            comm_overlap: 0.0,
            global_shape: vec![1024, 1024, 1024],
        };
        let devito_cfg = ScalingConfig { comm_overlap: 0.55, ..xdsl_cfg.clone() };
        let mut prev_x = 0.0;
        for nodes in [1u64, 2, 4, 8, 16, 32, 64, 128] {
            let x = strong_scaling(&p, &node, &net, &xdsl_cfg, CpuPipeline::Xdsl, nodes);
            let d = strong_scaling(&p, &node, &net, &devito_cfg, CpuPipeline::DevitoNative, nodes);
            assert!(x > prev_x, "xDSL keeps scaling at {nodes} nodes");
            // Fig. 8: Devito sits above xDSL across the whole sweep (its
            // per-node 3D code is faster and its communication overlaps).
            assert!(d > x, "Devito above xDSL at {nodes} nodes: {d} vs {x}");
            prev_x = x;
        }
        // Efficiency at 128 nodes is clearly sub-linear but useful.
        let t1 = strong_scaling(&p, &node, &net, &xdsl_cfg, CpuPipeline::Xdsl, 1);
        let t128 = strong_scaling(&p, &node, &net, &xdsl_cfg, CpuPipeline::Xdsl, 128);
        let eff = t128 / (t1 * 128.0);
        assert!(eff > 0.3 && eff < 1.0, "parallel efficiency {eff}");
    }
}
