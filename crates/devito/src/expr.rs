//! The symbolic expression layer: linear combinations of field accesses.
//!
//! Devito's symbolic input (SymPy expressions) ultimately lowers to the
//! access/coefficient form the paper shows in Fig. 5:
//!
//! ```text
//! (Eq(u[t1, x+2], u[t0, x+1] - 2.0*u[t0, x+2] + u[t0, x+3]),)
//! u => W : (t1, x+2)   R : (t0, x+3) (t0, x+2) (t0, x+1)
//! ```
//!
//! [`Expr`] is exactly that normal form: a map from [`Access`]es
//! (function, relative time, spatial offsets) to `f64` coefficients plus a
//! constant. Discretization (via Fornberg weights) and [`solve`] operate
//! on it directly.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// One read/write access: `func[t + time, x + offsets...]`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Access {
    /// The accessed time function.
    pub func: String,
    /// Relative time index (`0` = current, `1` = forward, `-1` =
    /// backward).
    pub time: i64,
    /// Relative spatial offsets.
    pub offsets: Vec<i64>,
}

impl Access {
    /// Creates an access.
    pub fn new(func: impl Into<String>, time: i64, offsets: Vec<i64>) -> Self {
        Access { func: func.into(), time, offsets }
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[t{:+}", self.func, self.time)?;
        for o in &self.offsets {
            write!(f, ", {o:+}")?;
        }
        write!(f, "]")
    }
}

/// A linear combination of accesses plus a constant.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Expr {
    /// Coefficient per access (zero coefficients are pruned).
    pub terms: BTreeMap<Access, f64>,
    /// The constant term.
    pub constant: f64,
}

impl Expr {
    /// The zero expression.
    pub fn zero() -> Expr {
        Expr::default()
    }

    /// A constant expression.
    pub fn num(v: f64) -> Expr {
        Expr { terms: BTreeMap::new(), constant: v }
    }

    /// A single access with coefficient 1.
    pub fn access(a: Access) -> Expr {
        let mut terms = BTreeMap::new();
        terms.insert(a, 1.0);
        Expr { terms, constant: 0.0 }
    }

    /// Adds `coeff * access` in place.
    pub fn add_term(&mut self, a: Access, coeff: f64) {
        let c = self.terms.entry(a).or_insert(0.0);
        *c += coeff;
        if *c == 0.0 {
            let key: Vec<Access> =
                self.terms.iter().filter(|(_, v)| **v == 0.0).map(|(k, _)| k.clone()).collect();
            for k in key {
                self.terms.remove(&k);
            }
        }
    }

    /// The coefficient of `a` (0 if absent).
    pub fn coeff(&self, a: &Access) -> f64 {
        self.terms.get(a).copied().unwrap_or(0.0)
    }

    /// Number of access terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The largest spatial radius over all accesses.
    pub fn radius(&self) -> i64 {
        self.terms.keys().flat_map(|a| a.offsets.iter().map(|o| o.abs())).max().unwrap_or(0)
    }

    /// Relative time indices read by this expression.
    pub fn times(&self) -> Vec<i64> {
        let mut ts: Vec<i64> = self.terms.keys().map(|a| a.time).collect();
        ts.sort_unstable();
        ts.dedup();
        ts
    }
}

impl Add for Expr {
    type Output = Expr;
    fn add(mut self, rhs: Expr) -> Expr {
        for (a, c) in rhs.terms {
            self.add_term(a, c);
        }
        self.constant += rhs.constant;
        self
    }
}

impl Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        self + (-rhs)
    }
}

impl Neg for Expr {
    type Output = Expr;
    fn neg(mut self) -> Expr {
        for c in self.terms.values_mut() {
            *c = -*c;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<f64> for Expr {
    type Output = Expr;
    fn mul(mut self, k: f64) -> Expr {
        if k == 0.0 {
            return Expr::zero();
        }
        for c in self.terms.values_mut() {
            *c *= k;
        }
        self.constant *= k;
        self
    }
}

/// An equation `lhs = rhs`.
#[derive(Clone, Debug, PartialEq)]
pub struct Eq {
    /// Left-hand side.
    pub lhs: Expr,
    /// Right-hand side.
    pub rhs: Expr,
}

impl Eq {
    /// Creates an equation.
    pub fn new(lhs: Expr, rhs: Expr) -> Eq {
        Eq { lhs, rhs }
    }
}

/// Solves `eq` for `target` (which must be a single unit-coefficient
/// access expression, e.g. `u.forward()`), returning the isolated
/// expression — the equivalent of Devito's `solve(eqn, u.forward)`.
///
/// # Errors
/// Reports a target that is not a single access, or an equation in which
/// the target does not appear.
pub fn solve(eq: &Eq, target: &Expr) -> Result<Expr, String> {
    if target.num_terms() != 1 || target.constant != 0.0 {
        return Err("solve target must be a single access".into());
    }
    let (access, &tc) = target.terms.iter().next().expect("one term");
    if tc != 1.0 {
        return Err("solve target must have coefficient 1".into());
    }
    let mut diff = eq.lhs.clone() - eq.rhs.clone();
    let a = diff.coeff(access);
    if a == 0.0 {
        return Err(format!("equation does not involve {access}"));
    }
    diff.terms.remove(access);
    // a*target + rest = 0  =>  target = -rest / a.
    Ok(-diff * (1.0 / a))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(t: i64, x: i64) -> Access {
        Access::new("u", t, vec![x])
    }

    #[test]
    fn linear_algebra_on_expressions() {
        let e = Expr::access(u(0, -1)) + Expr::access(u(0, 1)) - Expr::access(u(0, 0)) * 2.0;
        assert_eq!(e.num_terms(), 3);
        assert_eq!(e.coeff(&u(0, 0)), -2.0);
        assert_eq!(e.radius(), 1);
        assert_eq!(e.times(), vec![0]);
        let doubled = e.clone() * 2.0;
        assert_eq!(doubled.coeff(&u(0, 1)), 2.0);
        let cancelled = e.clone() - e;
        assert_eq!(cancelled.num_terms(), 0, "zero coefficients pruned");
    }

    #[test]
    fn solve_isolates_forward_access() {
        // (u[t+1] - u[t]) / dt = L  with dt = 0.5 and L = u[t,x+1].
        let dt = 0.5;
        let lhs = (Expr::access(u(1, 0)) - Expr::access(u(0, 0))) * (1.0 / dt);
        let rhs = Expr::access(u(0, 1));
        let solved = solve(&Eq::new(lhs, rhs), &Expr::access(u(1, 0))).unwrap();
        // u[t+1] = u[t] + dt * u[t, x+1].
        assert_eq!(solved.coeff(&u(0, 0)), 1.0);
        assert_eq!(solved.coeff(&u(0, 1)), dt);
        assert_eq!(solved.num_terms(), 2);
    }

    #[test]
    fn solve_second_order_time() {
        // (u[t+1] - 2u[t] + u[t-1]) / dt² = R.
        let dt = 0.1;
        let lhs = (Expr::access(u(1, 0)) - Expr::access(u(0, 0)) * 2.0 + Expr::access(u(-1, 0)))
            * (1.0 / (dt * dt));
        let rhs = Expr::access(u(0, 1)) * 3.0;
        let solved = solve(&Eq::new(lhs, rhs), &Expr::access(u(1, 0))).unwrap();
        assert!((solved.coeff(&u(0, 0)) - 2.0).abs() < 1e-12);
        assert!((solved.coeff(&u(-1, 0)) + 1.0).abs() < 1e-12);
        assert!((solved.coeff(&u(0, 1)) - 3.0 * dt * dt).abs() < 1e-12);
    }

    #[test]
    fn solve_rejects_bad_targets() {
        let e = Expr::access(u(1, 0)) + Expr::access(u(0, 0));
        assert!(solve(&Eq::new(e.clone(), Expr::zero()), &e).is_err());
        let missing = Expr::access(Access::new("v", 1, vec![0]));
        assert!(solve(&Eq::new(e, Expr::zero()), &missing).is_err());
        let scaled = Expr::access(u(1, 0)) * 2.0;
        assert!(solve(&Eq::new(scaled.clone(), Expr::zero()), &scaled).is_err());
    }

    #[test]
    fn display_matches_figure5_style() {
        assert_eq!(u(0, 2).to_string(), "u[t+0, +2]");
        assert_eq!(u(1, -1).to_string(), "u[t+1, -1]");
    }
}
