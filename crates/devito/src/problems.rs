//! The paper's benchmark problems, ready-built (§6.1):
//! *"(i) heat diffusion, a Jacobi-like stencil, and (ii) the isotropic
//! acoustic wave equation. We benchmark both problems in 2D and 3D for
//! varying space discretization orders (SDO) of 2, 4, and 8."*

use crate::expr::{solve, Eq};
use crate::grid::{Grid, TimeFunction};
use crate::operator::{Operator, OptLevel};

/// Heat diffusion `u_t = α ∇²u` at the given shape and space order.
///
/// # Errors
/// Reports malformed geometry.
pub fn heat(shape: &[i64], space_order: usize, alpha: f64) -> Result<Operator, String> {
    heat_with_opt(shape, space_order, alpha, OptLevel::Advanced)
}

/// [`heat`] at an explicit optimization level.
///
/// # Errors
/// Reports malformed geometry.
pub fn heat_with_opt(
    shape: &[i64],
    space_order: usize,
    alpha: f64,
    opt: OptLevel,
) -> Result<Operator, String> {
    let grid = Grid::new(shape.to_vec());
    // Diffusion CFL: dt <= h² / (2 d α); stay comfortably below.
    let min_h = grid.spacing.iter().cloned().fold(f64::INFINITY, f64::min);
    let dt = 0.2 * min_h * min_h / (alpha * shape.len() as f64);
    let grid = grid.with_dt(dt);
    let u = TimeFunction::new("u", &grid, space_order);
    let eqn = Eq::new(u.dt(), u.laplace() * alpha);
    let update = solve(&eqn, &u.forward())?;
    Ok(Operator::with_opt(vec![Eq::new(u.forward(), update)], opt)?.on_grid(grid))
}

/// The isotropic acoustic wave equation `u_tt = c² ∇²u` (2nd order in
/// time, as in the paper: "more points being read at the time dimension").
///
/// # Errors
/// Reports malformed geometry.
pub fn acoustic_wave(shape: &[i64], space_order: usize, velocity: f64) -> Result<Operator, String> {
    acoustic_wave_with_opt(shape, space_order, velocity, OptLevel::Advanced)
}

/// [`acoustic_wave`] at an explicit optimization level.
///
/// # Errors
/// Reports malformed geometry.
pub fn acoustic_wave_with_opt(
    shape: &[i64],
    space_order: usize,
    velocity: f64,
    opt: OptLevel,
) -> Result<Operator, String> {
    let grid = Grid::new(shape.to_vec());
    // Acoustic CFL: c dt / h <= 1/sqrt(d); use half of that.
    let min_h = grid.spacing.iter().cloned().fold(f64::INFINITY, f64::min);
    let dt = 0.5 * min_h / (velocity * (shape.len() as f64).sqrt());
    let grid = grid.with_dt(dt);
    let u = TimeFunction::new("u", &grid, space_order).with_time_order(2);
    let eqn = Eq::new(u.dt2(), u.laplace() * (velocity * velocity));
    let update = solve(&eqn, &u.forward())?;
    Ok(Operator::with_opt(vec![Eq::new(u.forward(), update)], opt)?.on_grid(grid))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_stencil_sizes() {
        // Figure labels: 5/9/13-pt in 2D, 7/13/19-pt in 3D (radii 1/2/3).
        for (so, p2, p3) in [(2usize, 5usize, 7usize), (4, 9, 13), (6, 13, 19)] {
            assert_eq!(heat(&[32, 32], so, 0.5).unwrap().stencil_points(), p2);
            assert_eq!(heat(&[8, 8, 8], so, 0.5).unwrap().stencil_points(), p3);
        }
    }

    #[test]
    fn wave_reads_backward_level() {
        let op = acoustic_wave(&[16, 16], 4, 1.5).unwrap();
        assert_eq!(op.time_order, 2);
        // Wave update includes the u[t-1] term beyond the laplacian
        // points: 9 spatial + 1 backward (the centre u[t] merges).
        assert_eq!(op.stencil_points(), 10);
    }

    #[test]
    fn wave_is_stable_under_cfl() {
        let op = acoustic_wave(&[64], 2, 1.0).unwrap();
        let shape = op.field_shape();
        let len: i64 = shape.iter().product();
        // A smooth initial pulse, identical at t-1 and t (zero velocity).
        let init: Vec<f64> = (0..len)
            .map(|i| {
                let x = i as f64 / len as f64 - 0.5;
                (-x * x * 200.0).exp()
            })
            .collect();
        let mut bufs = vec![init.clone(), init.clone(), init];
        let last = op.run(&mut bufs, 50, 1).unwrap();
        let max = bufs[last].iter().cloned().fold(0.0f64, f64::max);
        assert!(max <= 1.5, "solution bounded: {max}");
        assert!(max > 0.01, "wave did not vanish: {max}");
    }

    #[test]
    fn flops_grow_with_space_order() {
        let f2 = heat(&[32, 32], 2, 0.5).unwrap().flops_per_point();
        let f8 = heat(&[32, 32], 8, 0.5).unwrap().flops_per_point();
        assert!(f8 > f2, "{f8} > {f2}");
    }
}
