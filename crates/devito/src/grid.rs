//! `Grid` and `TimeFunction`: the user-facing modelling objects
//! (Listing 5 of the paper).

use crate::expr::{Access, Expr};
use crate::fornberg::centered_weights;
use std::rc::Rc;

/// A structured cartesian grid over the unit hyper-cube.
#[derive(Clone, Debug, PartialEq)]
pub struct Grid {
    /// Interior points per dimension.
    pub shape: Vec<i64>,
    /// Grid spacing per dimension.
    pub spacing: Vec<f64>,
    /// Timestep (Devito's `dt`; defaults to a conservative diffusion CFL
    /// value and can be overridden).
    pub dt: f64,
}

impl Grid {
    /// Creates a grid with unit-cube spacing `1 / (n + 1)` per dimension
    /// and a diffusion-stable default timestep.
    ///
    /// # Panics
    /// Panics on empty shapes or non-positive extents.
    pub fn new(shape: Vec<i64>) -> Grid {
        assert!(!shape.is_empty(), "grid needs at least one dimension");
        assert!(shape.iter().all(|&s| s > 0), "grid extents must be positive");
        let spacing: Vec<f64> = shape.iter().map(|&s| 1.0 / (s as f64 + 1.0)).collect();
        let min_h = spacing.iter().cloned().fold(f64::INFINITY, f64::min);
        let dt = 0.2 * min_h * min_h;
        Grid { shape, spacing, dt }
    }

    /// Overrides the timestep.
    pub fn with_dt(mut self, dt: f64) -> Grid {
        self.dt = dt;
        self
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }
}

/// A field discretized in time and space (Devito's `TimeFunction`).
///
/// `space_order` controls the FD accuracy (stencil radius =
/// `space_order / 2`); `time_order` controls how many past time levels
/// the update may read (1 for diffusion, 2 for wave equations).
#[derive(Clone, Debug)]
pub struct TimeFunction {
    /// Field name.
    pub name: String,
    /// The grid it lives on.
    pub grid: Rc<Grid>,
    /// Spatial discretization order (even).
    pub space_order: usize,
    /// Temporal order (1 or 2).
    pub time_order: usize,
}

impl TimeFunction {
    /// Creates a `TimeFunction` of the given space order (time order 1).
    ///
    /// # Panics
    /// Panics on odd or zero space orders.
    pub fn new(name: &str, grid: &Grid, space_order: usize) -> TimeFunction {
        assert!(space_order >= 2 && space_order % 2 == 0, "space order must be even");
        TimeFunction {
            name: name.to_string(),
            grid: Rc::new(grid.clone()),
            space_order,
            time_order: 1,
        }
    }

    /// Sets the time order (2 for second-derivative-in-time equations).
    pub fn with_time_order(mut self, time_order: usize) -> TimeFunction {
        assert!(matches!(time_order, 1 | 2), "time order must be 1 or 2");
        self.time_order = time_order;
        self
    }

    /// Stencil radius implied by the space order.
    pub fn radius(&self) -> i64 {
        (self.space_order / 2) as i64
    }

    fn at(&self, time: i64, offsets: Vec<i64>) -> Expr {
        Expr::access(Access::new(self.name.clone(), time, offsets))
    }

    /// `u` at the current timestep and centre point.
    pub fn center(&self) -> Expr {
        self.at(0, vec![0; self.grid.rank()])
    }

    /// `u.forward` — the to-be-computed value at `t + 1`.
    pub fn forward(&self) -> Expr {
        self.at(1, vec![0; self.grid.rank()])
    }

    /// `u.backward` — the value at `t - 1`.
    pub fn backward(&self) -> Expr {
        self.at(-1, vec![0; self.grid.rank()])
    }

    /// `u.dt` — first derivative in time (forward difference, as Devito
    /// uses for first-order-in-time updates).
    pub fn dt(&self) -> Expr {
        let dt = self.grid.dt;
        (self.forward() - self.center()) * (1.0 / dt)
    }

    /// `u.dt2` — second derivative in time (centred).
    pub fn dt2(&self) -> Expr {
        let dt = self.grid.dt;
        (self.forward() - self.center() * 2.0 + self.backward()) * (1.0 / (dt * dt))
    }

    /// Second spatial derivative along `dim` at the configured space
    /// order.
    pub fn d2(&self, dim: usize) -> Expr {
        let r = self.radius();
        let w = centered_weights(2, r as usize, self.grid.spacing[dim]);
        let mut e = Expr::zero();
        for (i, &wi) in w.iter().enumerate() {
            if wi == 0.0 {
                continue;
            }
            let mut offsets = vec![0i64; self.grid.rank()];
            offsets[dim] = i as i64 - r;
            e.add_term(Access::new(self.name.clone(), 0, offsets), wi);
        }
        e
    }

    /// First spatial derivative along `dim` (centred).
    pub fn dx(&self, dim: usize) -> Expr {
        let r = self.radius();
        let w = centered_weights(1, r as usize, self.grid.spacing[dim]);
        let mut e = Expr::zero();
        for (i, &wi) in w.iter().enumerate() {
            if wi == 0.0 {
                continue;
            }
            let mut offsets = vec![0i64; self.grid.rank()];
            offsets[dim] = i as i64 - r;
            e.add_term(Access::new(self.name.clone(), 0, offsets), wi);
        }
        e
    }

    /// `u.laplace` — the sum of second derivatives over all dimensions.
    pub fn laplace(&self) -> Expr {
        (0..self.grid.rank()).fold(Expr::zero(), |acc, d| acc + self.d2(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_defaults() {
        let g = Grid::new(vec![126]);
        assert_eq!(g.rank(), 1);
        assert!((g.spacing[0] - 1.0 / 127.0).abs() < 1e-15);
        assert!(g.dt > 0.0);
        let g2 = g.clone().with_dt(1e-3);
        assert_eq!(g2.dt, 1e-3);
    }

    #[test]
    fn laplace_point_counts_match_paper() {
        // Paper §6.1 labels its kernels 5/9/13-pt (2D) and 7/13/19-pt
        // (3D); those point counts correspond to stencil radii 1/2/3,
        // i.e. space orders 2/4/6 with the standard star (the text's
        // "SDO 8" would be a 17/25-pt star — see EXPERIMENTS.md).
        for (so, want_2d, want_3d) in [(2, 5, 7), (4, 9, 13), (6, 13, 19)] {
            let g2 = Grid::new(vec![64, 64]);
            let u2 = TimeFunction::new("u", &g2, so);
            assert_eq!(u2.laplace().num_terms(), want_2d, "2D so{so}");
            let g3 = Grid::new(vec![16, 16, 16]);
            let u3 = TimeFunction::new("u", &g3, so);
            assert_eq!(u3.laplace().num_terms(), want_3d, "3D so{so}");
        }
    }

    #[test]
    fn dt_discretization() {
        let g = Grid::new(vec![10]).with_dt(0.25);
        let u = TimeFunction::new("u", &g, 2);
        let e = u.dt();
        assert_eq!(e.coeff(&Access::new("u", 1, vec![0])), 4.0);
        assert_eq!(e.coeff(&Access::new("u", 0, vec![0])), -4.0);
    }

    #[test]
    fn dt2_reads_three_time_levels() {
        let g = Grid::new(vec![10]).with_dt(0.5);
        let u = TimeFunction::new("u", &g, 2).with_time_order(2);
        let e = u.dt2();
        assert_eq!(e.times(), vec![-1, 0, 1]);
        assert_eq!(e.coeff(&Access::new("u", 0, vec![0])), -8.0);
    }

    #[test]
    fn d2_uses_spacing() {
        let g = Grid::new(vec![9]); // h = 0.1
        let u = TimeFunction::new("u", &g, 2);
        let e = u.d2(0);
        let h = g.spacing[0];
        assert!((e.coeff(&Access::new("u", 0, vec![1])) - 1.0 / (h * h)).abs() < 1e-9);
        assert!((e.coeff(&Access::new("u", 0, vec![0])) + 2.0 / (h * h)).abs() < 1e-9);
    }

    #[test]
    fn radius_follows_space_order() {
        let g = Grid::new(vec![32, 32]);
        assert_eq!(TimeFunction::new("u", &g, 2).radius(), 1);
        assert_eq!(TimeFunction::new("u", &g, 8).radius(), 4);
        let u = TimeFunction::new("u", &g, 8);
        assert_eq!(u.laplace().radius(), 4);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_space_order_rejected() {
        let g = Grid::new(vec![8]);
        TimeFunction::new("u", &g, 3);
    }
}
