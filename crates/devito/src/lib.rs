//! # sten-devito — a Devito-like symbolic frontend
//!
//! The paper's §5.1 integrates Devito — "an open-source Python DSL and
//! compiler framework [...] aiming to ease the development of HPC
//! finite-difference PDE solvers" — with the shared stack by lowering its
//! symbolic PDEs to the `stencil` dialect. This crate is the Rust
//! equivalent of that frontend, mirroring the paper's Listing 5:
//!
//! ```
//! use sten_devito::{Grid, TimeFunction, Eq, solve, Operator};
//!
//! // Model the problem and automatically generate code.
//! let grid = Grid::new(vec![126]);
//! let u = TimeFunction::new("u", &grid, 2);
//! let eqn = Eq::new(u.dt(), u.laplace() * 0.5);
//! let op = Operator::new(vec![Eq::new(u.forward(), solve(&eqn, &u.forward()).unwrap())])
//!     .unwrap();
//! // JIT-compile through the shared stack and run.
//! let module = op.compile().unwrap();
//! assert!(sten_ir::print_module(&module).contains("stencil.apply"));
//! ```
//!
//! Pipeline: symbolic equation → finite-difference discretization with
//! [Fornberg weights](fornberg) of arbitrary space order → linear
//! normal form ([`expr::Expr`]) → `solve` for the forward access →
//! `stencil.apply` IR with time-buffered fields, exactly the
//! read/write-access extraction shown in the paper's Fig. 5.
//!
//! Devito's *flop-reduction* optimizations (the competitive baseline of
//! §6.1) are modelled by [`operator::OptLevel::Advanced`], which factors
//! symmetric stencil coefficients so each distinct coefficient costs one
//! multiply.
//!
//! Scope note: the normal form is linear in the field accesses, which
//! covers the paper's benchmarks (heat diffusion and the isotropic
//! acoustic wave equation); nonlinear terms are rejected at `Eq`
//! construction.

pub mod expr;
pub mod fornberg;
pub mod grid;
pub mod operator;
pub mod problems;

pub use expr::{solve, Access, Eq, Expr};
pub use fornberg::fd_weights;
pub use grid::{Grid, TimeFunction};
pub use operator::{Operator, OptLevel};
