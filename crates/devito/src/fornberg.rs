//! Fornberg's algorithm for finite-difference weights.
//!
//! Computes the weights of an arbitrary-order derivative on an arbitrary
//! point set (B. Fornberg, *Generation of finite difference formulas on
//! arbitrarily spaced grids*, Math. Comp. 51 (1988)). Devito derives its
//! stencil coefficients the same way (via SymPy); using the real algorithm
//! means our space-order sweep (2/4/8 in the paper's Fig. 7) produces the
//! true 5/9/13-point (2D) and 7/13/19-point (3D) stencils.

/// Weights for the `m`-th derivative at `x0` given sample locations `xs`.
///
/// Returns one weight per sample point.
///
/// # Panics
/// Panics if `m >= xs.len()` (not enough points for the derivative) or if
/// sample points repeat.
pub fn fd_weights(x0: f64, xs: &[f64], m: usize) -> Vec<f64> {
    let n = xs.len();
    assert!(m < n, "need at least {} points for derivative order {m}", m + 1);
    // Fornberg's triangular recurrence; delta[k][j] is the weight of
    // sample j for derivative order k using the first (j..=i) points.
    let mut delta = vec![vec![0.0f64; n]; m + 1];
    delta[0][0] = 1.0;
    let mut c1 = 1.0f64;
    for i in 1..n {
        let mut c2 = 1.0f64;
        let xi = xs[i];
        for j in 0..i {
            let c3 = xi - xs[j];
            assert!(c3 != 0.0, "repeated sample points");
            c2 *= c3;
            for k in (0..=m.min(i)).rev() {
                let prev = if k > 0 { delta[k - 1][i - 1] } else { 0.0 };
                if j == i - 1 {
                    delta[k][i] = c1 * (k as f64 * prev - (xs[i - 1] - x0) * delta[k][i - 1]) / c2;
                }
                let prev_j = if k > 0 { delta[k - 1][j] } else { 0.0 };
                delta[k][j] = ((xi - x0) * delta[k][j] - k as f64 * prev_j) / c3;
            }
        }
        c1 = c2;
    }
    delta[m].clone()
}

/// Centred weights for the `m`-th derivative with `radius` points on each
/// side, spacing `h` (the classic symmetric formulas).
pub fn centered_weights(m: usize, radius: usize, h: f64) -> Vec<f64> {
    let xs: Vec<f64> = (-(radius as i64)..=radius as i64).map(|i| i as f64 * h).collect();
    fd_weights(0.0, &xs, m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(got: &[f64], want: &[f64]) {
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            assert!((g - w).abs() < 1e-9, "{got:?} vs {want:?}");
        }
    }

    #[test]
    fn first_derivative_central() {
        assert_close(&centered_weights(1, 1, 1.0), &[-0.5, 0.0, 0.5]);
        assert_close(
            &centered_weights(1, 2, 1.0),
            &[1.0 / 12.0, -8.0 / 12.0, 0.0, 8.0 / 12.0, -1.0 / 12.0],
        );
    }

    #[test]
    fn second_derivative_so2() {
        assert_close(&centered_weights(2, 1, 1.0), &[1.0, -2.0, 1.0]);
    }

    #[test]
    fn second_derivative_so4() {
        assert_close(
            &centered_weights(2, 2, 1.0),
            &[-1.0 / 12.0, 4.0 / 3.0, -5.0 / 2.0, 4.0 / 3.0, -1.0 / 12.0],
        );
    }

    #[test]
    fn second_derivative_so8() {
        assert_close(
            &centered_weights(2, 4, 1.0),
            &[
                -1.0 / 560.0,
                8.0 / 315.0,
                -1.0 / 5.0,
                8.0 / 5.0,
                -205.0 / 72.0,
                8.0 / 5.0,
                -1.0 / 5.0,
                8.0 / 315.0,
                -1.0 / 560.0,
            ],
        );
    }

    #[test]
    fn spacing_scales_weights() {
        let h = 0.25;
        let w = centered_weights(2, 1, h);
        assert_close(&w, &[1.0 / (h * h), -2.0 / (h * h), 1.0 / (h * h)]);
    }

    #[test]
    fn one_sided_first_derivative() {
        // Forward difference: f'(0) ≈ f(1) - f(0).
        assert_close(&fd_weights(0.0, &[0.0, 1.0], 1), &[-1.0, 1.0]);
        // Three-point forward: -3/2, 2, -1/2.
        assert_close(&fd_weights(0.0, &[0.0, 1.0, 2.0], 1), &[-1.5, 2.0, -0.5]);
    }

    #[test]
    fn weights_differentiate_polynomials_exactly() {
        // d²/dx² of x³ at x0=2 is 12; a so4 stencil must be exact.
        let xs: Vec<f64> = (-2..=2).map(|i| 2.0 + i as f64 * 0.5).collect();
        let w = fd_weights(2.0, &xs, 2);
        let d2: f64 = xs.iter().zip(&w).map(|(x, w)| w * x * x * x).sum();
        assert!((d2 - 12.0).abs() < 1e-8, "{d2}");
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn too_few_points_panics() {
        fd_weights(0.0, &[0.0, 1.0], 2);
    }
}
