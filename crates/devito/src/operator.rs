//! The `Operator`: from solved update equations to stencil IR and
//! execution.
//!
//! Mirrors Devito's `Operator(Eq(u.forward, update))`: validates the
//! update, derives the halo from the access offsets (paper Fig. 5 — "we
//! parse info on read and write accesses [...] and use this information to
//! construct expressions using the stencil dialect"), emits a single-step
//! `func.func @step` over time-buffered `!stencil.field` arguments, and
//! optionally the `scf.for` time-loop form with iter-arg buffer rotation.
//!
//! [`OptLevel::Advanced`] applies Devito's flop-reduction factorization:
//! accesses sharing a coefficient are summed once and multiplied once,
//! which is what makes the native-Devito baseline of §6.1 strong at high
//! space orders.

use crate::expr::{Access, Eq, Expr};
use crate::grid::Grid;
use std::collections::BTreeMap;
use sten_dialects::{arith, func, scf};
use sten_ir::{Bounds, FieldType, Module, Op, Pass as _, TempType, Type, Value, ValueTable};

/// Devito-style optimization level.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum OptLevel {
    /// Straightforward term-by-term code generation.
    Noop,
    /// Coefficient factorization (flop reduction), Devito's `advanced`
    /// mode.
    #[default]
    Advanced,
}

/// A compiled stencil operator over one `TimeFunction`.
#[derive(Clone, Debug)]
pub struct Operator {
    /// The field being updated.
    pub func_name: String,
    /// The grid.
    pub grid: Grid,
    /// Time levels read below the forward level (1 or 2).
    pub time_order: usize,
    /// The solved update: `u[t+1, 0] = update`.
    pub update: Expr,
    /// Optimization level.
    pub opt: OptLevel,
    /// Halo width below/above per dimension.
    pub halo_lo: Vec<i64>,
    /// Halo width above per dimension.
    pub halo_hi: Vec<i64>,
}

impl Operator {
    /// Builds an operator from update equations. Currently one equation
    /// over one `TimeFunction` is supported (the paper's benchmarks are of
    /// this shape; multi-field pipelines live in the PSyclone frontend).
    ///
    /// # Errors
    /// Reports malformed updates (non-forward LHS, reads of times outside
    /// `{0, -1}`, or several equations).
    pub fn new(eqs: Vec<Eq>) -> Result<Operator, String> {
        Self::with_opt(eqs, OptLevel::Advanced)
    }

    /// Builds an operator at a specific optimization level.
    ///
    /// # Errors
    /// As [`Operator::new`].
    pub fn with_opt(eqs: Vec<Eq>, opt: OptLevel) -> Result<Operator, String> {
        let [eq] = eqs.as_slice() else {
            return Err("exactly one update equation is supported".into());
        };
        if eq.lhs.num_terms() != 1 || eq.lhs.constant != 0.0 {
            return Err("LHS must be a single forward access (use solve())".into());
        }
        let (target, &tc) = eq.lhs.terms.iter().next().expect("one term");
        if tc != 1.0 || target.time != 1 || target.offsets.iter().any(|&o| o != 0) {
            return Err("LHS must be u.forward()".into());
        }
        let update = eq.rhs.clone();
        let mut time_order = 1;
        for a in update.terms.keys() {
            if a.func != target.func {
                return Err("all accesses must be to the updated function".into());
            }
            match a.time {
                0 => {}
                -1 => time_order = 2,
                t => return Err(format!("unsupported relative time {t}")),
            }
        }
        let rank = target.offsets.len();
        let mut halo_lo = vec![0i64; rank];
        let mut halo_hi = vec![0i64; rank];
        for a in update.terms.keys() {
            for d in 0..rank {
                halo_lo[d] = halo_lo[d].max(-a.offsets[d]);
                halo_hi[d] = halo_hi[d].max(a.offsets[d]);
            }
        }
        // The grid (shape/spacing/dt) is attached with `on_grid`; the
        // `problems` builders do this automatically. A 1-point default
        // keeps the value well-formed until then.
        Ok(Operator {
            func_name: target.func.clone(),
            grid: Grid::new(vec![2; rank]),
            time_order,
            update,
            opt,
            halo_lo,
            halo_hi,
        })
    }

    /// Attaches the grid (shape and spacing) — required before
    /// compilation when using [`Operator::with_opt`] directly. The
    /// [`crate::problems`] builders do this automatically.
    pub fn on_grid(mut self, grid: Grid) -> Operator {
        self.grid = grid;
        self
    }

    /// Number of time-level buffers (time_order + 1).
    pub fn num_buffers(&self) -> usize {
        self.time_order + 1
    }

    /// Local field bounds: core `[0, n)` grown by the halo.
    pub fn field_bounds(&self) -> Bounds {
        Bounds::from_shape(&self.grid.shape).grown_asymmetric(&self.halo_lo, &self.halo_hi)
    }

    /// Allocation shape of each time buffer.
    pub fn field_shape(&self) -> Vec<i64> {
        self.field_bounds().shape()
    }

    /// Flop count per grid point at the configured optimization level.
    pub fn flops_per_point(&self) -> usize {
        let t = self.update.num_terms();
        let has_const = self.update.constant != 0.0;
        match self.opt {
            OptLevel::Noop => {
                // one mul per term + (t-1) adds (+1 for the constant).
                t + t.saturating_sub(1) + usize::from(has_const)
            }
            OptLevel::Advanced => {
                let groups = self.coefficient_groups();
                let adds_inside: usize =
                    groups.iter().map(|(_, accs)| accs.len().saturating_sub(1)).sum();
                let muls = groups.iter().filter(|(c, _)| (c.abs() - 1.0).abs() > 1e-15).count();
                adds_inside + muls + groups.len().saturating_sub(1) + usize::from(has_const)
            }
        }
    }

    /// Distinct stencil points read per output point.
    pub fn stencil_points(&self) -> usize {
        self.update.num_terms()
    }

    /// Groups accesses by (bit-exact) coefficient, ordered
    /// deterministically.
    fn coefficient_groups(&self) -> Vec<(f64, Vec<Access>)> {
        let mut groups: BTreeMap<u64, (f64, Vec<Access>)> = BTreeMap::new();
        for (a, &c) in &self.update.terms {
            groups.entry(c.to_bits()).or_insert((c, Vec::new())).1.push(a.clone());
        }
        groups.into_values().collect()
    }

    /// Emits the apply-body ops for one output point; returns the ops and
    /// the result value. `access_of` maps a symbolic access to IR.
    fn emit_update(
        &self,
        vt: &mut ValueTable,
        args_by_time: &BTreeMap<i64, Value>,
    ) -> (Vec<Op>, Value) {
        let mut ops: Vec<Op> = Vec::new();
        let mut acc: Option<Value> = None;
        let mut push_acc = |vt: &mut ValueTable, ops: &mut Vec<Op>, v: Value| match acc {
            None => acc = Some(v),
            Some(prev) => {
                let add = arith::addf(vt, prev, v);
                acc = Some(add.result(0));
                ops.push(add);
            }
        };
        let emit_access = |vt: &mut ValueTable, ops: &mut Vec<Op>, a: &Access| -> Value {
            let arg = args_by_time[&a.time];
            let op = sten_stencil::ops::access(vt, arg, a.offsets.clone());
            let v = op.result(0);
            ops.push(op);
            v
        };
        match self.opt {
            OptLevel::Noop => {
                for (a, &c) in &self.update.terms {
                    let av = emit_access(&mut *vt, &mut ops, a);
                    let cv = arith::const_f64(vt, c);
                    let cval = cv.result(0);
                    ops.push(cv);
                    let mul = arith::mulf(vt, cval, av);
                    let mv = mul.result(0);
                    ops.push(mul);
                    push_acc(vt, &mut ops, mv);
                }
            }
            OptLevel::Advanced => {
                for (c, accesses) in self.coefficient_groups() {
                    let mut group_sum: Option<Value> = None;
                    for a in &accesses {
                        let av = emit_access(&mut *vt, &mut ops, a);
                        group_sum = Some(match group_sum {
                            None => av,
                            Some(prev) => {
                                let add = arith::addf(vt, prev, av);
                                let v = add.result(0);
                                ops.push(add);
                                v
                            }
                        });
                    }
                    let gv = group_sum.expect("non-empty group");
                    let scaled = if (c - 1.0).abs() < 1e-300 {
                        gv
                    } else {
                        let cv = arith::const_f64(vt, c);
                        let cval = cv.result(0);
                        ops.push(cv);
                        let mul = arith::mulf(vt, cval, gv);
                        let v = mul.result(0);
                        ops.push(mul);
                        v
                    };
                    push_acc(vt, &mut ops, scaled);
                }
            }
        }
        if self.update.constant != 0.0 {
            let cv = arith::const_f64(vt, self.update.constant);
            let cval = cv.result(0);
            ops.push(cv);
            let prev = acc.expect("terms exist");
            let add = arith::addf(vt, prev, cval);
            acc = Some(add.result(0));
            ops.push(add);
        }
        let out = acc.expect("update has at least one term");
        ops.push(sten_stencil::ops::ret(vec![out]));
        (ops, out)
    }

    /// Compiles the single-step function `@step` at the stencil level,
    /// shape-inferred and ready for the shared stack.
    ///
    /// Argument order: `[u(t-1),] u(t), u(t+1)` — the driver rotates
    /// buffers between steps (time buffering).
    ///
    /// # Errors
    /// Reports inconsistent geometry.
    pub fn compile(&self) -> Result<Module, String> {
        let mut m = Module::new();
        let bounds = self.field_bounds();
        let field_ty = Type::Field(FieldType::new(bounds, Type::F64));
        let n_args = self.num_buffers();
        let (mut f, args) = func::definition(&mut m.values, "step", vec![field_ty; n_args], vec![]);
        // args: [t-1,] t, t+1.
        let mut args_by_time: BTreeMap<i64, Value> = BTreeMap::new();
        let read_times: Vec<i64> = if self.time_order == 2 { vec![-1, 0] } else { vec![0] };
        // Load each read time level.
        let mut loaded: BTreeMap<i64, Value> = BTreeMap::new();
        for (i, &t) in read_times.iter().enumerate() {
            let ld = sten_stencil::ops::load(&mut m.values, args[i]);
            loaded.insert(t, ld.result(0));
            f.region_block_mut(0).ops.push(ld);
        }
        let target_field = args[n_args - 1];

        let operands: Vec<Value> = read_times.iter().map(|t| loaded[t]).collect();
        let rank = self.grid.rank();
        let apply = sten_stencil::ops::apply(
            &mut m.values,
            operands,
            vec![Type::Temp(TempType::unknown(rank, Type::F64))],
            |vt, region_args| {
                for (i, &t) in read_times.iter().enumerate() {
                    args_by_time.insert(t, region_args[i]);
                }
                let (ops, _) = self.emit_update(vt, &args_by_time);
                ops
            },
        );
        let out = apply.result(0);
        f.region_block_mut(0).ops.push(apply);
        f.region_block_mut(0).ops.push(sten_stencil::ops::store(
            out,
            target_field,
            vec![0; rank],
            self.grid.shape.clone(),
        ));
        f.region_block_mut(0).ops.push(func::ret(vec![]));
        m.body_mut().ops.push(f);
        sten_stencil::ShapeInference.run(&mut m).map_err(|e| e.to_string())?;
        Ok(m)
    }

    /// Compiles the rank-local distributed form over `topology`, with
    /// `dmp.swap` halo exchanges inserted and redundant swaps removed.
    ///
    /// # Errors
    /// Reports indivisible decompositions.
    pub fn compile_distributed(&self, topology: &[i64]) -> Result<Module, String> {
        let mut m = self.compile()?;
        sten_dmp::DistributeStencil::new(topology.to_vec())
            .run(&mut m)
            .map_err(|e| e.to_string())?;
        sten_stencil::ShapeInference.run(&mut m).map_err(|e| e.to_string())?;
        sten_dmp::EliminateRedundantSwaps.run(&mut m).map_err(|e| e.to_string())?;
        Ok(m)
    }

    /// Compiles a whole-run function `@run` containing the `scf.for` time
    /// loop with iter-arg buffer rotation (the IR-level time-buffering the
    /// paper describes: "we add the temporal and spatial loops, including
    /// time-buffering").
    ///
    /// # Errors
    /// Reports inconsistent geometry.
    pub fn compile_with_time_loop(&self, timesteps: i64) -> Result<Module, String> {
        let mut m = self.compile()?;
        let bounds = self.field_bounds();
        let field_ty = Type::Field(FieldType::new(bounds, Type::F64));
        let n = self.num_buffers();
        let (mut f, args) =
            func::definition(&mut m.values, "run", vec![field_ty.clone(); n], vec![]);
        let lo = arith::const_index(&mut m.values, 0);
        let hi = arith::const_index(&mut m.values, timesteps);
        let one = arith::const_index(&mut m.values, 1);
        let (lov, hiv, onev) = (lo.result(0), hi.result(0), one.result(0));
        for op in [lo, hi, one] {
            f.region_block_mut(0).ops.push(op);
        }
        let update = self.update.clone();
        let opt = self.opt;
        let shape = self.grid.shape.clone();
        let rank = self.grid.rank();
        let time_order = self.time_order;
        let this = self.clone();
        let loop_op = scf::for_loop(&mut m.values, lov, hiv, onev, args.clone(), |vt, _t, bufs| {
            let _ = (&update, opt);
            let mut ops: Vec<Op> = Vec::new();
            // Roles: bufs = [t-1,] t, t+1 at this iteration.
            let read_times: Vec<i64> = if time_order == 2 { vec![-1, 0] } else { vec![0] };
            let mut loaded = Vec::new();
            for (i, _) in read_times.iter().enumerate() {
                let ld = sten_stencil::ops::load(vt, bufs[i]);
                loaded.push(ld.result(0));
                ops.push(ld);
            }
            let mut args_by_time = BTreeMap::new();
            let apply = sten_stencil::ops::apply(
                vt,
                loaded.clone(),
                vec![Type::Temp(TempType::unknown(rank, Type::F64))],
                |vt2, region_args| {
                    for (i, &t) in read_times.iter().enumerate() {
                        args_by_time.insert(t, region_args[i]);
                    }
                    let (body, _) = this.emit_update(vt2, &args_by_time);
                    body
                },
            );
            let outv = apply.result(0);
            ops.push(apply);
            ops.push(sten_stencil::ops::store(
                outv,
                bufs[bufs.len() - 1],
                vec![0; rank],
                shape.clone(),
            ));
            // Rotate: new (t-1) = old t, new t = old t+1 (just
            // written), new t+1 = oldest buffer (recycled).
            let rotated: Vec<Value> = (0..bufs.len()).map(|i| bufs[(i + 1) % bufs.len()]).collect();
            ops.push(scf::yield_op(rotated));
            ops
        });
        f.region_block_mut(0).ops.push(loop_op);
        f.region_block_mut(0).ops.push(func::ret(vec![]));
        m.body_mut().ops.push(f);
        sten_stencil::ShapeInference.run(&mut m).map_err(|e| e.to_string())?;
        Ok(m)
    }

    /// Runs `timesteps` steps on `buffers` (length [`Self::num_buffers`],
    /// each of [`Self::field_shape`] elements) using the compiled-kernel
    /// executor with `threads` workers. Returns the index of the buffer
    /// holding the final field.
    ///
    /// # Errors
    /// Reports compilation or shape problems.
    pub fn run(
        &self,
        buffers: &mut [Vec<f64>],
        timesteps: usize,
        threads: usize,
    ) -> Result<usize, String> {
        let module = self.compile()?;
        self.run_module(&module, buffers, timesteps, threads, None, 0)
    }

    /// Distributed variant of [`Operator::run`]: executes as `rank` of a
    /// SimMPI `world` on the rank-local `module` (from
    /// [`Operator::compile_distributed`]).
    ///
    /// # Errors
    /// Reports compilation, shape, or communication problems.
    pub fn run_distributed(
        &self,
        module: &Module,
        buffers: &mut [Vec<f64>],
        timesteps: usize,
        threads: usize,
        world: &std::sync::Arc<sten_interp::SimWorld>,
        rank: i64,
    ) -> Result<usize, String> {
        self.run_module(module, buffers, timesteps, threads, Some(world), rank)
    }

    fn run_module(
        &self,
        module: &Module,
        buffers: &mut [Vec<f64>],
        timesteps: usize,
        threads: usize,
        world: Option<&std::sync::Arc<sten_interp::SimWorld>>,
        rank: i64,
    ) -> Result<usize, String> {
        let nb = self.num_buffers();
        if buffers.len() != nb {
            return Err(format!("need {nb} time buffers, got {}", buffers.len()));
        }
        let pipeline = sten_exec::compile_module(module, "step")?;
        let mut runner = sten_exec::Runner::new(pipeline, threads);
        for k in 0..timesteps {
            let mut args: Vec<Vec<f64>> =
                (0..nb).map(|i| std::mem::take(&mut buffers[(k + i) % nb])).collect();
            match world {
                Some(w) => runner.step_distributed(&mut args, w, rank)?,
                None => runner.step(&mut args)?,
            }
            for (i, a) in args.into_iter().enumerate() {
                buffers[(k + i) % nb] = a;
            }
        }
        Ok(if timesteps == 0 { nb - 1 } else { (timesteps - 1 + nb - 1) % nb })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems;

    #[test]
    fn heat_operator_compiles_and_verifies() {
        let op = problems::heat(&[32, 32], 4, 0.5).unwrap();
        let m = op.compile().unwrap();
        let mut reg = sten_ir::DialectRegistry::new();
        sten_dialects::register_all(&mut reg);
        sten_stencil::register(&mut reg);
        sten_dmp::register(&mut reg);
        sten_ir::verify_module(&m, Some(&reg)).unwrap();
        let text = sten_ir::print_module(&m);
        assert!(text.contains("stencil.apply"));
        // so4 2D: 9-point stencil.
        assert_eq!(op.stencil_points(), 9);
        assert_eq!(op.halo_lo, vec![2, 2]);
    }

    #[test]
    fn factorization_reduces_flops_but_not_results() {
        let fac = problems::heat(&[30], 8, 0.5).unwrap();
        let noop = problems::heat_with_opt(&[30], 8, 0.5, OptLevel::Noop).unwrap();
        assert!(
            fac.flops_per_point() < noop.flops_per_point(),
            "{} vs {}",
            fac.flops_per_point(),
            noop.flops_per_point()
        );
        let shape = fac.field_shape();
        let len: i64 = shape.iter().product();
        let init: Vec<f64> = (0..len).map(|i| (i as f64 * 0.21).sin()).collect();
        let mut a = vec![init.clone(), init.clone()];
        let mut b = vec![init.clone(), init];
        let ia = fac.run(&mut a, 5, 1).unwrap();
        let ib = noop.run(&mut b, 5, 1).unwrap();
        assert_eq!(ia, ib);
        for (x, y) in a[ia].iter().zip(&b[ib]) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn heat_diffusion_decays_peak() {
        let op = problems::heat(&[64], 2, 0.5).unwrap();
        let shape = op.field_shape();
        let len: i64 = shape.iter().product();
        let mut init = vec![0.0; len as usize];
        init[32] = 1.0; // a spike
        let mut bufs = vec![init.clone(), init];
        let last = op.run(&mut bufs, 10, 1).unwrap();
        let peak = bufs[last].iter().cloned().fold(0.0f64, f64::max);
        assert!(peak < 1.0 && peak > 0.0, "diffusion spreads the spike: {peak}");
        // Mass is approximately conserved in the interior.
        let mass: f64 = bufs[last].iter().sum();
        assert!((mass - 1.0).abs() < 1e-6, "mass {mass}");
    }

    #[test]
    fn wave_operator_uses_three_buffers() {
        let op = problems::acoustic_wave(&[32, 32], 4, 1.0).unwrap();
        assert_eq!(op.time_order, 2);
        assert_eq!(op.num_buffers(), 3);
        let m = op.compile().unwrap();
        let f = m.lookup_symbol("step").unwrap();
        assert_eq!(func::FuncOp(f).function_type().inputs.len(), 3);
    }

    #[test]
    fn driver_rotation_matches_ir_time_loop() {
        let op = problems::heat(&[24], 2, 0.5).unwrap();
        let shape = op.field_shape();
        let len: i64 = shape.iter().product();
        let init: Vec<f64> = (0..len).map(|i| (i as f64 * 0.4).cos()).collect();
        let steps = 6usize;

        // Driver-rotated execution.
        let mut bufs = vec![init.clone(), init.clone()];
        let last = op.run(&mut bufs, steps, 1).unwrap();
        let driver_result = bufs[last].clone();

        // IR time loop, interpreted.
        let m = op.compile_with_time_loop(steps as i64).unwrap();
        let b0 = sten_interp::BufView::from_data(shape.clone(), init.clone());
        let b1 = sten_interp::BufView::from_data(shape.clone(), init);
        sten_interp::Interpreter::new(&m)
            .call_function(
                "run",
                vec![
                    sten_interp::RtValue::Buffer(b0.clone()),
                    sten_interp::RtValue::Buffer(b1.clone()),
                ],
            )
            .unwrap();
        // After `steps` iterations the final field sits in the buffer the
        // driver reports; the IR loop rotated in the same pattern.
        let ir_result = if last == 0 { b0.to_vec() } else { b1.to_vec() };
        for (a, b) in driver_result.iter().zip(&ir_result) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn distributed_heat_matches_serial() {
        let op = problems::heat(&[64], 2, 0.5).unwrap();
        let shape = op.field_shape(); // [66]
        let len = shape[0];
        let init: Vec<f64> = (0..len).map(|i| (i as f64 * 0.13).sin()).collect();
        let steps = 4usize;

        let mut serial = vec![init.clone(), init.clone()];
        let last = op.run(&mut serial, steps, 1).unwrap();
        let want = serial[last].clone();

        let dist = op.compile_distributed(&[2]).unwrap();
        let world = sten_interp::SimWorld::new(2);
        let core = 32i64;
        let results: Vec<(usize, Vec<f64>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|rank| {
                    let world = std::sync::Arc::clone(&world);
                    let op = op.clone();
                    let dist = &dist;
                    let init = init.clone();
                    scope.spawn(move || {
                        let start = rank * core;
                        let local: Vec<f64> =
                            (0..core + 2).map(|i| init[(start + i) as usize]).collect();
                        let mut bufs = vec![local.clone(), local];
                        let last =
                            op.run_distributed(dist, &mut bufs, steps, 1, &world, rank).unwrap();
                        (last, bufs[last].clone())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let mut got = init.clone();
        for (rank, (_, out)) in results.iter().enumerate() {
            let start = rank as i64 * core;
            for l in 1..=core {
                got[(start + l) as usize] = out[l as usize];
            }
        }
        for (i, (a, b)) in got.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-12, "mismatch at {i}: {a} vs {b}");
        }
    }
}
