//! SSA values and the table that owns their types.
//!
//! "All values have a name, and following the SSA property, each name can be
//! assigned at most once at any program location" (§3). A [`Value`] is a
//! lightweight id; its type lives in the [`ValueTable`] owned by the
//! enclosing [`Module`](crate::Module).

use crate::types::Type;
use std::fmt;

/// A handle to one SSA value.
///
/// Values are allocated from a [`ValueTable`] and are meaningless outside
/// the module whose table created them.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Value(u32);

impl Value {
    /// The raw index of the value in its table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a value from a raw index (used by the parser).
    pub fn from_index(i: usize) -> Value {
        Value(u32::try_from(i).expect("value index overflow"))
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Allocates values and records their types.
#[derive(Clone, Debug, Default)]
pub struct ValueTable {
    types: Vec<Type>,
}

impl ValueTable {
    /// An empty table.
    pub fn new() -> Self {
        ValueTable::default()
    }

    /// Allocates a fresh value of type `ty`.
    pub fn alloc(&mut self, ty: Type) -> Value {
        let v = Value(u32::try_from(self.types.len()).expect("too many values"));
        self.types.push(ty);
        v
    }

    /// The type of `v`.
    ///
    /// # Panics
    /// Panics if `v` was not allocated from this table.
    pub fn ty(&self, v: Value) -> &Type {
        &self.types[v.index()]
    }

    /// Replaces the type of `v` (used by shape inference to refine
    /// `!stencil.temp<?>` into bounded temps).
    pub fn set_ty(&mut self, v: Value, ty: Type) {
        self.types[v.index()] = ty;
    }

    /// Number of values allocated so far.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether no values have been allocated.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_assigns_sequential_ids_and_types() {
        let mut vt = ValueTable::new();
        let a = vt.alloc(Type::F64);
        let b = vt.alloc(Type::Index);
        assert_ne!(a, b);
        assert_eq!(vt.ty(a), &Type::F64);
        assert_eq!(vt.ty(b), &Type::Index);
        assert_eq!(vt.len(), 2);
        assert!(!vt.is_empty());
    }

    #[test]
    fn set_ty_refines_in_place() {
        let mut vt = ValueTable::new();
        let v = vt.alloc(Type::I32);
        vt.set_ty(v, Type::I64);
        assert_eq!(vt.ty(v), &Type::I64);
    }

    #[test]
    fn value_index_round_trip() {
        let v = Value::from_index(42);
        assert_eq!(v.index(), 42);
        assert_eq!(format!("{v:?}"), "%42");
    }
}
