//! Generic, dialect-independent transformations.
//!
//! The paper's shared stack "benefit\[s\] from applying transformation and
//! optimization passes from the shared infrastructure [...] such as cse,
//! loop-invariant-code-motion" (§5.1). This module provides the two passes
//! that need only SSA structure plus purity information: dead code
//! elimination and common subexpression elimination. Loop-aware transforms
//! (LICM, folding) live in `sten-dialects`, which knows the loop ops.

use crate::attributes::Attribute;
use crate::op::{Block, Op};
use crate::pass::{Pass, PassError, PassKind};
use crate::registry::DialectRegistry;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Removes pure operations none of whose results are used.
///
/// Runs to a fixpoint so chains of dead ops disappear in one invocation.
/// Ops are never removed if they are impure (unknown ops are conservatively
/// impure) or registered as terminators.
pub struct DeadCodeElimination {
    registry: Arc<DialectRegistry>,
}

impl DeadCodeElimination {
    /// Creates the pass with purity information from `registry`.
    pub fn new(registry: Arc<DialectRegistry>) -> Self {
        DeadCodeElimination { registry }
    }

    fn sweep(op: &mut Op, counts: &HashMap<Value, usize>, registry: &DialectRegistry) -> bool {
        let mut changed = false;
        for region in &mut op.regions {
            for block in &mut region.blocks {
                let before = block.ops.len();
                block.ops.retain(|o| {
                    let removable = registry.is_pure(&o.name)
                        && !registry.is_terminator(&o.name)
                        && o.results.iter().all(|r| counts.get(r).copied().unwrap_or(0) == 0);
                    !removable
                });
                changed |= block.ops.len() != before;
                for o in &mut block.ops {
                    changed |= Self::sweep(o, counts, registry);
                }
            }
        }
        changed
    }
}

impl Pass for DeadCodeElimination {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn kind(&self) -> PassKind {
        PassKind::Function
    }

    fn run_on_op(&self, op: &mut Op) -> Result<(), PassError> {
        // Values never cross function boundaries (SSA region scoping), so
        // use counts local to the anchored subtree are exact.
        loop {
            let counts = op.use_counts();
            if !Self::sweep(op, &counts, &self.registry) {
                return Ok(());
            }
        }
    }
}

/// Key identifying structurally equal pure ops.
#[derive(PartialEq, Eq, Hash)]
struct CseKey {
    name: String,
    operands: Vec<Value>,
    attrs: Vec<(String, Attribute)>,
}

/// Common subexpression elimination for pure, region-free ops.
///
/// Scoped like MLIR's CSE: an op inside a nested region may be replaced by
/// an equivalent op from an enclosing block (the enclosing value is visible
/// there), but never the other way around.
pub struct CommonSubexprElimination {
    registry: Arc<DialectRegistry>,
}

impl CommonSubexprElimination {
    /// Creates the pass with purity information from `registry`.
    pub fn new(registry: Arc<DialectRegistry>) -> Self {
        CommonSubexprElimination { registry }
    }

    fn process_block(
        &self,
        block: &mut Block,
        scopes: &mut Vec<HashMap<CseKey, Vec<Value>>>,
        subst: &mut HashMap<Value, Value>,
    ) {
        let ops = std::mem::take(&mut block.ops);
        scopes.push(HashMap::new());
        for mut op in ops {
            for operand in &mut op.operands {
                if let Some(&to) = subst.get(operand) {
                    *operand = to;
                }
            }
            for region in &mut op.regions {
                for inner in &mut region.blocks {
                    self.process_block(inner, scopes, subst);
                }
            }
            let eligible =
                self.registry.is_pure(&op.name) && op.regions.is_empty() && !op.results.is_empty();
            if eligible {
                let key = CseKey {
                    name: op.name.clone(),
                    operands: op.operands.clone(),
                    attrs: op.attrs.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
                };
                if let Some(prior) = scopes.iter().rev().find_map(|s| s.get(&key)) {
                    for (&dup, &orig) in op.results.iter().zip(prior) {
                        subst.insert(dup, orig);
                    }
                    continue; // drop the duplicate
                }
                scopes.last_mut().expect("pushed above").insert(key, op.results.clone());
            }
            block.ops.push(op);
        }
        scopes.pop();
    }
}

impl Pass for CommonSubexprElimination {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn kind(&self) -> PassKind {
        PassKind::Function
    }

    fn run_on_op(&self, op: &mut Op) -> Result<(), PassError> {
        let mut root_regions = std::mem::take(&mut op.regions);
        let mut scopes = Vec::new();
        let mut subst = HashMap::new();
        for region in &mut root_regions {
            for block in &mut region.blocks {
                self.process_block(block, &mut scopes, &mut subst);
            }
        }
        op.regions = root_regions;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Module, Region};
    use crate::registry::OpSpec;
    use crate::types::Type;

    fn registry() -> Arc<DialectRegistry> {
        let mut reg = DialectRegistry::new();
        reg.register(OpSpec::new("test.pure", "").pure());
        reg.register(OpSpec::new("test.effectful", ""));
        reg.register(OpSpec::new("test.yield", "").terminator());
        Arc::new(reg)
    }

    fn pure_op(m: &mut Module, operands: Vec<Value>) -> Op {
        let r = m.values.alloc(Type::I32);
        let mut op = Op::new("test.pure");
        op.operands = operands;
        op.results.push(r);
        op
    }

    #[test]
    fn dce_removes_dead_chains() {
        let mut m = Module::new();
        let a = pure_op(&mut m, vec![]);
        let av = a.result(0);
        let b = pure_op(&mut m, vec![av]); // uses a, itself unused
        m.body_mut().ops.push(a);
        m.body_mut().ops.push(b);
        DeadCodeElimination::new(registry()).run(&mut m).unwrap();
        assert!(m.body().ops.is_empty(), "whole dead chain removed in one run");
    }

    #[test]
    fn dce_keeps_effectful_and_used_ops() {
        let mut m = Module::new();
        let a = pure_op(&mut m, vec![]);
        let av = a.result(0);
        m.body_mut().ops.push(a);
        let mut store = Op::new("test.effectful");
        store.operands.push(av);
        m.body_mut().ops.push(store);
        DeadCodeElimination::new(registry()).run(&mut m).unwrap();
        assert_eq!(m.body().ops.len(), 2);
    }

    #[test]
    fn cse_merges_identical_pure_ops() {
        let mut m = Module::new();
        let a = pure_op(&mut m, vec![]);
        let b = pure_op(&mut m, vec![]);
        let (av, bv) = (a.result(0), b.result(0));
        m.body_mut().ops.push(a);
        m.body_mut().ops.push(b);
        let mut user = Op::new("test.effectful");
        user.operands.extend([av, bv]);
        m.body_mut().ops.push(user);
        CommonSubexprElimination::new(registry()).run(&mut m).unwrap();
        assert_eq!(m.body().ops.len(), 2, "duplicate removed");
        assert_eq!(m.body().ops[1].operands, vec![av, av], "uses redirected");
    }

    #[test]
    fn cse_respects_attrs() {
        let mut m = Module::new();
        let mut a = pure_op(&mut m, vec![]);
        a.set_attr("value", Attribute::int64(1));
        let mut b = pure_op(&mut m, vec![]);
        b.set_attr("value", Attribute::int64(2));
        let (av, bv) = (a.result(0), b.result(0));
        m.body_mut().ops.push(a);
        m.body_mut().ops.push(b);
        let mut user = Op::new("test.effectful");
        user.operands.extend([av, bv]);
        m.body_mut().ops.push(user);
        CommonSubexprElimination::new(registry()).run(&mut m).unwrap();
        assert_eq!(m.body().ops.len(), 3, "different attrs are not CSE'd");
    }

    #[test]
    fn cse_reaches_into_regions_but_not_out() {
        let mut m = Module::new();
        let outer = pure_op(&mut m, vec![]);
        let outer_v = outer.result(0);
        m.body_mut().ops.push(outer);

        // Region containing a duplicate of the outer op and a user.
        let dup = pure_op(&mut m, vec![]);
        let dup_v = dup.result(0);
        let mut user = Op::new("test.effectful");
        user.operands.push(dup_v);
        let mut container = Op::new("test.effectful");
        let mut blk = Block::new();
        blk.ops.push(dup);
        blk.ops.push(user);
        container.regions.push(Region::single(blk));
        m.body_mut().ops.push(container);

        CommonSubexprElimination::new(registry()).run(&mut m).unwrap();
        let container = &m.body().ops[1];
        let blk = container.region_block(0);
        assert_eq!(blk.ops.len(), 1, "inner duplicate folded to outer def");
        assert_eq!(blk.ops[0].operands, vec![outer_v]);
    }

    #[test]
    fn cse_scopes_popped_after_region() {
        // Two sibling regions each containing the same op: they must NOT be
        // CSE'd across regions (the first region's value is out of scope).
        let mut m = Module::new();
        let mk_region = |m: &mut Module| {
            let inner = pure_op(m, vec![]);
            let v = inner.result(0);
            let mut user = Op::new("test.effectful");
            user.operands.push(v);
            let mut blk = Block::new();
            blk.ops.push(inner);
            blk.ops.push(user);
            Region::single(blk)
        };
        let mut container = Op::new("test.effectful");
        let r1 = mk_region(&mut m);
        let r2 = mk_region(&mut m);
        container.regions.push(r1);
        container.regions.push(r2);
        m.body_mut().ops.push(container);
        CommonSubexprElimination::new(registry()).run(&mut m).unwrap();
        let container = &m.body().ops[0];
        assert_eq!(container.region_block(0).ops.len(), 2);
        assert_eq!(container.regions[1].block().ops.len(), 2);
    }
}
