//! A small convenience layer for constructing operations.
//!
//! Dialect crates expose typed helper functions; this builder backs them
//! with fresh-value allocation and keeps call sites terse.

use crate::attributes::Attribute;
use crate::op::{Block, Op, Region};
use crate::types::Type;
use crate::value::{Value, ValueTable};

/// Builds operations, allocating result values from a [`ValueTable`].
///
/// ```
/// use sten_ir::{Module, OpBuilder, Type, Attribute};
///
/// let mut module = Module::new();
/// let mut b = OpBuilder::new(&mut module.values);
/// let c = b.op_with_attrs(
///     "arith.constant",
///     vec![],
///     vec![Type::F64],
///     vec![("value", Attribute::f64(2.0))],
/// );
/// let two = c.result(0);
/// let add = b.op("arith.addf", vec![two, two], vec![Type::F64]);
/// module.body_mut().ops.push(c);
/// module.body_mut().ops.push(add);
/// ```
pub struct OpBuilder<'a> {
    /// The value table new results are allocated from.
    pub values: &'a mut ValueTable,
}

impl<'a> OpBuilder<'a> {
    /// Wraps a value table.
    pub fn new(values: &'a mut ValueTable) -> Self {
        OpBuilder { values }
    }

    /// Creates an op with the given operands, allocating one result per
    /// entry of `result_tys`.
    pub fn op(&mut self, name: &str, operands: Vec<Value>, result_tys: Vec<Type>) -> Op {
        let mut op = Op::new(name);
        op.operands = operands;
        op.results = result_tys.into_iter().map(|ty| self.values.alloc(ty)).collect();
        op
    }

    /// Like [`OpBuilder::op`], additionally setting attributes.
    pub fn op_with_attrs(
        &mut self,
        name: &str,
        operands: Vec<Value>,
        result_tys: Vec<Type>,
        attrs: Vec<(&str, Attribute)>,
    ) -> Op {
        let mut op = self.op(name, operands, result_tys);
        for (k, v) in attrs {
            op.set_attr(k, v);
        }
        op
    }

    /// Allocates a block argument of the given type and returns the block
    /// extended with it.
    pub fn block_with_args(&mut self, arg_tys: Vec<Type>) -> Block {
        let args = arg_tys.into_iter().map(|ty| self.values.alloc(ty)).collect();
        Block::with_args(args)
    }

    /// Wraps `ops` into a single-block region with arguments of `arg_tys`;
    /// returns the region and the argument values.
    pub fn region(&mut self, arg_tys: Vec<Type>, ops: Vec<Op>) -> (Region, Vec<Value>) {
        let mut block = self.block_with_args(arg_tys);
        let args = block.args.clone();
        block.ops = ops;
        (Region::single(block), args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_allocates_results() {
        let mut vt = ValueTable::new();
        let mut b = OpBuilder::new(&mut vt);
        let op = b.op("test.op", vec![], vec![Type::F64, Type::Index]);
        assert_eq!(op.results.len(), 2);
        assert_eq!(vt.ty(op.result(0)), &Type::F64);
        assert_eq!(vt.ty(op.result(1)), &Type::Index);
    }

    #[test]
    fn builder_sets_attrs() {
        let mut vt = ValueTable::new();
        let mut b = OpBuilder::new(&mut vt);
        let op = b.op_with_attrs("test.op", vec![], vec![], vec![("flag", Attribute::Unit)]);
        assert_eq!(op.attr("flag"), Some(&Attribute::Unit));
    }

    #[test]
    fn region_builder_exposes_args() {
        let mut vt = ValueTable::new();
        let mut b = OpBuilder::new(&mut vt);
        let (region, args) = b.region(vec![Type::Index], vec![Op::new("scf.yield")]);
        assert_eq!(args.len(), 1);
        assert_eq!(region.block().args, args);
        assert_eq!(region.block().ops.len(), 1);
    }
}
