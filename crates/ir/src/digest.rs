//! Stable content digests shared across the stack.
//!
//! A pair of independently-seeded FNV-1a-64 streams (stable across
//! processes, unlike `std`'s randomly-keyed SipHash) concatenated into a
//! printable 128-bit key. The compile cache keys modules with it, and
//! the resilient executor content-addresses checkpoints with it, so both
//! layers agree on what "same bytes" means.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;
/// Arbitrary second seed decorrelating the high digest half.
const FNV_OFFSET_2: u64 = 0x9e37_79b9_7f4a_7c15;

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Stable 128-bit content digest of `bytes`.
pub fn content_hash(bytes: &[u8]) -> u128 {
    (u128::from(fnv1a(FNV_OFFSET, bytes)) << 64) | u128::from(fnv1a(FNV_OFFSET_2, bytes))
}

/// An incremental [`content_hash`]: feed byte chunks, then [`Hasher128::finish`].
/// Hashing chunks in sequence produces exactly the digest of their
/// concatenation, so large buffers (checkpoint payloads) need no staging
/// copy.
#[derive(Clone, Debug)]
pub struct Hasher128 {
    lo: u64,
    hi: u64,
}

impl Default for Hasher128 {
    fn default() -> Self {
        Hasher128::new()
    }
}

impl Hasher128 {
    /// A fresh hasher (equivalent to `content_hash(b"")` when finished).
    pub fn new() -> Hasher128 {
        Hasher128 { lo: FNV_OFFSET, hi: FNV_OFFSET_2 }
    }

    /// Feeds a chunk of bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        self.lo = fnv1a(self.lo, bytes);
        self.hi = fnv1a(self.hi, bytes);
    }

    /// The 128-bit digest of everything fed so far.
    pub fn finish(&self) -> u128 {
        (u128::from(self.lo) << 64) | u128::from(self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_and_content_sensitive() {
        let a = content_hash(b"func.func @f");
        assert_eq!(a, content_hash(b"func.func @f"));
        assert_ne!(a, content_hash(b"func.func @g"));
        // Regression pin: persisted keys must survive refactors.
        assert_eq!(content_hash(b""), (u128::from(FNV_OFFSET) << 64) | u128::from(FNV_OFFSET_2));
    }

    #[test]
    fn incremental_hasher_matches_one_shot() {
        let mut h = Hasher128::new();
        h.update(b"hello ");
        h.update(b"world");
        assert_eq!(h.finish(), content_hash(b"hello world"));
        assert_eq!(Hasher128::new().finish(), content_hash(b""));
    }
}
