//! Attributes: static information carried on operations.
//!
//! As in the paper's §3, "operations may also carry attributes that encode
//! static information on the operation directly" — e.g. `arith.constant`
//! carries a `value` attribute. The `dmp` dialect contributes two structured
//! attributes, [`Attribute::Grid`] (`#dmp.grid<2x2>`) and
//! [`Attribute::Exchange`] (`#dmp.exchange<...>`), mirroring Listing 2.

use crate::types::Type;
use std::fmt;

/// A float attribute storing the exact bit pattern so that `Eq`/`Hash` are
/// well-defined and printing round-trips.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FloatAttr {
    bits: u64,
    /// The float type (`f32` or `f64`).
    pub ty: Type,
}

impl FloatAttr {
    /// Creates a float attribute of the given type.
    pub fn new(value: f64, ty: Type) -> Self {
        FloatAttr { bits: value.to_bits(), ty }
    }

    /// The stored value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits)
    }
}

/// One halo exchange declaration — the `#dmp.exchange` attribute of §4.2.
///
/// "Each exchange marks two rectangular subsections of the memory region to
/// exchange (one to send from, one to receive into) and the relative offset
/// of the rank with which these regions are to be exchanged."
///
/// * `at`/`size` describe the rectangular *receive* region inside the
///   rank-local buffer (the halo to be updated);
/// * `source_offset` translates that region to the *send* region (the owned
///   cells mirrored on the neighbour);
/// * `to` is the relative position of the neighbour in the cartesian grid.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ExchangeAttr {
    /// Start of the receive region (buffer-local coordinates).
    pub at: Vec<i64>,
    /// Extent of both regions.
    pub size: Vec<i64>,
    /// Translation from the receive region to the send region.
    pub source_offset: Vec<i64>,
    /// Relative neighbour position, e.g. `[0, -1]`.
    pub to: Vec<i64>,
}

impl ExchangeAttr {
    /// Creates an exchange declaration.
    ///
    /// # Panics
    /// Panics if the four vectors do not have equal length.
    pub fn new(at: Vec<i64>, size: Vec<i64>, source_offset: Vec<i64>, to: Vec<i64>) -> Self {
        assert!(
            at.len() == size.len()
                && size.len() == source_offset.len()
                && source_offset.len() == to.len(),
            "exchange components must have equal rank"
        );
        ExchangeAttr { at, size, source_offset, to }
    }

    /// Rank (dimensionality) of the exchange.
    pub fn rank(&self) -> usize {
        self.at.len()
    }

    /// Number of elements moved by this exchange.
    pub fn num_elements(&self) -> i64 {
        self.size.iter().product()
    }

    /// Start of the send region: `at + source_offset`.
    pub fn send_at(&self) -> Vec<i64> {
        self.at.iter().zip(&self.source_offset).map(|(a, o)| a + o).collect()
    }
}

/// The closed universe of attributes used by the in-tree dialects.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Attribute {
    /// The unit attribute (presence-only flags).
    Unit,
    /// A boolean.
    Bool(bool),
    /// A typed integer (e.g. `42 : i32`).
    Int(i64, Type),
    /// A typed float (e.g. `5.0e-1 : f64`).
    Float(FloatAttr),
    /// A string literal.
    Str(String),
    /// A type used as an attribute (e.g. `function_type` on `func.func`).
    Type(Type),
    /// An array of attributes.
    Array(Vec<Attribute>),
    /// A dense list of 64-bit integers (`dense<[1, 2]>`), used for offsets,
    /// shapes and bounds on operations.
    DenseI64(Vec<i64>),
    /// A reference to a symbol (`@main`).
    SymbolRef(String),
    /// The cartesian node topology `#dmp.grid<2x2>` of §4.2.
    Grid(Vec<i64>),
    /// A halo exchange declaration `#dmp.exchange<...>` of §4.2.
    Exchange(ExchangeAttr),
}

impl Attribute {
    /// Shorthand for an `i64` integer attribute.
    pub fn int64(v: i64) -> Attribute {
        Attribute::Int(v, Type::I64)
    }

    /// Shorthand for an `index`-typed integer attribute.
    pub fn index(v: i64) -> Attribute {
        Attribute::Int(v, Type::Index)
    }

    /// Shorthand for an `f64` float attribute.
    pub fn f64(v: f64) -> Attribute {
        Attribute::Float(FloatAttr::new(v, Type::F64))
    }

    /// The integer payload, if this is an integer attribute.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Attribute::Int(v, _) => Some(*v),
            _ => None,
        }
    }

    /// The float payload, if this is a float attribute.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Attribute::Float(f) => Some(f.value()),
            _ => None,
        }
    }

    /// The string payload, if this is a string attribute.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Attribute::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The symbol name, if this is a symbol reference.
    pub fn as_symbol(&self) -> Option<&str> {
        match self {
            Attribute::SymbolRef(s) => Some(s),
            _ => None,
        }
    }

    /// The type payload, if this is a type attribute.
    pub fn as_type(&self) -> Option<&Type> {
        match self {
            Attribute::Type(t) => Some(t),
            _ => None,
        }
    }

    /// The dense integer payload, if this is a dense attribute.
    pub fn as_dense(&self) -> Option<&[i64]> {
        match self {
            Attribute::DenseI64(v) => Some(v),
            _ => None,
        }
    }

    /// The array payload, if this is an array attribute.
    pub fn as_array(&self) -> Option<&[Attribute]> {
        match self {
            Attribute::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The grid topology, if this is a `#dmp.grid` attribute.
    pub fn as_grid(&self) -> Option<&[i64]> {
        match self {
            Attribute::Grid(v) => Some(v),
            _ => None,
        }
    }

    /// The exchange declaration, if this is a `#dmp.exchange` attribute.
    pub fn as_exchange(&self) -> Option<&ExchangeAttr> {
        match self {
            Attribute::Exchange(e) => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for FloatAttr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `{:?}` on f64 produces the shortest representation that
        // round-trips, which the parser relies on.
        write!(f, "{:?}", self.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_attr_round_trips_bits() {
        let a = FloatAttr::new(0.1, Type::F64);
        assert_eq!(a.value(), 0.1);
        let b = FloatAttr::new(0.1, Type::F64);
        assert_eq!(a, b);
        let c = FloatAttr::new(-0.0, Type::F64);
        let d = FloatAttr::new(0.0, Type::F64);
        assert_ne!(c, d, "distinct bit patterns are distinct attributes");
    }

    #[test]
    fn exchange_regions_from_paper_listing2() {
        // #dmp.exchange<at [4, 0] size [100, 4] source offset [0, 4] to [0, -1]>
        let e = ExchangeAttr::new(vec![4, 0], vec![100, 4], vec![0, 4], vec![0, -1]);
        assert_eq!(e.rank(), 2);
        assert_eq!(e.num_elements(), 400);
        assert_eq!(e.send_at(), vec![4, 4]);
    }

    #[test]
    #[should_panic(expected = "equal rank")]
    fn exchange_rejects_rank_mismatch() {
        ExchangeAttr::new(vec![0], vec![1, 2], vec![0], vec![0]);
    }

    #[test]
    fn attribute_accessors() {
        assert_eq!(Attribute::int64(7).as_int(), Some(7));
        assert_eq!(Attribute::f64(2.5).as_f64(), Some(2.5));
        assert_eq!(Attribute::Str("hi".into()).as_str(), Some("hi"));
        assert_eq!(Attribute::SymbolRef("main".into()).as_symbol(), Some("main"));
        assert_eq!(Attribute::DenseI64(vec![1, 2]).as_dense(), Some(&[1i64, 2][..]));
        assert_eq!(Attribute::Grid(vec![2, 2]).as_grid(), Some(&[2i64, 2][..]));
        assert!(Attribute::Unit.as_int().is_none());
        let arr = Attribute::Array(vec![Attribute::Unit]);
        assert_eq!(arr.as_array().unwrap().len(), 1);
        let ty = Attribute::Type(Type::F64);
        assert_eq!(ty.as_type(), Some(&Type::F64));
    }
}
