//! # sten-ir — an SSA+Regions intermediate representation framework
//!
//! This crate is the foundation of the *stencil-stack* reproduction of
//! "A shared compilation stack for distributed-memory parallelism in stencil
//! DSLs" (ASPLOS 2024). It plays the role that MLIR/xDSL play in the paper: a
//! compiler framework whose primary constructs are **operations** in static
//! single assignment (SSA) form, chained by the **values** they define and
//! use, with **regions** attached to operations to model nested control flow
//! and higher-level abstractions.
//!
//! The design follows the paper's §3 ("Sharing Abstractions through IRs"):
//!
//! * every [`Op`] has a dotted name (`dialect.op`), a list of operand
//!   [`Value`]s, a list of result [`Value`]s, an attribute dictionary of
//!   [`Attribute`]s encoding static information, and nested [`Region`]s;
//! * regions contain [`Block`]s carrying block arguments, and all the
//!   abstractions used by the stack use single-block regions (as in the
//!   paper);
//! * sets of operations belonging to one abstraction are organised into
//!   *dialects*, registered in a [`DialectRegistry`] that drives
//!   verification, purity information for generic transforms, and
//!   documentation.
//!
//! The textual format is a round-trippable clone of MLIR's *generic* syntax:
//! [`print_module`] and [`parse_module`] are exact inverses, which the test
//! suite checks at every lowering level of the stack.
//!
//! ## Deviation from MLIR
//!
//! MLIR's type and attribute systems are open (any dialect may add new ones
//! at runtime). Rust's enums are closed; we trade that extensibility for
//! exhaustive pattern matching and define the union of all in-tree dialect
//! types ([`Type`]) and attributes ([`Attribute`]) here. Operations remain
//! string-named and fully extensible, as in MLIR.
//!
//! ## Example
//!
//! ```
//! use sten_ir::{Module, Op, Attribute, Type, print_module, parse_module};
//!
//! let mut module = Module::new();
//! let c = module.values.alloc(Type::I32);
//! let mut op = Op::new("arith.constant");
//! op.results.push(c);
//! op.set_attr("value", Attribute::Int(42, Type::I32));
//! module.body_mut().ops.push(op);
//!
//! let text = print_module(&module);
//! let reparsed = parse_module(&text).unwrap();
//! assert_eq!(print_module(&reparsed), text);
//! ```

pub mod attributes;
pub mod builder;
pub mod digest;
pub mod op;
pub mod parser;
pub mod pass;
pub mod printer;
pub mod registry;
pub mod transforms;
pub mod types;
pub mod value;
pub mod verifier;

pub use attributes::{Attribute, ExchangeAttr, FloatAttr};
pub use builder::OpBuilder;
pub use digest::{content_hash, Hasher128};
pub use op::{Block, Module, Op, Region};
pub use parser::{parse_module, ParseError};
pub use pass::{FuncTiming, Pass, PassError, PassKind, PassManager, PassTiming};
pub use printer::{print_module, print_op};
pub use registry::{DialectRegistry, OpSpec};
pub use types::{Bounds, BoundsPoints, FieldType, FunctionType, MemRefType, TempType, Type};
pub use value::{Value, ValueTable};
pub use verifier::{verify_module, verify_op_in_scope, VerifyError};
