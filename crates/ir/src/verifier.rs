//! IR verification: SSA scoping plus registry-driven per-op checks.
//!
//! Verification enforces the SSA+Regions structural rules of §3 — "each name
//! can be assigned at most once at any program location" and values are only
//! visible in their defining region's subtree — and then delegates per-op
//! invariants to the [`DialectRegistry`].

use crate::op::{Module, Op};
use crate::registry::DialectRegistry;
use crate::value::{Value, ValueTable};
use std::collections::HashSet;
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Name of the op that failed.
    pub op: String,
    /// Description of the violation.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verification of '{}' failed: {}", self.op, self.message)
    }
}

impl std::error::Error for VerifyError {}

struct Verifier<'a> {
    values: &'a ValueTable,
    registry: Option<&'a DialectRegistry>,
    /// Values defined anywhere (for at-most-once definitions).
    defined: HashSet<Value>,
    /// Lexically visible values, one scope per region nesting level.
    scopes: Vec<HashSet<Value>>,
}

impl<'a> Verifier<'a> {
    fn fail(op: &Op, message: impl Into<String>) -> VerifyError {
        VerifyError { op: op.name.clone(), message: message.into() }
    }

    fn is_visible(&self, v: Value) -> bool {
        self.scopes.iter().any(|s| s.contains(&v))
    }

    fn define(&mut self, op: &Op, v: Value) -> Result<(), VerifyError> {
        if !self.defined.insert(v) {
            return Err(Self::fail(op, format!("value {v:?} defined more than once")));
        }
        if v.index() >= self.values.len() {
            return Err(Self::fail(op, format!("value {v:?} not allocated in the value table")));
        }
        self.scopes.last_mut().expect("scope stack non-empty").insert(v);
        Ok(())
    }

    fn verify_op(&mut self, op: &Op) -> Result<(), VerifyError> {
        if !op.name.contains('.') {
            return Err(Self::fail(op, "op names must be 'dialect.op'"));
        }
        for &operand in &op.operands {
            if !self.is_visible(operand) {
                return Err(Self::fail(
                    op,
                    format!("operand {operand:?} used before definition or out of scope"),
                ));
            }
        }
        for &result in &op.results {
            self.define(op, result)?;
        }
        if let Some(reg) = self.registry {
            if let Some(spec) = reg.get(&op.name) {
                (spec.verify)(op, self.values).map_err(|m| Self::fail(op, m))?;
            }
        }
        for region in &op.regions {
            for block in &region.blocks {
                self.scopes.push(HashSet::new());
                for &arg in &block.args {
                    self.define(op, arg)?;
                }
                for (i, nested) in block.ops.iter().enumerate() {
                    self.verify_op(nested)?;
                    if let Some(reg) = self.registry {
                        let is_last = i + 1 == block.ops.len();
                        if !is_last && reg.is_terminator(&nested.name) {
                            return Err(Self::fail(
                                nested,
                                "terminator op in the middle of a block",
                            ));
                        }
                    }
                }
                self.scopes.pop();
            }
        }
        Ok(())
    }
}

/// Verifies a module: SSA dominance/scoping, single definitions, op-name
/// shape, terminator placement, and registered per-op invariants.
///
/// Pass `None` as registry to run only the structural checks.
///
/// # Errors
/// Returns the first [`VerifyError`] encountered in a pre-order walk.
pub fn verify_module(
    module: &Module,
    registry: Option<&DialectRegistry>,
) -> Result<(), VerifyError> {
    let mut v = Verifier {
        values: &module.values,
        registry,
        defined: HashSet::new(),
        scopes: vec![HashSet::new()],
    };
    v.verify_op(&module.op)
}

/// Verifies the subtree rooted at `op` as if it sat inside a region where
/// the values in `visible` are in scope — the per-anchor verification the
/// pass scheduler runs on each `func.func` after a function-anchored pass
/// (with `visible` holding the module-level definitions). Checks the same
/// invariants as [`verify_module`] restricted to the subtree; definitions
/// outside it are trusted, not re-checked.
///
/// # Errors
/// Returns the first [`VerifyError`] encountered in a pre-order walk.
pub fn verify_op_in_scope(
    op: &Op,
    values: &ValueTable,
    registry: Option<&DialectRegistry>,
    visible: &HashSet<Value>,
) -> Result<(), VerifyError> {
    let mut v = Verifier {
        values,
        registry,
        defined: HashSet::new(),
        scopes: vec![visible.clone(), HashSet::new()],
    };
    v.verify_op(op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Block, Region};
    use crate::registry::OpSpec;
    use crate::types::Type;

    #[test]
    fn accepts_well_formed_module() {
        let mut m = Module::new();
        let a = m.values.alloc(Type::I32);
        let b = m.values.alloc(Type::I32);
        let mut c = Op::new("arith.constant");
        c.results.push(a);
        let mut add = Op::new("arith.addi");
        add.operands.extend([a, a]);
        add.results.push(b);
        m.body_mut().ops.push(c);
        m.body_mut().ops.push(add);
        assert!(verify_module(&m, None).is_ok());
    }

    #[test]
    fn rejects_use_before_def() {
        let mut m = Module::new();
        let a = m.values.alloc(Type::I32);
        let mut add = Op::new("arith.addi");
        add.operands.extend([a, a]);
        m.body_mut().ops.push(add);
        let err = verify_module(&m, None).unwrap_err();
        assert!(err.message.contains("before definition"), "{err}");
    }

    #[test]
    fn rejects_double_definition() {
        let mut m = Module::new();
        let a = m.values.alloc(Type::I32);
        let mut c1 = Op::new("arith.constant");
        c1.results.push(a);
        let mut c2 = Op::new("arith.constant");
        c2.results.push(a);
        m.body_mut().ops.push(c1);
        m.body_mut().ops.push(c2);
        let err = verify_module(&m, None).unwrap_err();
        assert!(err.message.contains("more than once"), "{err}");
    }

    #[test]
    fn rejects_escaping_region_values() {
        // A value defined inside a region must not be usable outside it.
        let mut m = Module::new();
        let inner = m.values.alloc(Type::I32);
        let mut region_op = Op::new("scf.execute_region");
        let mut block = Block::new();
        let mut c = Op::new("arith.constant");
        c.results.push(inner);
        block.ops.push(c);
        region_op.regions.push(Region::single(block));
        m.body_mut().ops.push(region_op);
        let mut user = Op::new("arith.addi");
        user.operands.extend([inner, inner]);
        m.body_mut().ops.push(user);
        let err = verify_module(&m, None).unwrap_err();
        assert!(err.message.contains("out of scope") || err.message.contains("before definition"));
    }

    #[test]
    fn outer_values_visible_in_nested_regions() {
        let mut m = Module::new();
        let outer = m.values.alloc(Type::I32);
        let mut c = Op::new("arith.constant");
        c.results.push(outer);
        m.body_mut().ops.push(c);
        let mut region_op = Op::new("scf.execute_region");
        let mut block = Block::new();
        let mut user = Op::new("arith.addi");
        user.operands.extend([outer, outer]);
        let r = m.values.alloc(Type::I32);
        user.results.push(r);
        block.ops.push(user);
        region_op.regions.push(Region::single(block));
        m.body_mut().ops.push(region_op);
        assert!(verify_module(&m, None).is_ok());
    }

    #[test]
    fn rejects_bad_op_names() {
        let mut m = Module::new();
        m.body_mut().ops.push(Op::new("noprefix"));
        let err = verify_module(&m, None).unwrap_err();
        assert!(err.message.contains("dialect.op"));
    }

    #[test]
    fn registry_verify_hook_is_invoked() {
        fn needs_one_operand(op: &Op, _: &ValueTable) -> Result<(), String> {
            if op.operands.len() == 1 {
                Ok(())
            } else {
                Err(format!("expected 1 operand, got {}", op.operands.len()))
            }
        }
        let mut reg = DialectRegistry::new();
        reg.register(OpSpec::new("test.unary", "").with_verify(needs_one_operand));
        let mut m = Module::new();
        m.body_mut().ops.push(Op::new("test.unary"));
        let err = verify_module(&m, Some(&reg)).unwrap_err();
        assert!(err.message.contains("expected 1 operand"));
    }

    #[test]
    fn rejects_mid_block_terminator() {
        let mut reg = DialectRegistry::new();
        reg.register(OpSpec::new("test.ret", "").terminator());
        reg.register(OpSpec::new("test.nop", ""));
        let mut m = Module::new();
        let mut f = Op::new("test.container");
        let mut b = Block::new();
        b.ops.push(Op::new("test.ret"));
        b.ops.push(Op::new("test.nop"));
        f.regions.push(Region::single(b));
        m.body_mut().ops.push(f);
        let err = verify_module(&m, Some(&reg)).unwrap_err();
        assert!(err.message.contains("middle of a block"));
    }
}
