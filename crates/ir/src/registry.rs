//! The dialect registry: op metadata driving verification and transforms.
//!
//! "Sets of operations, types, and attributes related to a common
//! abstraction are organized into distinct units called dialects" (§3).
//! Each dialect crate contributes [`OpSpec`]s via a `register` function;
//! `stencil_core::standard_registry()` composes the full stack.

use crate::op::Op;
use crate::value::ValueTable;
use std::collections::HashMap;

/// Verification callback for one operation kind.
pub type VerifyFn = fn(&Op, &ValueTable) -> Result<(), String>;

fn verify_nothing(_: &Op, _: &ValueTable) -> Result<(), String> {
    Ok(())
}

/// Static description of one operation kind.
#[derive(Clone)]
pub struct OpSpec {
    /// Fully qualified `dialect.op` name.
    pub name: &'static str,
    /// One-line documentation.
    pub summary: &'static str,
    /// Whether the op is side-effect free (eligible for CSE/DCE).
    pub pure: bool,
    /// Whether the op terminates a block (`scf.yield`, `func.return`, ...).
    pub terminator: bool,
    /// Structural/type verification.
    pub verify: VerifyFn,
}

impl OpSpec {
    /// A spec with no verification, not pure, not a terminator.
    pub fn new(name: &'static str, summary: &'static str) -> OpSpec {
        OpSpec { name, summary, pure: false, terminator: false, verify: verify_nothing }
    }

    /// Marks the op as pure.
    pub fn pure(mut self) -> OpSpec {
        self.pure = true;
        self
    }

    /// Marks the op as a block terminator.
    pub fn terminator(mut self) -> OpSpec {
        self.terminator = true;
        self
    }

    /// Attaches a verification function.
    pub fn with_verify(mut self, f: VerifyFn) -> OpSpec {
        self.verify = f;
        self
    }
}

impl std::fmt::Debug for OpSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpSpec")
            .field("name", &self.name)
            .field("pure", &self.pure)
            .field("terminator", &self.terminator)
            .finish()
    }
}

/// A collection of op specs from one or more dialects.
#[derive(Clone, Debug, Default)]
pub struct DialectRegistry {
    specs: HashMap<&'static str, OpSpec>,
}

impl DialectRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        DialectRegistry::default()
    }

    /// Registers a spec.
    ///
    /// # Panics
    /// Panics if an op with the same name was already registered — dialects
    /// must not collide.
    pub fn register(&mut self, spec: OpSpec) {
        let prev = self.specs.insert(spec.name, spec);
        assert!(prev.is_none(), "duplicate op registration: {}", prev.unwrap().name);
    }

    /// Looks up the spec for `name`.
    pub fn get(&self, name: &str) -> Option<&OpSpec> {
        self.specs.get(name)
    }

    /// Whether `name` is registered and pure. Unregistered ops are
    /// conservatively treated as impure.
    pub fn is_pure(&self, name: &str) -> bool {
        self.get(name).map(|s| s.pure).unwrap_or(false)
    }

    /// Whether `name` is registered as a terminator.
    pub fn is_terminator(&self, name: &str) -> bool {
        self.get(name).map(|s| s.terminator).unwrap_or(false)
    }

    /// Number of registered ops.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Iterates over all registered specs (unordered).
    pub fn iter(&self) -> impl Iterator<Item = &OpSpec> {
        self.specs.values()
    }

    /// The distinct dialect prefixes present, sorted.
    pub fn dialects(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> =
            self.specs.keys().filter_map(|n| n.split('.').next()).collect();
        names.sort_unstable();
        names.dedup();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_query() {
        let mut reg = DialectRegistry::new();
        reg.register(OpSpec::new("test.pure", "a pure op").pure());
        reg.register(OpSpec::new("test.term", "a terminator").terminator());
        assert!(reg.is_pure("test.pure"));
        assert!(!reg.is_pure("test.term"));
        assert!(!reg.is_pure("test.unknown"));
        assert!(reg.is_terminator("test.term"));
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
        assert_eq!(reg.dialects(), vec!["test"]);
    }

    #[test]
    #[should_panic(expected = "duplicate op registration")]
    fn duplicate_registration_panics() {
        let mut reg = DialectRegistry::new();
        reg.register(OpSpec::new("test.op", ""));
        reg.register(OpSpec::new("test.op", ""));
    }

    #[test]
    fn verify_hook_runs() {
        fn reject(_: &Op, _: &ValueTable) -> Result<(), String> {
            Err("nope".into())
        }
        let mut reg = DialectRegistry::new();
        reg.register(OpSpec::new("test.bad", "").with_verify(reject));
        let spec = reg.get("test.bad").unwrap();
        let vt = ValueTable::new();
        assert!((spec.verify)(&Op::new("test.bad"), &vt).is_err());
    }
}
