//! Operations, blocks, regions and modules — the structural core of the IR.
//!
//! "The primary constructs are operations, chained by the values they define
//! and use. [...] To represent control flow and to model higher-level
//! abstractions, operations can be nested in regions, which are themselves
//! attached to operations" (§3). Ownership is tree-shaped: a [`Module`] owns
//! a root `builtin.module` [`Op`], each op owns its [`Region`]s, each region
//! its [`Block`]s, each block its ops.

use crate::attributes::Attribute;
use crate::value::{Value, ValueTable};
use std::collections::{BTreeMap, HashMap};

/// One SSA operation.
#[derive(Clone, Debug, PartialEq)]
pub struct Op {
    /// The dotted `dialect.op` name.
    pub name: String,
    /// Values used by this operation.
    pub operands: Vec<Value>,
    /// Values defined by this operation.
    pub results: Vec<Value>,
    /// Static information attached to the operation. A `BTreeMap` keeps the
    /// printed form deterministic.
    pub attrs: BTreeMap<String, Attribute>,
    /// Nested regions.
    pub regions: Vec<Region>,
}

impl Op {
    /// Creates an op with no operands, results, attributes or regions.
    pub fn new(name: impl Into<String>) -> Op {
        Op {
            name: name.into(),
            operands: Vec::new(),
            results: Vec::new(),
            attrs: BTreeMap::new(),
            regions: Vec::new(),
        }
    }

    /// The dialect prefix of the op name (`"arith"` for `arith.addf`).
    pub fn dialect(&self) -> &str {
        self.name.split('.').next().unwrap_or("")
    }

    /// Looks up an attribute by name.
    pub fn attr(&self, key: &str) -> Option<&Attribute> {
        self.attrs.get(key)
    }

    /// Sets an attribute, replacing any previous value.
    pub fn set_attr(&mut self, key: impl Into<String>, value: Attribute) {
        self.attrs.insert(key.into(), value);
    }

    /// The `i`-th result.
    ///
    /// # Panics
    /// Panics if the op has fewer than `i + 1` results.
    pub fn result(&self, i: usize) -> Value {
        self.results[i]
    }

    /// The `i`-th operand.
    ///
    /// # Panics
    /// Panics if the op has fewer than `i + 1` operands.
    pub fn operand(&self, i: usize) -> Value {
        self.operands[i]
    }

    /// The single block of the `i`-th region.
    ///
    /// # Panics
    /// Panics if the region does not exist or has no blocks.
    pub fn region_block(&self, i: usize) -> &Block {
        self.regions[i].block()
    }

    /// Mutable access to the single block of the `i`-th region.
    ///
    /// # Panics
    /// Panics if the region does not exist or has no blocks.
    pub fn region_block_mut(&mut self, i: usize) -> &mut Block {
        self.regions[i].block_mut()
    }

    /// Pre-order walk over this op and all ops nested in its regions.
    pub fn walk<F: FnMut(&Op)>(&self, f: &mut F) {
        f(self);
        for region in &self.regions {
            for block in &region.blocks {
                for op in &block.ops {
                    op.walk(f);
                }
            }
        }
    }

    /// Pre-order mutable walk. The callback sees each op *before* its nested
    /// ops; structural edits to nested regions made by the callback are
    /// themselves walked.
    pub fn walk_mut<F: FnMut(&mut Op)>(&mut self, f: &mut F) {
        f(self);
        for region in &mut self.regions {
            for block in &mut region.blocks {
                for op in &mut block.ops {
                    op.walk_mut(f);
                }
            }
        }
    }

    /// Post-order walk (nested ops first).
    pub fn walk_post<F: FnMut(&Op)>(&self, f: &mut F) {
        for region in &self.regions {
            for block in &region.blocks {
                for op in &block.ops {
                    op.walk_post(f);
                }
            }
        }
        f(self);
    }

    /// Replaces every use of `from` with `to` in this op and all nested ops.
    /// Definitions (results, block arguments) are not touched.
    pub fn replace_uses(&mut self, from: Value, to: Value) {
        self.walk_mut(&mut |op| {
            for operand in &mut op.operands {
                if *operand == from {
                    *operand = to;
                }
            }
        });
    }

    /// Applies a value substitution map to every operand in the subtree.
    pub fn substitute_uses(&mut self, map: &HashMap<Value, Value>) {
        if map.is_empty() {
            return;
        }
        self.walk_mut(&mut |op| {
            for operand in &mut op.operands {
                if let Some(&to) = map.get(operand) {
                    *operand = to;
                }
            }
        });
    }

    /// Deep-clones this op with **fresh definitions**: every result and
    /// block argument in the subtree is re-allocated from `vt` (with its
    /// original type) and internal uses are remapped, so the clone can be
    /// inserted next to the original without violating SSA single
    /// assignment. Operands defined *outside* the subtree keep their
    /// original values (they still dominate the insertion point).
    pub fn clone_with_fresh_defs(&self, vt: &mut ValueTable) -> Op {
        let mut map: HashMap<Value, Value> = HashMap::new();
        self.clone_fresh_rec(vt, &mut map)
    }

    fn clone_fresh_rec(&self, vt: &mut ValueTable, map: &mut HashMap<Value, Value>) -> Op {
        let mut new = Op::new(self.name.clone());
        new.attrs = self.attrs.clone();
        // Defs dominate uses, so the map already holds every internal def
        // an operand can reference.
        new.operands = self.operands.iter().map(|o| *map.get(o).unwrap_or(o)).collect();
        for &r in &self.results {
            let fresh = vt.alloc(vt.ty(r).clone());
            map.insert(r, fresh);
            new.results.push(fresh);
        }
        for region in &self.regions {
            let mut new_region = Region::new();
            for block in &region.blocks {
                let mut new_block = Block::new();
                for &arg in &block.args {
                    let fresh = vt.alloc(vt.ty(arg).clone());
                    map.insert(arg, fresh);
                    new_block.args.push(fresh);
                }
                for op in &block.ops {
                    let cloned = op.clone_fresh_rec(vt, map);
                    new_block.ops.push(cloned);
                }
                new_region.blocks.push(new_block);
            }
            new.regions.push(new_region);
        }
        new
    }

    /// Counts how many times each value is used as an operand in the
    /// subtree rooted at this op.
    pub fn use_counts(&self) -> HashMap<Value, usize> {
        let mut counts = HashMap::new();
        self.walk(&mut |op| {
            for &operand in &op.operands {
                *counts.entry(operand).or_insert(0) += 1;
            }
        });
        counts
    }
}

/// A region: a list of blocks nested under an operation. All abstractions in
/// this stack use single-block regions (as the paper notes), but multi-block
/// regions are representable.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Region {
    /// The blocks of the region.
    pub blocks: Vec<Block>,
}

impl Region {
    /// An empty region (no blocks).
    pub fn new() -> Region {
        Region::default()
    }

    /// A region holding exactly one block.
    pub fn single(block: Block) -> Region {
        Region { blocks: vec![block] }
    }

    /// The first (entry) block.
    ///
    /// # Panics
    /// Panics if the region has no blocks.
    pub fn block(&self) -> &Block {
        &self.blocks[0]
    }

    /// Mutable access to the entry block.
    ///
    /// # Panics
    /// Panics if the region has no blocks.
    pub fn block_mut(&mut self) -> &mut Block {
        &mut self.blocks[0]
    }
}

/// A basic block: region arguments plus a straight-line list of operations.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Block {
    /// Block arguments ("region arguments" in the paper's terminology).
    pub args: Vec<Value>,
    /// Operations in program order.
    pub ops: Vec<Op>,
}

impl Block {
    /// An empty block with no arguments.
    pub fn new() -> Block {
        Block::default()
    }

    /// A block with the given arguments.
    pub fn with_args(args: Vec<Value>) -> Block {
        Block { args, ops: Vec::new() }
    }

    /// Appends `op` and returns a reference to it.
    pub fn push(&mut self, op: Op) -> &Op {
        self.ops.push(op);
        self.ops.last().expect("just pushed")
    }

    /// The last operation, conventionally the block terminator.
    pub fn terminator(&self) -> Option<&Op> {
        self.ops.last()
    }
}

/// A whole compilation unit: the value table plus the root `builtin.module`
/// operation.
#[derive(Clone, Debug)]
pub struct Module {
    /// Owns the types of all values appearing in `op`.
    pub values: ValueTable,
    /// The root operation; its single region's single block holds the
    /// module-level ops (functions, globals).
    pub op: Op,
}

impl Module {
    /// Creates an empty `builtin.module`.
    pub fn new() -> Module {
        let mut op = Op::new("builtin.module");
        op.regions.push(Region::single(Block::new()));
        Module { values: ValueTable::new(), op }
    }

    /// The module-level block.
    pub fn body(&self) -> &Block {
        self.op.region_block(0)
    }

    /// Mutable access to the module-level block.
    pub fn body_mut(&mut self) -> &mut Block {
        self.op.region_block_mut(0)
    }

    /// Finds a module-level op with symbol name `sym` (e.g. a `func.func`
    /// whose `sym_name` attribute matches).
    pub fn lookup_symbol(&self, sym: &str) -> Option<&Op> {
        self.body()
            .ops
            .iter()
            .find(|op| op.attr("sym_name").and_then(Attribute::as_str) == Some(sym))
    }

    /// Mutable variant of [`Module::lookup_symbol`].
    pub fn lookup_symbol_mut(&mut self, sym: &str) -> Option<&mut Op> {
        self.body_mut()
            .ops
            .iter_mut()
            .find(|op| op.attr("sym_name").and_then(Attribute::as_str) == Some(sym))
    }

    /// Pre-order walk over all ops in the module (excluding the root).
    pub fn walk<F: FnMut(&Op)>(&self, mut f: F) {
        for op in &self.body().ops {
            op.walk(&mut f);
        }
    }
}

impl Default for Module {
    fn default() -> Self {
        Module::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Type;

    fn simple_module() -> Module {
        let mut m = Module::new();
        let a = m.values.alloc(Type::I32);
        let b = m.values.alloc(Type::I32);
        let mut c0 = Op::new("arith.constant");
        c0.results.push(a);
        c0.set_attr("value", Attribute::Int(42, Type::I32));
        let mut add = Op::new("arith.addi");
        add.operands.extend([a, a]);
        add.results.push(b);
        m.body_mut().ops.push(c0);
        m.body_mut().ops.push(add);
        m
    }

    #[test]
    fn op_basics() {
        let m = simple_module();
        let add = &m.body().ops[1];
        assert_eq!(add.dialect(), "arith");
        assert_eq!(add.operand(0), add.operand(1));
        assert_eq!(add.result(0).index(), 1);
        assert!(m.body().ops[0].attr("value").is_some());
    }

    #[test]
    fn walk_visits_nested_ops_preorder() {
        let mut m = Module::new();
        let mut outer = Op::new("scf.for");
        let mut inner_block = Block::new();
        inner_block.ops.push(Op::new("arith.addi"));
        inner_block.ops.push(Op::new("scf.yield"));
        outer.regions.push(Region::single(inner_block));
        m.body_mut().ops.push(outer);

        let mut names = Vec::new();
        m.walk(|op| names.push(op.name.clone()));
        assert_eq!(names, vec!["scf.for", "arith.addi", "scf.yield"]);

        let mut post = Vec::new();
        m.op.walk_post(&mut |op| post.push(op.name.clone()));
        assert_eq!(post, vec!["arith.addi", "scf.yield", "scf.for", "builtin.module"]);
    }

    #[test]
    fn replace_uses_rewrites_operands_only() {
        let mut m = simple_module();
        let a = m.body().ops[0].result(0);
        let fresh = m.values.alloc(Type::I32);
        m.op.replace_uses(a, fresh);
        let add = &m.body().ops[1];
        assert_eq!(add.operands, vec![fresh, fresh]);
        // The definition of `a` is untouched.
        assert_eq!(m.body().ops[0].result(0), a);
    }

    #[test]
    fn substitute_uses_applies_map() {
        let mut m = simple_module();
        let a = m.body().ops[0].result(0);
        let fresh = m.values.alloc(Type::I32);
        let map = HashMap::from([(a, fresh)]);
        m.op.substitute_uses(&map);
        assert_eq!(m.body().ops[1].operands, vec![fresh, fresh]);
    }

    #[test]
    fn use_counts_counts_operands() {
        let m = simple_module();
        let a = m.body().ops[0].result(0);
        let counts = m.op.use_counts();
        assert_eq!(counts.get(&a), Some(&2));
    }

    #[test]
    fn lookup_symbol_finds_functions() {
        let mut m = Module::new();
        let mut f = Op::new("func.func");
        f.set_attr("sym_name", Attribute::Str("main".into()));
        m.body_mut().ops.push(f);
        assert!(m.lookup_symbol("main").is_some());
        assert!(m.lookup_symbol("other").is_none());
        assert!(m.lookup_symbol_mut("main").is_some());
    }

    #[test]
    fn clone_with_fresh_defs_remaps_internal_values_only() {
        let mut m = Module::new();
        let outer_def = m.values.alloc(Type::Index);
        let iv = m.values.alloc(Type::Index);
        let sum = m.values.alloc(Type::Index);
        let mut body = Block::with_args(vec![iv]);
        let mut add = Op::new("arith.addi");
        add.operands.extend([iv, outer_def]);
        add.results.push(sum);
        body.ops.push(add);
        let mut loop_op = Op::new("scf.parallel");
        loop_op.operands.push(outer_def);
        loop_op.regions.push(Region::single(body));

        let clone = loop_op.clone_with_fresh_defs(&mut m.values);
        // Outside defs are untouched.
        assert_eq!(clone.operand(0), outer_def);
        // Block args and results are fresh, and internal uses follow.
        let new_iv = clone.region_block(0).args[0];
        assert_ne!(new_iv, iv);
        let new_add = &clone.region_block(0).ops[0];
        assert_eq!(new_add.operands, vec![new_iv, outer_def]);
        assert_ne!(new_add.result(0), sum);
        assert_eq!(m.values.ty(new_add.result(0)), &Type::Index);
        // The original is untouched.
        assert_eq!(loop_op.region_block(0).args[0], iv);
    }

    #[test]
    fn block_terminator_is_last_op() {
        let mut b = Block::new();
        assert!(b.terminator().is_none());
        b.push(Op::new("arith.addi"));
        b.push(Op::new("scf.yield"));
        assert_eq!(b.terminator().unwrap().name, "scf.yield");
    }
}
