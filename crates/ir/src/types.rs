//! The type system of the IR.
//!
//! Following the paper, "each value has an associated type". The stack's
//! enhanced `stencil` dialect carries **domain bounds in the types** (rather
//! than as operation attributes, as the original Open Earth Compiler dialect
//! did), so bounds information is available to "any operation using
//! stencil-related types directly through their operands" — see §4.1 of the
//! paper. [`Bounds`] is that type-carried shape information.

use std::fmt;

/// Inclusive-lower, exclusive-upper bounds per dimension, in the *logical*
/// coordinates of the stencil program (which may be negative: halo regions
/// extend the domain below zero).
///
/// A field declared `!stencil.field<[-4,68]xf64>` covers indices
/// `-4..68` (72 points), matching the paper's `[lb,ub]` syntax.
///
/// ```
/// use sten_ir::Bounds;
/// let b = Bounds::new(vec![(-4, 68), (0, 64)]);
/// assert_eq!(b.rank(), 2);
/// assert_eq!(b.size(0), 72);
/// assert_eq!(b.num_points(), 72 * 64);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct Bounds(pub Vec<(i64, i64)>);

impl Bounds {
    /// Creates bounds from per-dimension `(lower, upper)` pairs.
    ///
    /// # Panics
    /// Panics if any `upper < lower`.
    pub fn new(dims: Vec<(i64, i64)>) -> Self {
        for &(lb, ub) in &dims {
            assert!(ub >= lb, "invalid bounds: [{lb},{ub}]");
        }
        Bounds(dims)
    }

    /// Bounds `[0, s)` for every entry of `shape`.
    pub fn from_shape(shape: &[i64]) -> Self {
        Bounds(shape.iter().map(|&s| (0, s)).collect())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Extent of dimension `d`.
    pub fn size(&self, d: usize) -> i64 {
        self.0[d].1 - self.0[d].0
    }

    /// Extents of all dimensions.
    pub fn shape(&self) -> Vec<i64> {
        (0..self.rank()).map(|d| self.size(d)).collect()
    }

    /// Lower bounds of all dimensions.
    pub fn lower(&self) -> Vec<i64> {
        self.0.iter().map(|&(lb, _)| lb).collect()
    }

    /// Upper bounds of all dimensions.
    pub fn upper(&self) -> Vec<i64> {
        self.0.iter().map(|&(_, ub)| ub).collect()
    }

    /// Total number of grid points covered.
    pub fn num_points(&self) -> i64 {
        self.0.iter().map(|&(lb, ub)| ub - lb).product()
    }

    /// Whether `other` is fully contained in `self`.
    pub fn contains(&self, other: &Bounds) -> bool {
        self.rank() == other.rank()
            && self
                .0
                .iter()
                .zip(&other.0)
                .all(|(&(alb, aub), &(blb, bub))| alb <= blb && bub <= aub)
    }

    /// Whether the point `pt` lies within the bounds.
    pub fn contains_point(&self, pt: &[i64]) -> bool {
        pt.len() == self.rank() && self.0.iter().zip(pt).all(|(&(lb, ub), &p)| lb <= p && p < ub)
    }

    /// Grows the bounds by `radius` in every direction of every dimension
    /// (the halo extension used when allocating fields).
    pub fn grown(&self, radius: i64) -> Bounds {
        Bounds(self.0.iter().map(|&(lb, ub)| (lb - radius, ub + radius)).collect())
    }

    /// Grows each dimension `d` by `lo[d]` below and `hi[d]` above.
    pub fn grown_asymmetric(&self, lo: &[i64], hi: &[i64]) -> Bounds {
        Bounds(self.0.iter().enumerate().map(|(d, &(lb, ub))| (lb - lo[d], ub + hi[d])).collect())
    }

    /// The intersection of two equal-rank bounds, or `None` if empty in any
    /// dimension.
    pub fn intersect(&self, other: &Bounds) -> Option<Bounds> {
        if self.rank() != other.rank() {
            return None;
        }
        let mut dims = Vec::with_capacity(self.rank());
        for (&(alb, aub), &(blb, bub)) in self.0.iter().zip(&other.0) {
            let lb = alb.max(blb);
            let ub = aub.min(bub);
            if ub <= lb {
                return None;
            }
            dims.push((lb, ub));
        }
        Some(Bounds(dims))
    }

    /// Translates the bounds by `offset` (element-wise addition).
    pub fn translated(&self, offset: &[i64]) -> Bounds {
        Bounds(
            self.0
                .iter()
                .enumerate()
                .map(|(d, &(lb, ub))| (lb + offset[d], ub + offset[d]))
                .collect(),
        )
    }

    /// Iterates every point of the bounds in row-major order (the last
    /// dimension varies fastest).
    pub fn points(&self) -> BoundsPoints<'_> {
        BoundsPoints { bounds: self, next: (self.num_points() > 0).then(|| self.lower()) }
    }
}

/// Row-major point iterator over a [`Bounds`] (see [`Bounds::points`]).
pub struct BoundsPoints<'a> {
    bounds: &'a Bounds,
    next: Option<Vec<i64>>,
}

impl Iterator for BoundsPoints<'_> {
    type Item = Vec<i64>;

    fn next(&mut self) -> Option<Vec<i64>> {
        let current = self.next.take()?;
        let mut succ = current.clone();
        let mut d = self.bounds.rank();
        while d > 0 {
            d -= 1;
            succ[d] += 1;
            if succ[d] < self.bounds.0[d].1 {
                self.next = Some(succ);
                return Some(current);
            }
            succ[d] = self.bounds.0[d].0;
        }
        Some(current) // exhausted: every dimension wrapped
    }
}

impl fmt::Display for Bounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (lb, ub)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "[{lb},{ub}]")?;
        }
        Ok(())
    }
}

/// A `memref`-style buffer type: a shaped view onto linear memory.
/// Dynamic extents are encoded as `-1` and printed as `?`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MemRefType {
    /// Per-dimension extents; `-1` means dynamic.
    pub shape: Vec<i64>,
    /// Element type.
    pub elem: Box<Type>,
}

impl MemRefType {
    /// A statically shaped memref.
    pub fn new(shape: Vec<i64>, elem: Type) -> Self {
        MemRefType { shape, elem: Box::new(elem) }
    }

    /// Number of elements; `None` if any dimension is dynamic.
    pub fn num_elements(&self) -> Option<i64> {
        if self.shape.iter().any(|&s| s < 0) {
            None
        } else {
            Some(self.shape.iter().product())
        }
    }

    /// Rank of the buffer.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }
}

/// The type of a function: inputs and results.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct FunctionType {
    /// Parameter types.
    pub inputs: Vec<Type>,
    /// Result types.
    pub results: Vec<Type>,
}

impl FunctionType {
    /// Creates a function type.
    pub fn new(inputs: Vec<Type>, results: Vec<Type>) -> Self {
        FunctionType { inputs, results }
    }
}

/// `!stencil.field` — "the memory buffer from which stencil input values
/// will be loaded, or to which stencil output values will be stored" (§4.1).
/// Bounds include the halo region.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FieldType {
    /// The full (halo-extended) domain covered by the buffer.
    pub bounds: Bounds,
    /// Element type.
    pub elem: Box<Type>,
}

impl FieldType {
    /// Creates a field type over `bounds` with element type `elem`.
    pub fn new(bounds: Bounds, elem: Type) -> Self {
        FieldType { bounds, elem: Box::new(elem) }
    }
}

/// `!stencil.temp` — stencil values operated on by `stencil.apply`
/// (value semantics). Bounds may be unknown (`?`) before shape inference;
/// the rank is always known.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TempType {
    /// Inferred bounds, or `None` before shape inference has run.
    pub bounds: Option<Bounds>,
    /// Number of dimensions.
    pub rank: usize,
    /// Element type.
    pub elem: Box<Type>,
}

impl TempType {
    /// A temp with known bounds.
    pub fn known(bounds: Bounds, elem: Type) -> Self {
        let rank = bounds.rank();
        TempType { bounds: Some(bounds), rank, elem: Box::new(elem) }
    }

    /// A temp of known rank but unknown bounds (`!stencil.temp<?x?xf64>`).
    pub fn unknown(rank: usize, elem: Type) -> Self {
        TempType { bounds: None, rank, elem: Box::new(elem) }
    }
}

/// The closed universe of value types used by the in-tree dialects.
///
/// See the crate-level documentation for the rationale of the closed-world
/// design. The variants group as: builtin scalars, `memref`, `llvm`,
/// function types, `stencil` types (paper §4.1), and `mpi` handle types
/// (paper §4.3: "the types represent MPI types such as request handles,
/// communicators, and data types").
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Type {
    /// 1-bit integer (boolean).
    I1,
    /// 32-bit signless integer.
    I32,
    /// 64-bit signless integer.
    I64,
    /// Platform-width index type used for loop bounds and subscripts.
    Index,
    /// 32-bit IEEE-754 float.
    F32,
    /// 64-bit IEEE-754 float.
    F64,
    /// The unit type for ops that produce a placeholder result.
    None,
    /// A shaped buffer.
    MemRef(MemRefType),
    /// An opaque pointer (`!llvm.ptr`).
    LlvmPtr,
    /// A function type.
    Function(Box<FunctionType>),
    /// A stencil input/output buffer (`!stencil.field`).
    Field(FieldType),
    /// A stencil value (`!stencil.temp`).
    Temp(TempType),
    /// `!stencil.result` — the value yielded for one grid point.
    StencilResult(Box<Type>),
    /// An MPI request handle (`!mpi.request`).
    MpiRequest,
    /// An array of MPI request handles (`!mpi.requests`), used by
    /// `mpi.waitall`.
    MpiRequests,
    /// An MPI datatype handle (`!mpi.datatype`).
    MpiDatatype,
    /// An MPI communicator handle (`!mpi.comm`).
    MpiComm,
    /// An MPI status object (`!mpi.status`).
    MpiStatus,
}

impl Type {
    /// Whether this is one of the float types.
    pub fn is_float(&self) -> bool {
        matches!(self, Type::F32 | Type::F64)
    }

    /// Whether this is an integer-like (integer or index) type.
    pub fn is_integer_like(&self) -> bool {
        matches!(self, Type::I1 | Type::I32 | Type::I64 | Type::Index)
    }

    /// Size in bytes of a scalar of this type, if it is a scalar.
    pub fn byte_width(&self) -> Option<usize> {
        match self {
            Type::I1 => Some(1),
            Type::I32 | Type::F32 => Some(4),
            Type::I64 | Type::F64 | Type::Index | Type::LlvmPtr => Some(8),
            _ => None,
        }
    }

    /// Convenience accessor for [`MemRefType`].
    pub fn as_memref(&self) -> Option<&MemRefType> {
        match self {
            Type::MemRef(m) => Some(m),
            _ => None,
        }
    }

    /// Convenience accessor for [`FieldType`].
    pub fn as_field(&self) -> Option<&FieldType> {
        match self {
            Type::Field(f) => Some(f),
            _ => None,
        }
    }

    /// Convenience accessor for [`TempType`].
    pub fn as_temp(&self) -> Option<&TempType> {
        match self {
            Type::Temp(t) => Some(t),
            _ => None,
        }
    }

    /// Convenience accessor for [`FunctionType`].
    pub fn as_function(&self) -> Option<&FunctionType> {
        match self {
            Type::Function(f) => Some(f),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_points_iterates_row_major() {
        let b = Bounds::new(vec![(1, 3), (-1, 1)]);
        let pts: Vec<Vec<i64>> = b.points().collect();
        assert_eq!(pts, vec![vec![1, -1], vec![1, 0], vec![2, -1], vec![2, 0]]);
        assert_eq!(b.points().count() as i64, b.num_points());
        // Degenerate bounds yield nothing.
        assert_eq!(Bounds::new(vec![(0, 0)]).points().count(), 0);
    }

    #[test]
    fn bounds_basic_queries() {
        let b = Bounds::new(vec![(0, 128), (-4, 4)]);
        assert_eq!(b.rank(), 2);
        assert_eq!(b.size(0), 128);
        assert_eq!(b.size(1), 8);
        assert_eq!(b.num_points(), 1024);
        assert_eq!(b.shape(), vec![128, 8]);
        assert_eq!(b.lower(), vec![0, -4]);
        assert_eq!(b.upper(), vec![128, 4]);
    }

    #[test]
    fn bounds_from_shape_starts_at_zero() {
        let b = Bounds::from_shape(&[10, 20]);
        assert_eq!(b, Bounds::new(vec![(0, 10), (0, 20)]));
    }

    #[test]
    #[should_panic(expected = "invalid bounds")]
    fn bounds_rejects_inverted() {
        Bounds::new(vec![(3, 2)]);
    }

    #[test]
    fn bounds_containment() {
        let outer = Bounds::new(vec![(-4, 68)]);
        let inner = Bounds::new(vec![(0, 64)]);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.contains_point(&[-4]));
        assert!(outer.contains_point(&[67]));
        assert!(!outer.contains_point(&[68]));
    }

    #[test]
    fn bounds_grow_and_translate() {
        let b = Bounds::new(vec![(0, 64), (0, 32)]);
        assert_eq!(b.grown(4), Bounds::new(vec![(-4, 68), (-4, 36)]));
        assert_eq!(b.grown_asymmetric(&[1, 0], &[0, 2]), Bounds::new(vec![(-1, 64), (0, 34)]));
        assert_eq!(b.translated(&[10, -10]), Bounds::new(vec![(10, 74), (-10, 22)]));
    }

    #[test]
    fn bounds_intersection() {
        let a = Bounds::new(vec![(0, 10)]);
        let b = Bounds::new(vec![(5, 20)]);
        assert_eq!(a.intersect(&b), Some(Bounds::new(vec![(5, 10)])));
        let c = Bounds::new(vec![(10, 20)]);
        assert_eq!(a.intersect(&c), None);
        let mismatched = Bounds::new(vec![(0, 1), (0, 1)]);
        assert_eq!(a.intersect(&mismatched), None);
    }

    #[test]
    fn bounds_display_matches_paper_syntax() {
        let b = Bounds::new(vec![(0, 128)]);
        assert_eq!(b.to_string(), "[0,128]");
        let b2 = Bounds::new(vec![(0, 64), (-4, 68)]);
        assert_eq!(b2.to_string(), "[0,64]x[-4,68]");
    }

    #[test]
    fn memref_type_queries() {
        let m = MemRefType::new(vec![108, 108], Type::F32);
        assert_eq!(m.num_elements(), Some(108 * 108));
        assert_eq!(m.rank(), 2);
        let dynamic = MemRefType::new(vec![-1, 4], Type::F64);
        assert_eq!(dynamic.num_elements(), None);
    }

    #[test]
    fn scalar_byte_widths() {
        assert_eq!(Type::F32.byte_width(), Some(4));
        assert_eq!(Type::F64.byte_width(), Some(8));
        assert_eq!(Type::Index.byte_width(), Some(8));
        assert_eq!(Type::MemRef(MemRefType::new(vec![1], Type::F32)).byte_width(), None);
    }

    #[test]
    fn temp_type_rank_tracks_bounds() {
        let t = TempType::known(Bounds::from_shape(&[4, 4, 4]), Type::F64);
        assert_eq!(t.rank, 3);
        let u = TempType::unknown(2, Type::F32);
        assert_eq!(u.rank, 2);
        assert!(u.bounds.is_none());
    }

    #[test]
    fn type_accessors() {
        let f = Type::Field(FieldType::new(Bounds::from_shape(&[8]), Type::F64));
        assert!(f.as_field().is_some());
        assert!(f.as_memref().is_none());
        assert!(f.as_temp().is_none());
        let func = Type::Function(Box::new(FunctionType::new(vec![Type::I32], vec![])));
        assert_eq!(func.as_function().unwrap().inputs.len(), 1);
    }
}
