//! The textual form of the IR (printing side).
//!
//! The format is a deterministic clone of MLIR's *generic* operation syntax,
//! extended with the stack's type and attribute literals:
//!
//! ```text
//! %0 = "arith.constant"() {value = 42 : i32} : () -> (i32)
//! %1 = "arith.addi"(%0, %0) : (i32, i32) -> (i32)
//! "scf.for"(%lo, %hi, %step) ({
//! ^bb0(%i: index):
//!   "scf.yield"() : () -> ()
//! }) : (index, index, index) -> ()
//! ```
//!
//! [`print_module`] and [`crate::parse_module`] are exact inverses; the test
//! suites round-trip IR at every lowering level.

use crate::attributes::Attribute;
use crate::op::{Module, Op, Region};
use crate::types::Type;
use crate::value::{Value, ValueTable};
use std::collections::HashMap;
use std::fmt::Write;

/// Renders a type in the textual syntax.
pub fn type_to_string(ty: &Type) -> String {
    match ty {
        Type::I1 => "i1".into(),
        Type::I32 => "i32".into(),
        Type::I64 => "i64".into(),
        Type::Index => "index".into(),
        Type::F32 => "f32".into(),
        Type::F64 => "f64".into(),
        Type::None => "none".into(),
        Type::LlvmPtr => "!llvm.ptr".into(),
        Type::MpiRequest => "!mpi.request".into(),
        Type::MpiRequests => "!mpi.requests".into(),
        Type::MpiDatatype => "!mpi.datatype".into(),
        Type::MpiComm => "!mpi.comm".into(),
        Type::MpiStatus => "!mpi.status".into(),
        Type::MemRef(m) => {
            let mut s = String::from("memref<");
            for d in &m.shape {
                if *d < 0 {
                    s.push('?');
                } else {
                    write!(s, "{d}").unwrap();
                }
                s.push('x');
            }
            write!(s, "{}>", type_to_string(&m.elem)).unwrap();
            s
        }
        Type::Function(f) => {
            let ins: Vec<String> = f.inputs.iter().map(type_to_string).collect();
            let outs: Vec<String> = f.results.iter().map(type_to_string).collect();
            format!("({}) -> ({})", ins.join(", "), outs.join(", "))
        }
        Type::Field(f) => {
            format!("!stencil.field<{}x{}>", f.bounds, type_to_string(&f.elem))
        }
        Type::Temp(t) => match &t.bounds {
            Some(b) => format!("!stencil.temp<{}x{}>", b, type_to_string(&t.elem)),
            None => {
                let qs = vec!["?"; t.rank].join("x");
                format!("!stencil.temp<{}x{}>", qs, type_to_string(&t.elem))
            }
        },
        Type::StencilResult(e) => format!("!stencil.result<{}>", type_to_string(e)),
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out
}

fn ints(v: &[i64]) -> String {
    v.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(", ")
}

/// Renders an attribute in the textual syntax.
pub fn attr_to_string(attr: &Attribute) -> String {
    match attr {
        Attribute::Unit => "unit".into(),
        Attribute::Bool(b) => b.to_string(),
        Attribute::Int(v, ty) => format!("{v} : {}", type_to_string(ty)),
        Attribute::Float(f) => format!("{f} : {}", type_to_string(&f.ty)),
        Attribute::Str(s) => format!("\"{}\"", escape(s)),
        Attribute::Type(t) => type_to_string(t),
        Attribute::Array(items) => {
            let inner: Vec<String> = items.iter().map(attr_to_string).collect();
            format!("[{}]", inner.join(", "))
        }
        Attribute::DenseI64(v) => format!("dense<[{}]>", ints(v)),
        Attribute::SymbolRef(s) => format!("@{s}"),
        Attribute::Grid(dims) => {
            let body: Vec<String> = dims.iter().map(|d| d.to_string()).collect();
            format!("#dmp.grid<{}>", body.join("x"))
        }
        Attribute::Exchange(e) => format!(
            "#dmp.exchange<at [{}] size [{}] source offset [{}] to [{}]>",
            ints(&e.at),
            ints(&e.size),
            ints(&e.source_offset),
            ints(&e.to)
        ),
    }
}

struct Printer<'a> {
    values: &'a ValueTable,
    names: HashMap<Value, usize>,
    out: String,
}

impl<'a> Printer<'a> {
    fn name(&mut self, v: Value) -> String {
        let next = self.names.len();
        let id = *self.names.entry(v).or_insert(next);
        format!("%{id}")
    }

    fn indent(&mut self, depth: usize) {
        for _ in 0..depth {
            self.out.push_str("  ");
        }
    }

    fn print_region(&mut self, region: &Region, depth: usize) {
        self.out.push_str("{\n");
        let single = region.blocks.len() == 1;
        for (i, block) in region.blocks.iter().enumerate() {
            if !(single && block.args.is_empty()) {
                self.indent(depth);
                write!(self.out, "^bb{i}(").unwrap();
                let mut first = true;
                for &arg in &block.args {
                    if !first {
                        self.out.push_str(", ");
                    }
                    first = false;
                    let n = self.name(arg);
                    let ty = type_to_string(self.values.ty(arg));
                    write!(self.out, "{n}: {ty}").unwrap();
                }
                self.out.push_str("):\n");
            }
            for op in &block.ops {
                self.print_op(op, depth + 1);
            }
        }
        self.indent(depth);
        self.out.push('}');
    }

    fn print_op(&mut self, op: &Op, depth: usize) {
        self.indent(depth);
        if !op.results.is_empty() {
            let names: Vec<String> = op.results.iter().map(|&r| self.name(r)).collect();
            write!(self.out, "{} = ", names.join(", ")).unwrap();
        }
        write!(self.out, "\"{}\"(", op.name).unwrap();
        let operand_names: Vec<String> = op.operands.iter().map(|&o| self.name(o)).collect();
        self.out.push_str(&operand_names.join(", "));
        self.out.push(')');
        if !op.attrs.is_empty() {
            self.out.push_str(" {");
            let mut first = true;
            for (k, v) in &op.attrs {
                if !first {
                    self.out.push_str(", ");
                }
                first = false;
                write!(self.out, "{k} = {}", attr_to_string(v)).unwrap();
            }
            self.out.push('}');
        }
        if !op.regions.is_empty() {
            self.out.push_str(" (");
            for (i, region) in op.regions.iter().enumerate() {
                if i > 0 {
                    self.out.push_str(", ");
                }
                self.print_region(region, depth + 1);
            }
            self.out.push(')');
        }
        let in_tys: Vec<String> =
            op.operands.iter().map(|&o| type_to_string(self.values.ty(o))).collect();
        let out_tys: Vec<String> =
            op.results.iter().map(|&r| type_to_string(self.values.ty(r))).collect();
        write!(self.out, " : ({}) -> ({})", in_tys.join(", "), out_tys.join(", ")).unwrap();
        self.out.push('\n');
    }
}

/// Prints a single op subtree (with trailing newline).
pub fn print_op(op: &Op, values: &ValueTable) -> String {
    let mut p = Printer { values, names: HashMap::new(), out: String::new() };
    p.print_op(op, 0);
    p.out
}

/// Prints a whole module in generic syntax.
pub fn print_module(module: &Module) -> String {
    print_op(&module.op, &module.values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{ExchangeAttr, FloatAttr};
    use crate::op::Block;
    use crate::types::{Bounds, FieldType, FunctionType, MemRefType, TempType};

    #[test]
    fn scalar_types_print() {
        assert_eq!(type_to_string(&Type::I32), "i32");
        assert_eq!(type_to_string(&Type::Index), "index");
        assert_eq!(type_to_string(&Type::LlvmPtr), "!llvm.ptr");
        assert_eq!(type_to_string(&Type::MpiRequest), "!mpi.request");
    }

    #[test]
    fn shaped_types_print_like_the_paper() {
        let m = Type::MemRef(MemRefType::new(vec![108, 108], Type::F32));
        assert_eq!(type_to_string(&m), "memref<108x108xf32>");
        let dynamic = Type::MemRef(MemRefType::new(vec![-1, 4], Type::F64));
        assert_eq!(type_to_string(&dynamic), "memref<?x4xf64>");
        let f = Type::Field(FieldType::new(Bounds::new(vec![(0, 128)]), Type::F64));
        assert_eq!(type_to_string(&f), "!stencil.field<[0,128]xf64>");
        let t = Type::Temp(TempType::unknown(1, Type::F64));
        assert_eq!(type_to_string(&t), "!stencil.temp<?xf64>");
        let tk = Type::Temp(TempType::known(Bounds::new(vec![(1, 127)]), Type::F64));
        assert_eq!(type_to_string(&tk), "!stencil.temp<[1,127]xf64>");
    }

    #[test]
    fn function_type_prints() {
        let f = Type::Function(Box::new(FunctionType::new(
            vec![Type::I32, Type::F64],
            vec![Type::F64],
        )));
        assert_eq!(type_to_string(&f), "(i32, f64) -> (f64)");
    }

    #[test]
    fn attrs_print() {
        assert_eq!(attr_to_string(&Attribute::Int(42, Type::I32)), "42 : i32");
        assert_eq!(attr_to_string(&Attribute::Float(FloatAttr::new(0.5, Type::F64))), "0.5 : f64");
        assert_eq!(attr_to_string(&Attribute::Str("a\"b".into())), "\"a\\\"b\"");
        assert_eq!(attr_to_string(&Attribute::DenseI64(vec![1, -2])), "dense<[1, -2]>");
        assert_eq!(attr_to_string(&Attribute::SymbolRef("main".into())), "@main");
        assert_eq!(attr_to_string(&Attribute::Grid(vec![2, 2])), "#dmp.grid<2x2>");
        let e = Attribute::Exchange(ExchangeAttr::new(
            vec![4, 0],
            vec![100, 4],
            vec![0, 4],
            vec![0, -1],
        ));
        assert_eq!(
            attr_to_string(&e),
            "#dmp.exchange<at [4, 0] size [100, 4] source offset [0, 4] to [0, -1]>"
        );
    }

    #[test]
    fn module_prints_nested_ops() {
        let mut m = Module::new();
        let c = m.values.alloc(Type::I32);
        let mut op = Op::new("arith.constant");
        op.results.push(c);
        op.set_attr("value", Attribute::Int(7, Type::I32));
        m.body_mut().ops.push(op);
        let text = print_module(&m);
        assert!(text.contains("\"builtin.module\"() ({"));
        assert!(text.contains("%0 = \"arith.constant\"() {value = 7 : i32} : () -> (i32)"));
    }

    #[test]
    fn block_args_get_headers() {
        let mut m = Module::new();
        let arg = m.values.alloc(Type::Index);
        let mut for_op = Op::new("scf.for");
        let mut body = Block::with_args(vec![arg]);
        body.ops.push(Op::new("scf.yield"));
        for_op.regions.push(Region::single(body));
        m.body_mut().ops.push(for_op);
        let text = print_module(&m);
        assert!(text.contains("^bb0(%0: index):"), "got: {text}");
    }
}
