//! The textual form of the IR (parsing side).
//!
//! Parses exactly the syntax produced by [`crate::print_module`]; the pair
//! round-trips. Both frameworks in the paper "share the same textual
//! representation to share infrastructure without tight coupling of code"
//! (§3) — the textual format is likewise the interchange surface of this
//! stack (frontends can hand IR across crate boundaries as text).

use crate::attributes::{Attribute, ExchangeAttr, FloatAttr};
use crate::op::{Block, Module, Op, Region};
use crate::types::{Bounds, FieldType, FunctionType, MemRefType, TempType, Type};
use crate::value::{Value, ValueTable};
use std::collections::HashMap;
use std::fmt;

/// A parse failure with line/column context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Percent(String),
    Caret(String),
    At(String),
    /// `!name` with no angle-bracket body (e.g. `!llvm.ptr`).
    BangIdent(String),
    /// `head<body>` for `memref`, `dense`, `!stencil.*`, `#dmp.*`.
    Lit {
        head: String,
        body: String,
    },
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Colon,
    Equal,
    Arrow,
    Eof,
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
}

impl Lexer {
    fn new(src: &str) -> Self {
        Lexer { chars: src.chars().collect(), pos: 0, line: 1, col: 1 }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { line: self.line, col: self.col, message: message.into() }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn ident_tail(&mut self, first: char) -> String {
        let mut s = String::new();
        s.push(first);
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '.' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    /// Captures the raw text of a `<...>` body with balanced angle brackets.
    fn angle_body(&mut self) -> Result<String, ParseError> {
        debug_assert_eq!(self.peek(), Some('<'));
        self.bump();
        let mut depth = 1usize;
        let mut body = String::new();
        loop {
            let Some(c) = self.bump() else {
                return Err(self.err("unterminated '<'"));
            };
            match c {
                '<' => {
                    depth += 1;
                    body.push(c);
                }
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(body);
                    }
                    body.push(c);
                }
                _ => body.push(c),
            }
        }
    }

    fn number(&mut self, negative: bool) -> Result<Tok, ParseError> {
        let mut s = String::new();
        if negative {
            s.push('-');
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let mut is_float = false;
        if self.peek() == Some('.') && self.peek2().map(|c| c.is_ascii_digit()).unwrap_or(false) {
            is_float = true;
            s.push('.');
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    s.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        if matches!(self.peek(), Some('e') | Some('E')) {
            let next = self.peek2();
            let exp_follows = match next {
                Some(c) if c.is_ascii_digit() => true,
                Some('-') | Some('+') => true,
                _ => false,
            };
            if exp_follows {
                is_float = true;
                s.push('e');
                self.bump();
                if matches!(self.peek(), Some('-') | Some('+')) {
                    s.push(self.bump().unwrap());
                }
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        s.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        if is_float {
            s.parse::<f64>().map(Tok::Float).map_err(|e| self.err(format!("bad float: {e}")))
        } else {
            s.parse::<i64>().map(Tok::Int).map_err(|e| self.err(format!("bad integer: {e}")))
        }
    }

    fn string(&mut self) -> Result<Tok, ParseError> {
        let mut s = String::new();
        loop {
            let Some(c) = self.bump() else {
                return Err(self.err("unterminated string"));
            };
            match c {
                '"' => return Ok(Tok::Str(s)),
                '\\' => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    other => return Err(self.err(format!("bad escape: {other:?}"))),
                },
                other => s.push(other),
            }
        }
    }

    fn lex(mut self) -> Result<Vec<Spanned>, ParseError> {
        let mut toks = Vec::new();
        loop {
            // Skip whitespace and `//` comments.
            loop {
                match self.peek() {
                    Some(c) if c.is_whitespace() => {
                        self.bump();
                    }
                    Some('/') if self.peek2() == Some('/') => {
                        while let Some(c) = self.peek() {
                            if c == '\n' {
                                break;
                            }
                            self.bump();
                        }
                    }
                    _ => break,
                }
            }
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else {
                toks.push(Spanned { tok: Tok::Eof, line, col });
                return Ok(toks);
            };
            let tok = match c {
                '(' => {
                    self.bump();
                    Tok::LParen
                }
                ')' => {
                    self.bump();
                    Tok::RParen
                }
                '{' => {
                    self.bump();
                    Tok::LBrace
                }
                '}' => {
                    self.bump();
                    Tok::RBrace
                }
                '[' => {
                    self.bump();
                    Tok::LBracket
                }
                ']' => {
                    self.bump();
                    Tok::RBracket
                }
                ',' => {
                    self.bump();
                    Tok::Comma
                }
                ':' => {
                    self.bump();
                    Tok::Colon
                }
                '=' => {
                    self.bump();
                    Tok::Equal
                }
                '"' => {
                    self.bump();
                    self.string()?
                }
                '%' => {
                    self.bump();
                    let name = self.ident_tail_allow_digits()?;
                    Tok::Percent(name)
                }
                '^' => {
                    self.bump();
                    let name = self.ident_tail_allow_digits()?;
                    Tok::Caret(name)
                }
                '@' => {
                    self.bump();
                    let name = self.ident_tail_allow_digits()?;
                    Tok::At(name)
                }
                '!' => {
                    self.bump();
                    let Some(first) = self.bump() else {
                        return Err(self.err("dangling '!'"));
                    };
                    let name = self.ident_tail(first);
                    if self.peek() == Some('<') {
                        let body = self.angle_body()?;
                        Tok::Lit { head: name, body }
                    } else {
                        Tok::BangIdent(name)
                    }
                }
                '#' => {
                    self.bump();
                    let Some(first) = self.bump() else {
                        return Err(self.err("dangling '#'"));
                    };
                    let name = self.ident_tail(first);
                    if self.peek() == Some('<') {
                        let body = self.angle_body()?;
                        Tok::Lit { head: name, body }
                    } else {
                        return Err(self.err("expected '<' after attribute literal head"));
                    }
                }
                '-' => {
                    self.bump();
                    if self.peek() == Some('>') {
                        self.bump();
                        Tok::Arrow
                    } else if self.peek().map(|c| c.is_ascii_digit()).unwrap_or(false) {
                        self.number(true)?
                    } else {
                        return Err(self.err("unexpected '-'"));
                    }
                }
                d if d.is_ascii_digit() => self.number(false)?,
                a if a.is_alphabetic() || a == '_' => {
                    self.bump();
                    let name = self.ident_tail(a);
                    // `memref<...>` and `dense<...>` carry raw bodies.
                    if self.peek() == Some('<') && (name == "memref" || name == "dense") {
                        let body = self.angle_body()?;
                        Tok::Lit { head: name, body }
                    } else {
                        Tok::Ident(name)
                    }
                }
                other => return Err(self.err(format!("unexpected character {other:?}"))),
            };
            toks.push(Spanned { tok, line, col });
        }
    }

    fn ident_tail_allow_digits(&mut self) -> Result<String, ParseError> {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '.' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if s.is_empty() {
            return Err(self.err("expected identifier"));
        }
        Ok(s)
    }
}

// ---------------------------------------------------------------------------
// Raw-body helpers for shaped type/attr literals.
// ---------------------------------------------------------------------------

fn parse_int_str(s: &str) -> Result<i64, String> {
    s.trim().parse::<i64>().map_err(|e| format!("bad integer '{s}': {e}"))
}

/// Parses "[a,b]" into a bounds pair.
fn parse_bounds_pair(s: &str) -> Result<(i64, i64), String> {
    let inner = s
        .trim()
        .strip_prefix('[')
        .and_then(|x| x.strip_suffix(']'))
        .ok_or_else(|| format!("expected [lb,ub], got '{s}'"))?;
    let mut parts = inner.splitn(2, ',');
    let lb = parse_int_str(parts.next().unwrap_or(""))?;
    let ub = parse_int_str(parts.next().ok_or("missing upper bound")?)?;
    Ok((lb, ub))
}

/// Splits a shaped body like `108x108xf32` / `[0,64]x[0,64]xf64` / `?x4xf64`
/// into dimension strings and the trailing element-type string.
fn split_shaped(body: &str) -> Result<(Vec<String>, String), String> {
    let mut dims = Vec::new();
    let mut rest = body;
    loop {
        let first = rest.chars().next().ok_or("empty shaped body")?;
        if first == '[' {
            let close = rest.find(']').ok_or("unterminated '[' in shape")?;
            dims.push(rest[..=close].to_string());
            rest = &rest[close + 1..];
        } else if first == '?' {
            dims.push("?".to_string());
            rest = &rest[1..];
        } else if first.is_ascii_digit() || first == '-' {
            let end = rest
                .char_indices()
                .skip(1)
                .find(|(_, c)| !c.is_ascii_digit())
                .map(|(i, _)| i)
                .unwrap_or(rest.len());
            dims.push(rest[..end].to_string());
            rest = &rest[end..];
        } else {
            // The element type.
            return Ok((dims, rest.to_string()));
        }
        rest = rest.strip_prefix('x').ok_or("expected 'x' between shape dimensions")?;
    }
}

/// Parses a type from a raw string (used inside shaped literals where the
/// element type is itself simple).
fn parse_type_str(s: &str) -> Result<Type, String> {
    match s.trim() {
        "i1" => Ok(Type::I1),
        "i32" => Ok(Type::I32),
        "i64" => Ok(Type::I64),
        "index" => Ok(Type::Index),
        "f32" => Ok(Type::F32),
        "f64" => Ok(Type::F64),
        "none" => Ok(Type::None),
        other => Err(format!("unsupported element type '{other}'")),
    }
}

fn parse_memref_body(body: &str) -> Result<Type, String> {
    let (dims, elem) = split_shaped(body)?;
    let mut shape = Vec::with_capacity(dims.len());
    for d in dims {
        if d == "?" {
            shape.push(-1);
        } else {
            shape.push(parse_int_str(&d)?);
        }
    }
    Ok(Type::MemRef(MemRefType::new(shape, parse_type_str(&elem)?)))
}

fn parse_stencil_body(head: &str, body: &str) -> Result<Type, String> {
    match head {
        "stencil.result" => Ok(Type::StencilResult(Box::new(parse_type_str(body)?))),
        "stencil.field" | "stencil.temp" => {
            let (dims, elem) = split_shaped(body)?;
            let elem_ty = parse_type_str(&elem)?;
            let unknown = dims.iter().any(|d| d == "?");
            if unknown {
                if head == "stencil.field" {
                    return Err("stencil.field bounds must be static".into());
                }
                return Ok(Type::Temp(TempType::unknown(dims.len(), elem_ty)));
            }
            let mut pairs = Vec::with_capacity(dims.len());
            for d in &dims {
                pairs.push(parse_bounds_pair(d)?);
            }
            let bounds = Bounds::new(pairs);
            if head == "stencil.field" {
                Ok(Type::Field(FieldType::new(bounds, elem_ty)))
            } else {
                Ok(Type::Temp(TempType::known(bounds, elem_ty)))
            }
        }
        other => Err(format!("unknown type literal '!{other}'")),
    }
}

/// Parses a `[a, b, c]` integer list from a raw string slice, returning the
/// list and the remainder.
fn take_int_list(s: &str) -> Result<(Vec<i64>, &str), String> {
    let s = s.trim_start();
    let rest = s.strip_prefix('[').ok_or_else(|| format!("expected '[' in '{s}'"))?;
    let close = rest.find(']').ok_or("unterminated '['")?;
    let inner = &rest[..close];
    let mut out = Vec::new();
    if !inner.trim().is_empty() {
        for part in inner.split(',') {
            out.push(parse_int_str(part)?);
        }
    }
    Ok((out, &rest[close + 1..]))
}

fn parse_exchange_body(body: &str) -> Result<ExchangeAttr, String> {
    let rest = body.trim_start();
    let rest = rest.strip_prefix("at").ok_or("exchange: expected 'at'")?;
    let (at, rest) = take_int_list(rest)?;
    let rest = rest.trim_start().strip_prefix("size").ok_or("exchange: expected 'size'")?;
    let (size, rest) = take_int_list(rest)?;
    let rest = rest
        .trim_start()
        .strip_prefix("source offset")
        .ok_or("exchange: expected 'source offset'")?;
    let (source_offset, rest) = take_int_list(rest)?;
    let rest = rest.trim_start().strip_prefix("to").ok_or("exchange: expected 'to'")?;
    let (to, rest) = take_int_list(rest)?;
    if !rest.trim().is_empty() {
        return Err(format!("exchange: trailing input '{rest}'"));
    }
    if at.len() != size.len()
        || size.len() != source_offset.len()
        || source_offset.len() != to.len()
    {
        return Err("exchange: component ranks differ".into());
    }
    Ok(ExchangeAttr::new(at, size, source_offset, to))
}

fn parse_grid_body(body: &str) -> Result<Vec<i64>, String> {
    body.split('x').map(parse_int_str).collect()
}

fn parse_dense_body(body: &str) -> Result<Vec<i64>, String> {
    let (list, rest) = take_int_list(body)?;
    if !rest.trim().is_empty() {
        return Err("dense: trailing input".into());
    }
    Ok(list)
}

// ---------------------------------------------------------------------------
// The token-stream parser.
// ---------------------------------------------------------------------------

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    values: ValueTable,
    names: HashMap<String, Value>,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn err_here(&self, message: impl Into<String>) -> ParseError {
        let s = &self.toks[self.pos.min(self.toks.len() - 1)];
        ParseError { line: s.line, col: s.col, message: message.into() }
    }

    fn lift<T>(&self, r: Result<T, String>) -> Result<T, ParseError> {
        r.map_err(|m| self.err_here(m))
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            Err(self.err_here(format!("expected {tok:?}, found {:?}", self.peek())))
        }
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        match self.bump() {
            Tok::Ident(name) => self.lift(parse_type_str(&name)),
            Tok::BangIdent(name) => match name.as_str() {
                "llvm.ptr" => Ok(Type::LlvmPtr),
                "mpi.request" => Ok(Type::MpiRequest),
                "mpi.requests" => Ok(Type::MpiRequests),
                "mpi.datatype" => Ok(Type::MpiDatatype),
                "mpi.comm" => Ok(Type::MpiComm),
                "mpi.status" => Ok(Type::MpiStatus),
                other => Err(self.err_here(format!("unknown type '!{other}'"))),
            },
            Tok::Lit { head, body } => {
                if head == "memref" {
                    self.lift(parse_memref_body(&body))
                } else {
                    self.lift(parse_stencil_body(&head, &body))
                }
            }
            Tok::LParen => {
                // Function type: (tys) -> (tys) | ty
                let inputs = self.parse_type_list_until_rparen()?;
                self.expect(Tok::Arrow)?;
                let results = if *self.peek() == Tok::LParen {
                    self.bump();
                    self.parse_type_list_until_rparen()?
                } else {
                    vec![self.parse_type()?]
                };
                Ok(Type::Function(Box::new(FunctionType::new(inputs, results))))
            }
            other => Err(self.err_here(format!("expected type, found {other:?}"))),
        }
    }

    fn parse_type_list_until_rparen(&mut self) -> Result<Vec<Type>, ParseError> {
        let mut tys = Vec::new();
        if *self.peek() == Tok::RParen {
            self.bump();
            return Ok(tys);
        }
        loop {
            tys.push(self.parse_type()?);
            match self.bump() {
                Tok::Comma => continue,
                Tok::RParen => return Ok(tys),
                other => return Err(self.err_here(format!("expected ',' or ')', found {other:?}"))),
            }
        }
    }

    fn parse_attr(&mut self) -> Result<Attribute, ParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                if *self.peek() == Tok::Colon {
                    self.bump();
                    let ty = self.parse_type()?;
                    Ok(Attribute::Int(v, ty))
                } else {
                    Ok(Attribute::Int(v, Type::I64))
                }
            }
            Tok::Float(v) => {
                self.bump();
                self.expect(Tok::Colon)?;
                let ty = self.parse_type()?;
                Ok(Attribute::Float(FloatAttr::new(v, ty)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Attribute::Str(s))
            }
            Tok::At(s) => {
                self.bump();
                Ok(Attribute::SymbolRef(s))
            }
            Tok::Ident(name) => match name.as_str() {
                "true" => {
                    self.bump();
                    Ok(Attribute::Bool(true))
                }
                "false" => {
                    self.bump();
                    Ok(Attribute::Bool(false))
                }
                "unit" => {
                    self.bump();
                    Ok(Attribute::Unit)
                }
                _ => {
                    let ty = self.parse_type()?;
                    Ok(Attribute::Type(ty))
                }
            },
            Tok::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if *self.peek() == Tok::RBracket {
                    self.bump();
                    return Ok(Attribute::Array(items));
                }
                loop {
                    items.push(self.parse_attr()?);
                    match self.bump() {
                        Tok::Comma => continue,
                        Tok::RBracket => return Ok(Attribute::Array(items)),
                        other => {
                            return Err(
                                self.err_here(format!("expected ',' or ']', found {other:?}"))
                            )
                        }
                    }
                }
            }
            Tok::Lit { head, body } => {
                self.bump();
                match head.as_str() {
                    "dense" => Ok(Attribute::DenseI64(self.lift(parse_dense_body(&body))?)),
                    "dmp.grid" => Ok(Attribute::Grid(self.lift(parse_grid_body(&body))?)),
                    "dmp.exchange" => {
                        Ok(Attribute::Exchange(self.lift(parse_exchange_body(&body))?))
                    }
                    "memref" => Ok(Attribute::Type(self.lift(parse_memref_body(&body))?)),
                    other => {
                        let ty = self.lift(parse_stencil_body(other, &body))?;
                        Ok(Attribute::Type(ty))
                    }
                }
            }
            Tok::BangIdent(_) | Tok::LParen => {
                let ty = self.parse_type()?;
                Ok(Attribute::Type(ty))
            }
            other => Err(self.err_here(format!("expected attribute, found {other:?}"))),
        }
    }

    fn define(&mut self, name: String, ty: Type) -> Result<Value, ParseError> {
        if self.names.contains_key(&name) {
            return Err(self.err_here(format!("value %{name} redefined")));
        }
        let v = self.values.alloc(ty);
        self.names.insert(name, v);
        Ok(v)
    }

    fn use_value(&mut self, name: &str) -> Result<Value, ParseError> {
        self.names
            .get(name)
            .copied()
            .ok_or_else(|| self.err_here(format!("use of undefined value %{name}")))
    }

    fn parse_region(&mut self) -> Result<Region, ParseError> {
        self.expect(Tok::LBrace)?;
        let mut blocks = Vec::new();
        // Anonymous single block (no header) or `^bbN(...)`-headed blocks.
        if matches!(self.peek(), Tok::Caret(_)) {
            while let Tok::Caret(_) = self.peek() {
                self.bump();
                let mut args = Vec::new();
                if *self.peek() == Tok::LParen {
                    self.bump();
                    if *self.peek() == Tok::RParen {
                        self.bump();
                    } else {
                        loop {
                            let Tok::Percent(name) = self.bump() else {
                                return Err(self.err_here("expected block argument"));
                            };
                            self.expect(Tok::Colon)?;
                            let ty = self.parse_type()?;
                            args.push(self.define(name, ty)?);
                            match self.bump() {
                                Tok::Comma => continue,
                                Tok::RParen => break,
                                other => {
                                    return Err(self
                                        .err_here(format!("expected ',' or ')', found {other:?}")))
                                }
                            }
                        }
                    }
                }
                self.expect(Tok::Colon)?;
                let mut block = Block::with_args(args);
                while !matches!(self.peek(), Tok::RBrace | Tok::Caret(_)) {
                    block.ops.push(self.parse_op()?);
                }
                blocks.push(block);
            }
        } else {
            let mut block = Block::new();
            while *self.peek() != Tok::RBrace {
                block.ops.push(self.parse_op()?);
            }
            blocks.push(block);
        }
        self.expect(Tok::RBrace)?;
        Ok(Region { blocks })
    }

    fn parse_op(&mut self) -> Result<Op, ParseError> {
        // Optional results.
        let mut result_names = Vec::new();
        if let Tok::Percent(_) = self.peek() {
            loop {
                let Tok::Percent(name) = self.bump() else { unreachable!() };
                result_names.push(name);
                match self.peek() {
                    Tok::Comma => {
                        self.bump();
                    }
                    Tok::Equal => {
                        self.bump();
                        break;
                    }
                    other => {
                        return Err(self.err_here(format!("expected ',' or '=', found {other:?}")))
                    }
                }
            }
        }
        let Tok::Str(name) = self.bump() else {
            return Err(self.err_here("expected quoted op name"));
        };
        let mut op = Op::new(name);
        // Operands.
        self.expect(Tok::LParen)?;
        if *self.peek() == Tok::RParen {
            self.bump();
        } else {
            loop {
                let Tok::Percent(oname) = self.bump() else {
                    return Err(self.err_here("expected operand"));
                };
                let v = self.use_value(&oname)?;
                op.operands.push(v);
                match self.bump() {
                    Tok::Comma => continue,
                    Tok::RParen => break,
                    other => {
                        return Err(self.err_here(format!("expected ',' or ')', found {other:?}")))
                    }
                }
            }
        }
        // Optional attribute dictionary.
        if *self.peek() == Tok::LBrace {
            self.bump();
            if *self.peek() == Tok::RBrace {
                self.bump();
            } else {
                loop {
                    let key = match self.bump() {
                        Tok::Ident(k) => k,
                        Tok::Str(k) => k,
                        other => {
                            return Err(
                                self.err_here(format!("expected attribute key, found {other:?}"))
                            )
                        }
                    };
                    self.expect(Tok::Equal)?;
                    let value = self.parse_attr()?;
                    op.attrs.insert(key, value);
                    match self.bump() {
                        Tok::Comma => continue,
                        Tok::RBrace => break,
                        other => {
                            return Err(
                                self.err_here(format!("expected ',' or '}}', found {other:?}"))
                            )
                        }
                    }
                }
            }
        }
        // Optional region list.
        if *self.peek() == Tok::LParen {
            self.bump();
            loop {
                op.regions.push(self.parse_region()?);
                match self.bump() {
                    Tok::Comma => continue,
                    Tok::RParen => break,
                    other => {
                        return Err(self.err_here(format!("expected ',' or ')', found {other:?}")))
                    }
                }
            }
        }
        // Signature.
        self.expect(Tok::Colon)?;
        self.expect(Tok::LParen)?;
        let in_tys = self.parse_type_list_until_rparen()?;
        self.expect(Tok::Arrow)?;
        self.expect(Tok::LParen)?;
        let out_tys = self.parse_type_list_until_rparen()?;
        if in_tys.len() != op.operands.len() {
            return Err(self.err_here(format!(
                "op '{}' has {} operands but signature lists {} input types",
                op.name,
                op.operands.len(),
                in_tys.len()
            )));
        }
        for (i, (&operand, ty)) in op.operands.iter().zip(&in_tys).enumerate() {
            if self.values.ty(operand) != ty {
                return Err(self.err_here(format!(
                    "operand {i} of '{}' has type {:?} but signature says {ty:?}",
                    op.name,
                    self.values.ty(operand)
                )));
            }
        }
        if out_tys.len() != result_names.len() {
            return Err(self.err_here(format!(
                "op '{}' defines {} results but signature lists {} result types",
                op.name,
                result_names.len(),
                out_tys.len()
            )));
        }
        for (rname, ty) in result_names.into_iter().zip(out_tys) {
            let v = self.define(rname, ty)?;
            op.results.push(v);
        }
        Ok(op)
    }
}

/// Parses a module from its textual form.
///
/// # Errors
/// Returns a [`ParseError`] with line/column information on malformed input,
/// undefined or redefined values, and signature/type mismatches.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let toks = Lexer::new(text).lex()?;
    let mut p = Parser { toks, pos: 0, values: ValueTable::new(), names: HashMap::new() };
    let op = p.parse_op()?;
    if op.name != "builtin.module" {
        return Err(p.err_here(format!("expected builtin.module at top level, found {}", op.name)));
    }
    if *p.peek() != Tok::Eof {
        return Err(p.err_here("trailing input after module"));
    }
    Ok(Module { values: p.values, op })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::{print_module, type_to_string};

    fn round_trip(text: &str) {
        let m = parse_module(text).expect("first parse");
        let printed = print_module(&m);
        let m2 = parse_module(&printed).expect("reparse");
        assert_eq!(print_module(&m2), printed, "printer/parser must round-trip");
    }

    #[test]
    fn parses_empty_module() {
        round_trip("\"builtin.module\"() ({\n}) : () -> ()\n");
    }

    #[test]
    fn parses_constant_and_add() {
        round_trip(
            r#""builtin.module"() ({
  %0 = "arith.constant"() {value = 42 : i32} : () -> (i32)
  %1 = "arith.addi"(%0, %0) : (i32, i32) -> (i32)
}) : () -> ()
"#,
        );
    }

    #[test]
    fn parses_block_args_and_regions() {
        round_trip(
            r#""builtin.module"() ({
  %0 = "arith.constant"() {value = 0 : index} : () -> (index)
  "scf.for"(%0, %0, %0) ({
  ^bb0(%1: index):
    "scf.yield"() : () -> ()
  }) : (index, index, index) -> ()
}) : () -> ()
"#,
        );
    }

    #[test]
    fn parses_shaped_types() {
        round_trip(
            r#""builtin.module"() ({
  %0 = "memref.alloc"() : () -> (memref<108x108xf32>)
  %1 = "stencil.external_load"(%0) : (memref<108x108xf32>) -> (!stencil.field<[-4,104]x[-4,104]xf32>)
  %2 = "stencil.load"(%1) : (!stencil.field<[-4,104]x[-4,104]xf32>) -> (!stencil.temp<?x?xf32>)
}) : () -> ()
"#,
        );
    }

    #[test]
    fn parses_dmp_attributes_from_paper_listing2() {
        let text = r#""builtin.module"() ({
  %0 = "memref.alloc"() : () -> (memref<108x108xf32>)
  "dmp.swap"(%0) {grid = #dmp.grid<2x2>, swaps = [#dmp.exchange<at [4, 0] size [100, 4] source offset [0, 4] to [0, -1]>, #dmp.exchange<at [4, 104] size [100, 4] source offset [0, -4] to [0, 1]>]} : (memref<108x108xf32>) -> ()
}) : () -> ()
"#;
        let m = parse_module(text).unwrap();
        let swap = &m.body().ops[1];
        assert_eq!(swap.attr("grid").unwrap().as_grid(), Some(&[2i64, 2][..]));
        let swaps = swap.attr("swaps").unwrap().as_array().unwrap();
        assert_eq!(swaps.len(), 2);
        let ex = swaps[0].as_exchange().unwrap();
        assert_eq!(ex.at, vec![4, 0]);
        assert_eq!(ex.size, vec![100, 4]);
        assert_eq!(ex.source_offset, vec![0, 4]);
        assert_eq!(ex.to, vec![0, -1]);
        round_trip(text);
    }

    #[test]
    fn parses_floats_and_symbols() {
        round_trip(
            r#""builtin.module"() ({
  %0 = "arith.constant"() {value = 0.5 : f64} : () -> (f64)
  %1 = "arith.constant"() {value = 1e-10 : f64} : () -> (f64)
  "func.call"(%0, %1) {callee = @MPI_Send} : (f64, f64) -> ()
}) : () -> ()
"#,
        );
    }

    #[test]
    fn parses_function_type_attr() {
        round_trip(
            r#""builtin.module"() ({
  "func.func"() {function_type = (i32, f64) -> (f64), sym_name = "f"} ({
  ^bb0(%0: i32, %1: f64):
    "func.return"(%1) : (f64) -> ()
  }) : () -> ()
}) : () -> ()
"#,
        );
    }

    #[test]
    fn rejects_use_before_def() {
        let text = r#""builtin.module"() ({
  %1 = "arith.addi"(%0, %0) : (i32, i32) -> (i32)
}) : () -> ()
"#;
        let err = parse_module(text).unwrap_err();
        assert!(err.message.contains("undefined value"), "{err}");
    }

    #[test]
    fn rejects_redefinition() {
        let text = r#""builtin.module"() ({
  %0 = "arith.constant"() {value = 1 : i32} : () -> (i32)
  %0 = "arith.constant"() {value = 2 : i32} : () -> (i32)
}) : () -> ()
"#;
        let err = parse_module(text).unwrap_err();
        assert!(err.message.contains("redefined"), "{err}");
    }

    #[test]
    fn rejects_signature_mismatch() {
        let text = r#""builtin.module"() ({
  %0 = "arith.constant"() {value = 1 : i32} : () -> (i32)
  %1 = "arith.addi"(%0, %0) : (i32) -> (i32)
}) : () -> ()
"#;
        let err = parse_module(text).unwrap_err();
        assert!(err.message.contains("operands"), "{err}");
    }

    #[test]
    fn rejects_operand_type_mismatch() {
        let text = r#""builtin.module"() ({
  %0 = "arith.constant"() {value = 1 : i32} : () -> (i32)
  %1 = "arith.addi"(%0, %0) : (i64, i64) -> (i64)
}) : () -> ()
"#;
        let err = parse_module(text).unwrap_err();
        assert!(err.message.contains("type"), "{err}");
    }

    #[test]
    fn error_carries_location() {
        let err = parse_module("\"builtin.module\"() ({\n  $bad\n}) : () -> ()\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.col >= 3);
    }

    #[test]
    fn split_shaped_handles_index_element() {
        let (dims, elem) = split_shaped("4xindex").unwrap();
        assert_eq!(dims, vec!["4"]);
        assert_eq!(elem, "index");
        let (dims, elem) = split_shaped("108x108xf32").unwrap();
        assert_eq!(dims, vec!["108", "108"]);
        assert_eq!(elem, "f32");
        let (dims, elem) = split_shaped("?x4xf64").unwrap();
        assert_eq!(dims, vec!["?", "4"]);
        assert_eq!(elem, "f64");
        let (dims, elem) = split_shaped("[-4,68]x[0,64]xf64").unwrap();
        assert_eq!(dims, vec!["[-4,68]", "[0,64]"]);
        assert_eq!(elem, "f64");
    }

    #[test]
    fn type_strings_round_trip_through_tokens() {
        for ty in [
            Type::I1,
            Type::Index,
            Type::F32,
            Type::MemRef(MemRefType::new(vec![64, 2], Type::F64)),
            Type::Field(FieldType::new(Bounds::new(vec![(0, 128)]), Type::F64)),
            Type::Temp(TempType::unknown(2, Type::F32)),
            Type::Temp(TempType::known(Bounds::new(vec![(1, 127)]), Type::F64)),
            Type::StencilResult(Box::new(Type::F64)),
            Type::LlvmPtr,
            Type::MpiRequest,
            Type::MpiDatatype,
        ] {
            let text = type_to_string(&ty);
            let toks = Lexer::new(&text).lex().unwrap();
            let mut p = Parser { toks, pos: 0, values: ValueTable::new(), names: HashMap::new() };
            let parsed = p.parse_type().unwrap();
            assert_eq!(parsed, ty, "type {text} failed to round-trip");
        }
    }
}
