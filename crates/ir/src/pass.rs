//! The pass manager: named IR-to-IR transformations run in sequence.
//!
//! Mirrors `mlir-opt`-style pipelines: §5 of the paper describes lowering
//! flows as a series of passes across SSA-based IRs (e.g. *shape-inference*,
//! *convert-stencil-to-ll-mlir*, *dmp-to-mpi*). [`PassManager::run`]
//! optionally re-verifies the module after every pass, which catches
//! lowering bugs close to their source.

use crate::op::Module;
use crate::registry::DialectRegistry;
use crate::verifier::verify_module;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A pass failure, attributed to the pass that raised it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassError {
    /// The pass that failed.
    pub pass: String,
    /// Description of the failure.
    pub message: String,
}

impl PassError {
    /// Creates a pass error.
    pub fn new(pass: impl Into<String>, message: impl Into<String>) -> Self {
        PassError { pass: pass.into(), message: message.into() }
    }
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pass '{}' failed: {}", self.pass, self.message)
    }
}

impl std::error::Error for PassError {}

/// An IR-to-IR transformation.
pub trait Pass {
    /// Stable pass name (used in diagnostics and timing reports).
    fn name(&self) -> &'static str;
    /// Transforms the module in place.
    ///
    /// # Errors
    /// Returns a [`PassError`] if the input IR violates the pass's
    /// preconditions.
    fn run(&self, module: &mut Module) -> Result<(), PassError>;
}

/// Timing record for one executed pass.
#[derive(Debug, Clone)]
pub struct PassTiming {
    /// Pass name.
    pub name: &'static str,
    /// Wall-clock duration.
    pub duration: Duration,
}

/// Observer invoked after each pass completes (and passes verification);
/// receives the pass name and the module state it produced.
pub type AfterPassHook = Box<dyn Fn(&'static str, &Module)>;

/// Runs a sequence of passes over a module.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    /// Verify the module after each pass (strongly recommended in tests).
    pub verify_each: bool,
    registry: Option<Arc<DialectRegistry>>,
    timings: std::cell::RefCell<Vec<PassTiming>>,
    after_each: Option<AfterPassHook>,
}

impl PassManager {
    /// An empty pipeline with verification disabled.
    pub fn new() -> Self {
        PassManager::default()
    }

    /// Enables per-pass verification against `registry`.
    pub fn with_verifier(mut self, registry: Arc<DialectRegistry>) -> Self {
        self.verify_each = true;
        self.registry = Some(registry);
        self
    }

    /// Appends a pass to the pipeline.
    pub fn add(&mut self, pass: impl Pass + 'static) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Appends a boxed pass to the pipeline.
    pub fn add_boxed(&mut self, pass: Box<dyn Pass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// Installs an observer called after every pass that completes (and,
    /// with `verify_each`, passes verification). Drivers use this for
    /// `--print-ir-after-all` and execution accounting.
    pub fn set_after_each(&mut self, hook: AfterPassHook) -> &mut Self {
        self.after_each = Some(hook);
        self
    }

    /// The names of the scheduled passes, in order.
    pub fn pipeline(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every pass in order.
    ///
    /// # Errors
    /// Stops at the first failing pass or failed post-pass verification.
    pub fn run(&self, module: &mut Module) -> Result<(), PassError> {
        self.timings.borrow_mut().clear();
        for pass in &self.passes {
            let start = Instant::now();
            pass.run(module)?;
            self.timings
                .borrow_mut()
                .push(PassTiming { name: pass.name(), duration: start.elapsed() });
            if self.verify_each {
                verify_module(module, self.registry.as_deref()).map_err(|e| {
                    PassError::new(pass.name(), format!("post-pass verification: {e}"))
                })?;
            }
            if let Some(hook) = &self.after_each {
                hook(pass.name(), module);
            }
        }
        Ok(())
    }

    /// Timings of the most recent [`PassManager::run`].
    pub fn timings(&self) -> Vec<PassTiming> {
        self.timings.borrow().clone()
    }
}

impl fmt::Debug for PassManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassManager")
            .field("pipeline", &self.pipeline())
            .field("verify_each", &self.verify_each)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    struct AppendOp(&'static str);
    impl Pass for AppendOp {
        fn name(&self) -> &'static str {
            "append-op"
        }
        fn run(&self, module: &mut Module) -> Result<(), PassError> {
            module.body_mut().ops.push(Op::new(self.0));
            Ok(())
        }
    }

    struct Failing;
    impl Pass for Failing {
        fn name(&self) -> &'static str {
            "failing"
        }
        fn run(&self, _: &mut Module) -> Result<(), PassError> {
            Err(PassError::new("failing", "intentional"))
        }
    }

    #[test]
    fn runs_passes_in_order() {
        let mut pm = PassManager::new();
        pm.add(AppendOp("test.a")).add(AppendOp("test.b"));
        let mut m = Module::new();
        pm.run(&mut m).unwrap();
        let names: Vec<&str> = m.body().ops.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names, vec!["test.a", "test.b"]);
        assert_eq!(pm.timings().len(), 2);
        assert_eq!(pm.pipeline(), vec!["append-op", "append-op"]);
    }

    #[test]
    fn stops_on_failure() {
        let mut pm = PassManager::new();
        pm.add(Failing).add(AppendOp("test.never"));
        let mut m = Module::new();
        let err = pm.run(&mut m).unwrap_err();
        assert_eq!(err.pass, "failing");
        assert!(m.body().ops.is_empty());
    }

    #[test]
    fn verify_each_catches_broken_passes() {
        struct Breaks;
        impl Pass for Breaks {
            fn name(&self) -> &'static str {
                "breaks-ir"
            }
            fn run(&self, module: &mut Module) -> Result<(), PassError> {
                // Introduce a use of a never-defined value.
                let ghost = crate::value::Value::from_index(9999);
                let mut op = Op::new("test.bad");
                op.operands.push(ghost);
                module.body_mut().ops.push(op);
                Ok(())
            }
        }
        let registry = Arc::new(DialectRegistry::new());
        let mut pm = PassManager::new().with_verifier(registry);
        pm.add(Breaks);
        let mut m = Module::new();
        let err = pm.run(&mut m).unwrap_err();
        assert!(err.message.contains("verification"), "{err}");
    }
}
