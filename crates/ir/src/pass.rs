//! The pass manager: named IR-to-IR transformations anchored to an
//! operation granularity.
//!
//! Mirrors MLIR's `OpPassManager` design (§5 of the paper describes the
//! lowering flows as `mlir-opt` pipelines): every [`Pass`] declares a
//! [`PassKind`] anchor — `builtin.module`-scoped passes transform the whole
//! module, `func.func`-scoped passes transform one function at a time and
//! never look outside it. The [`PassManager`] groups consecutive
//! function-scoped passes and runs each of them over the module's
//! functions *in parallel* (scoped threads, no shared mutable state:
//! functions are disjoint subtrees and none of the function passes touch
//! the value table), which is MLIR's key pass-scheduling scalability
//! trick. [`PassManager::run`] optionally re-verifies after every pass —
//! whole-module for module-anchored passes, per-function (inside the
//! worker, against the module-level scope) for function-anchored ones —
//! which catches lowering bugs close to their source.

use crate::attributes::Attribute;
use crate::op::{Module, Op};
use crate::registry::DialectRegistry;
use crate::value::{Value, ValueTable};
use crate::verifier::{verify_module, verify_op_in_scope};
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A pass failure, attributed to the pass that raised it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassError {
    /// The pass that failed.
    pub pass: String,
    /// Description of the failure.
    pub message: String,
}

impl PassError {
    /// Creates a pass error.
    pub fn new(pass: impl Into<String>, message: impl Into<String>) -> Self {
        PassError { pass: pass.into(), message: message.into() }
    }
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pass '{}' failed: {}", self.pass, self.message)
    }
}

impl std::error::Error for PassError {}

/// The operation granularity a pass is anchored to (MLIR: the op an
/// `OpPassManager` is "nested on").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PassKind {
    /// Anchored to `builtin.module`: sees (and may rewrite) the whole
    /// compilation unit. Module passes run sequentially.
    #[default]
    Module,
    /// Anchored to `func.func`: rewrites one function body at a time and
    /// must not inspect sibling functions or allocate values. The
    /// scheduler runs function passes over independent functions in
    /// parallel.
    Function,
}

impl PassKind {
    /// The textual anchor used by the nested pipeline syntax
    /// (`func.func(cse,dce)`).
    pub fn anchor(self) -> &'static str {
        match self {
            PassKind::Module => "builtin.module",
            PassKind::Function => "func.func",
        }
    }
}

/// An IR-to-IR transformation.
///
/// Module-anchored passes (the default [`Pass::kind`]) implement
/// [`Pass::run`]; function-anchored passes implement [`Pass::run_on_op`]
/// and inherit a whole-module `run` that applies the rewrite to the root
/// op (so invoking a function pass directly on a module keeps the
/// pre-anchor flat semantics).
pub trait Pass: Send + Sync {
    /// Stable pass name (used in diagnostics and timing reports).
    fn name(&self) -> &'static str;

    /// The operation granularity this pass is anchored to.
    fn kind(&self) -> PassKind {
        PassKind::Module
    }

    /// Transforms the module in place.
    ///
    /// # Errors
    /// Returns a [`PassError`] if the input IR violates the pass's
    /// preconditions.
    fn run(&self, module: &mut Module) -> Result<(), PassError> {
        match self.kind() {
            PassKind::Function => self.run_on_op(&mut module.op),
            PassKind::Module => {
                Err(PassError::new(self.name(), "module-anchored pass does not implement run()"))
            }
        }
    }

    /// Transforms the subtree rooted at `op` in place (the entry point the
    /// scheduler uses for `func.func`-anchored passes; `op` is one
    /// `func.func` — or the module root when invoked through the default
    /// [`Pass::run`]).
    ///
    /// # Errors
    /// Returns a [`PassError`] if the pass is not function-anchored or the
    /// input IR violates its preconditions.
    fn run_on_op(&self, op: &mut Op) -> Result<(), PassError> {
        let _ = op;
        Err(PassError::new(self.name(), "pass is not anchored to func.func"))
    }
}

/// Timing record for one executed pass. For a function-anchored pass
/// this is the wall-clock of the whole parallel section (scheduling
/// included); per-function transform times are in [`FuncTiming`].
#[derive(Debug, Clone)]
pub struct PassTiming {
    /// Pass name.
    pub name: &'static str,
    /// Wall-clock duration.
    pub duration: Duration,
}

/// Per-function timing record of one function-anchored pass execution.
#[derive(Debug, Clone)]
pub struct FuncTiming {
    /// Pass name.
    pub pass: &'static str,
    /// `sym_name` of the function the pass ran on.
    pub function: String,
    /// Wall-clock duration of this (pass, function) unit of work.
    pub duration: Duration,
}

/// Observer invoked after each pass completes (and passes verification);
/// receives the pass name and the module state it produced. For
/// function-anchored passes the hook fires once per pass, after every
/// function has been processed.
pub type AfterPassHook = Box<dyn Fn(&'static str, &Module) + Send + Sync>;

/// One scheduling unit: a module-anchored pass, or a maximal run of
/// consecutive function-anchored passes executed per-function.
enum Scheduled {
    Module(Box<dyn Pass>),
    FuncGroup(Vec<Box<dyn Pass>>),
}

/// Runs a tree of passes over a module: module-anchored passes in
/// sequence, function-anchored groups per-function in parallel.
#[derive(Default)]
pub struct PassManager {
    items: Vec<Scheduled>,
    /// Verify after each pass (strongly recommended in tests): the whole
    /// module after a module-anchored pass, each function (in its worker,
    /// against the module-level scope) after a function-anchored pass.
    pub verify_each: bool,
    registry: Option<Arc<DialectRegistry>>,
    /// Worker-thread cap for function groups: `0` = one thread per
    /// available core, `1` = serial (the deterministic-timing escape
    /// hatch; results are identical either way).
    parallelism: usize,
    timings: Vec<PassTiming>,
    func_timings: Vec<FuncTiming>,
    after_each: Option<AfterPassHook>,
}

impl PassManager {
    /// An empty pipeline with verification disabled.
    pub fn new() -> Self {
        PassManager::default()
    }

    /// Enables per-pass verification against `registry`.
    pub fn with_verifier(mut self, registry: Arc<DialectRegistry>) -> Self {
        self.verify_each = true;
        self.registry = Some(registry);
        self
    }

    /// Caps function-group worker threads: `0` = one per core (default),
    /// `1` = serial.
    #[must_use]
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads;
        self
    }

    /// Sets the worker-thread cap (see [`PassManager::with_parallelism`]).
    pub fn set_parallelism(&mut self, threads: usize) -> &mut Self {
        self.parallelism = threads;
        self
    }

    /// Appends a pass to the pipeline.
    pub fn add(&mut self, pass: impl Pass + 'static) -> &mut Self {
        self.add_boxed(Box::new(pass))
    }

    /// Appends a boxed pass, growing the anchor tree: a function-anchored
    /// pass joins the trailing function group (or opens one), a
    /// module-anchored pass ends any open group.
    pub fn add_boxed(&mut self, pass: Box<dyn Pass>) -> &mut Self {
        match (pass.kind(), self.items.last_mut()) {
            (PassKind::Function, Some(Scheduled::FuncGroup(group))) => group.push(pass),
            (PassKind::Function, _) => self.items.push(Scheduled::FuncGroup(vec![pass])),
            (PassKind::Module, _) => self.items.push(Scheduled::Module(pass)),
        }
        self
    }

    /// Installs an observer called after every pass that completes (and,
    /// with `verify_each`, passes verification). Drivers use this for
    /// `--print-ir-after-all` and execution accounting.
    pub fn set_after_each(&mut self, hook: AfterPassHook) -> &mut Self {
        self.after_each = Some(hook);
        self
    }

    /// The names of the scheduled passes, in execution order (function
    /// groups flattened).
    pub fn pipeline(&self) -> Vec<&'static str> {
        let mut names = Vec::new();
        for item in &self.items {
            match item {
                Scheduled::Module(p) => names.push(p.name()),
                Scheduled::FuncGroup(g) => names.extend(g.iter().map(|p| p.name())),
            }
        }
        names
    }

    /// The anchor tree in nested pipeline syntax, e.g.
    /// `shape-inference,func.func(cse,dce),convert-stencil-to-loops`.
    pub fn nested_pipeline(&self) -> String {
        let mut out = String::new();
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match item {
                Scheduled::Module(p) => out.push_str(p.name()),
                Scheduled::FuncGroup(g) => {
                    out.push_str("func.func(");
                    for (j, p) in g.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(p.name());
                    }
                    out.push(')');
                }
            }
        }
        out
    }

    /// Runs every pass in order.
    ///
    /// # Errors
    /// Stops at the first failing pass or failed post-pass verification.
    /// For a function group, the reported failure is the first failing
    /// function in module order (deterministic under parallelism).
    pub fn run(&mut self, module: &mut Module) -> Result<(), PassError> {
        self.timings.clear();
        self.func_timings.clear();
        let registry = self.registry.clone();
        // `Some(None)` = verify with structural checks only (verify_each
        // set but no registry), matching verify_module's contract.
        let verify: Option<Option<&DialectRegistry>> =
            self.verify_each.then_some(registry.as_deref());
        for item in &self.items {
            match item {
                Scheduled::Module(pass) => {
                    let start = Instant::now();
                    pass.run(module)?;
                    self.timings.push(PassTiming { name: pass.name(), duration: start.elapsed() });
                    if self.verify_each {
                        verify_module(module, registry.as_deref()).map_err(|e| {
                            PassError::new(pass.name(), format!("post-pass verification: {e}"))
                        })?;
                    }
                    if let Some(hook) = &self.after_each {
                        hook(pass.name(), module);
                    }
                }
                Scheduled::FuncGroup(group) => {
                    for pass in group {
                        let start = Instant::now();
                        let per_func =
                            run_on_functions(pass.as_ref(), module, self.parallelism, verify)?;
                        self.timings
                            .push(PassTiming { name: pass.name(), duration: start.elapsed() });
                        self.func_timings.extend(per_func);
                        if let Some(hook) = &self.after_each {
                            hook(pass.name(), module);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Per-pass timings of the most recent [`PassManager::run`], one
    /// entry per pass in pipeline order.
    pub fn timings(&self) -> Vec<PassTiming> {
        self.timings.clone()
    }

    /// Per-(pass, function) timings of the most recent run's function
    /// groups, in (pass, module order) — the `--timing` breakdown.
    pub fn func_timings(&self) -> Vec<FuncTiming> {
        self.func_timings.clone()
    }
}

/// The `sym_name` of a function op, for diagnostics and timings.
fn func_label(func: &Op) -> String {
    func.attr("sym_name")
        .and_then(Attribute::as_str)
        .map_or_else(|| "<anonymous>".to_string(), str::to_string)
}

/// One function's processing outcome: its label, wall time, and result.
type FuncOutcome = (String, Duration, Result<(), PassError>);

/// Runs one function-anchored pass over every `func.func` of `module`,
/// in parallel when `parallelism` permits. With `verify` set, each worker
/// re-verifies its own function (per-anchor verification) against the
/// module-level scope — structural checks only when the inner registry is
/// `None`, as with [`verify_module`]. Functions are disjoint subtrees, so
/// results are deterministic regardless of thread count.
fn run_on_functions(
    pass: &dyn Pass,
    module: &mut Module,
    parallelism: usize,
    verify: Option<Option<&DialectRegistry>>,
) -> Result<Vec<FuncTiming>, PassError> {
    // Values visible at module level (results of module-level ops): the
    // enclosing scope for per-function verification.
    let outer: HashSet<Value> = if verify.is_some() {
        module.body().ops.iter().flat_map(|o| o.results.iter().copied()).collect()
    } else {
        HashSet::new()
    };
    let Module { ref values, ref mut op, .. } = *module;
    let body = op.region_block_mut(0);
    let mut funcs: Vec<&mut Op> = body.ops.iter_mut().filter(|o| o.name == "func.func").collect();

    let workers = effective_workers(parallelism, funcs.len());
    let mut results: Vec<FuncOutcome> = if workers <= 1 {
        funcs.iter_mut().map(|func| run_one_function(pass, func, values, verify, &outer)).collect()
    } else {
        // Contiguous chunks, one scoped worker each (the same
        // std::thread::scope approach as the interp crate's SimMPI
        // runtime); results are reassembled in module order.
        let chunk = funcs.len().div_ceil(workers);
        let mut out: Vec<Option<FuncOutcome>> = (0..funcs.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (start, batch) in funcs.chunks_mut(chunk).enumerate().map(|(i, b)| (i * chunk, b)) {
                let outer = &outer;
                handles.push((
                    start,
                    scope.spawn(move || {
                        batch
                            .iter_mut()
                            .map(|func| run_one_function(pass, func, values, verify, outer))
                            .collect::<Vec<_>>()
                    }),
                ));
            }
            for (start, handle) in handles {
                for (i, r) in handle.join().expect("pass worker panicked").into_iter().enumerate() {
                    out[start + i] = Some(r);
                }
            }
        });
        out.into_iter().map(|r| r.expect("every function processed")).collect()
    };

    let mut timings = Vec::with_capacity(results.len());
    for (function, duration, result) in results.drain(..) {
        result?;
        timings.push(FuncTiming { pass: pass.name(), function, duration });
    }
    Ok(timings)
}

/// Applies `pass` to one function and (optionally) re-verifies it. The
/// reported duration covers the transform only — verification time is
/// excluded, matching module-anchored passes, whose timing also stops
/// before `verify_module`.
fn run_one_function(
    pass: &dyn Pass,
    func: &mut Op,
    values: &ValueTable,
    verify: Option<Option<&DialectRegistry>>,
    outer: &HashSet<Value>,
) -> FuncOutcome {
    let label = func_label(func);
    let start = Instant::now();
    let mut result = pass.run_on_op(func);
    let duration = start.elapsed();
    if result.is_ok() {
        if let Some(registry) = verify {
            result = verify_op_in_scope(func, values, registry, outer).map_err(|e| {
                PassError::new(pass.name(), format!("post-pass verification of @{label}: {e}"))
            });
        }
    }
    (label, duration, result)
}

/// Resolves the worker count: `0` = available parallelism, capped by the
/// number of functions.
fn effective_workers(parallelism: usize, funcs: usize) -> usize {
    let hw = || std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let requested = if parallelism == 0 { hw() } else { parallelism };
    requested.min(funcs).max(1)
}

impl fmt::Debug for PassManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassManager")
            .field("pipeline", &self.nested_pipeline())
            .field("verify_each", &self.verify_each)
            .field("parallelism", &self.parallelism)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    struct AppendOp(&'static str);
    impl Pass for AppendOp {
        fn name(&self) -> &'static str {
            "append-op"
        }
        fn run(&self, module: &mut Module) -> Result<(), PassError> {
            module.body_mut().ops.push(Op::new(self.0));
            Ok(())
        }
    }

    struct Failing;
    impl Pass for Failing {
        fn name(&self) -> &'static str {
            "failing"
        }
        fn run(&self, _: &mut Module) -> Result<(), PassError> {
            Err(PassError::new("failing", "intentional"))
        }
    }

    /// Function-anchored: tags every op in the subtree with an attribute.
    struct TagFunc;
    impl Pass for TagFunc {
        fn name(&self) -> &'static str {
            "tag-func"
        }
        fn kind(&self) -> PassKind {
            PassKind::Function
        }
        fn run_on_op(&self, op: &mut Op) -> Result<(), PassError> {
            op.walk_mut(&mut |o| o.set_attr("tagged", Attribute::int64(1)));
            Ok(())
        }
    }

    fn module_with_funcs(n: usize) -> Module {
        let mut m = Module::new();
        for i in 0..n {
            let mut f = Op::new("func.func");
            f.set_attr("sym_name", Attribute::Str(format!("f{i}")));
            f.regions.push(crate::op::Region::single(crate::op::Block::new()));
            m.body_mut().ops.push(f);
        }
        m
    }

    #[test]
    fn runs_passes_in_order() {
        let mut pm = PassManager::new();
        pm.add(AppendOp("test.a")).add(AppendOp("test.b"));
        let mut m = Module::new();
        pm.run(&mut m).unwrap();
        let names: Vec<&str> = m.body().ops.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names, vec!["test.a", "test.b"]);
        assert_eq!(pm.timings().len(), 2);
        assert_eq!(pm.pipeline(), vec!["append-op", "append-op"]);
    }

    #[test]
    fn stops_on_failure() {
        let mut pm = PassManager::new();
        pm.add(Failing).add(AppendOp("test.never"));
        let mut m = Module::new();
        let err = pm.run(&mut m).unwrap_err();
        assert_eq!(err.pass, "failing");
        assert!(m.body().ops.is_empty());
    }

    #[test]
    fn verify_each_catches_broken_passes() {
        struct Breaks;
        impl Pass for Breaks {
            fn name(&self) -> &'static str {
                "breaks-ir"
            }
            fn run(&self, module: &mut Module) -> Result<(), PassError> {
                // Introduce a use of a never-defined value.
                let ghost = crate::value::Value::from_index(9999);
                let mut op = Op::new("test.bad");
                op.operands.push(ghost);
                module.body_mut().ops.push(op);
                Ok(())
            }
        }
        let registry = Arc::new(DialectRegistry::new());
        let mut pm = PassManager::new().with_verifier(registry);
        pm.add(Breaks);
        let mut m = Module::new();
        let err = pm.run(&mut m).unwrap_err();
        assert!(err.message.contains("verification"), "{err}");
    }

    #[test]
    fn consecutive_function_passes_group_into_one_anchor() {
        let mut pm = PassManager::new();
        pm.add(AppendOp("test.a")).add(TagFunc).add(TagFunc).add(AppendOp("test.b")).add(TagFunc);
        assert_eq!(
            pm.nested_pipeline(),
            "append-op,func.func(tag-func,tag-func),append-op,func.func(tag-func)"
        );
        assert_eq!(
            pm.pipeline(),
            vec!["append-op", "tag-func", "tag-func", "append-op", "tag-func"]
        );
    }

    #[test]
    fn function_pass_runs_on_every_function_any_thread_count() {
        for threads in [1usize, 0, 3] {
            let mut pm = PassManager::new().with_parallelism(threads);
            pm.add(TagFunc);
            let mut m = module_with_funcs(8);
            pm.run(&mut m).unwrap();
            for f in &m.body().ops {
                assert!(f.attr("tagged").is_some(), "threads={threads}");
            }
            assert_eq!(pm.timings().len(), 1);
            let fts = pm.func_timings();
            assert_eq!(fts.len(), 8, "threads={threads}");
            // Per-function breakdown stays in module order.
            let order: Vec<&str> = fts.iter().map(|t| t.function.as_str()).collect();
            assert_eq!(order, (0..8).map(|i| format!("f{i}")).collect::<Vec<_>>());
        }
    }

    #[test]
    fn function_group_failure_reports_first_function_in_module_order() {
        struct FailOn(&'static str);
        impl Pass for FailOn {
            fn name(&self) -> &'static str {
                "fail-on"
            }
            fn kind(&self) -> PassKind {
                PassKind::Function
            }
            fn run_on_op(&self, op: &mut Op) -> Result<(), PassError> {
                let label = func_label(op);
                if label == self.0 || label == "f1" {
                    return Err(PassError::new("fail-on", format!("boom in {label}")));
                }
                Ok(())
            }
        }
        for threads in [1usize, 0] {
            let mut pm = PassManager::new().with_parallelism(threads);
            pm.add(FailOn("f5"));
            let mut m = module_with_funcs(8);
            let err = pm.run(&mut m).unwrap_err();
            assert_eq!(err.message, "boom in f1", "earliest function wins (threads={threads})");
        }
    }

    #[test]
    fn per_function_verification_catches_broken_function_passes() {
        struct BreaksFunc;
        impl Pass for BreaksFunc {
            fn name(&self) -> &'static str {
                "breaks-func"
            }
            fn kind(&self) -> PassKind {
                PassKind::Function
            }
            fn run_on_op(&self, op: &mut Op) -> Result<(), PassError> {
                let ghost = crate::value::Value::from_index(9999);
                let mut bad = Op::new("test.bad");
                bad.operands.push(ghost);
                op.region_block_mut(0).ops.push(bad);
                Ok(())
            }
        }
        let registry = Arc::new(DialectRegistry::new());
        let mut pm = PassManager::new().with_verifier(registry);
        pm.add(BreaksFunc);
        let mut m = module_with_funcs(2);
        let err = pm.run(&mut m).unwrap_err();
        assert!(err.message.contains("verification of @f0"), "{err}");
    }

    #[test]
    fn verify_each_without_registry_still_runs_structural_checks_per_function() {
        struct BreaksFunc;
        impl Pass for BreaksFunc {
            fn name(&self) -> &'static str {
                "breaks-func"
            }
            fn kind(&self) -> PassKind {
                PassKind::Function
            }
            fn run_on_op(&self, op: &mut Op) -> Result<(), PassError> {
                let ghost = crate::value::Value::from_index(9999);
                let mut bad = Op::new("test.bad");
                bad.operands.push(ghost);
                op.region_block_mut(0).ops.push(bad);
                Ok(())
            }
        }
        let mut pm = PassManager::new();
        pm.verify_each = true; // no registry: structural SSA checks only
        pm.add(BreaksFunc);
        let mut m = module_with_funcs(2);
        let err = pm.run(&mut m).unwrap_err();
        assert!(err.message.contains("verification"), "{err}");
    }

    #[test]
    fn pass_manager_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PassManager>();
    }
}
