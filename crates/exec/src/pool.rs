//! A persistent worker pool for apply steps.
//!
//! The seed `Runner` spawned a fresh `std::thread::scope` for every
//! apply of every timestep — thread creation and teardown on the hot
//! path. The pool spawns its workers once (at `Runner::new`), gives each
//! a long-lived [`ExecScratch`] (so per-chunk register/cursor buffers
//! are reused across applies *and* timesteps), and hands chunked row
//! ranges over a shared queue.

use crate::program::ExecScratch;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use sten_trace::{SpanKind, Tracer};

type StaticJob = Box<dyn FnOnce(&mut ExecScratch) + Send + 'static>;

/// A job scoped to the lifetime of a [`WorkerPool::run`] call.
pub type Job<'env> = Box<dyn FnOnce(&mut ExecScratch) + Send + 'env>;

struct State {
    jobs: VecDeque<StaticJob>,
    /// Jobs submitted but not yet finished executing.
    pending: usize,
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// Persistent worker threads executing [`Job`]s with per-worker scratch.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("threads", &self.threads).finish()
    }
}

impl WorkerPool {
    /// Spawns `threads` workers (at least 1).
    pub fn new(threads: usize) -> WorkerPool {
        WorkerPool::new_traced(threads, &Tracer::disabled(), 0)
    }

    /// Spawns workers that record one task span per executed job on
    /// per-worker lanes (`tid` = worker index + 1) of process track
    /// `pid`. Lanes buffer locally and flush after each job — before the
    /// job is counted done — so every span is merged by the time
    /// [`WorkerPool::run`] returns. With a disabled tracer this is
    /// exactly [`WorkerPool::new`].
    pub fn new_traced(threads: usize, tracer: &Tracer, pid: u32) -> WorkerPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                pending: 0,
                panicked: false,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let mut lane = tracer.lane(pid, w as u32 + 1);
                std::thread::spawn(move || {
                    let mut scratch = ExecScratch::new();
                    let mut state = shared.state.lock().unwrap();
                    loop {
                        if let Some(job) = state.jobs.pop_front() {
                            drop(state);
                            let t0 = lane.start();
                            let ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                job(&mut scratch)
                            }))
                            .is_ok();
                            lane.span(t0, || SpanKind::Task);
                            lane.flush();
                            state = shared.state.lock().unwrap();
                            state.pending -= 1;
                            if !ok {
                                state.panicked = true;
                            }
                            if state.pending == 0 {
                                shared.done_cv.notify_all();
                            }
                        } else if state.shutdown {
                            return;
                        } else {
                            state = shared.work_cv.wait(state).unwrap();
                        }
                    }
                })
            })
            .collect();
        WorkerPool { shared, handles, threads }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `jobs` on the workers and blocks until every job finished.
    ///
    /// Taking `&mut self` makes runs exclusive, which is what lets the
    /// jobs borrow from the caller's stack frame.
    ///
    /// # Panics
    /// Re-raises (as a plain panic) if any job panicked.
    pub fn run<'env>(&mut self, jobs: Vec<Job<'env>>) {
        if jobs.is_empty() {
            return;
        }
        let n = jobs.len();
        let mut state = self.shared.state.lock().unwrap();
        state.pending += n;
        for job in jobs {
            // SAFETY: `run` does not return until `pending` drops to
            // zero, i.e. every job has been called and dropped, so the
            // 'env borrows the jobs capture never outlive this frame.
            let job: StaticJob = unsafe { std::mem::transmute::<Job<'env>, StaticJob>(job) };
            state.jobs.push_back(job);
        }
        self.shared.work_cv.notify_all();
        while state.pending > 0 {
            state = self.shared.done_cv.wait(state).unwrap();
        }
        let panicked = state.panicked;
        state.panicked = false;
        drop(state);
        assert!(!panicked, "worker pool job panicked");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_scoped_jobs_and_reuses_workers() {
        let mut pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        for _ in 0..5 {
            let jobs: Vec<Job> = (0..8)
                .map(|_| {
                    Box::new(|_: &mut ExecScratch| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }) as Job
                })
                .collect();
            pool.run(jobs);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn job_panic_is_reported_and_pool_survives() {
        let mut pool = WorkerPool::new(2);
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(vec![Box::new(|_: &mut ExecScratch| panic!("boom")) as Job]);
        }));
        assert!(boom.is_err());
        // The pool keeps working after a job panicked.
        let ok = AtomicUsize::new(0);
        pool.run(vec![Box::new(|_: &mut ExecScratch| {
            ok.fetch_add(1, Ordering::Relaxed);
        }) as Job]);
        assert_eq!(ok.load(Ordering::Relaxed), 1);
    }
}
