//! Compiling whole stencil functions into executable pipelines.
//!
//! A stencil-level function (after shape inference, optionally after
//! distribution) has the shape `loads* (applies | swaps)* stores*`; this
//! module compiles it into a [`Pipeline`] of [`Step`]s and executes
//! timesteps through a [`Runner`] — serially, with thread parallelism, or
//! SPMD-distributed over SimMPI.
//!
//! **Overlapped halo exchange.** Every `dmp.swap` compiles into a
//! [`Step::SwapBegin`]/[`Step::SwapWait`] pair with persistent pack
//! buffers. On the synchronous path the pair is adjacent (pack + send,
//! then receive + unpack — exactly the old `Step::Swap`). When the swap
//! is marked `overlap` (`distribute-stencil{overlap=true}`) and the apply
//! reading the exchanged buffer can be split, the pipeline instead runs
//!
//! ```text
//! SwapBegin            pack + buffered sends
//! Apply(Interior)      on the worker pool, messages in flight
//! SwapWait             receive + unpack the halos
//! Apply(Boundary(dir)) one step per halo shell
//! ```
//!
//! with the interior/shell geometry from [`sten_dmp::HaloRegionSplit`] —
//! the same analysis the `dmp → mpi` lowering uses — so results stay
//! bit-for-bit identical to the synchronous path on every strategy and
//! executor tier (enforced by `tests/halo_overlap.rs`).
//!
//! **Temporal blocking.** A swap carrying `depth=k`
//! (`distribute-stencil{depth=k}`) exchanges a width-`k·r` halo once per
//! `k`-step block. The pipeline records the block shape in
//! [`TemporalBlock`]; the [`Runner`] expands it into a per-phase step
//! schedule on first distributed step (the growth is clamped per side to
//! directions with a live neighbour, which depends on the rank): phase 0
//! performs the deep exchange and computes the core grown by `(k-1)·r`
//! toward every exchanging side, and phases `1..k` run exchange-free on
//! progressively shrinking regions ([`sten_dmp::deep_phase_regions`]) —
//! redundant computation on the outer shells buys `k×` fewer messages at
//! the same total volume.

use crate::pool::{Job, WorkerPool};
use crate::program::{
    compile_apply, rematerialize_outs, split_longest_dim, ExecScratch, InputDesc, SendPtr,
};
use crate::specialize::{SpecializedKernel, TierKind};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use sten_interp::{FaultAction, MpiError, ReduceAcc, ReduceKind, SimWorld};
use sten_ir::{Attribute, Bounds, ExchangeAttr, Module, Type, Value};
use sten_trace::{Counter, SpanKind, TraceLane, Tracer};

/// A structured executor failure. Distributed steps surface one instead
/// of panicking or hanging: communication failures carry the SimMPI
/// diagnosis, retry-budget exhaustion names the swap and neighbour, and
/// an injected crash identifies the rank and step (the resilient driver
/// keys recovery on these).
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// The communication substrate failed (poison, timeout, protocol
    /// violation).
    Mpi(MpiError),
    /// A reliable halo exchange exhausted its retry budget.
    SwapTimeout {
        /// The waiting rank.
        rank: i64,
        /// Swap id within the pipeline.
        swap: usize,
        /// The neighbour whose halo never arrived.
        neighbor: i64,
        /// The expected message tag.
        tag: i32,
        /// Retries attempted (each with doubled timeout).
        attempts: u32,
        /// Total time waited across attempts, milliseconds.
        waited_ms: u64,
    },
    /// A scheduled rank crash fired on this rank at this step.
    InjectedCrash {
        /// The crashed rank.
        rank: i64,
        /// The timestep it crashed at.
        step: u64,
    },
    /// Any other executor failure (shape mismatches, unsupported
    /// structure) — the legacy string diagnostics.
    Exec(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Mpi(e) => write!(f, "{e}"),
            ExecError::SwapTimeout { rank, swap, neighbor, tag, attempts, waited_ms } => write!(
                f,
                "rank {rank}: swap#{swap} halo from rank {neighbor} (tag {tag}) still missing \
                 after {attempts} retries ({waited_ms} ms)"
            ),
            ExecError::InjectedCrash { rank, step } => {
                write!(f, "rank {rank}: injected crash at step {step}")
            }
            ExecError::Exec(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<MpiError> for ExecError {
    fn from(e: MpiError) -> ExecError {
        ExecError::Mpi(e)
    }
}

impl From<String> for ExecError {
    fn from(msg: String) -> ExecError {
        ExecError::Exec(msg)
    }
}

/// One rank's restartable execution state: the timestep counter, every
/// field argument, and the scalar slots (temporaries are recomputed from
/// scratch each step, so they need no capture). The digest is the
/// FNV-1a-128 hash of the serialized state — the content address the
/// checkpoint store files the snapshot under, and the value the
/// checkpoint barrier exchanges to certify a consistent cut.
#[derive(Clone, Debug, PartialEq)]
pub struct RankSnapshot {
    /// Timesteps completed when the snapshot was taken.
    pub step: u64,
    /// The field arguments, in pipeline argument order.
    pub args: Vec<Vec<f64>>,
    /// The runner's scalar slots (runtime scalars, reduction results).
    pub scalar_slots: Vec<f64>,
    /// Content hash of the serialized snapshot.
    pub digest: u128,
}

impl RankSnapshot {
    /// Serializes the snapshot (little-endian words: step, arg count,
    /// per-arg length + raw f64 bits, slot count + raw f64 bits). Bit
    /// patterns are preserved exactly — a restore is bit-identical.
    pub fn to_bytes(&self) -> Vec<u8> {
        let doubles: usize =
            self.args.iter().map(|a| a.len()).sum::<usize>() + self.scalar_slots.len();
        let mut out = Vec::with_capacity(8 * (3 + self.args.len() + doubles));
        out.extend_from_slice(&self.step.to_le_bytes());
        out.extend_from_slice(&(self.args.len() as u64).to_le_bytes());
        for a in &self.args {
            out.extend_from_slice(&(a.len() as u64).to_le_bytes());
            for v in a {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.scalar_slots.len() as u64).to_le_bytes());
        for v in &self.scalar_slots {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        out
    }

    /// Deserializes a snapshot written by [`RankSnapshot::to_bytes`].
    ///
    /// # Errors
    /// Reports truncated or malformed bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<RankSnapshot, String> {
        let mut at = 0usize;
        let word = |n: &mut usize| -> Result<u64, String> {
            let end = *n + 8;
            let chunk = bytes.get(*n..end).ok_or("truncated checkpoint blob")?;
            *n = end;
            Ok(u64::from_le_bytes(chunk.try_into().unwrap()))
        };
        let step = word(&mut at)?;
        let num_args = word(&mut at)? as usize;
        let mut args = Vec::with_capacity(num_args);
        for _ in 0..num_args {
            let len = word(&mut at)? as usize;
            let mut a = Vec::with_capacity(len);
            for _ in 0..len {
                a.push(f64::from_bits(word(&mut at)?));
            }
            args.push(a);
        }
        let num_slots = word(&mut at)? as usize;
        let mut scalar_slots = Vec::with_capacity(num_slots);
        for _ in 0..num_slots {
            scalar_slots.push(f64::from_bits(word(&mut at)?));
        }
        let digest = sten_ir::content_hash(bytes);
        Ok(RankSnapshot { step, args, scalar_slots, digest })
    }
}

/// Identifies a buffer in a pipeline.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BufId {
    /// The n-th function argument.
    Arg(usize),
    /// The n-th intermediate (pipeline-allocated) buffer.
    Tmp(usize),
}

/// Which part of its iteration space an apply step executes.
#[derive(Clone, Debug, PartialEq)]
pub enum ApplyRegion {
    /// The kernel's whole range (the synchronous path).
    Full,
    /// The interior core — independent of halo cells, safe to run while
    /// halo messages are in flight.
    Interior(Bounds),
    /// One boundary shell, labelled with the halo side it depends on
    /// (one-hot direction, e.g. `[0, -1]`).
    Boundary(Vec<i64>, Bounds),
    /// One temporal-blocking phase: phase `j` of a `k`-step block runs
    /// the kernel over the core grown `(k-1-j)·r` toward every
    /// exchanging side (redundant compute on the outer shells).
    Phase(usize, Bounds),
}

impl ApplyRegion {
    /// The executed sub-range (`kernel_range` for [`ApplyRegion::Full`]).
    pub fn bounds<'a>(&'a self, kernel_range: &'a Bounds) -> &'a Bounds {
        match self {
            ApplyRegion::Full => kernel_range,
            ApplyRegion::Interior(b) | ApplyRegion::Boundary(_, b) | ApplyRegion::Phase(_, b) => b,
        }
    }

    /// Grid points this region executes.
    pub fn points(&self, kernel_range: &Bounds) -> i64 {
        self.bounds(kernel_range).num_points()
    }

    /// Human-readable label for `--timing`/step summaries.
    pub fn label(&self) -> String {
        match self {
            ApplyRegion::Full => String::new(),
            ApplyRegion::Interior(_) => "interior ".to_string(),
            ApplyRegion::Boundary(dir, _) => format!("boundary{dir:?} "),
            ApplyRegion::Phase(j, _) => format!("phase{j} "),
        }
    }
}

/// One executable step.
// Steps are built once per pipeline and held in a short Vec; the size
// skew from the inline kernel never touches a per-point path.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum Step {
    /// Run a compiled kernel through its specialized executor tier.
    Apply {
        /// The kernel, specialized at pipeline-build time.
        kernel: SpecializedKernel,
        /// Input buffers (parallel to the kernel's inputs).
        inputs: Vec<BufId>,
        /// Output buffers (parallel to the kernel's outputs).
        outputs: Vec<BufId>,
        /// Which part of the iteration space this step covers.
        region: ApplyRegion,
    },
    /// Launch a halo exchange: pack the outgoing slabs into persistent
    /// per-exchange buffers and post the (buffered, non-blocking) sends.
    SwapBegin {
        /// Index into the runner's persistent swap scratch.
        id: usize,
        /// The buffer to exchange.
        buf: BufId,
        /// Rank topology.
        grid: Vec<i64>,
        /// Exchange declarations (buffer coordinates).
        exchanges: Vec<ExchangeAttr>,
    },
    /// Complete the exchange launched by the matching
    /// [`Step::SwapBegin`]: receive every neighbour's message (blocking
    /// only on messages still in flight) and unpack the halo slabs.
    SwapWait {
        /// Index into the runner's persistent swap scratch.
        id: usize,
        /// The buffer to exchange.
        buf: BufId,
        /// Rank topology.
        grid: Vec<i64>,
        /// Exchange declarations (buffer coordinates).
        exchanges: Vec<ExchangeAttr>,
    },
    /// Global reduction: fold the ranged points of the input buffer(s)
    /// into one scalar slot. The local fold is thread-chunked and merged
    /// through an order-invariant accumulator ([`ReduceAcc`]: an exact
    /// superaccumulator for `sum`/`dot`, a `total_cmp` lattice for
    /// `min`/`max`), so any chunking — and any rank decomposition, when
    /// `allreduce` exchanges the accumulators — produces bit-identical
    /// results.
    Reduce {
        /// The reduction kind.
        kind: ReduceKind,
        /// Input buffer(s) with their layouts (two for `dot`).
        inputs: Vec<(BufId, InputDesc)>,
        /// Logical range to fold (rank-local after distribution).
        range: Bounds,
        /// Scalar slot receiving the rounded result.
        dst_slot: usize,
        /// Whether to merge accumulators across all ranks (a folded
        /// `dmp.allreduce`; the identity when running single-process).
        allreduce: bool,
    },
    /// Range copy between buffers (non-forwarded stores).
    Copy {
        /// Source buffer.
        src: BufId,
        /// Source layout.
        src_desc: InputDesc,
        /// Destination buffer.
        dst: BufId,
        /// Destination layout.
        dst_desc: InputDesc,
        /// Logical range to copy.
        range: Bounds,
    },
}

/// Temporal-blocking metadata attached to a [`Pipeline`] whose single
/// swap carries `depth=k`: one deep exchange feeds a block of `k`
/// timesteps. The base `steps` keep the synchronous wide-exchange
/// schedule (correct at every step, used when no schedule can be built);
/// the [`Runner`] expands this into the per-phase schedule.
#[derive(Clone, Debug)]
pub struct TemporalBlock {
    /// Steps per exchange block (`k >= 2`).
    pub depth: i64,
    /// Per-dimension *per-step* halo read widths on the low/high sides
    /// (the swap's exchange widths divided by `depth`).
    pub lo: Vec<i64>,
    pub hi: Vec<i64>,
    /// Whether phase 0 overlaps the deep exchange with interior compute
    /// (the swap's `overlap` marker).
    pub overlap: bool,
}

/// A compiled stencil function.
#[derive(Clone, Debug)]
pub struct Pipeline {
    /// Number of buffer arguments the caller must provide.
    pub num_args: usize,
    /// Shapes of caller-provided buffers.
    pub arg_shapes: Vec<Vec<i64>>,
    /// Shapes of pipeline-allocated intermediates.
    pub tmp_shapes: Vec<Vec<i64>>,
    /// Steps in program order.
    pub steps: Vec<Step>,
    /// Number of distinct swaps (begin/wait pairs) in the pipeline.
    pub num_swaps: usize,
    /// Number of scalar slots (runtime `f64` arguments plus reduction
    /// results) the runner must hold.
    pub num_slots: usize,
    /// Slot index of each scalar (`f64`) function argument, in argument
    /// order. Set them per step via [`Runner::set_scalar`].
    pub scalar_inputs: Vec<usize>,
    /// Slots returned by `func.return`, in operand order. Read them
    /// after a step via [`Runner::scalar_outputs`].
    pub scalar_outputs: Vec<usize>,
    /// Temporal-blocking block shape, when the function matches the
    /// deep-halo pattern (`None` = exchange every step).
    pub temporal: Option<TemporalBlock>,
}

impl Pipeline {
    /// Total floating-point ops per executed timestep.
    pub fn flops_per_step(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| match s {
                Step::Apply { kernel, region, .. } => {
                    kernel.program.flops as u64 * region.points(&kernel.range) as u64
                }
                // One rounded product per point; the exact accumulation
                // itself is integer limb work.
                Step::Reduce { kind: ReduceKind::Dot, range, .. } => {
                    range.num_points().max(0) as u64
                }
                _ => 0,
            })
            .sum()
    }

    /// Grid points written per timestep (over all applies; a fused apply
    /// with several results writes several points per iteration point).
    pub fn points_per_step(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| match s {
                Step::Apply { kernel, outputs, region, .. } => {
                    region.points(&kernel.range) as u64 * outputs.len().max(1) as u64
                }
                _ => 0,
            })
            .sum()
    }

    /// Number of apply steps (the "stencil regions" count of §6.2; an
    /// overlapped apply contributes one interior plus one step per
    /// boundary shell).
    pub fn num_apply_steps(&self) -> usize {
        self.steps.iter().filter(|s| matches!(s, Step::Apply { .. })).count()
    }

    /// Number of reduction steps, and how many of them rendezvous across
    /// ranks — the `--timing` reduction report.
    pub fn num_reduce_steps(&self) -> (usize, usize) {
        let total = self.steps.iter().filter(|s| matches!(s, Step::Reduce { .. })).count();
        let global =
            self.steps.iter().filter(|s| matches!(s, Step::Reduce { allreduce: true, .. })).count();
        (total, global)
    }

    /// Whether any exchange is overlapped with interior computation
    /// (some step separates a begin from its wait, or a temporal block
    /// overlaps its phase-0 deep exchange).
    pub fn is_overlapped(&self) -> bool {
        if self.temporal.as_ref().is_some_and(|t| t.overlap) {
            return true;
        }
        self.steps.iter().enumerate().any(|(i, s)| match s {
            Step::SwapBegin { id, .. } => !matches!(
                self.steps.get(i + 1),
                Some(Step::SwapWait { id: wid, .. }) if wid == id
            ),
            _ => false,
        })
    }

    /// Elements exchanged per timestep when every neighbour is present.
    pub fn exchanged_elements_per_step(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| match s {
                Step::SwapBegin { exchanges, .. } => {
                    exchanges.iter().map(|e| e.num_elements() as u64).sum()
                }
                _ => 0,
            })
            .sum()
    }

    /// Re-specializes every apply kernel (`None` = automatic selection).
    /// Lets benchmarks and tests pin an executor tier per pipeline
    /// without touching the process-wide `STEN_EXEC_TIER` override.
    ///
    /// Region-split steps (one interior + several boundary shells from
    /// an overlapped or deep-halo schedule) all derive from one compiled
    /// apply; they are specialized once and share the resulting tier's
    /// `Arc`'d tap tables, so the short-row boundary path never rebuilds
    /// per-shell state. Keyed by the kernel's debug rendering, which
    /// distinguishes every semantic detail including `-0.0` vs `0.0`
    /// constants (plain f64 equality would conflate them).
    pub fn respecialize(&mut self, tier: Option<TierKind>) {
        let mut cache: HashMap<String, SpecializedKernel> = HashMap::new();
        for step in &mut self.steps {
            if let Step::Apply { kernel, .. } = step {
                let key = format!("{:?}", kernel.kernel);
                let spec = cache
                    .entry(key)
                    .or_insert_with(|| SpecializedKernel::specialize(kernel.kernel.clone(), tier));
                *kernel = spec.clone();
            }
        }
    }

    /// One line per apply step describing the selected executor tier,
    /// e.g. `apply#0: weighted-sum (5 taps, tree; rank 2) [3844 pts]`;
    /// region-split steps carry their region, e.g. `[interior 3600 pts]`.
    pub fn tier_summary(&self) -> Vec<String> {
        self.steps
            .iter()
            .filter_map(|s| match s {
                Step::Apply { kernel, region, .. } => Some(format!(
                    "{} [{}{} pts]",
                    kernel.tier_label(),
                    region.label(),
                    region.points(&kernel.range)
                )),
                _ => None,
            })
            .enumerate()
            .map(|(i, l)| format!("apply#{i}: {l}"))
            .collect()
    }

    /// One line per step — the full interior/boundary structure of the
    /// pipeline, as reported by `sten-opt --timing`.
    pub fn step_summary(&self) -> Vec<String> {
        self.steps
            .iter()
            .map(|s| match s {
                Step::Apply { kernel, region, .. } => format!(
                    "apply {} [{}{} pts]",
                    kernel.tier_label(),
                    region.label(),
                    region.points(&kernel.range)
                ),
                Step::SwapBegin { id, exchanges, .. } => format!(
                    "swap#{id} begin [{} elems, {} exchanges]",
                    exchanges.iter().map(ExchangeAttr::num_elements).sum::<i64>(),
                    exchanges.len()
                ),
                Step::SwapWait { id, .. } => format!("swap#{id} wait"),
                Step::Reduce { kind, range, allreduce, .. } => format!(
                    "reduce {} [{} pts{}]",
                    kind.name(),
                    range.num_points(),
                    if *allreduce { ", allreduce" } else { "" }
                ),
                Step::Copy { range, .. } => format!("copy [{} pts]", range.num_points()),
            })
            .collect()
    }

    /// Temporal-blocking report for `sten-opt --timing`: the chosen
    /// depth, message count per block (vs. the every-step schedule), and
    /// the redundant-compute points the deep block pays for them. Counts
    /// assume every neighbour is present (interior ranks); boundary
    /// ranks skip the clamped sides. Empty when the pipeline exchanges
    /// every step.
    pub fn temporal_summary(&self) -> Vec<String> {
        let Some(tb) = &self.temporal else { return Vec::new() };
        let exchanges = self.steps.iter().find_map(|s| match s {
            Step::SwapBegin { exchanges, .. } => Some(exchanges),
            _ => None,
        });
        let core = self.steps.iter().find_map(|s| match s {
            Step::Apply { kernel, .. } => Some(&kernel.range),
            _ => None,
        });
        let (Some(exchanges), Some(core)) = (exchanges, core) else { return Vec::new() };
        let regions = sten_dmp::deep_phase_regions(core, &tb.lo, &tb.hi, tb.depth);
        let redundant: i64 =
            regions.iter().map(|r| (r.num_points() - core.num_points()).max(0)).sum();
        let msgs = exchanges.len();
        let elems: i64 = exchanges.iter().map(ExchangeAttr::num_elements).sum();
        vec![format!(
            "temporal blocking: depth={}, {} msgs/block ({} at depth=1, same {} elems), \
             redundant compute {} pts/block ({:.2}% of {} core pts)",
            tb.depth,
            msgs,
            msgs * tb.depth as usize,
            elems,
            redundant,
            100.0 * redundant as f64 / (core.num_points().max(1) * tb.depth) as f64,
            core.num_points()
        )]
    }
}

/// Persistent per-swap exchange scratch: message buffers are recycled
/// between the pack (gather) side and the unpack (scatter) side, so the
/// steady state of a timestep loop allocates nothing — received buffers
/// become the next step's send buffers.
///
/// On a world with [`Reliability`] attached, the scratch additionally
/// carries the reliable-exchange state: a per-swap sequence number
/// (stamped into every outgoing frame, incremented once per
/// [`swap_begin`]) and the retained copies of the current round's
/// outgoing frames, re-sent verbatim on a receive timeout — the peer
/// suppresses the duplicates by sequence number, so the re-send is
/// idempotent.
#[derive(Clone, Debug, Default)]
struct SwapScratch {
    free: Vec<Vec<f64>>,
    /// Sequence number of the in-flight round (0 = nothing sent yet).
    seq: u64,
    /// Retained `(dst, tag, framed payload)` of the current round, for
    /// timeout-triggered re-sends from the recycled pack buffers.
    sent: Vec<(i32, i32, Vec<f64>)>,
}

impl SwapScratch {
    fn take(&mut self, capacity: usize) -> Vec<f64> {
        match self.free.pop() {
            Some(mut v) => {
                v.clear();
                v.reserve(capacity);
                v
            }
            None => Vec::with_capacity(capacity),
        }
    }

    fn recycle(&mut self, v: Vec<f64>) {
        self.free.push(v);
    }
}

/// A frame received out of order on a reliable exchange: either a later
/// sequence number overtook the expected one (a reordering fault) or a
/// frame for a different swap id sharing the direction tag arrived
/// first. Parked until the wait that expects it comes around.
#[derive(Clone, Debug)]
struct StashedFrame {
    src: i32,
    tag: i32,
    swap: u64,
    seq: u64,
    frame: Vec<f64>,
}

/// Words of frame header a reliable exchange prepends to each halo
/// payload: the swap id and the sequence number, each stored exactly as
/// a small-integer `f64`.
const FRAME_HEADER: usize = 2;

/// Executes a [`Pipeline`].
///
/// A runner owns a persistent [`WorkerPool`] (when `threads > 1`):
/// workers are spawned once and reused across every apply of every
/// timestep, each holding a long-lived [`ExecScratch`], instead of the
/// seed's `thread::scope` spawn-per-apply. Swap steps likewise reuse
/// persistent per-exchange message buffers ([`SwapScratch`]).
pub struct Runner {
    /// The compiled pipeline.
    pub pipeline: Pipeline,
    /// Worker threads for apply steps (1 = serial).
    pub threads: usize,
    tmps: Vec<Vec<f64>>,
    pool: Option<WorkerPool>,
    scratch: ExecScratch,
    /// Scalar slots: runtime `f64` arguments (set via
    /// [`Runner::set_scalar`]) and reduction results, persisted across
    /// steps so later steps (and the caller) can read them.
    scalar_slots: Vec<f64>,
    swap_scratch: Vec<SwapScratch>,
    /// Out-of-order frames parked by reliable exchanges, shared across
    /// swap ids (distinct swaps reuse a direction's tag, so an early
    /// frame can belong to a different swap than the one waiting).
    swap_stash: Vec<StashedFrame>,
    copy_scratch: Vec<f64>,
    /// Per-phase step schedules for temporal blocking, built lazily on
    /// the first distributed step: the phase-region growth is clamped
    /// per side to directions with a live neighbour, which depends on
    /// the rank this runner executes as.
    phase_schedule: Option<Vec<Vec<Step>>>,
    /// Main-thread recording lane (disabled unless
    /// [`Runner::with_trace`] attached a sink).
    lane: TraceLane,
    tracer: Tracer,
    /// Timesteps executed so far (the trace's timestep index).
    timestep: u64,
}

impl Runner {
    /// Creates a runner, allocating the intermediates and (for
    /// `threads > 1`) spawning the worker pool.
    pub fn new(pipeline: Pipeline, threads: usize) -> Runner {
        let tmps = pipeline
            .tmp_shapes
            .iter()
            .map(|s| vec![0.0; s.iter().product::<i64>().max(0) as usize])
            .collect();
        let pool = (threads > 1).then(|| WorkerPool::new(threads));
        let swap_scratch = vec![SwapScratch::default(); pipeline.num_swaps];
        let scalar_slots = vec![0.0; pipeline.num_slots];
        Runner {
            pipeline,
            threads,
            tmps,
            pool,
            scratch: ExecScratch::new(),
            scalar_slots,
            swap_scratch,
            swap_stash: Vec::new(),
            copy_scratch: Vec::new(),
            phase_schedule: None,
            lane: TraceLane::disabled(),
            tracer: Tracer::disabled(),
            timestep: 0,
        }
    }

    /// Attaches a trace sink: every subsequent step records one span per
    /// executed [`Step`] (tagged with tier, region, and payload bytes)
    /// plus one enclosing timestep span, on process track `pid` (the
    /// rank). Worker-pool jobs record task spans on per-worker lanes.
    /// Tracing never changes what executes — outputs stay bit-identical
    /// (enforced by `tests/trace_identity.rs`).
    #[must_use]
    pub fn with_trace(mut self, tracer: &Tracer, pid: u32) -> Runner {
        self.lane = tracer.lane(pid, 0);
        self.tracer = tracer.clone();
        if self.threads > 1 {
            self.pool = Some(WorkerPool::new_traced(self.threads, tracer, pid));
        }
        self
    }

    /// The executor-tier lines of the underlying pipeline.
    pub fn tier_summary(&self) -> Vec<String> {
        self.pipeline.tier_summary()
    }

    /// The number of OS threads that actually execute apply steps: the
    /// worker-pool size when one was spawned, otherwise 1 (the runner
    /// itself, serially). `threads <= 1` requests never spawn a pool, so
    /// this can differ from the `threads` constructor argument — report
    /// this, not the request, in benchmarks.
    pub fn effective_threads(&self) -> usize {
        self.pool.as_ref().map(|p| p.threads()).unwrap_or(1)
    }

    /// Sets the `i`-th scalar (`f64`) function argument for subsequent
    /// steps (CG's α/β change every iteration).
    ///
    /// # Panics
    /// Panics if the pipeline has fewer scalar arguments.
    pub fn set_scalar(&mut self, i: usize, v: f64) {
        let slot = self.pipeline.scalar_inputs[i];
        self.scalar_slots[slot] = v;
    }

    /// The scalars `func.return` produced on the most recent step, in
    /// operand order (reduction results such as a residual norm).
    pub fn scalar_outputs(&self) -> Vec<f64> {
        self.pipeline.scalar_outputs.iter().map(|&s| self.scalar_slots[s]).collect()
    }

    /// Runs one timestep on single-process data.
    ///
    /// # Errors
    /// Reports swap steps (they need a world) and shape mismatches.
    ///
    /// # Panics
    /// Panics if `args` count differs from the pipeline's `num_args`.
    pub fn step(&mut self, args: &mut [Vec<f64>]) -> Result<(), String> {
        self.step_inner(args, None, 0).map_err(|e| e.to_string())
    }

    /// Runs one timestep as `rank` of a SimMPI world.
    ///
    /// # Errors
    /// Reports shape mismatches and communication failures.
    pub fn step_distributed(
        &mut self,
        args: &mut [Vec<f64>],
        world: &Arc<SimWorld>,
        rank: i64,
    ) -> Result<(), String> {
        self.step_inner(args, Some(world), rank).map_err(|e| e.to_string())
    }

    /// [`Runner::step_distributed`] with the structured error, plus
    /// failure propagation: any error other than an incoming poison
    /// poisons the world, so peers blocked in receives or collective
    /// rendezvous wake with [`MpiError::Poisoned`] instead of hanging on
    /// the failed rank.
    ///
    /// # Errors
    /// Reports shape mismatches, communication failures, exhausted retry
    /// budgets, and injected crashes as a typed [`ExecError`].
    pub fn step_distributed_checked(
        &mut self,
        args: &mut [Vec<f64>],
        world: &Arc<SimWorld>,
        rank: i64,
    ) -> Result<(), ExecError> {
        let result = self.step_inner(args, Some(world), rank);
        if let Err(e) = &result {
            if !matches!(e, ExecError::Mpi(MpiError::Poisoned { .. })) {
                world.poison(rank as i32, e.to_string());
            }
        }
        result
    }

    /// Captures this rank's restartable state (timestep, field args,
    /// scalar slots) as a [`RankSnapshot`], digesting the serialized
    /// form so identical states share one content address.
    pub fn snapshot(&self, args: &[Vec<f64>]) -> RankSnapshot {
        let mut snap = RankSnapshot {
            step: self.timestep,
            args: args.to_vec(),
            scalar_slots: self.scalar_slots.clone(),
            digest: 0,
        };
        snap.digest = sten_ir::content_hash(&snap.to_bytes());
        snap
    }

    /// Rolls this rank back to `snap`: overwrites `args` and the scalar
    /// slots, and rewinds the timestep counter (so temporal-blocking
    /// phase alignment and trace indices resume consistently).
    ///
    /// # Panics
    /// Panics if the snapshot's shape disagrees with the pipeline's.
    pub fn restore(&mut self, args: &mut [Vec<f64>], snap: &RankSnapshot) {
        assert_eq!(args.len(), snap.args.len(), "snapshot argument count mismatch");
        for (a, s) in args.iter_mut().zip(&snap.args) {
            assert_eq!(a.len(), s.len(), "snapshot argument shape mismatch");
            a.clone_from(s);
        }
        self.scalar_slots.clone_from(&snap.scalar_slots);
        self.timestep = snap.step;
        // A restore accompanies a fresh world (rollback discards all
        // in-flight messages); reliable-exchange state restarts with it.
        for s in &mut self.swap_scratch {
            s.seq = 0;
            let retained = std::mem::take(&mut s.sent);
            for (_, _, frame) in retained {
                s.recycle(frame);
            }
        }
        self.swap_stash.clear();
    }

    fn step_inner(
        &mut self,
        args: &mut [Vec<f64>],
        world: Option<&Arc<SimWorld>>,
        rank: i64,
    ) -> Result<(), ExecError> {
        assert_eq!(args.len(), self.pipeline.num_args, "argument count mismatch");
        let index = self.timestep;
        self.timestep += 1;
        if let Some(world) = world {
            if let Some(action) = world.fault_plan().and_then(|p| p.on_step(rank as i32, index)) {
                let tracer = world.tracer();
                tracer.count(Counter::FaultsInjected, 1);
                tracer.record_instant(rank.max(0) as u32, 0, || SpanKind::Fault {
                    fault: action.name(),
                    rank: rank as i32,
                    detail: format!("step {index}"),
                });
                match action {
                    FaultAction::RankStall { for_ms } => {
                        std::thread::sleep(std::time::Duration::from_millis(for_ms));
                    }
                    FaultAction::RankCrash => {
                        return Err(ExecError::InjectedCrash { rank, step: index });
                    }
                    _ => {}
                }
            }
        }
        if self.pipeline.temporal.is_some() && self.phase_schedule.is_none() && world.is_some() {
            self.phase_schedule = Some(build_phase_schedule(&self.pipeline, rank)?);
        }
        let pipeline = &self.pipeline;
        let tmps = &mut self.tmps;
        let pool = &mut self.pool;
        let scratch = &mut self.scratch;
        let scalar_slots = &mut self.scalar_slots;
        let swap_scratch = &mut self.swap_scratch;
        let swap_stash = &mut self.swap_stash;
        let copy_scratch = &mut self.copy_scratch;
        let lane = &mut self.lane;
        let steps: &[Step] = match &self.phase_schedule {
            Some(sched) => &sched[(index % sched.len() as u64) as usize],
            None => &pipeline.steps,
        };
        let t_step = lane.start();
        // Steps are executed in order; buffers are disjoint Vec<f64>s.
        for step in steps {
            let t0 = lane.start();
            match step {
                Step::Apply { kernel, inputs, outputs, region } => {
                    // Collect raw pointers to sidestep simultaneous
                    // &/&mut borrows of the args/tmps arrays; inputs and
                    // outputs never alias (value semantics: applies read
                    // source buffers and write freshly produced ones).
                    let input_slices: Vec<&[f64]> = inputs
                        .iter()
                        .map(|&b| match b {
                            BufId::Arg(i) => unsafe {
                                std::slice::from_raw_parts(args[i].as_ptr(), args[i].len())
                            },
                            BufId::Tmp(i) => unsafe {
                                std::slice::from_raw_parts(tmps[i].as_ptr(), tmps[i].len())
                            },
                        })
                        .collect();
                    let mut out_slices: Vec<&mut [f64]> = outputs
                        .iter()
                        .map(|&b| match b {
                            BufId::Arg(i) => unsafe {
                                std::slice::from_raw_parts_mut(
                                    args[i].as_ptr() as *mut f64,
                                    args[i].len(),
                                )
                            },
                            BufId::Tmp(i) => unsafe {
                                std::slice::from_raw_parts_mut(
                                    tmps[i].as_ptr() as *mut f64,
                                    tmps[i].len(),
                                )
                            },
                        })
                        .collect();
                    let range = region.bounds(&kernel.range);
                    let kernel_scalars: Vec<f64> =
                        kernel.scalar_args.iter().map(|&s| scalar_slots[s]).collect();
                    run_apply(
                        kernel,
                        range,
                        &kernel_scalars,
                        &input_slices,
                        &mut out_slices,
                        pool.as_mut(),
                        scratch,
                    );
                }
                Step::Reduce { kind, inputs, range, dst_slot, allreduce } => {
                    let input_slices: Vec<(&[f64], &InputDesc)> = inputs
                        .iter()
                        .map(|(b, desc)| {
                            let data: &[f64] = match *b {
                                BufId::Arg(i) => &args[i],
                                BufId::Tmp(i) => &tmps[i],
                            };
                            (data, desc)
                        })
                        .collect();
                    let t_partial = lane.start();
                    let (mut acc, chunks) = run_reduce(*kind, &input_slices, range, pool.as_mut());
                    lane.span(t_partial, || SpanKind::Reduce {
                        phase: "partial",
                        bytes: 8 * range.num_points().max(0) as u64,
                        parts: chunks as u32,
                    });
                    if *allreduce {
                        if let Some(world) = world {
                            // Exchange accumulator wire payloads with every
                            // rank and merge in ascending rank order. The
                            // merge is order-invariant (exact sum, lattice
                            // min/max), so the result is identical on every
                            // rank and to any other decomposition.
                            let t_wait = lane.start();
                            let wire = acc.to_wire();
                            let bytes = 8 * wire.len() as u64;
                            let parts = world.exchange_all(rank as usize, wire)?;
                            let nparts = parts.len();
                            let mut merged = ReduceAcc::new(*kind);
                            for part in &parts {
                                merged.merge(ReduceAcc::from_wire(*kind, part)?);
                            }
                            acc = merged;
                            lane.span(t_wait, || SpanKind::Reduce {
                                phase: "allreduce",
                                bytes,
                                parts: nparts as u32,
                            });
                        }
                        // Single-process execution: the allreduce is the
                        // identity (one rank owns the whole domain).
                    }
                    scalar_slots[*dst_slot] = acc.finish();
                }
                Step::SwapBegin { id, buf, grid, exchanges } => {
                    let Some(world) = world else {
                        return Err(ExecError::Exec(
                            "pipeline contains dmp.swap steps — use step_distributed".into(),
                        ));
                    };
                    let shape = match *buf {
                        BufId::Arg(i) => &pipeline.arg_shapes[i],
                        BufId::Tmp(i) => &pipeline.tmp_shapes[i],
                    };
                    let data: &[f64] = match *buf {
                        BufId::Arg(i) => &args[i],
                        BufId::Tmp(i) => &tmps[i],
                    };
                    if world.reliability().is_some() {
                        reliable_swap_begin(
                            world,
                            rank,
                            *id,
                            grid,
                            exchanges,
                            shape,
                            data,
                            &mut swap_scratch[*id],
                            lane,
                        )?;
                    } else {
                        swap_begin(
                            world,
                            rank,
                            grid,
                            exchanges,
                            shape,
                            data,
                            &mut swap_scratch[*id],
                            lane,
                        )?;
                    }
                }
                Step::SwapWait { id, buf, grid, exchanges } => {
                    let Some(world) = world else {
                        return Err(ExecError::Exec(
                            "pipeline contains dmp.swap steps — use step_distributed".into(),
                        ));
                    };
                    let shape = match *buf {
                        BufId::Arg(i) => &pipeline.arg_shapes[i],
                        BufId::Tmp(i) => &pipeline.tmp_shapes[i],
                    };
                    let data: &mut [f64] = match *buf {
                        BufId::Arg(i) => &mut args[i],
                        BufId::Tmp(i) => &mut tmps[i],
                    };
                    if let Some(rel) = world.reliability() {
                        let rel = rel.clone();
                        reliable_swap_wait(
                            world,
                            rank,
                            *id,
                            grid,
                            exchanges,
                            shape,
                            data,
                            &mut swap_scratch[*id],
                            swap_stash,
                            lane,
                            &rel,
                        )?;
                    } else {
                        swap_wait(
                            world,
                            rank,
                            grid,
                            exchanges,
                            shape,
                            data,
                            &mut swap_scratch[*id],
                            lane,
                        )?;
                    }
                }
                Step::Copy { src, src_desc, dst, dst_desc, range } if range.num_points() > 0 => {
                    if src == dst {
                        // Self-copy with potentially overlapping layouts:
                        // stage only the ranged elements (not the whole
                        // buffer) through the persistent scratch.
                        let data: &mut [f64] = match *src {
                            BufId::Arg(i) => &mut args[i],
                            BufId::Tmp(i) => &mut tmps[i],
                        };
                        copy_scratch.clear();
                        for_each_row(range, |p, len| {
                            let s = src_desc.flat(p) as usize;
                            copy_scratch.extend_from_slice(&data[s..s + len]);
                        });
                        let mut at = 0usize;
                        for_each_row(range, |p, len| {
                            let d = dst_desc.flat(p) as usize;
                            data[d..d + len].copy_from_slice(&copy_scratch[at..at + len]);
                            at += len;
                        });
                    } else {
                        // Distinct buffers never alias: copy row-by-row
                        // without cloning anything.
                        let src_data: &[f64] = match *src {
                            BufId::Arg(i) => unsafe {
                                std::slice::from_raw_parts(args[i].as_ptr(), args[i].len())
                            },
                            BufId::Tmp(i) => unsafe {
                                std::slice::from_raw_parts(tmps[i].as_ptr(), tmps[i].len())
                            },
                        };
                        let dst_data: &mut [f64] = match *dst {
                            BufId::Arg(i) => &mut args[i],
                            BufId::Tmp(i) => &mut tmps[i],
                        };
                        for_each_row(range, |p, len| {
                            let s = src_desc.flat(p) as usize;
                            let d = dst_desc.flat(p) as usize;
                            dst_data[d..d + len].copy_from_slice(&src_data[s..s + len]);
                        });
                    }
                }
                // Empty copies execute nothing (but still trace below,
                // keeping one span per step).
                Step::Copy { .. } => {}
            }
            match step {
                // Reduce steps record their own per-phase spans above
                // (partial fold, allreduce rendezvous).
                Step::Reduce { .. } => {}
                _ => lane.span(t0, || match step {
                    Step::Apply { kernel, region, .. } => SpanKind::Apply {
                        tier: kernel.tier_kind().name(),
                        region: region.label().trim_end().to_string(),
                        points: region.points(&kernel.range),
                    },
                    Step::SwapBegin { id, exchanges, .. } => SpanKind::SwapBegin {
                        swap: *id,
                        bytes: 8 * exchanges
                            .iter()
                            .map(|e| e.num_elements().max(0) as u64)
                            .sum::<u64>(),
                    },
                    Step::SwapWait { id, .. } => SpanKind::SwapWait { swap: *id },
                    Step::Copy { range, .. } => SpanKind::Copy { points: range.num_points() },
                    Step::Reduce { .. } => unreachable!(),
                }),
            }
        }
        lane.span(t_step, || SpanKind::Timestep { index });
        lane.flush();
        Ok(())
    }
}

/// Drives `row(point, len)` over every stride-1 row of `range` (the
/// row-start coordinate and the contiguous row length). Both buffers of a
/// [`Step::Copy`] are row-major with unit stride in the last dimension,
/// so ranged copies move whole rows at a time.
fn for_each_row(range: &Bounds, mut row: impl FnMut(&[i64], usize)) {
    let rank = range.rank();
    if rank == 0 || range.num_points() <= 0 {
        return;
    }
    let last = rank - 1;
    let len = (range.0[last].1 - range.0[last].0) as usize;
    let mut p = range.lower();
    loop {
        row(&p, len);
        let mut d = last;
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            p[d] += 1;
            if p[d] < range.0[d].1 {
                break;
            }
            p[d] = range.0[d].0;
        }
    }
}

/// Executes one apply step over `range` (the step's region — the full
/// kernel range, the interior core, or one boundary shell): serially
/// (reusing the runner's scratch) when there is no pool, else chunked
/// over the longest dimension onto the persistent workers.
fn run_apply(
    kernel: &SpecializedKernel,
    range: &Bounds,
    scalars: &[f64],
    inputs: &[&[f64]],
    outs: &mut [&mut [f64]],
    pool: Option<&mut WorkerPool>,
    scratch: &mut ExecScratch,
) {
    let range = range.clone();
    let set_scalars = |sc: &mut ExecScratch| {
        sc.scalars.clear();
        sc.scalars.extend_from_slice(scalars);
    };
    let Some(pool) = pool else {
        set_scalars(scratch);
        kernel.execute_rows(inputs, outs, &range, scratch);
        return;
    };
    let subs = split_longest_dim(&range, pool.threads());
    if subs.len() <= 1 {
        set_scalars(scratch);
        kernel.execute_rows(inputs, outs, &range, scratch);
        return;
    }
    let out_ptrs: Vec<SendPtr> =
        outs.iter_mut().map(|o| SendPtr(o.as_mut_ptr(), o.len())).collect();
    let out_ptrs = &out_ptrs;
    let jobs: Vec<Job> = subs
        .into_iter()
        .map(|sub| {
            Box::new(move |scratch: &mut ExecScratch| {
                // SAFETY: the chunks are disjoint slabs of one dimension
                // and each point writes only its own output cells;
                // `WorkerPool::run` joins every job before returning.
                let mut outs = unsafe { rematerialize_outs(out_ptrs) };
                set_scalars(scratch);
                kernel.execute_rows(inputs, &mut outs, &sub, scratch);
            }) as Job
        })
        .collect();
    pool.run(jobs);
}

/// Folds the ranged points of `inputs` into one [`ReduceAcc`]: serially,
/// or chunked over the longest dimension onto the worker pool, with the
/// per-chunk partials merged in chunk order. Every accumulator operation
/// is order-invariant, so the chunking never changes the result bits.
/// Returns the accumulator and the number of chunks folded.
fn run_reduce(
    kind: ReduceKind,
    inputs: &[(&[f64], &InputDesc)],
    range: &Bounds,
    pool: Option<&mut WorkerPool>,
) -> (ReduceAcc, usize) {
    let Some(pool) = pool else {
        return (reduce_partial(kind, inputs, range), 1);
    };
    let subs = split_longest_dim(range, pool.threads());
    if subs.len() <= 1 {
        return (reduce_partial(kind, inputs, range), 1);
    }
    let n = subs.len();
    let partials: Mutex<Vec<Option<ReduceAcc>>> = Mutex::new(vec![None; n]);
    let partials_ref = &partials;
    let jobs: Vec<Job> = subs
        .into_iter()
        .enumerate()
        .map(|(i, sub)| {
            Box::new(move |_: &mut ExecScratch| {
                let acc = reduce_partial(kind, inputs, &sub);
                partials_ref.lock().unwrap()[i] = Some(acc);
            }) as Job
        })
        .collect();
    pool.run(jobs);
    let mut acc = ReduceAcc::new(kind);
    for partial in partials.into_inner().unwrap() {
        acc.merge(partial.expect("worker pool joined every chunk"));
    }
    (acc, n)
}

/// The serial fold of one chunk: row-major over stride-1 rows, one
/// [`ReduceAcc::add`] per point (for `dot`, the per-point product is
/// rounded once before accumulation — the deterministic part — and the
/// accumulation itself is exact).
fn reduce_partial(kind: ReduceKind, inputs: &[(&[f64], &InputDesc)], range: &Bounds) -> ReduceAcc {
    let mut acc = ReduceAcc::new(kind);
    if range.num_points() <= 0 {
        return acc;
    }
    let (a, da) = inputs[0];
    if kind == ReduceKind::Dot {
        let (b, db) = inputs[1];
        for_each_row(range, |p, len| {
            let fa = da.flat(p) as usize;
            let fb = db.flat(p) as usize;
            for x in 0..len {
                acc.add(a[fa + x] * b[fb + x]);
            }
        });
    } else {
        for_each_row(range, |p, len| {
            let fa = da.flat(p) as usize;
            for x in 0..len {
                acc.add(a[fa + x]);
            }
        });
    }
    acc
}

/// Launches one `dmp.swap`: gathers every outgoing slab into a recycled
/// message buffer and posts the buffered (non-blocking) sends. The
/// matching [`swap_wait`] completes the exchange; the pair executed
/// back-to-back is exactly the old synchronous `swap_exchange`
/// (sends first, then receives — deadlock-free).
#[allow(clippy::too_many_arguments)]
fn swap_begin(
    world: &Arc<SimWorld>,
    rank: i64,
    grid: &[i64],
    exchanges: &[ExchangeAttr],
    shape: &[i64],
    data: &[f64],
    scratch: &mut SwapScratch,
    lane: &mut TraceLane,
) -> Result<(), String> {
    use sten_dmp::decomposition::neighbor_rank;
    use sten_mpi::dmp_to_mpi::tag_for_direction;
    let desc = InputDesc::new(shape.to_vec(), vec![0; shape.len()]);
    for e in exchanges {
        if let Some(n) = neighbor_rank(rank, grid, &e.to)? {
            let send_at = e.send_at();
            let range =
                Bounds::new(send_at.iter().zip(&e.size).map(|(&a, &s)| (a, a + s)).collect());
            let t0 = lane.start();
            let mut msg = scratch.take(range.num_points().max(0) as usize);
            for_each_row(&range, |p, len| {
                let s = desc.flat(p) as usize;
                msg.extend_from_slice(&data[s..s + len]);
            });
            let bytes = 8 * msg.len() as u64;
            lane.span(t0, || SpanKind::Pack { dir: e.to.clone(), bytes });
            world.send(rank as i32, n as i32, tag_for_direction(&e.to) as i32, msg);
        }
    }
    Ok(())
}

/// Completes one `dmp.swap`: receives each neighbour's message (blocking
/// only on messages still in flight) and scatters it into the halo
/// slabs. Drained message buffers are recycled into the scratch for the
/// next timestep's [`swap_begin`].
#[allow(clippy::too_many_arguments)]
fn swap_wait(
    world: &Arc<SimWorld>,
    rank: i64,
    grid: &[i64],
    exchanges: &[ExchangeAttr],
    shape: &[i64],
    data: &mut [f64],
    scratch: &mut SwapScratch,
    lane: &mut TraceLane,
) -> Result<(), String> {
    use sten_dmp::decomposition::neighbor_rank;
    use sten_mpi::dmp_to_mpi::tag_for_direction;
    let desc = InputDesc::new(shape.to_vec(), vec![0; shape.len()]);
    for e in exchanges {
        if let Some(n) = neighbor_rank(rank, grid, &e.to)? {
            let neg: Vec<i64> = e.to.iter().map(|t| -t).collect();
            let msg = world
                .recv(rank as i32, n as i32, tag_for_direction(&neg) as i32)
                .map_err(|e| e.to_string())?;
            let range = Bounds::new(e.at.iter().zip(&e.size).map(|(&a, &s)| (a, a + s)).collect());
            if msg.len() != range.num_points().max(0) as usize {
                return Err(format!(
                    "halo message of {} elements does not match the {}-element receive region",
                    msg.len(),
                    range.num_points().max(0)
                ));
            }
            let t0 = lane.start();
            let mut at = 0usize;
            for_each_row(&range, |p, len| {
                let d = desc.flat(p) as usize;
                data[d..d + len].copy_from_slice(&msg[at..at + len]);
                at += len;
            });
            let bytes = 8 * msg.len() as u64;
            lane.span(t0, || SpanKind::Unpack { dir: e.to.clone(), bytes });
            scratch.recycle(msg);
        }
    }
    Ok(())
}

/// [`swap_begin`] under the reliable protocol: each outgoing payload is
/// framed with `[swap id, sequence]` (the sequence increments once per
/// round, shared by every direction of the swap), and a copy of every
/// frame is retained in the scratch so a timed-out peer receive can
/// trigger an idempotent re-send. Retained frames from the previous
/// round are recycled here — the matching wait completed before this
/// begin runs.
#[allow(clippy::too_many_arguments)]
fn reliable_swap_begin(
    world: &Arc<SimWorld>,
    rank: i64,
    id: usize,
    grid: &[i64],
    exchanges: &[ExchangeAttr],
    shape: &[i64],
    data: &[f64],
    scratch: &mut SwapScratch,
    lane: &mut TraceLane,
) -> Result<(), ExecError> {
    use sten_dmp::decomposition::neighbor_rank;
    use sten_mpi::dmp_to_mpi::tag_for_direction;
    scratch.seq += 1;
    let seq = scratch.seq;
    let retained = std::mem::take(&mut scratch.sent);
    for (_, _, frame) in retained {
        scratch.recycle(frame);
    }
    let desc = InputDesc::new(shape.to_vec(), vec![0; shape.len()]);
    for e in exchanges {
        if let Some(n) = neighbor_rank(rank, grid, &e.to)? {
            let send_at = e.send_at();
            let range =
                Bounds::new(send_at.iter().zip(&e.size).map(|(&a, &s)| (a, a + s)).collect());
            let t0 = lane.start();
            let mut msg = scratch.take(FRAME_HEADER + range.num_points().max(0) as usize);
            msg.push(id as f64);
            msg.push(seq as f64);
            for_each_row(&range, |p, len| {
                let s = desc.flat(p) as usize;
                msg.extend_from_slice(&data[s..s + len]);
            });
            let bytes = 8 * msg.len() as u64;
            lane.span(t0, || SpanKind::Pack { dir: e.to.clone(), bytes });
            let tag = tag_for_direction(&e.to) as i32;
            world.send(rank as i32, n as i32, tag, msg.clone());
            scratch.sent.push((n as i32, tag, msg));
        }
    }
    Ok(())
}

/// [`swap_wait`] under the reliable protocol. Each expected frame is
/// taken from the stash if an earlier wait already received it;
/// otherwise receives run with a bounded timeout. A frame with a stale
/// sequence (a duplicate of an already-consumed round) is suppressed; a
/// frame for a later round or another swap sharing the tag is stashed.
/// On timeout the receiver re-requests a possibly-dropped inbound frame
/// from the world's lost store and re-sends its own retained outgoing
/// frames (deduplicated at the peer by sequence), doubling the timeout
/// each retry; exhausting the budget is [`ExecError::SwapTimeout`] —
/// never a hang.
#[allow(clippy::too_many_arguments)]
fn reliable_swap_wait(
    world: &Arc<SimWorld>,
    rank: i64,
    id: usize,
    grid: &[i64],
    exchanges: &[ExchangeAttr],
    shape: &[i64],
    data: &mut [f64],
    scratch: &mut SwapScratch,
    stash: &mut Vec<StashedFrame>,
    lane: &mut TraceLane,
    rel: &sten_interp::Reliability,
) -> Result<(), ExecError> {
    use sten_dmp::decomposition::neighbor_rank;
    use sten_mpi::dmp_to_mpi::tag_for_direction;
    let desc = InputDesc::new(shape.to_vec(), vec![0; shape.len()]);
    let seq = scratch.seq;
    for e in exchanges {
        let Some(n) = neighbor_rank(rank, grid, &e.to)? else { continue };
        let neg: Vec<i64> = e.to.iter().map(|t| -t).collect();
        let tag = tag_for_direction(&neg) as i32;
        let src = n as i32;
        let mut timeout_ms = rel.swap_timeout_ms.max(1);
        let mut attempts = 0u32;
        let mut waited_ms = 0u64;
        let frame = loop {
            if let Some(pos) = stash
                .iter()
                .position(|s| s.src == src && s.tag == tag && s.swap == id as u64 && s.seq == seq)
            {
                break stash.swap_remove(pos).frame;
            }
            match world.recv_timeout(
                rank as i32,
                src,
                tag,
                std::time::Duration::from_millis(timeout_ms),
            )? {
                Some(msg) => {
                    if msg.len() < FRAME_HEADER {
                        return Err(ExecError::Exec(format!(
                            "rank {rank}: reliable frame from rank {n} tag {tag} has only {} \
                             words — missing its [swap, seq] header",
                            msg.len()
                        )));
                    }
                    let mid = msg[0] as u64;
                    let mseq = msg[1] as u64;
                    if mid == id as u64 && mseq == seq {
                        break msg;
                    } else if mid == id as u64 && mseq < seq {
                        // Stale duplicate of a completed round (a
                        // duplication fault or a redundant re-send).
                        scratch.recycle(msg);
                    } else {
                        stash.push(StashedFrame { src, tag, swap: mid, seq: mseq, frame: msg });
                    }
                }
                None => {
                    attempts += 1;
                    waited_ms += timeout_ms;
                    if attempts > rel.max_retries {
                        return Err(ExecError::SwapTimeout {
                            rank,
                            swap: id,
                            neighbor: n,
                            tag,
                            attempts: attempts - 1,
                            waited_ms,
                        });
                    }
                    world.tracer().record_instant(rank.max(0) as u32, 0, || SpanKind::Retry {
                        target: format!("swap#{id} ← rank {n} tag {tag}"),
                        attempt: attempts,
                    });
                    world.rerequest(rank as i32, src, tag);
                    for (dst, t, payload) in &scratch.sent {
                        world.send(rank as i32, *dst, *t, payload.clone());
                    }
                    timeout_ms = timeout_ms.saturating_mul(2);
                }
            }
        };
        // A consumed round makes every stashed frame at or below its
        // sequence stale — drop them so duplicates cannot accumulate.
        stash.retain(|s| !(s.src == src && s.tag == tag && s.swap == id as u64 && s.seq <= seq));
        let range = Bounds::new(e.at.iter().zip(&e.size).map(|(&a, &s)| (a, a + s)).collect());
        if frame.len() - FRAME_HEADER != range.num_points().max(0) as usize {
            return Err(ExecError::Exec(format!(
                "halo message of {} elements does not match the {}-element receive region",
                frame.len() - FRAME_HEADER,
                range.num_points().max(0)
            )));
        }
        let t0 = lane.start();
        let mut at = FRAME_HEADER;
        for_each_row(&range, |p, len| {
            let d = desc.flat(p) as usize;
            data[d..d + len].copy_from_slice(&frame[at..at + len]);
            at += len;
        });
        let bytes = 8 * (frame.len() - FRAME_HEADER) as u64;
        lane.span(t0, || SpanKind::Unpack { dir: e.to.clone(), bytes });
        scratch.recycle(frame);
    }
    Ok(())
}

/// Compiles the function `func` of a shape-inferred stencil-level module
/// into a [`Pipeline`], specializing every apply kernel into its
/// executor tier (honouring the `STEN_EXEC_TIER` override).
///
/// # Errors
/// Reports unsupported structure (time loops must be driven by the
/// caller; apply bodies must be compilable — see
/// [`crate::program::compile_apply`]).
pub fn compile_module(module: &Module, func: &str) -> Result<Pipeline, String> {
    compile_module_tiered(module, func, TierKind::from_env())
}

/// Like [`compile_module`] with an explicit tier pin (`None` = auto).
pub fn compile_module_tiered(
    module: &Module,
    func: &str,
    tier: Option<TierKind>,
) -> Result<Pipeline, String> {
    let f = module.lookup_symbol(func).ok_or_else(|| format!("no function '{func}'"))?;
    let block = f.region_block(0);

    // Buffer table: value -> (BufId, layout). Scalar (f64) arguments and
    // reduction results live in scalar slots instead.
    let mut bufs: HashMap<Value, (BufId, InputDesc)> = HashMap::new();
    let mut arg_shapes = Vec::new();
    let mut scalar_slots: HashMap<Value, usize> = HashMap::new();
    let mut scalar_inputs: Vec<usize> = Vec::new();
    let mut num_slots = 0usize;
    for &arg in block.args.iter() {
        match module.values.ty(arg) {
            Type::Field(fld) => {
                let desc = InputDesc::new(fld.bounds.shape(), fld.bounds.lower());
                arg_shapes.push(desc.shape.clone());
                bufs.insert(arg, (BufId::Arg(arg_shapes.len() - 1), desc));
            }
            Type::F64 => {
                scalar_slots.insert(arg, num_slots);
                scalar_inputs.push(num_slots);
                num_slots += 1;
            }
            other => return Err(format!("unsupported argument type {other:?}")),
        }
    }
    let num_args = arg_shapes.len();

    // Which apply results are store-forwarded.
    let counts = module.op.use_counts();
    let mut forwarded: HashMap<Value, Value> = HashMap::new();
    for op in &block.ops {
        if op.name == "stencil.store" {
            let temp = op.operand(0);
            if counts.get(&temp).copied().unwrap_or(0) == 1 {
                if let Type::Temp(t) = module.values.ty(temp) {
                    if let Some(b) = &t.bounds {
                        if *b == sten_stencil::ops::StoreOp(op).range() {
                            forwarded.insert(temp, op.operand(1));
                        }
                    }
                }
            }
        }
    }

    let mut tmp_shapes: Vec<Vec<i64>> = Vec::new();
    let mut steps = Vec::new();
    let mut scalar_consts: HashMap<Value, f64> = HashMap::new();
    let mut scalar_outputs: Vec<usize> = Vec::new();
    let mut swap_overlap: Vec<bool> = Vec::new();
    let mut swap_depths: Vec<i64> = Vec::new();

    for op in &block.ops {
        match op.name.as_str() {
            "arith.constant" => {
                if let Some(v) = op.attr("value").and_then(Attribute::as_f64) {
                    scalar_consts.insert(op.result(0), v);
                }
            }
            "stencil.load" | "stencil.buffer" => {
                let parent = bufs.get(&op.operand(0)).cloned().ok_or("load from unknown buffer")?;
                bufs.insert(op.result(0), parent);
            }
            "stencil.cast" => {
                let (id, _) = bufs.get(&op.operand(0)).cloned().ok_or("cast of unknown")?;
                let Type::Field(fld) = module.values.ty(op.result(0)) else {
                    return Err("cast to non-field".into());
                };
                bufs.insert(
                    op.result(0),
                    (id, InputDesc::new(fld.bounds.shape(), fld.bounds.lower())),
                );
            }
            "dmp.swap" => {
                let (id, _desc) = bufs.get(&op.operand(0)).cloned().ok_or("swap of unknown")?;
                let grid = op
                    .attr("grid")
                    .and_then(Attribute::as_grid)
                    .ok_or("swap without grid")?
                    .to_vec();
                let exchanges: Vec<ExchangeAttr> = op
                    .attr("swaps")
                    .and_then(Attribute::as_array)
                    .map(|a| a.iter().filter_map(Attribute::as_exchange).cloned().collect())
                    .unwrap_or_default();
                let swap_id = swap_overlap.len();
                swap_overlap.push(op.attr("overlap").is_some());
                swap_depths.push(sten_dmp::ops::SwapOp(op).depth());
                steps.push(Step::SwapBegin {
                    id: swap_id,
                    buf: id,
                    grid: grid.clone(),
                    exchanges: exchanges.clone(),
                });
                steps.push(Step::SwapWait { id: swap_id, buf: id, grid, exchanges });
            }
            "stencil.apply" => {
                let input_descs: Vec<Option<InputDesc>> =
                    op.operands.iter().map(|o| bufs.get(o).map(|(_, d)| d.clone())).collect();
                let input_ids: Vec<BufId> =
                    op.operands.iter().filter_map(|o| bufs.get(o).map(|(id, _)| *id)).collect();
                let mut output_ids = Vec::new();
                let mut output_descs = Vec::new();
                for &r in &op.results {
                    let Type::Temp(t) = module.values.ty(r) else {
                        return Err("apply result is not a temp".into());
                    };
                    let b = t.bounds.clone().ok_or("apply result bounds unknown")?;
                    if let Some(&field) = forwarded.get(&r) {
                        let (id, desc) =
                            bufs.get(&field).cloned().ok_or("forward to unknown field")?;
                        output_ids.push(id);
                        output_descs.push(desc.clone());
                        bufs.insert(r, (id, desc));
                    } else {
                        let desc = InputDesc::new(b.shape(), b.lower());
                        let id = BufId::Tmp(tmp_shapes.len());
                        tmp_shapes.push(desc.shape.clone());
                        output_ids.push(id);
                        output_descs.push(desc.clone());
                        bufs.insert(r, (id, desc));
                    }
                }
                let kernel = compile_apply(
                    op,
                    &module.values,
                    input_descs,
                    output_descs,
                    &scalar_consts,
                    &scalar_slots,
                )?;
                let kernel = SpecializedKernel::specialize(kernel, tier);
                steps.push(Step::Apply {
                    kernel,
                    inputs: input_ids,
                    outputs: output_ids,
                    region: ApplyRegion::Full,
                });
            }
            "stencil.store" => {
                if forwarded.contains_key(&op.operand(0)) {
                    continue;
                }
                let (src, src_desc) =
                    bufs.get(&op.operand(0)).cloned().ok_or("store of unknown temp")?;
                let (dst, dst_desc) =
                    bufs.get(&op.operand(1)).cloned().ok_or("store to unknown field")?;
                let range = sten_stencil::ops::StoreOp(op).range();
                steps.push(Step::Copy { src, src_desc, dst, dst_desc, range });
            }
            "stencil.reduce" => {
                let view = sten_stencil::ops::ReduceOp(op);
                let kind = ReduceKind::parse(view.kind())
                    .ok_or_else(|| format!("unknown reduce kind '{}'", view.kind()))?;
                let inputs: Vec<(BufId, InputDesc)> = op
                    .operands
                    .iter()
                    .map(|o| bufs.get(o).cloned().ok_or("reduce of unknown buffer"))
                    .collect::<Result<_, _>>()?;
                let slot = num_slots;
                num_slots += 1;
                scalar_slots.insert(op.result(0), slot);
                steps.push(Step::Reduce {
                    kind,
                    inputs,
                    range: view.range(),
                    dst_slot: slot,
                    allreduce: false,
                });
            }
            "dmp.allreduce" => {
                // Fold into the producing reduce step: the local partial
                // and the cross-rank merge execute as one step, and the
                // allreduce result shares the reduction's slot.
                let &slot = scalar_slots
                    .get(&op.operand(0))
                    .ok_or("dmp.allreduce of a value that is not a pipeline reduction")?;
                let produced = steps.iter_mut().rev().find_map(|s| match s {
                    Step::Reduce { dst_slot, allreduce, .. } if *dst_slot == slot => {
                        Some(allreduce)
                    }
                    _ => None,
                });
                match produced {
                    Some(allreduce) => *allreduce = true,
                    None => {
                        return Err("dmp.allreduce source is not produced by a reduce step".into())
                    }
                }
                scalar_slots.insert(op.result(0), slot);
            }
            "func.return" => {
                for o in &op.operands {
                    if let Some(&s) = scalar_slots.get(o) {
                        scalar_outputs.push(s);
                    }
                }
                break;
            }
            other => return Err(format!("unsupported op at function level: {other}")),
        }
    }
    let num_swaps = swap_overlap.len();
    // Temporal blocking: when the step sequence matches the deep-halo
    // pattern, keep the synchronous base steps (correct fallback: a wide
    // exchange every step) and record the block shape for the Runner.
    // Otherwise apply the within-step overlap rewrite as usual.
    let temporal = detect_temporal(&steps, &swap_depths, &swap_overlap);
    let steps = if temporal.is_some() { steps } else { overlap_steps(steps, &swap_overlap) };
    Ok(Pipeline {
        num_args,
        arg_shapes,
        tmp_shapes,
        steps,
        num_swaps,
        num_slots,
        scalar_inputs,
        scalar_outputs,
        temporal,
    })
}

/// Pattern-matches a compiled step sequence against the temporal-blocking
/// shape: exactly one `depth>1` swap followed by one full apply that
/// reads the exchanged buffer and writes only *argument* buffers (the
/// store-forwarded ping-pong — deep phases write outside the core, which
/// only the widened field buffers can hold). Returns the block metadata
/// or `None` (the synchronous wide-exchange schedule stays correct).
fn detect_temporal(steps: &[Step], depths: &[i64], overlap: &[bool]) -> Option<TemporalBlock> {
    let [depth] = depths[..] else { return None };
    if depth <= 1 {
        return None;
    }
    let [Step::SwapBegin { buf, exchanges, .. }, Step::SwapWait { .. }, Step::Apply { kernel, inputs, outputs, region: ApplyRegion::Full }] =
        steps
    else {
        return None;
    };
    if !inputs.contains(buf) || outputs.iter().any(|o| matches!(o, BufId::Tmp(_))) {
        return None;
    }
    let rank = kernel.range.rank();
    let (lo, hi) = sten_dmp::halo_widths(exchanges, rank).ok()?;
    // The exchange carries the full k·r block width; the per-phase step
    // width is the depth-th part.
    if lo.iter().chain(&hi).any(|w| w % depth != 0) {
        return None;
    }
    let lo: Vec<i64> = lo.iter().map(|w| w / depth).collect();
    let hi: Vec<i64> = hi.iter().map(|w| w / depth).collect();
    if lo.iter().chain(&hi).all(|&w| w == 0) {
        return None;
    }
    Some(TemporalBlock { depth, lo, hi, overlap: overlap.first().copied().unwrap_or(false) })
}

/// Expands a temporal-blocking pipeline into its per-phase schedules for
/// one rank. Phase 0 runs the deep exchange (optionally overlapped via
/// the usual interior/shell split, now with `k·r` widths); phases `1..k`
/// run a single exchange-free apply over the shrinking onion regions.
/// Growth is clamped per dimension side to directions that both exchange
/// and have a live neighbour — growing toward a physical boundary would
/// read unexchanged cells and clobber fixed boundary data.
fn build_phase_schedule(p: &Pipeline, rank: i64) -> Result<Vec<Vec<Step>>, String> {
    use sten_dmp::decomposition::neighbor_rank;
    let tb = p.temporal.as_ref().expect("temporal metadata");
    let [begin @ Step::SwapBegin { grid, exchanges, .. }, wait @ Step::SwapWait { .. }, Step::Apply { kernel, inputs, outputs, .. }] =
        &p.steps[..]
    else {
        return Err("temporal pipeline must be swap-begin, swap-wait, apply".into());
    };
    let core = &kernel.range;
    let dims = core.rank();
    let mut step_lo = vec![0i64; dims];
    let mut step_hi = vec![0i64; dims];
    for e in exchanges {
        let nonzero: Vec<usize> = (0..e.to.len()).filter(|&d| e.to[d] != 0).collect();
        let [d] = nonzero[..] else { continue }; // corners follow their faces
        if d >= dims || neighbor_rank(rank, grid, &e.to)?.is_none() {
            continue;
        }
        if e.to[d] < 0 {
            step_lo[d] = tb.lo[d];
        } else {
            step_hi[d] = tb.hi[d];
        }
    }
    let apply = |region: ApplyRegion| Step::Apply {
        kernel: kernel.clone(),
        inputs: inputs.clone(),
        outputs: outputs.clone(),
        region,
    };
    let regions = sten_dmp::deep_phase_regions(core, &step_lo, &step_hi, tb.depth);
    let mut schedule = Vec::with_capacity(regions.len());
    for (j, region) in regions.iter().enumerate() {
        if j > 0 {
            schedule.push(vec![apply(ApplyRegion::Phase(j, region.clone()))]);
            continue;
        }
        // Phase 0 owns the deep exchange. With the overlap marker the
        // usual four-phase split applies, with the full k·r widths: the
        // interior is exactly the points whose footprint stays in owned
        // data while the deep messages are in flight.
        let deep_lo: Vec<i64> = step_lo.iter().map(|w| w * tb.depth).collect();
        let deep_hi: Vec<i64> = step_hi.iter().map(|w| w * tb.depth).collect();
        let split = sten_dmp::HaloRegionSplit::compute(region, &deep_lo, &deep_hi);
        if tb.overlap && split.is_splittable() {
            let mut phase =
                vec![begin.clone(), apply(ApplyRegion::Interior(split.interior.clone()))];
            phase.push(wait.clone());
            for shell in &split.shells {
                if shell.bounds.num_points() > 0 {
                    phase.push(apply(ApplyRegion::Boundary(
                        shell.dir.clone(),
                        shell.bounds.clone(),
                    )));
                }
            }
            schedule.push(phase);
        } else {
            schedule.push(vec![
                begin.clone(),
                wait.clone(),
                apply(ApplyRegion::Phase(0, region.clone())),
            ]);
        }
    }
    Ok(schedule)
}

/// Rewrites overlap-marked exchanges into the four-phase step order:
/// a run of adjacent begin/wait pairs immediately followed by an apply
/// that reads every swapped buffer becomes
/// `begins…, Apply(Interior), waits…, Apply(Boundary(dir))…`, splitting
/// the apply by [`sten_dmp::HaloRegionSplit`]. Unmarked or unsplittable
/// swaps keep the synchronous pair — bit-for-bit the old `Step::Swap`.
fn overlap_steps(steps: Vec<Step>, overlap_flags: &[bool]) -> Vec<Step> {
    let mut out = Vec::with_capacity(steps.len());
    let mut i = 0;
    while i < steps.len() {
        // A maximal run of adjacent overlap-marked begin/wait pairs.
        let mut j = i;
        let mut pairs: Vec<usize> = Vec::new();
        while j + 1 < steps.len() {
            let Step::SwapBegin { id: b, .. } = &steps[j] else { break };
            let Step::SwapWait { id: w, .. } = &steps[j + 1] else { break };
            if b != w || !overlap_flags[*b] {
                break;
            }
            pairs.push(j);
            j += 2;
        }
        if pairs.is_empty() {
            out.push(steps[i].clone());
            i += 1;
            continue;
        }
        let split = match &steps.get(j) {
            Some(Step::Apply { kernel, inputs, region: ApplyRegion::Full, .. }) => {
                let rank = kernel.range.rank();
                let mut lo = vec![0i64; rank];
                let mut hi = vec![0i64; rank];
                let mut feeds_apply = true;
                for &p in &pairs {
                    let Step::SwapBegin { buf, exchanges, .. } = &steps[p] else { unreachable!() };
                    feeds_apply &= inputs.contains(buf);
                    // Malformed exchanges (verifier territory) simply
                    // keep the pair synchronous.
                    let Ok((l, h)) = sten_dmp::halo_widths(exchanges, rank) else {
                        feeds_apply = false;
                        continue;
                    };
                    for d in 0..rank {
                        lo[d] = lo[d].max(l[d]);
                        hi[d] = hi[d].max(h[d]);
                    }
                }
                let split = sten_dmp::HaloRegionSplit::compute(&kernel.range, &lo, &hi);
                (feeds_apply && split.is_splittable()).then_some(split)
            }
            _ => None,
        };
        let Some(split) = split else {
            // Unsplittable: keep the first pair synchronous and rescan.
            out.push(steps[pairs[0]].clone());
            out.push(steps[pairs[0] + 1].clone());
            i += 2;
            continue;
        };
        let Step::Apply { kernel, inputs, outputs, .. } = &steps[j] else { unreachable!() };
        for &p in &pairs {
            out.push(steps[p].clone()); // begins
        }
        out.push(Step::Apply {
            kernel: kernel.clone(),
            inputs: inputs.clone(),
            outputs: outputs.clone(),
            region: ApplyRegion::Interior(split.interior.clone()),
        });
        for &p in &pairs {
            out.push(steps[p + 1].clone()); // waits
        }
        for shell in &split.shells {
            if shell.bounds.num_points() <= 0 {
                continue;
            }
            out.push(Step::Apply {
                kernel: kernel.clone(),
                inputs: inputs.clone(),
                outputs: outputs.clone(),
                region: ApplyRegion::Boundary(shell.dir.clone(), shell.bounds.clone()),
            });
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sten_ir::Pass as _;
    use sten_stencil::{samples, ShapeInference};

    fn prepare(mut m: Module) -> Module {
        ShapeInference.run(&mut m).unwrap();
        m
    }

    #[test]
    fn pipeline_matches_interpreter_on_heat2d() {
        let n = 24i64;
        let m = prepare(samples::heat_2d(n, 0.1));
        let pipeline = compile_module(&m, "heat").unwrap();
        assert_eq!(pipeline.num_args, 2);
        assert_eq!(pipeline.num_apply_steps(), 1);
        assert!(pipeline.flops_per_step() > 0);

        let size = ((n + 2) * (n + 2)) as usize;
        let input: Vec<f64> = (0..size).map(|i| (i as f64 * 0.07).sin()).collect();
        let mut args = vec![input.clone(), input.clone()];
        Runner::new(pipeline, 1).step(&mut args).unwrap();

        // Interpreter reference.
        let src = sten_interp::BufView::from_data(vec![n + 2, n + 2], input.clone());
        let dst = sten_interp::BufView::from_data(vec![n + 2, n + 2], input);
        sten_interp::Interpreter::new(&m)
            .call_function(
                "heat",
                vec![sten_interp::RtValue::Buffer(src), sten_interp::RtValue::Buffer(dst.clone())],
            )
            .unwrap();
        assert_eq!(args[1], dst.to_vec(), "compiled == interpreted, bit for bit");
    }

    #[test]
    fn multithreaded_step_matches_serial() {
        let n = 48i64;
        let m = prepare(samples::heat_2d(n, 0.1));
        let size = ((n + 2) * (n + 2)) as usize;
        let input: Vec<f64> = (0..size).map(|i| (i as f64 * 0.03).cos()).collect();

        let mut serial_args = vec![input.clone(), input.clone()];
        Runner::new(compile_module(&m, "heat").unwrap(), 1).step(&mut serial_args).unwrap();
        let mut par_args = vec![input.clone(), input];
        Runner::new(compile_module(&m, "heat").unwrap(), 8).step(&mut par_args).unwrap();
        assert_eq!(serial_args[1], par_args[1]);
    }

    #[test]
    fn two_stage_pipeline_has_intermediate() {
        let m = prepare(samples::two_stage_1d(32));
        let p = compile_module(&m, "two_stage").unwrap();
        assert_eq!(p.num_apply_steps(), 2);
        assert_eq!(p.tmp_shapes.len(), 1, "intermediate temp materialised");
    }

    #[test]
    fn distributed_pipeline_matches_serial() {
        let n = 128i64;
        let global: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin()).collect();

        // Serial.
        let serial = prepare(samples::jacobi_1d(n));
        let mut serial_args = vec![global.clone(), global.clone()];
        Runner::new(compile_module(&serial, "jacobi").unwrap(), 1).step(&mut serial_args).unwrap();

        // Distributed on 2 ranks at the dmp level.
        let mut m = samples::jacobi_1d(n);
        ShapeInference.run(&mut m).unwrap();
        sten_dmp::DistributeStencil::new(vec![2]).run(&mut m).unwrap();
        ShapeInference.run(&mut m).unwrap();
        let pipeline = compile_module(&m, "jacobi").unwrap();
        assert!(pipeline.exchanged_elements_per_step() > 0);
        let local = pipeline.arg_shapes[0][0];
        let core = (n - 2) / 2;

        let world = SimWorld::new(2);
        let mut outs: Vec<Vec<f64>> = vec![Vec::new(), Vec::new()];
        std::thread::scope(|scope| {
            for (rank, out) in outs.iter_mut().enumerate() {
                let world = Arc::clone(&world);
                let pipeline = pipeline.clone();
                let global = global.clone();
                scope.spawn(move || {
                    let start = rank as i64 * core;
                    let data: Vec<f64> = (0..local).map(|i| global[(start + i) as usize]).collect();
                    let mut args = vec![data.clone(), data];
                    let mut runner = Runner::new(pipeline, 1);
                    runner.step_distributed(&mut args, &world, rank as i64).unwrap();
                    *out = args[1].clone();
                });
            }
        });

        let mut got = global.clone();
        for (rank, out) in outs.iter().enumerate() {
            let start = rank as i64 * core;
            for l in 1..=core {
                got[(start + l) as usize] = out[l as usize];
            }
        }
        assert_eq!(got, serial_args[1]);
    }

    /// Runs `timesteps` of a 2-rank distributed jacobi and returns every
    /// rank's final buffer.
    fn run_jacobi_2ranks(pipeline: &Pipeline, global: &[f64], timesteps: usize) -> Vec<Vec<f64>> {
        let n = global.len() as i64;
        let local = pipeline.arg_shapes[0][0];
        let core = (n - 2) / 2;
        let world = SimWorld::new(2);
        let mut outs: Vec<Vec<f64>> = vec![Vec::new(), Vec::new()];
        std::thread::scope(|scope| {
            for (rank, out) in outs.iter_mut().enumerate() {
                let world = Arc::clone(&world);
                let pipeline = pipeline.clone();
                scope.spawn(move || {
                    let start = rank as i64 * core;
                    let data: Vec<f64> = (0..local).map(|i| global[(start + i) as usize]).collect();
                    let mut args = vec![data.clone(), data];
                    let mut runner = Runner::new(pipeline, 1);
                    for _ in 0..timesteps {
                        runner.step_distributed(&mut args, &world, rank as i64).unwrap();
                        // Ping-pong so the exchange matters every step.
                        args.swap(0, 1);
                    }
                    *out = args[0].clone();
                });
            }
        });
        outs
    }

    #[test]
    fn overlapped_pipeline_matches_sync_bit_for_bit() {
        let n = 128i64;
        let global: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin()).collect();
        let compile_dist = |overlap: bool| {
            let mut m = samples::jacobi_1d(n);
            ShapeInference.run(&mut m).unwrap();
            sten_dmp::DistributeStencil::new(vec![2]).with_overlap(overlap).run(&mut m).unwrap();
            ShapeInference.run(&mut m).unwrap();
            compile_module(&m, "jacobi").unwrap()
        };
        let sync = compile_dist(false);
        let over = compile_dist(true);
        assert!(!sync.is_overlapped());
        assert!(over.is_overlapped());
        // Overlapped step order: begin, interior, wait, two shells.
        let kinds: Vec<String> = over
            .steps
            .iter()
            .map(|s| match s {
                Step::Apply { region, .. } => format!("apply:{}", region.label().trim()),
                Step::SwapBegin { .. } => "begin".into(),
                Step::SwapWait { .. } => "wait".into(),
                Step::Copy { .. } => "copy".into(),
                Step::Reduce { .. } => "reduce".into(),
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["begin", "apply:interior", "wait", "apply:boundary[-1]", "apply:boundary[1]"]
        );
        // Both pipelines compute the same points overall.
        assert_eq!(sync.points_per_step(), over.points_per_step());
        assert_eq!(sync.flops_per_step(), over.flops_per_step());
        assert_eq!(sync.exchanged_elements_per_step(), over.exchanged_elements_per_step());
        // Multi-step runs agree bit-for-bit (the persistent pack buffers
        // recycle across steps).
        let a = run_jacobi_2ranks(&sync, &global, 5);
        let b = run_jacobi_2ranks(&over, &global, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn overlap_reports_interior_in_summaries() {
        let mut m = samples::heat_2d(64, 0.1);
        ShapeInference.run(&mut m).unwrap();
        sten_dmp::DistributeStencil::new(vec![2, 2]).with_overlap(true).run(&mut m).unwrap();
        ShapeInference.run(&mut m).unwrap();
        let p = compile_module(&m, "heat").unwrap();
        // Interior + 4 shells on a 2x2 grid.
        assert_eq!(p.num_apply_steps(), 5);
        let tiers = p.tier_summary();
        assert!(tiers[0].contains("interior"), "{tiers:?}");
        assert!(tiers.iter().skip(1).all(|l| l.contains("boundary")), "{tiers:?}");
        let steps = p.step_summary();
        assert!(steps[0].starts_with("swap#0 begin"), "{steps:?}");
        assert!(steps.iter().any(|l| l == "swap#0 wait"), "{steps:?}");
    }

    #[test]
    fn region_split_steps_share_specialized_tables() {
        use crate::specialize::Tier;
        let mut m = samples::heat_2d(64, 0.1);
        ShapeInference.run(&mut m).unwrap();
        sten_dmp::DistributeStencil::new(vec![2, 2]).with_overlap(true).run(&mut m).unwrap();
        ShapeInference.run(&mut m).unwrap();
        let mut p = compile_module(&m, "heat").unwrap();
        assert_eq!(p.num_apply_steps(), 5, "interior + 4 shells");
        // Both at compile time (the split clones one specialized kernel)
        // and after respecialize (the dedup cache), the interior and the
        // boundary shells must share one tap table, not per-shell copies.
        for tier in [None, Some(TierKind::WeightedSum), Some(TierKind::TemplateJit)] {
            p.respecialize(tier);
            let applies: Vec<_> = p
                .steps
                .iter()
                .filter_map(|s| match s {
                    Step::Apply { kernel, .. } => Some(kernel),
                    _ => None,
                })
                .collect();
            assert_eq!(applies.len(), 5);
            let shared = applies.windows(2).all(|w| match (&w[0].tier, &w[1].tier) {
                (Tier::WeightedSum(a), Tier::WeightedSum(b)) => Arc::ptr_eq(a, b),
                (Tier::TemplateJit(a), Tier::TemplateJit(b)) => Arc::ptr_eq(a, b),
                (Tier::OptBytecode(a), Tier::OptBytecode(b)) => Arc::ptr_eq(a, b),
                _ => false,
            });
            assert!(shared, "tier {tier:?}: shells rebuilt per-shell state");
        }
    }

    #[test]
    fn reduce_pipeline_matches_interpreter() {
        let bounds = Bounds::new(vec![(0, 9), (0, 7)]);
        let range = Bounds::new(vec![(1, 8), (1, 6)]);
        let size = (9 * 7) as usize;
        let a: Vec<f64> = (0..size).map(|i| (i as f64 * 0.13).sin() * 3.0).collect();
        let b: Vec<f64> = (0..size).map(|i| (i as f64 * 0.07).cos() - 0.4).collect();
        for kind in ["sum", "dot", "min", "max"] {
            let m = prepare(samples::reduce_nd(kind, bounds.clone(), range.clone()));
            let pipeline = compile_module(&m, "reduce").unwrap();
            assert_eq!(pipeline.num_reduce_steps(), (1, 0));
            let mut args = if kind == "dot" { vec![a.clone(), b.clone()] } else { vec![a.clone()] };
            let mut runner = Runner::new(pipeline, 1);
            runner.step(&mut args).unwrap();
            let got = runner.scalar_outputs();

            let rt_args = args
                .iter()
                .map(|d| {
                    sten_interp::RtValue::Buffer(sten_interp::BufView::from_data(
                        vec![9, 7],
                        d.clone(),
                    ))
                })
                .collect();
            let want = match sten_interp::Interpreter::new(&m)
                .call_function("reduce", rt_args)
                .unwrap()
                .as_slice()
            {
                [sten_interp::RtValue::Float(v)] => *v,
                other => panic!("expected one float, got {other:?}"),
            };
            assert_eq!(got, vec![want], "compiled {kind} == interpreted, bit for bit");
        }
    }

    #[test]
    fn reduce_is_bit_identical_across_thread_counts() {
        let n = 127i64;
        let bounds = Bounds::new(vec![(0, n)]);
        let m = prepare(samples::reduce_nd("dot", bounds.clone(), bounds));
        let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).sin() * 1e8).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos() * 1e-8).collect();
        let mut results = Vec::new();
        for threads in [1, 2, 3, 8] {
            let mut runner = Runner::new(compile_module(&m, "reduce").unwrap(), threads);
            runner.step(&mut [a.clone(), b.clone()]).unwrap();
            results.push(runner.scalar_outputs()[0]);
        }
        assert!(
            results.windows(2).all(|w| w[0].to_bits() == w[1].to_bits()),
            "thread count changed the dot product: {results:?}"
        );
    }

    #[test]
    fn distributed_norm_matches_serial_bit_for_bit() {
        let n = 128i64;
        let global: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin() * 100.0).collect();

        // Serial reference.
        let serial = prepare(samples::jacobi_with_norm(n));
        let mut serial_args = vec![global.clone(), global.clone()];
        let mut serial_runner = Runner::new(compile_module(&serial, "jacobi_norm").unwrap(), 1);
        serial_runner.step(&mut serial_args).unwrap();
        let want = serial_runner.scalar_outputs()[0];
        assert!(want > 0.0);

        // Distributed on 2 ranks: each rank folds its partial, then the
        // allreduce merges exact accumulators — identical on every rank
        // and to the serial run, bit for bit.
        let mut m = samples::jacobi_with_norm(n);
        ShapeInference.run(&mut m).unwrap();
        sten_dmp::DistributeStencil::new(vec![2]).run(&mut m).unwrap();
        ShapeInference.run(&mut m).unwrap();
        let pipeline = compile_module(&m, "jacobi_norm").unwrap();
        assert_eq!(pipeline.num_reduce_steps(), (1, 1));
        let local = pipeline.arg_shapes[0][0];
        let core = (n - 2) / 2;

        let world = SimWorld::new(2);
        let mut norms = vec![0.0f64; 2];
        std::thread::scope(|scope| {
            for (rank, norm) in norms.iter_mut().enumerate() {
                let world = Arc::clone(&world);
                let pipeline = pipeline.clone();
                let global = global.clone();
                scope.spawn(move || {
                    let start = rank as i64 * core;
                    let data: Vec<f64> = (0..local).map(|i| global[(start + i) as usize]).collect();
                    let mut args = vec![data.clone(), data];
                    let mut runner = Runner::new(pipeline, 1);
                    runner.step_distributed(&mut args, &world, rank as i64).unwrap();
                    *norm = runner.scalar_outputs()[0];
                });
            }
        });
        assert_eq!(norms[0].to_bits(), norms[1].to_bits(), "ranks disagree: {norms:?}");
        assert_eq!(norms[0].to_bits(), want.to_bits(), "distributed {} != serial {want}", norms[0]);
    }

    #[test]
    fn runtime_scalar_flows_through_pipeline() {
        let n = 32i64;
        let full = Bounds::new(vec![(0, n)]);
        let m = prepare(samples::axpy(full.clone(), full));
        let pipeline = compile_module(&m, "axpy").unwrap();
        // Three field buffers; alpha arrives via a scalar slot instead.
        assert_eq!(pipeline.num_args, 3);
        assert_eq!(pipeline.scalar_inputs.len(), 1);

        let a: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).sin()).collect();
        let mut runner = Runner::new(pipeline, 1);
        for alpha in [0.0, -1.75, 3.5] {
            let mut args = vec![a.clone(), b.clone(), vec![0.0; n as usize]];
            runner.set_scalar(0, alpha);
            runner.step(&mut args).unwrap();
            let want: Vec<f64> = a.iter().zip(&b).map(|(&x, &y)| x + alpha * y).collect();
            assert_eq!(args[2], want, "alpha = {alpha}");
        }
    }

    #[test]
    fn swap_without_world_is_reported() {
        let mut m = samples::jacobi_1d(128);
        ShapeInference.run(&mut m).unwrap();
        sten_dmp::DistributeStencil::new(vec![2]).run(&mut m).unwrap();
        ShapeInference.run(&mut m).unwrap();
        let pipeline = compile_module(&m, "jacobi").unwrap();
        let shape = pipeline.arg_shapes[0].clone();
        let len = shape.iter().product::<i64>() as usize;
        let mut args = vec![vec![0.0; len], vec![0.0; len]];
        let err = Runner::new(pipeline, 1).step(&mut args).unwrap_err();
        assert!(err.contains("step_distributed"), "{err}");
    }
}
