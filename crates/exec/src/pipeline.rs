//! Compiling whole stencil functions into executable pipelines.
//!
//! A stencil-level function (after shape inference, optionally after
//! distribution) has the shape `loads* (applies | swaps)* stores*`; this
//! module compiles it into a [`Pipeline`] of [`Step`]s and executes
//! timesteps through a [`Runner`] — serially, with thread parallelism, or
//! SPMD-distributed over SimMPI.

use crate::pool::{Job, WorkerPool};
use crate::program::{
    compile_apply, rematerialize_outs, split_longest_dim, ExecScratch, InputDesc, SendPtr,
};
use crate::specialize::{SpecializedKernel, TierKind};
use std::collections::HashMap;
use std::sync::Arc;
use sten_interp::SimWorld;
use sten_ir::{Attribute, Bounds, ExchangeAttr, Module, Type, Value};

/// Identifies a buffer in a pipeline.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BufId {
    /// The n-th function argument.
    Arg(usize),
    /// The n-th intermediate (pipeline-allocated) buffer.
    Tmp(usize),
}

/// One executable step.
#[derive(Clone, Debug)]
pub enum Step {
    /// Run a compiled kernel through its specialized executor tier.
    Apply {
        /// The kernel, specialized at pipeline-build time.
        kernel: SpecializedKernel,
        /// Input buffers (parallel to the kernel's inputs).
        inputs: Vec<BufId>,
        /// Output buffers (parallel to the kernel's outputs).
        outputs: Vec<BufId>,
    },
    /// Halo exchange (distributed runs only).
    Swap {
        /// The buffer to exchange.
        buf: BufId,
        /// Rank topology.
        grid: Vec<i64>,
        /// Exchange declarations (buffer coordinates).
        exchanges: Vec<ExchangeAttr>,
    },
    /// Range copy between buffers (non-forwarded stores).
    Copy {
        /// Source buffer.
        src: BufId,
        /// Source layout.
        src_desc: InputDesc,
        /// Destination buffer.
        dst: BufId,
        /// Destination layout.
        dst_desc: InputDesc,
        /// Logical range to copy.
        range: Bounds,
    },
}

/// A compiled stencil function.
#[derive(Clone, Debug)]
pub struct Pipeline {
    /// Number of buffer arguments the caller must provide.
    pub num_args: usize,
    /// Shapes of caller-provided buffers.
    pub arg_shapes: Vec<Vec<i64>>,
    /// Shapes of pipeline-allocated intermediates.
    pub tmp_shapes: Vec<Vec<i64>>,
    /// Steps in program order.
    pub steps: Vec<Step>,
}

impl Pipeline {
    /// Total floating-point ops per executed timestep.
    pub fn flops_per_step(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| match s {
                Step::Apply { kernel, .. } => kernel.program.flops as u64 * kernel.points() as u64,
                _ => 0,
            })
            .sum()
    }

    /// Grid points written per timestep (over all applies; a fused apply
    /// with several results writes several points per iteration point).
    pub fn points_per_step(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| match s {
                Step::Apply { kernel, outputs, .. } => {
                    kernel.points() as u64 * outputs.len().max(1) as u64
                }
                _ => 0,
            })
            .sum()
    }

    /// Number of apply steps (the "stencil regions" count of §6.2).
    pub fn num_apply_steps(&self) -> usize {
        self.steps.iter().filter(|s| matches!(s, Step::Apply { .. })).count()
    }

    /// Elements exchanged per timestep when every neighbour is present.
    pub fn exchanged_elements_per_step(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| match s {
                Step::Swap { exchanges, .. } => {
                    exchanges.iter().map(|e| e.num_elements() as u64).sum()
                }
                _ => 0,
            })
            .sum()
    }

    /// Re-specializes every apply kernel (`None` = automatic selection).
    /// Lets benchmarks and tests pin an executor tier per pipeline
    /// without touching the process-wide `STEN_EXEC_TIER` override.
    pub fn respecialize(&mut self, tier: Option<TierKind>) {
        for step in &mut self.steps {
            if let Step::Apply { kernel, .. } = step {
                *kernel = SpecializedKernel::specialize(kernel.kernel.clone(), tier);
            }
        }
    }

    /// One line per apply step describing the selected executor tier,
    /// e.g. `apply#0: weighted-sum (5 taps, tree; rank 2) [3844 pts]`.
    pub fn tier_summary(&self) -> Vec<String> {
        self.steps
            .iter()
            .filter_map(|s| match s {
                Step::Apply { kernel, .. } => {
                    Some(format!("{} [{} pts]", kernel.tier_label(), kernel.points()))
                }
                _ => None,
            })
            .enumerate()
            .map(|(i, l)| format!("apply#{i}: {l}"))
            .collect()
    }
}

/// Executes a [`Pipeline`].
///
/// A runner owns a persistent [`WorkerPool`] (when `threads > 1`):
/// workers are spawned once and reused across every apply of every
/// timestep, each holding a long-lived [`ExecScratch`], instead of the
/// seed's `thread::scope` spawn-per-apply.
pub struct Runner {
    /// The compiled pipeline.
    pub pipeline: Pipeline,
    /// Worker threads for apply steps (1 = serial).
    pub threads: usize,
    tmps: Vec<Vec<f64>>,
    pool: Option<WorkerPool>,
    scratch: ExecScratch,
}

impl Runner {
    /// Creates a runner, allocating the intermediates and (for
    /// `threads > 1`) spawning the worker pool.
    pub fn new(pipeline: Pipeline, threads: usize) -> Runner {
        let tmps = pipeline
            .tmp_shapes
            .iter()
            .map(|s| vec![0.0; s.iter().product::<i64>().max(0) as usize])
            .collect();
        let pool = (threads > 1).then(|| WorkerPool::new(threads));
        Runner { pipeline, threads, tmps, pool, scratch: ExecScratch::new() }
    }

    /// The executor-tier lines of the underlying pipeline.
    pub fn tier_summary(&self) -> Vec<String> {
        self.pipeline.tier_summary()
    }

    /// Runs one timestep on single-process data.
    ///
    /// # Errors
    /// Reports swap steps (they need a world) and shape mismatches.
    ///
    /// # Panics
    /// Panics if `args` count differs from the pipeline's `num_args`.
    pub fn step(&mut self, args: &mut [Vec<f64>]) -> Result<(), String> {
        self.step_inner(args, None, 0)
    }

    /// Runs one timestep as `rank` of a SimMPI world.
    ///
    /// # Errors
    /// Reports shape mismatches and communication failures.
    pub fn step_distributed(
        &mut self,
        args: &mut [Vec<f64>],
        world: &Arc<SimWorld>,
        rank: i64,
    ) -> Result<(), String> {
        self.step_inner(args, Some(world), rank)
    }

    fn step_inner(
        &mut self,
        args: &mut [Vec<f64>],
        world: Option<&Arc<SimWorld>>,
        rank: i64,
    ) -> Result<(), String> {
        assert_eq!(args.len(), self.pipeline.num_args, "argument count mismatch");
        let pipeline = &self.pipeline;
        let tmps = &mut self.tmps;
        let pool = &mut self.pool;
        let scratch = &mut self.scratch;
        // Steps are executed in order; buffers are disjoint Vec<f64>s.
        for step in &pipeline.steps {
            match step {
                Step::Apply { kernel, inputs, outputs } => {
                    // Collect raw pointers to sidestep simultaneous
                    // &/&mut borrows of the args/tmps arrays; inputs and
                    // outputs never alias (value semantics: applies read
                    // source buffers and write freshly produced ones).
                    let input_slices: Vec<&[f64]> = inputs
                        .iter()
                        .map(|&b| match b {
                            BufId::Arg(i) => unsafe {
                                std::slice::from_raw_parts(args[i].as_ptr(), args[i].len())
                            },
                            BufId::Tmp(i) => unsafe {
                                std::slice::from_raw_parts(tmps[i].as_ptr(), tmps[i].len())
                            },
                        })
                        .collect();
                    let mut out_slices: Vec<&mut [f64]> = outputs
                        .iter()
                        .map(|&b| match b {
                            BufId::Arg(i) => unsafe {
                                std::slice::from_raw_parts_mut(
                                    args[i].as_ptr() as *mut f64,
                                    args[i].len(),
                                )
                            },
                            BufId::Tmp(i) => unsafe {
                                std::slice::from_raw_parts_mut(
                                    tmps[i].as_ptr() as *mut f64,
                                    tmps[i].len(),
                                )
                            },
                        })
                        .collect();
                    run_apply(kernel, &input_slices, &mut out_slices, pool.as_mut(), scratch);
                }
                Step::Swap { buf, grid, exchanges } => {
                    let Some(world) = world else {
                        return Err(
                            "pipeline contains dmp.swap steps — use step_distributed".into()
                        );
                    };
                    let shape = match *buf {
                        BufId::Arg(i) => pipeline.arg_shapes[i].clone(),
                        BufId::Tmp(i) => pipeline.tmp_shapes[i].clone(),
                    };
                    let data: &mut [f64] = match *buf {
                        BufId::Arg(i) => &mut args[i],
                        BufId::Tmp(i) => &mut tmps[i],
                    };
                    swap_exchange(world, rank, grid, exchanges, &shape, data)?;
                }
                Step::Copy { src, src_desc, dst, dst_desc, range } => {
                    let src_data: Vec<f64> = match *src {
                        BufId::Arg(i) => args[i].clone(),
                        BufId::Tmp(i) => tmps[i].clone(),
                    };
                    let dst_data: &mut [f64] = match *dst {
                        BufId::Arg(i) => &mut args[i],
                        BufId::Tmp(i) => &mut tmps[i],
                    };
                    let mut p = range.lower();
                    if range.num_points() > 0 {
                        loop {
                            let s = src_desc.flat(&p) as usize;
                            let d = dst_desc.flat(&p) as usize;
                            dst_data[d] = src_data[s];
                            let mut dim = range.rank();
                            let mut done = false;
                            loop {
                                if dim == 0 {
                                    done = true;
                                    break;
                                }
                                dim -= 1;
                                p[dim] += 1;
                                if p[dim] < range.0[dim].1 {
                                    break;
                                }
                                p[dim] = range.0[dim].0;
                            }
                            if done {
                                break;
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Executes one apply step: serially (reusing the runner's scratch) when
/// there is no pool, else chunked over the longest dimension onto the
/// persistent workers.
fn run_apply(
    kernel: &SpecializedKernel,
    inputs: &[&[f64]],
    outs: &mut [&mut [f64]],
    pool: Option<&mut WorkerPool>,
    scratch: &mut ExecScratch,
) {
    let range = kernel.range.clone();
    let Some(pool) = pool else {
        kernel.execute_rows(inputs, outs, &range, scratch);
        return;
    };
    let subs = split_longest_dim(&range, pool.threads());
    if subs.len() <= 1 {
        kernel.execute_rows(inputs, outs, &range, scratch);
        return;
    }
    let out_ptrs: Vec<SendPtr> =
        outs.iter_mut().map(|o| SendPtr(o.as_mut_ptr(), o.len())).collect();
    let out_ptrs = &out_ptrs;
    let jobs: Vec<Job> = subs
        .into_iter()
        .map(|sub| {
            Box::new(move |scratch: &mut ExecScratch| {
                // SAFETY: the chunks are disjoint slabs of one dimension
                // and each point writes only its own output cells;
                // `WorkerPool::run` joins every job before returning.
                let mut outs = unsafe { rematerialize_outs(out_ptrs) };
                kernel.execute_rows(inputs, &mut outs, &sub, scratch);
            }) as Job
        })
        .collect();
    pool.run(jobs);
}

/// Performs one `dmp.swap` on plain data through a SimMPI world
/// (buffered sends first, then blocking receives — deadlock-free).
fn swap_exchange(
    world: &Arc<SimWorld>,
    rank: i64,
    grid: &[i64],
    exchanges: &[ExchangeAttr],
    shape: &[i64],
    data: &mut [f64],
) -> Result<(), String> {
    use sten_dmp::decomposition::neighbor_rank;
    use sten_mpi::dmp_to_mpi::tag_for_direction;
    let desc = InputDesc::new(shape.to_vec(), vec![0; shape.len()]);
    let gather = |data: &[f64], at: &[i64], size: &[i64]| -> Vec<f64> {
        let range = Bounds::new(at.iter().zip(size).map(|(&a, &s)| (a, a + s)).collect());
        let mut out = Vec::with_capacity(range.num_points() as usize);
        let mut p = range.lower();
        if range.num_points() > 0 {
            loop {
                out.push(data[desc.flat(&p) as usize]);
                let mut d = range.rank();
                let mut done = false;
                loop {
                    if d == 0 {
                        done = true;
                        break;
                    }
                    d -= 1;
                    p[d] += 1;
                    if p[d] < range.0[d].1 {
                        break;
                    }
                    p[d] = range.0[d].0;
                }
                if done {
                    break;
                }
            }
        }
        out
    };
    for e in exchanges {
        if let Some(n) = neighbor_rank(rank, grid, &e.to)? {
            let msg = gather(data, &e.send_at(), &e.size);
            world.send(rank as i32, n as i32, tag_for_direction(&e.to) as i32, msg);
        }
    }
    for e in exchanges {
        if let Some(n) = neighbor_rank(rank, grid, &e.to)? {
            let neg: Vec<i64> = e.to.iter().map(|t| -t).collect();
            let msg = world.recv(rank as i32, n as i32, tag_for_direction(&neg) as i32);
            let range = Bounds::new(e.at.iter().zip(&e.size).map(|(&a, &s)| (a, a + s)).collect());
            let mut p = range.lower();
            let mut i = 0;
            if range.num_points() > 0 {
                loop {
                    data[desc.flat(&p) as usize] = msg[i];
                    i += 1;
                    let mut d = range.rank();
                    let mut done = false;
                    loop {
                        if d == 0 {
                            done = true;
                            break;
                        }
                        d -= 1;
                        p[d] += 1;
                        if p[d] < range.0[d].1 {
                            break;
                        }
                        p[d] = range.0[d].0;
                    }
                    if done {
                        break;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Compiles the function `func` of a shape-inferred stencil-level module
/// into a [`Pipeline`], specializing every apply kernel into its
/// executor tier (honouring the `STEN_EXEC_TIER` override).
///
/// # Errors
/// Reports unsupported structure (time loops must be driven by the
/// caller; apply bodies must be compilable — see
/// [`crate::program::compile_apply`]).
pub fn compile_module(module: &Module, func: &str) -> Result<Pipeline, String> {
    compile_module_tiered(module, func, TierKind::from_env())
}

/// Like [`compile_module`] with an explicit tier pin (`None` = auto).
pub fn compile_module_tiered(
    module: &Module,
    func: &str,
    tier: Option<TierKind>,
) -> Result<Pipeline, String> {
    let f = module.lookup_symbol(func).ok_or_else(|| format!("no function '{func}'"))?;
    let block = f.region_block(0);

    // Buffer table: value -> (BufId, layout).
    let mut bufs: HashMap<Value, (BufId, InputDesc)> = HashMap::new();
    let mut arg_shapes = Vec::new();
    for (i, &arg) in block.args.iter().enumerate() {
        match module.values.ty(arg) {
            Type::Field(fld) => {
                let desc = InputDesc::new(fld.bounds.shape(), fld.bounds.lower());
                arg_shapes.push(desc.shape.clone());
                bufs.insert(arg, (BufId::Arg(i), desc));
            }
            other => return Err(format!("unsupported argument type {other:?}")),
        }
    }
    let num_args = arg_shapes.len();

    // Which apply results are store-forwarded.
    let counts = module.op.use_counts();
    let mut forwarded: HashMap<Value, Value> = HashMap::new();
    for op in &block.ops {
        if op.name == "stencil.store" {
            let temp = op.operand(0);
            if counts.get(&temp).copied().unwrap_or(0) == 1 {
                if let Type::Temp(t) = module.values.ty(temp) {
                    if let Some(b) = &t.bounds {
                        if *b == sten_stencil::ops::StoreOp(op).range() {
                            forwarded.insert(temp, op.operand(1));
                        }
                    }
                }
            }
        }
    }

    let mut tmp_shapes: Vec<Vec<i64>> = Vec::new();
    let mut steps = Vec::new();
    let mut scalar_consts: HashMap<Value, f64> = HashMap::new();

    for op in &block.ops {
        match op.name.as_str() {
            "arith.constant" => {
                if let Some(v) = op.attr("value").and_then(Attribute::as_f64) {
                    scalar_consts.insert(op.result(0), v);
                }
            }
            "stencil.load" | "stencil.buffer" => {
                let parent = bufs.get(&op.operand(0)).cloned().ok_or("load from unknown buffer")?;
                bufs.insert(op.result(0), parent);
            }
            "stencil.cast" => {
                let (id, _) = bufs.get(&op.operand(0)).cloned().ok_or("cast of unknown")?;
                let Type::Field(fld) = module.values.ty(op.result(0)) else {
                    return Err("cast to non-field".into());
                };
                bufs.insert(
                    op.result(0),
                    (id, InputDesc::new(fld.bounds.shape(), fld.bounds.lower())),
                );
            }
            "dmp.swap" => {
                let (id, _desc) = bufs.get(&op.operand(0)).cloned().ok_or("swap of unknown")?;
                let grid = op
                    .attr("grid")
                    .and_then(Attribute::as_grid)
                    .ok_or("swap without grid")?
                    .to_vec();
                let exchanges: Vec<ExchangeAttr> = op
                    .attr("swaps")
                    .and_then(Attribute::as_array)
                    .map(|a| a.iter().filter_map(Attribute::as_exchange).cloned().collect())
                    .unwrap_or_default();
                steps.push(Step::Swap { buf: id, grid, exchanges });
            }
            "stencil.apply" => {
                let input_descs: Vec<Option<InputDesc>> =
                    op.operands.iter().map(|o| bufs.get(o).map(|(_, d)| d.clone())).collect();
                let input_ids: Vec<BufId> =
                    op.operands.iter().filter_map(|o| bufs.get(o).map(|(id, _)| *id)).collect();
                let mut output_ids = Vec::new();
                let mut output_descs = Vec::new();
                for &r in &op.results {
                    let Type::Temp(t) = module.values.ty(r) else {
                        return Err("apply result is not a temp".into());
                    };
                    let b = t.bounds.clone().ok_or("apply result bounds unknown")?;
                    if let Some(&field) = forwarded.get(&r) {
                        let (id, desc) =
                            bufs.get(&field).cloned().ok_or("forward to unknown field")?;
                        output_ids.push(id);
                        output_descs.push(desc.clone());
                        bufs.insert(r, (id, desc));
                    } else {
                        let desc = InputDesc::new(b.shape(), b.lower());
                        let id = BufId::Tmp(tmp_shapes.len());
                        tmp_shapes.push(desc.shape.clone());
                        output_ids.push(id);
                        output_descs.push(desc.clone());
                        bufs.insert(r, (id, desc));
                    }
                }
                let kernel =
                    compile_apply(op, &module.values, input_descs, output_descs, &scalar_consts)?;
                let kernel = SpecializedKernel::specialize(kernel, tier);
                steps.push(Step::Apply { kernel, inputs: input_ids, outputs: output_ids });
            }
            "stencil.store" => {
                if forwarded.contains_key(&op.operand(0)) {
                    continue;
                }
                let (src, src_desc) =
                    bufs.get(&op.operand(0)).cloned().ok_or("store of unknown temp")?;
                let (dst, dst_desc) =
                    bufs.get(&op.operand(1)).cloned().ok_or("store to unknown field")?;
                let range = sten_stencil::ops::StoreOp(op).range();
                steps.push(Step::Copy { src, src_desc, dst, dst_desc, range });
            }
            "func.return" => break,
            other => return Err(format!("unsupported op at function level: {other}")),
        }
    }
    Ok(Pipeline { num_args, arg_shapes, tmp_shapes, steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sten_ir::Pass as _;
    use sten_stencil::{samples, ShapeInference};

    fn prepare(mut m: Module) -> Module {
        ShapeInference.run(&mut m).unwrap();
        m
    }

    #[test]
    fn pipeline_matches_interpreter_on_heat2d() {
        let n = 24i64;
        let m = prepare(samples::heat_2d(n, 0.1));
        let pipeline = compile_module(&m, "heat").unwrap();
        assert_eq!(pipeline.num_args, 2);
        assert_eq!(pipeline.num_apply_steps(), 1);
        assert!(pipeline.flops_per_step() > 0);

        let size = ((n + 2) * (n + 2)) as usize;
        let input: Vec<f64> = (0..size).map(|i| (i as f64 * 0.07).sin()).collect();
        let mut args = vec![input.clone(), input.clone()];
        Runner::new(pipeline, 1).step(&mut args).unwrap();

        // Interpreter reference.
        let src = sten_interp::BufView::from_data(vec![n + 2, n + 2], input.clone());
        let dst = sten_interp::BufView::from_data(vec![n + 2, n + 2], input);
        sten_interp::Interpreter::new(&m)
            .call_function(
                "heat",
                vec![sten_interp::RtValue::Buffer(src), sten_interp::RtValue::Buffer(dst.clone())],
            )
            .unwrap();
        assert_eq!(args[1], dst.to_vec(), "compiled == interpreted, bit for bit");
    }

    #[test]
    fn multithreaded_step_matches_serial() {
        let n = 48i64;
        let m = prepare(samples::heat_2d(n, 0.1));
        let size = ((n + 2) * (n + 2)) as usize;
        let input: Vec<f64> = (0..size).map(|i| (i as f64 * 0.03).cos()).collect();

        let mut serial_args = vec![input.clone(), input.clone()];
        Runner::new(compile_module(&m, "heat").unwrap(), 1).step(&mut serial_args).unwrap();
        let mut par_args = vec![input.clone(), input];
        Runner::new(compile_module(&m, "heat").unwrap(), 8).step(&mut par_args).unwrap();
        assert_eq!(serial_args[1], par_args[1]);
    }

    #[test]
    fn two_stage_pipeline_has_intermediate() {
        let m = prepare(samples::two_stage_1d(32));
        let p = compile_module(&m, "two_stage").unwrap();
        assert_eq!(p.num_apply_steps(), 2);
        assert_eq!(p.tmp_shapes.len(), 1, "intermediate temp materialised");
    }

    #[test]
    fn distributed_pipeline_matches_serial() {
        let n = 128i64;
        let global: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin()).collect();

        // Serial.
        let serial = prepare(samples::jacobi_1d(n));
        let mut serial_args = vec![global.clone(), global.clone()];
        Runner::new(compile_module(&serial, "jacobi").unwrap(), 1).step(&mut serial_args).unwrap();

        // Distributed on 2 ranks at the dmp level.
        let mut m = samples::jacobi_1d(n);
        ShapeInference.run(&mut m).unwrap();
        sten_dmp::DistributeStencil::new(vec![2]).run(&mut m).unwrap();
        ShapeInference.run(&mut m).unwrap();
        let pipeline = compile_module(&m, "jacobi").unwrap();
        assert!(pipeline.exchanged_elements_per_step() > 0);
        let local = pipeline.arg_shapes[0][0];
        let core = (n - 2) / 2;

        let world = SimWorld::new(2);
        let mut outs: Vec<Vec<f64>> = vec![Vec::new(), Vec::new()];
        std::thread::scope(|scope| {
            for (rank, out) in outs.iter_mut().enumerate() {
                let world = Arc::clone(&world);
                let pipeline = pipeline.clone();
                let global = global.clone();
                scope.spawn(move || {
                    let start = rank as i64 * core;
                    let data: Vec<f64> = (0..local).map(|i| global[(start + i) as usize]).collect();
                    let mut args = vec![data.clone(), data];
                    let mut runner = Runner::new(pipeline, 1);
                    runner.step_distributed(&mut args, &world, rank as i64).unwrap();
                    *out = args[1].clone();
                });
            }
        });

        let mut got = global.clone();
        for (rank, out) in outs.iter().enumerate() {
            let start = rank as i64 * core;
            for l in 1..=core {
                got[(start + l) as usize] = out[l as usize];
            }
        }
        assert_eq!(got, serial_args[1]);
    }

    #[test]
    fn swap_without_world_is_reported() {
        let mut m = samples::jacobi_1d(128);
        ShapeInference.run(&mut m).unwrap();
        sten_dmp::DistributeStencil::new(vec![2]).run(&mut m).unwrap();
        ShapeInference.run(&mut m).unwrap();
        let pipeline = compile_module(&m, "jacobi").unwrap();
        let shape = pipeline.arg_shapes[0].clone();
        let len = shape.iter().product::<i64>() as usize;
        let mut args = vec![vec![0.0; len], vec![0.0; len]];
        let err = Runner::new(pipeline, 1).step(&mut args).unwrap_err();
        assert!(err.contains("step_distributed"), "{err}");
    }
}
