//! Bytecode compilation of `stencil.apply` regions.
//!
//! The apply body (straight-line `arith` + `stencil.access`/`index` ops)
//! compiles to register bytecode; relative access offsets become constant
//! flat-index displacements, the compiled analogue of the paper's
//! observation that type-carried bounds "enable constant-folding of most
//! of the memory access address computations".

use std::collections::HashMap;
use sten_ir::{Attribute, Bounds, Op, Type, Value};

/// One bytecode instruction; `dst`/`a`/`b` are register indices.
#[derive(Clone, Debug, PartialEq)]
pub enum Instr {
    /// `regs[dst] = input[i].data[center_flat[i] + rel]`.
    LoadInput {
        /// Which apply input.
        input: u32,
        /// Constant flat displacement from the centre point.
        rel: i64,
        /// Destination register.
        dst: u32,
    },
    /// `regs[dst] = v`.
    Const {
        /// Literal value.
        v: f64,
        /// Destination register.
        dst: u32,
    },
    /// `regs[dst] = a ⊕ b`.
    Bin {
        /// The operator.
        op: BinOp,
        /// Left operand register.
        a: u32,
        /// Right operand register.
        b: u32,
        /// Destination register.
        dst: u32,
    },
    /// `regs[dst] = -a`.
    Neg {
        /// Operand register.
        a: u32,
        /// Destination register.
        dst: u32,
    },
    /// `regs[dst] = current logical coordinate along dim (+offset)`.
    Index {
        /// Dimension.
        dim: u8,
        /// Constant offset.
        offset: i64,
        /// Destination register.
        dst: u32,
    },
}

/// Binary float operators.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl BinOp {
    /// Applies the operator.
    #[inline(always)]
    pub fn eval(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
        }
    }
}

/// Memory layout of one apply input: the buffer it aliases.
///
/// Construct through [`InputDesc::new`] so the row-major strides are
/// computed once instead of on every [`InputDesc::flat`] call.
#[derive(Clone, Debug, PartialEq)]
pub struct InputDesc {
    /// Allocation shape (row-major).
    pub shape: Vec<i64>,
    /// Logical coordinate of element `[0, ...]`.
    pub lb: Vec<i64>,
    /// Cached row-major strides (derived from `shape`).
    strides: Vec<i64>,
}

impl InputDesc {
    /// Builds a descriptor, caching the row-major strides.
    pub fn new(shape: Vec<i64>, lb: Vec<i64>) -> InputDesc {
        let rank = shape.len();
        let mut strides = vec![1i64; rank];
        for d in (0..rank.saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * shape[d + 1];
        }
        InputDesc { shape, lb, strides }
    }

    /// Row-major strides.
    pub fn strides(&self) -> &[i64] {
        &self.strides
    }

    /// Flat index of logical point `p`.
    #[inline]
    pub fn flat(&self, p: &[i64]) -> i64 {
        (0..p.len()).map(|d| (p[d] - self.lb[d]) * self.strides[d]).sum()
    }
}

/// Reusable per-thread execution scratch: the register file, flat-index
/// cursors, and (for specialized tiers) the slot array. Hoisted out of
/// the per-chunk execution calls so worker threads stop reallocating
/// them on every apply of every timestep.
#[derive(Clone, Debug, Default)]
pub struct ExecScratch {
    /// Bytecode register file.
    pub regs: Vec<f64>,
    /// Runtime scalar arguments for the current apply (one per entry of
    /// [`CompiledKernel::scalar_args`]), set by the caller before
    /// execution and preloaded into the scalar registers once per chunk.
    pub scalars: Vec<f64>,
    /// Weighted-sum slot array (taps, consts, combine nodes).
    pub slots: Vec<f64>,
    /// Per-input centre flat index of the current row start.
    pub flats: Vec<i64>,
    /// Per-output flat index of the current row start.
    pub out_flats: Vec<i64>,
    /// Current logical coordinate (for `Index` instructions).
    pub point: Vec<i64>,
}

impl ExecScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> ExecScratch {
        ExecScratch::default()
    }

    /// Resizes the buffers for a kernel's geometry. Cheap when the sizes
    /// already match (the steady state inside a timestep loop).
    pub fn ensure(
        &mut self,
        regs: usize,
        slots: usize,
        inputs: usize,
        outputs: usize,
        rank: usize,
    ) {
        self.regs.resize(regs, 0.0);
        self.slots.resize(slots, 0.0);
        self.flats.resize(inputs, 0);
        self.out_flats.resize(outputs, 0);
        self.point.resize(rank, 0);
    }
}

/// Splits `range` into at most `parts` contiguous sub-ranges along its
/// longest dimension. Any iteration dimension is safe to split: each grid
/// point writes only its own output cells, so chunks of any dimension
/// write disjoint cells. Returns fewer than `parts` chunks when the
/// longest extent is too small to give every chunk at least two rows.
/// Extent ties break toward the *outermost* dimension, so square domains
/// keep the cache-friendly outer-slab chunking and stride-1 rows stay
/// whole.
pub fn split_longest_dim(range: &Bounds, parts: usize) -> Vec<Bounds> {
    let rank = range.rank();
    if rank == 0 || parts <= 1 {
        return vec![range.clone()];
    }
    let dim =
        (0..rank).max_by_key(|&d| (range.0[d].1 - range.0[d].0, std::cmp::Reverse(d))).unwrap_or(0);
    let (lb, ub) = range.0[dim];
    let n = ub - lb;
    let parts = (parts as i64).min(n / 2).max(1);
    if parts <= 1 {
        return vec![range.clone()];
    }
    let chunk = (n + parts - 1) / parts;
    let mut subs = Vec::new();
    let mut start = lb;
    while start < ub {
        let end = (start + chunk).min(ub);
        let mut sub = range.clone();
        sub.0[dim] = (start, end);
        subs.push(sub);
        start = end;
    }
    subs
}

/// A compiled apply body with its cost model.
#[derive(Clone, Debug)]
pub struct KernelProgram {
    /// The instructions, in dependency order.
    pub instrs: Vec<Instr>,
    /// Registers needed.
    pub num_regs: u32,
    /// Registers holding the per-point results.
    pub outputs: Vec<u32>,
    /// Registers holding runtime scalar arguments (entry `k` is loaded
    /// from `ExecScratch::scalars[k]` before the point loop — no
    /// instruction writes them, so the values persist across points).
    pub scalar_regs: Vec<u32>,
    /// Dimensionality.
    pub rank: usize,
    /// Floating-point operations per grid point.
    pub flops: usize,
    /// Input loads per grid point.
    pub loads: usize,
    /// Number of *distinct* (input, offset) pairs — the stencil's point
    /// count (e.g. 5 for a 2D 5-point star).
    pub stencil_points: usize,
    /// The distinct (input, per-dimension offset) pairs themselves,
    /// sorted. Unlike the flattened `Instr::LoadInput` displacements,
    /// these preserve dimensionality, so consumers (e.g. the performance
    /// model) can recover the true per-axis radius.
    pub offsets: Vec<(u32, Vec<i64>)>,
}

impl KernelProgram {
    /// The stencil radius: the largest per-dimension offset magnitude
    /// over every access (e.g. 1 for a space-order-2 star).
    pub fn radius(&self) -> i64 {
        self.offsets
            .iter()
            .flat_map(|(_, offset)| offset.iter().map(|c| c.abs()))
            .max()
            .unwrap_or(0)
    }
}

impl KernelProgram {
    /// Evaluates the program at one point. `flats[i]` is the centre flat
    /// index into input `i`; `point` is the logical coordinate (for
    /// `Index` instructions).
    #[inline]
    pub fn eval(&self, inputs: &[&[f64]], flats: &[i64], point: &[i64], regs: &mut [f64]) {
        for instr in &self.instrs {
            match *instr {
                Instr::LoadInput { input, rel, dst } => {
                    regs[dst as usize] =
                        inputs[input as usize][(flats[input as usize] + rel) as usize];
                }
                Instr::Const { v, dst } => regs[dst as usize] = v,
                Instr::Bin { op, a, b, dst } => {
                    regs[dst as usize] = op.eval(regs[a as usize], regs[b as usize]);
                }
                Instr::Neg { a, dst } => regs[dst as usize] = -regs[a as usize],
                Instr::Index { dim, offset, dst } => {
                    regs[dst as usize] = (point[dim as usize] + offset) as f64;
                }
            }
        }
    }
}

/// A fully described kernel: program + geometry.
#[derive(Clone, Debug)]
pub struct CompiledKernel {
    /// The bytecode.
    pub program: KernelProgram,
    /// Iteration range in logical coordinates.
    pub range: Bounds,
    /// Input buffer layouts (parallel to the apply operands that are
    /// temps).
    pub inputs: Vec<InputDesc>,
    /// Output buffer layout (one per result).
    pub outputs: Vec<InputDesc>,
    /// Pipeline scalar-slot index feeding each entry of
    /// [`KernelProgram::scalar_regs`] (empty for fully constant kernels).
    /// The runner copies slot values into [`ExecScratch::scalars`] before
    /// each execution.
    pub scalar_args: Vec<usize>,
}

impl CompiledKernel {
    /// Grid points per execution.
    pub fn points(&self) -> i64 {
        self.range.num_points()
    }

    /// Executes over `inputs` into `outs`, serially.
    ///
    /// # Panics
    /// Panics if buffer lengths don't match the descriptors.
    pub fn execute(&self, inputs: &[&[f64]], outs: &mut [&mut [f64]]) {
        let mut scratch = ExecScratch::new();
        self.execute_rows(inputs, outs, &self.range.clone(), &mut scratch);
    }

    /// Executes rows of `range` (which must be a sub-range of
    /// `self.range`) reusing `scratch` across calls.
    pub fn execute_rows(
        &self,
        inputs: &[&[f64]],
        outs: &mut [&mut [f64]],
        range: &Bounds,
        scratch: &mut ExecScratch,
    ) {
        let rank = range.rank();
        debug_assert!(rank >= 1);
        scratch.ensure(
            self.program.num_regs as usize,
            0,
            self.inputs.len(),
            self.outputs.len(),
            rank,
        );
        preload_scalars(&self.program.scalar_regs, scratch);
        let last = rank - 1;
        let (last_lb, last_ub) = range.0[last];
        if last_ub <= last_lb {
            return;
        }
        let regs = &mut scratch.regs;
        let flats = &mut scratch.flats;
        let out_flats = &mut scratch.out_flats;
        let p = &mut scratch.point;
        // Odometer over the outer dims; inner loop over the last dim.
        for (d, &(lb, _)) in range.0.iter().enumerate() {
            p[d] = lb;
        }
        loop {
            p[last] = last_lb;
            for (i, d) in self.inputs.iter().enumerate() {
                flats[i] = d.flat(p);
            }
            for (i, d) in self.outputs.iter().enumerate() {
                out_flats[i] = d.flat(p);
            }
            for x in 0..(last_ub - last_lb) {
                p[last] = last_lb + x;
                self.program.eval(inputs, flats, p, regs);
                for (o, &reg) in self.program.outputs.iter().enumerate() {
                    outs[o][out_flats[o] as usize] = regs[reg as usize];
                }
                // Advance one element along the (stride-1) last dimension.
                for f in flats.iter_mut() {
                    *f += 1;
                }
                for f in out_flats.iter_mut() {
                    *f += 1;
                }
            }
            let mut d = last;
            let mut done = false;
            loop {
                if d == 0 {
                    done = true;
                    break;
                }
                d -= 1;
                p[d] += 1;
                if p[d] < range.0[d].1 {
                    break;
                }
                p[d] = range.0[d].0;
            }
            if done {
                return;
            }
        }
    }

    /// Executes with `threads` workers, chunking the *longest* dimension
    /// (not necessarily dim 0 — a `[4, 4096]` range parallelizes over the
    /// 4096-row inner dimension).
    pub fn execute_parallel(&self, inputs: &[&[f64]], outs: &mut [&mut [f64]], threads: usize) {
        let subs = split_longest_dim(&self.range, threads);
        if threads <= 1 || subs.len() <= 1 {
            self.execute(inputs, outs);
            return;
        }
        scoped_parallel(subs, outs, |sub, outs| {
            self.execute_rows(inputs, outs, sub, &mut ExecScratch::new());
        });
    }
}

/// Copies the runtime scalar arguments from `scratch.scalars` into their
/// registers (no instruction writes them, so one preload per chunk
/// suffices).
///
/// # Panics
/// Panics if the caller did not provide every scalar argument.
pub(crate) fn preload_scalars(scalar_regs: &[u32], scratch: &mut ExecScratch) {
    assert!(
        scratch.scalars.len() >= scalar_regs.len(),
        "kernel takes {} runtime scalar argument(s) but only {} were provided",
        scalar_regs.len(),
        scratch.scalars.len()
    );
    for (k, &r) in scalar_regs.iter().enumerate() {
        scratch.regs[r as usize] = scratch.scalars[k];
    }
}

/// Raw output pointers that may cross thread boundaries. Shared by every
/// parallel execution path (scoped and pooled); safety rests on the
/// chunks being disjoint slabs of one dimension, with each grid point
/// writing only its own output cells.
pub(crate) struct SendPtr(pub *mut f64, pub usize);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Re-materializes the output slices behind `ptrs` for one worker.
///
/// # Safety
/// Callers must guarantee the workers' write sets are disjoint at the
/// cell level (disjoint range chunks) and that the pointers outlive the
/// worker (the parallel driver joins before returning).
// The `&mut` slices intentionally alias across workers at the buffer
// level (never at the cell level) — that aliasing contract, not the
// input borrow, is what the safety comment governs.
#[allow(clippy::mut_from_ref)]
pub(crate) unsafe fn rematerialize_outs(ptrs: &[SendPtr]) -> Vec<&mut [f64]> {
    ptrs.iter().map(|p| std::slice::from_raw_parts_mut(p.0, p.1)).collect()
}

/// Runs `body(chunk, outs)` for every chunk on scoped threads, handing
/// each worker its own re-materialized view of the output buffers.
pub(crate) fn scoped_parallel<F>(subs: Vec<Bounds>, outs: &mut [&mut [f64]], body: F)
where
    F: Fn(&Bounds, &mut [&mut [f64]]) + Sync,
{
    let out_ptrs: Vec<SendPtr> =
        outs.iter_mut().map(|o| SendPtr(o.as_mut_ptr(), o.len())).collect();
    let out_ptrs = &out_ptrs;
    let body = &body;
    std::thread::scope(|scope| {
        for sub in subs {
            scope.spawn(move || {
                // SAFETY: chunks are disjoint slabs of one dimension and
                // the scope joins before `outs` is reused.
                let mut outs = unsafe { rematerialize_outs(out_ptrs) };
                body(&sub, &mut outs);
            });
        }
    });
}

/// Compiles a `stencil.apply` op into a [`CompiledKernel`].
///
/// `input_descs` gives the buffer layout for each temp operand. Scalar
/// operands are either `arith.constant`-defined (looked up in
/// `scalar_consts` and baked into the bytecode) or *runtime* scalars
/// (looked up in `scalar_slots` — pipeline scalar slots holding function
/// arguments or earlier reduction results — and loaded from
/// [`ExecScratch::scalars`] at execution time); `output_descs` gives the
/// layout each result is written to.
///
/// # Errors
/// Reports unsupported body ops (e.g. `dyn_access`, `select`) and unknown
/// scalar operands.
pub fn compile_apply(
    apply: &Op,
    vt: &sten_ir::ValueTable,
    input_descs: Vec<Option<InputDesc>>,
    output_descs: Vec<InputDesc>,
    scalar_consts: &HashMap<Value, f64>,
    scalar_slots: &HashMap<Value, usize>,
) -> Result<CompiledKernel, String> {
    let range = {
        let lb = apply.attr("lb").and_then(Attribute::as_dense).ok_or("apply missing lb")?;
        let ub = apply.attr("ub").and_then(Attribute::as_dense).ok_or("apply missing ub")?;
        Bounds::new(lb.iter().copied().zip(ub.iter().copied()).collect())
    };
    let block = apply.region_block(0);
    // Map temp args to compact input indices; scalars to constants.
    let mut temp_inputs: Vec<InputDesc> = Vec::new();
    let mut arg_input: HashMap<Value, u32> = HashMap::new();
    let mut arg_const: HashMap<Value, f64> = HashMap::new();
    // Runtime scalar operands: (block arg, pipeline slot), registers
    // allocated below.
    let mut arg_scalars: Vec<(Value, usize)> = Vec::new();
    for ((&operand, &arg), desc) in apply.operands.iter().zip(&block.args).zip(input_descs) {
        match vt.ty(operand) {
            Type::Temp(_) => {
                let desc = desc.ok_or("missing input descriptor for temp operand")?;
                arg_input.insert(arg, temp_inputs.len() as u32);
                temp_inputs.push(desc);
            }
            _ => {
                if let Some(&v) = scalar_consts.get(&operand) {
                    arg_const.insert(arg, v);
                } else if let Some(&slot) = scalar_slots.get(&operand) {
                    arg_scalars.push((arg, slot));
                } else {
                    return Err("scalar apply operand is not a known constant".into());
                }
            }
        }
    }

    let mut regs: HashMap<Value, u32> = HashMap::new();
    let mut next_reg: u32 = 0;
    let alloc = |v: Value, regs: &mut HashMap<Value, u32>, next: &mut u32| {
        let r = *next;
        regs.insert(v, r);
        *next += 1;
        r
    };
    // Runtime scalars live in registers preloaded once per chunk (no
    // instruction writes them).
    let mut scalar_regs: Vec<u32> = Vec::new();
    let mut scalar_args: Vec<usize> = Vec::new();
    for &(arg, slot) in &arg_scalars {
        scalar_regs.push(alloc(arg, &mut regs, &mut next_reg));
        scalar_args.push(slot);
    }
    let mut instrs = Vec::new();
    let mut flops = 0usize;
    let mut loads = 0usize;
    let mut seen_offsets: std::collections::HashSet<(u32, Vec<i64>)> =
        std::collections::HashSet::new();
    let mut outputs = Vec::new();

    let reg_of = |v: Value,
                  regs: &HashMap<Value, u32>,
                  arg_const: &HashMap<Value, f64>|
     -> Result<Result<u32, f64>, String> {
        if let Some(&r) = regs.get(&v) {
            Ok(Ok(r))
        } else if let Some(&c) = arg_const.get(&v) {
            Ok(Err(c))
        } else {
            Err(format!("value {v:?} not materialised in kernel"))
        }
    };

    for op in &block.ops {
        match op.name.as_str() {
            "arith.constant" => {
                let v = op
                    .attr("value")
                    .and_then(Attribute::as_f64)
                    .ok_or("non-float constant in apply body")?;
                let dst = alloc(op.result(0), &mut regs, &mut next_reg);
                instrs.push(Instr::Const { v, dst });
            }
            "stencil.access" => {
                let input =
                    *arg_input.get(&op.operand(0)).ok_or("access to a non-argument temp")?;
                let offset: Vec<i64> = op
                    .attr("offset")
                    .and_then(Attribute::as_dense)
                    .ok_or("access without offset")?
                    .to_vec();
                let strides = temp_inputs[input as usize].strides();
                let rel: i64 = offset.iter().zip(strides).map(|(o, s)| o * s).sum();
                let dst = alloc(op.result(0), &mut regs, &mut next_reg);
                instrs.push(Instr::LoadInput { input, rel, dst });
                loads += 1;
                seen_offsets.insert((input, offset));
            }
            "stencil.index" => {
                let dim = op.attr("dim").and_then(Attribute::as_int).unwrap_or(0) as u8;
                let offset = op.attr("offset").and_then(Attribute::as_int).unwrap_or(0);
                let dst = alloc(op.result(0), &mut regs, &mut next_reg);
                instrs.push(Instr::Index { dim, offset, dst });
            }
            "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf" => {
                let bin = match op.name.as_str() {
                    "arith.addf" => BinOp::Add,
                    "arith.subf" => BinOp::Sub,
                    "arith.mulf" => BinOp::Mul,
                    _ => BinOp::Div,
                };
                let fetch = |v: Value, instrs: &mut Vec<Instr>, next: &mut u32| match reg_of(
                    v, &regs, &arg_const,
                )? {
                    Ok(r) => Ok::<u32, String>(r),
                    Err(c) => {
                        let dst = *next;
                        *next += 1;
                        instrs.push(Instr::Const { v: c, dst });
                        Ok(dst)
                    }
                };
                let a = fetch(op.operand(0), &mut instrs, &mut next_reg)?;
                let b = fetch(op.operand(1), &mut instrs, &mut next_reg)?;
                let dst = alloc(op.result(0), &mut regs, &mut next_reg);
                instrs.push(Instr::Bin { op: bin, a, b, dst });
                flops += 1;
            }
            "arith.negf" => {
                let a = match reg_of(op.operand(0), &regs, &arg_const)? {
                    Ok(r) => r,
                    Err(c) => {
                        let dst = next_reg;
                        next_reg += 1;
                        instrs.push(Instr::Const { v: c, dst });
                        dst
                    }
                };
                let dst = alloc(op.result(0), &mut regs, &mut next_reg);
                instrs.push(Instr::Neg { a, dst });
                flops += 1;
            }
            "stencil.return" => {
                for &v in &op.operands {
                    match reg_of(v, &regs, &arg_const)? {
                        Ok(r) => outputs.push(r),
                        Err(c) => {
                            let dst = next_reg;
                            next_reg += 1;
                            instrs.push(Instr::Const { v: c, dst });
                            outputs.push(dst);
                        }
                    }
                }
            }
            other => return Err(format!("unsupported op in apply body: {other}")),
        }
    }
    let rank = range.rank();
    let mut offsets: Vec<(u32, Vec<i64>)> = seen_offsets.into_iter().collect();
    offsets.sort();
    Ok(CompiledKernel {
        program: KernelProgram {
            instrs,
            num_regs: next_reg,
            outputs,
            scalar_regs,
            rank,
            flops,
            loads,
            stencil_points: offsets.len(),
            offsets,
        },
        range,
        inputs: temp_inputs,
        outputs: output_descs,
        scalar_args,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(shape: Vec<i64>, lb: Vec<i64>) -> InputDesc {
        InputDesc::new(shape, lb)
    }

    #[test]
    fn strides_and_flat_are_row_major() {
        let d = desc(vec![4, 5, 6], vec![0, 0, 0]);
        assert_eq!(d.strides(), &[30, 6, 1]);
        assert_eq!(d.flat(&[1, 2, 3]), 45);
        let with_halo = desc(vec![6], vec![-1]);
        assert_eq!(with_halo.flat(&[0]), 1);
    }

    #[test]
    fn hand_built_program_evaluates() {
        // out = in[x-1] + in[x+1] - 2*in[x]
        let prog = KernelProgram {
            instrs: vec![
                Instr::LoadInput { input: 0, rel: -1, dst: 0 },
                Instr::LoadInput { input: 0, rel: 1, dst: 1 },
                Instr::LoadInput { input: 0, rel: 0, dst: 2 },
                Instr::Const { v: 2.0, dst: 3 },
                Instr::Bin { op: BinOp::Add, a: 0, b: 1, dst: 4 },
                Instr::Bin { op: BinOp::Mul, a: 3, b: 2, dst: 5 },
                Instr::Bin { op: BinOp::Sub, a: 4, b: 5, dst: 6 },
            ],
            num_regs: 7,
            outputs: vec![6],
            scalar_regs: vec![],
            rank: 1,
            flops: 3,
            loads: 3,
            stencil_points: 3,
            offsets: vec![(0, vec![-1]), (0, vec![0]), (0, vec![1])],
        };
        assert_eq!(prog.radius(), 1);
        let input = [1.0, 2.0, 4.0, 8.0];
        let mut regs = vec![0.0; 7];
        prog.eval(&[&input], &[1], &[1], &mut regs);
        assert_eq!(regs[6], 1.0 + 4.0 - 2.0 * 2.0);
    }

    #[test]
    fn compiled_jacobi_matches_interp() {
        use sten_ir::Pass as _;
        let mut m = sten_stencil::samples::jacobi_1d(64);
        sten_stencil::ShapeInference.run(&mut m).unwrap();
        let func = m.lookup_symbol("jacobi").unwrap();
        let apply = func.region_block(0).ops.iter().find(|o| o.name == "stencil.apply").unwrap();
        let kernel = compile_apply(
            apply,
            &m.values,
            vec![Some(desc(vec![64], vec![0]))],
            vec![desc(vec![64], vec![0])],
            &HashMap::new(),
            &HashMap::new(),
        )
        .unwrap();
        assert_eq!(kernel.program.flops, 3);
        assert_eq!(kernel.program.loads, 3);
        assert_eq!(kernel.program.stencil_points, 3);
        assert_eq!(kernel.points(), 62);

        let input: Vec<f64> = (0..64).map(|i| (i as f64).sin()).collect();
        let mut out = input.clone();
        kernel.execute(&[&input], &mut [&mut out]);

        // Reference.
        let mut want = input.clone();
        for i in 1..63 {
            want[i] = input[i - 1] + input[i + 1] - 2.0 * input[i];
        }
        assert_eq!(out, want);
    }

    #[test]
    fn parallel_matches_serial() {
        use sten_ir::Pass as _;
        let n = 64i64;
        let mut m = sten_stencil::samples::heat_2d(n, 0.1);
        sten_stencil::ShapeInference.run(&mut m).unwrap();
        let func = m.lookup_symbol("heat").unwrap();
        let apply = func.region_block(0).ops.iter().find(|o| o.name == "stencil.apply").unwrap();
        let d = desc(vec![n + 2, n + 2], vec![-1, -1]);
        let kernel = compile_apply(
            apply,
            &m.values,
            vec![Some(d.clone())],
            vec![d],
            &HashMap::new(),
            &HashMap::new(),
        )
        .unwrap();
        let size = ((n + 2) * (n + 2)) as usize;
        let input: Vec<f64> = (0..size).map(|i| (i as f64 * 0.01).sin()).collect();
        let mut serial = vec![0.0; size];
        let mut parallel = vec![0.0; size];
        kernel.execute(&[&input], &mut [&mut serial]);
        kernel.execute_parallel(&[&input], &mut [&mut parallel], 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn rejects_unsupported_bodies() {
        use sten_ir::Pass as _;
        let mut m = sten_stencil::samples::jacobi_1d(64);
        sten_stencil::ShapeInference.run(&mut m).unwrap();
        // Inject a dyn_access into the body.
        let func = m.lookup_symbol_mut("jacobi").unwrap();
        let apply =
            func.region_block_mut(0).ops.iter_mut().find(|o| o.name == "stencil.apply").unwrap();
        apply.region_block_mut(0).ops[0].name = "stencil.dyn_access".into();
        let apply = apply.clone();
        let err = compile_apply(
            &apply,
            &m.values,
            vec![Some(desc(vec![64], vec![0]))],
            vec![desc(vec![64], vec![0])],
            &HashMap::new(),
            &HashMap::new(),
        )
        .unwrap_err();
        assert!(err.contains("unsupported"), "{err}");
    }

    #[test]
    fn runtime_scalar_arg_compiles_and_evaluates() {
        use sten_ir::Pass as _;
        let n = 16i64;
        let full = Bounds::new(vec![(0, n)]);
        let mut m = sten_stencil::samples::axpy(full.clone(), full);
        sten_stencil::ShapeInference.run(&mut m).unwrap();
        let func = m.lookup_symbol("axpy").unwrap();
        let apply = func.region_block(0).ops.iter().find(|o| o.name == "stencil.apply").unwrap();
        // The alpha operand is the function's F64 argument — a runtime
        // scalar assigned pipeline slot 0.
        let alpha_value =
            *func.region_block(0).args.iter().find(|&&a| *m.values.ty(a) == Type::F64).unwrap();
        let slots: HashMap<Value, usize> = HashMap::from([(alpha_value, 0)]);
        let d = desc(vec![n], vec![0]);
        let kernel = compile_apply(
            apply,
            &m.values,
            vec![Some(d.clone()), Some(d.clone()), None],
            vec![d],
            &HashMap::new(),
            &slots,
        )
        .unwrap();
        assert_eq!(kernel.scalar_args, vec![0]);
        assert_eq!(kernel.program.scalar_regs.len(), 1);

        let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let alpha = 1.5;
        let mut out = vec![0.0; n as usize];
        let mut scratch = ExecScratch::new();
        scratch.scalars = vec![alpha];
        let range = kernel.range.clone();
        kernel.execute_rows(&[&a, &b], &mut [&mut out], &range, &mut scratch);
        let want: Vec<f64> = a.iter().zip(&b).map(|(&x, &y)| x + alpha * y).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn missing_runtime_scalar_is_reported() {
        use sten_ir::Pass as _;
        let full = Bounds::new(vec![(0, 16)]);
        let mut m = sten_stencil::samples::axpy(full.clone(), full);
        sten_stencil::ShapeInference.run(&mut m).unwrap();
        let func = m.lookup_symbol("axpy").unwrap();
        let apply = func.region_block(0).ops.iter().find(|o| o.name == "stencil.apply").unwrap();
        let d = desc(vec![16], vec![0]);
        let err = compile_apply(
            apply,
            &m.values,
            vec![Some(d.clone()), Some(d.clone()), None],
            vec![d],
            &HashMap::new(),
            &HashMap::new(),
        )
        .unwrap_err();
        assert!(err.contains("not a known constant"), "{err}");
    }
}
