//! # sten-exec — compiled kernel execution
//!
//! The paper's stack hands its lowered IR to LLVM and runs vendor-compiled
//! binaries on ARCHER2/Cirrus. This crate is the reproduction's native
//! execution engine standing in for that JIT path:
//!
//! * [`program`] — compiles `stencil.apply` regions into register-based
//!   bytecode ([`program::KernelProgram`]), with exact flop/load counts
//!   per grid point (consumed by `sten-perf` to compute arithmetic
//!   intensities from *real* IR rather than hand-waved estimates);
//! * [`pipeline`] — compiles a whole stencil-level function
//!   (`load`/`apply`/`store`/`dmp.swap` sequences) into an executable
//!   [`pipeline::Pipeline`]; [`pipeline::Runner`] executes timesteps
//!   serially, with shared-memory parallelism (the OpenMP substitute:
//!   scoped threads over outer-dimension chunks), or SPMD-distributed over
//!   a [`sten_interp::SimWorld`] (ranks-as-threads, the mpirun
//!   substitute).
//!
//! Numerical results are bit-identical to the `sten-interp` tree-walker on
//! the same module — the workspace tests enforce this.

pub mod pipeline;
pub mod program;

pub use pipeline::{compile_module, BufId, Pipeline, Runner, Step};
pub use program::{CompiledKernel, Instr, KernelProgram};
