//! # sten-exec — compiled kernel execution
//!
//! The paper's stack hands its lowered IR to LLVM and runs vendor-compiled
//! binaries on ARCHER2/Cirrus. This crate is the reproduction's native
//! execution engine standing in for that JIT path:
//!
//! * [`program`] — compiles `stencil.apply` regions into register-based
//!   bytecode ([`program::KernelProgram`]), with exact flop/load counts
//!   per grid point (consumed by `sten-perf` to compute arithmetic
//!   intensities from *real* IR rather than hand-waved estimates);
//! * [`specialize`] — the kernel specialization engine: compiles each
//!   [`program::KernelProgram`] into the fastest applicable executor
//!   tier (`eval` → `opt-bytecode` → `weighted-sum` → `template-jit`)
//!   at pipeline-build time, bit-for-bit identical to the reference
//!   interpreter;
//! * [`jit`] — the template-JIT tier's catalog of monomorphized fused
//!   micro-kernels (const-generic tap chains, two-level fold templates,
//!   optional explicit AVX2 lanes behind the `simd` cargo feature +
//!   runtime CPU detection);
//! * [`pipeline`] — compiles a whole stencil-level function
//!   (`load`/`apply`/`store`/`dmp.swap` sequences) into an executable
//!   [`pipeline::Pipeline`]; [`pipeline::Runner`] executes timesteps
//!   serially, on a persistent [`pool::WorkerPool`] (the OpenMP
//!   substitute: longest-dimension chunks onto long-lived workers with
//!   reusable scratch), or SPMD-distributed over a
//!   [`sten_interp::SimWorld`] (ranks-as-threads, the mpirun
//!   substitute);
//! * [`resilient`] — checkpoint/restart on top of the distributed
//!   runner: a content-addressed [`resilient::CheckpointStore`] plus
//!   [`resilient::run_resilient`], the cohort driver that rolls every
//!   rank back to the latest consistent checkpoint when a rank crashes.
//!   Fault-injected exchanges run a sequence-numbered reliable protocol
//!   (timeout, bounded-backoff re-request/re-send, duplicate
//!   suppression) surfacing [`pipeline::ExecError`] instead of hanging.
//!
//! Numerical results are bit-identical to the `sten-interp` tree-walker on
//! the same module — the workspace tests enforce this.

pub mod jit;
pub mod pipeline;
pub mod pool;
pub mod program;
pub mod resilient;
pub mod specialize;

pub use pipeline::{
    compile_module, compile_module_tiered, ApplyRegion, BufId, ExecError, Pipeline, RankSnapshot,
    Runner, Step,
};
pub use pool::WorkerPool;
pub use program::{split_longest_dim, BinOp, CompiledKernel, ExecScratch, Instr, KernelProgram};
pub use resilient::{run_resilient, CheckpointStore, ResilientConfig, ResilientReport};
pub use specialize::{SpecializedKernel, Tier, TierKind};
