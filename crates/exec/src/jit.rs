//! Template-JIT executor tier: monomorphized fused micro-kernels.
//!
//! The weighted-sum tier (see [`crate::specialize`]) strip-mines rows
//! into 128-point tiles and evaluates the kernel *stage at a time* over a
//! heap slot matrix — every tap and combine node makes one full pass over
//! the tile, so even an L1-resident kernel pays a load/store round trip
//! per stage per point. Real stencil compilers (Devito's generated C,
//! the paper's LLVM path) instead emit **one fused loop per kernel**: all
//! taps are loaded into registers, combined in registers, and stored
//! once.
//!
//! True runtime codegen needs a backend (cranelift) this repo cannot
//! depend on, so this module does the next-best thing — a **template
//! JIT**: a catalog of pre-compiled, monomorphized `#[inline(never)]`
//! micro-kernels covering the stencil shapes the specializer actually
//! sees, selected at pipeline-build time by matching the weighted-sum
//! program's combine DAG. The catalog is parameterized by runtime data
//! (taps, coefficients, strides) but its *shape* — tap counts (const
//! generics), fold structure, lane width — is fixed at compile time, so
//! the inner loops carry no interpretation dispatch at all.
//!
//! The matched shape is a two-level fold mirroring how frontends emit
//! stencils (`out = Σ groups, group = [c ·] Σ elements`):
//!
//! ```text
//! out  := term₁ ⊕ term₂ ⊕ … ⊕ term_G          (left fold, ⊕ ∈ {+,−})
//! term := elem                                 (plain element)
//!       | [c ·] (elem₁ ⊕ … ⊕ elem_T)          (const-scaled group fold)
//! elem := tap | c · tap | tap ⊕ tap | const   (tap = one grid load)
//! ```
//!
//! jacobi-1d matches as a pure 3-tap chain, heat-2d as
//! `c + s·(((u+d)+(l+r)) − k·c)` (one plain term + one scaled group),
//! the Devito heat-3d operator as `s₁·(a+b+c) + s₂·(d+e+f) + g·center`.
//! Kernels outside the catalog (division nodes, nesting deeper than two
//! levels, > [`MAX_TERMS`] terms, `Index` taps, runtime scalars) simply
//! stay on the weighted-sum or opt-bytecode tier — tier selection is a
//! pure win-or-fall-back.
//!
//! **Bit-exactness.** Evaluation replays exactly the operation sequence
//! of the matched DAG per point: every tap is scaled with the recorded
//! operand order, every fold applies the recorded operator with the
//! accumulator on the recorded side, no expression is reassociated and
//! no FMA contraction is introduced (products and sums stay separate
//! instructions). Vectorization only batches *across* points — each lane
//! executes the same scalar op sequence — so results are bit-for-bit
//! identical to `KernelProgram::eval`, which the random-stencil property
//! suite enforces across strategies, overlap, halo depth and threads.
//!
//! **Lanes.** Rows are evaluated eight points at a time through the
//! [`Lanes`] abstraction: a portable `[f64; 8]` implementation whose
//! fixed-width loops the compiler auto-vectorizes on any target, and —
//! behind the `simd` cargo feature on x86_64, gated at runtime by
//! `is_x86_feature_detected!("avx2")` — an explicit AVX2 implementation
//! (two `__m256d` halves per block). Row remainders run the scalar path,
//! which is bit-identical by construction.

use crate::program::BinOp;
use crate::specialize::{WsNode, WsProgram, WsTap};

/// Maximum top-level fold terms (a pure chain of taps may use all of
/// them; `chain<T>` micro-kernels are monomorphized for every `T` up to
/// this bound).
pub const MAX_TERMS: usize = 16;
/// Maximum elements inside one scaled group.
pub const MAX_GROUP_ELEMS: usize = 8;
/// Maximum total evaluated operations per output (guards the
/// recomputation that tree-shaped sharing can introduce).
const MAX_OPS: usize = 64;
/// Maximum outputs of a (horizontally fused) apply the templates accept.
const MAX_OUTS: usize = 4;

/// One grid load, optionally fused with a constant coefficient.
#[derive(Clone, Debug)]
pub struct JitTap {
    /// Which apply input the tap reads.
    pub input: u32,
    /// Constant flat displacement from the centre point.
    pub rel: i64,
    /// Coefficient (ignored unless `scaled`).
    pub coeff: f64,
    /// Whether the constant was the left multiplication operand.
    pub coeff_left: bool,
    /// Whether the tap is multiplied by `coeff`.
    pub scaled: bool,
}

/// A leaf value of the fold grammar.
#[derive(Clone, Debug)]
pub enum JitValue {
    /// A (possibly scaled) tap.
    Tap(JitTap),
    /// `a ⊕ b` over two (possibly scaled) taps.
    Pair {
        /// `Add` or `Sub`.
        op: BinOp,
        /// Left tap.
        a: JitTap,
        /// Right tap.
        b: JitTap,
    },
    /// A loop-invariant constant.
    Const(f64),
}

/// One element of a group fold: `acc = acc ⊕ value`.
#[derive(Clone, Debug)]
pub struct JitElem {
    /// `Add` or `Sub` (the first element ignores it and seeds the fold).
    pub op: BinOp,
    /// The element value.
    pub value: JitValue,
}

/// What one top-level term evaluates.
#[derive(Clone, Debug)]
pub enum JitTermValue {
    /// A plain element.
    Elem(JitValue),
    /// `[c ·] (elem₁ ⊕ … ⊕ elem_T)`.
    Group {
        /// Constant scale applied to the folded group (value, const on
        /// the left).
        scale: Option<(f64, bool)>,
        /// The group fold.
        elems: Vec<JitElem>,
    },
}

/// One top-level fold term: `acc = acc ⊕ value`.
#[derive(Clone, Debug)]
pub struct JitTerm {
    /// `Add` or `Sub` (the first term ignores it and seeds the fold).
    pub op: BinOp,
    /// The term value.
    pub value: JitTermValue,
}

/// The fold plan for one output.
#[derive(Clone, Debug)]
pub struct JitOut {
    /// Top-level terms, applied left to right.
    pub terms: Vec<JitTerm>,
}

/// A kernel matched against the template catalog.
#[derive(Clone, Debug)]
pub struct JitProgram {
    /// One fold plan per apply output.
    pub outs: Vec<JitOut>,
    /// Distinct taps of the source weighted-sum program (label only).
    pub tap_count: usize,
    /// `Some(T)` when the kernel is a single-output pure tap chain
    /// (drives the const-generic `chain<T>` micro-kernels).
    pub chain_len: Option<usize>,
    /// The flattened `(op, tap)` pairs when `chain_len` is set, hoisted
    /// out of the row loop at match time.
    chain: Option<Vec<(BinOp, JitTap)>>,
    /// Per-input `(min, max)` relative displacement loaded.
    pub rel_bounds: Vec<Option<(i64, i64)>>,
    /// Whether the explicit AVX2 lane path is compiled in *and* the CPU
    /// supports it (detected once at build time).
    pub use_avx2: bool,
}

impl JitProgram {
    /// Human label fragment, e.g. `chain<3>` or `2 terms`.
    pub fn shape_label(&self) -> String {
        match self.chain_len {
            Some(t) => format!("chain<{t}>"),
            None => format!("{} terms", self.outs.iter().map(|o| o.terms.len()).max().unwrap_or(0)),
        }
    }
}

/// Whether the AVX2 lane path is available on this build and CPU.
fn avx2_available() -> bool {
    #[cfg(all(target_arch = "x86_64", feature = "simd"))]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(all(target_arch = "x86_64", feature = "simd")))]
    {
        false
    }
}

// ---------------------------------------------------------------------
// Template matching
// ---------------------------------------------------------------------

/// What a weighted-sum slot holds during matching.
#[derive(Copy, Clone)]
enum SlotKind<'a> {
    Tap(&'a WsTap),
    Const(f64),
    Node(&'a WsNode),
}

struct Matcher<'a> {
    ws: &'a WsProgram,
    ops: usize,
}

impl<'a> Matcher<'a> {
    fn slot(&self, s: u16) -> SlotKind<'a> {
        let s = s as usize;
        let taps = self.ws.taps.len();
        let consts = taps + self.ws.index_taps.len() + self.ws.consts.len();
        if s < taps {
            SlotKind::Tap(&self.ws.taps[s])
        } else if s < consts {
            // Index slots are rejected up front, so anything between the
            // taps and the nodes is a constant here.
            SlotKind::Const(self.ws.consts[s - taps - self.ws.index_taps.len()])
        } else {
            SlotKind::Node(&self.ws.nodes[s - consts])
        }
    }

    fn charge(&mut self, n: usize) -> Option<()> {
        self.ops += n;
        (self.ops <= MAX_OPS).then_some(())
    }

    fn tap(&mut self, t: &WsTap) -> Option<JitTap> {
        self.charge(if t.scaled { 2 } else { 1 })?;
        Some(JitTap {
            input: t.input,
            rel: t.rel,
            coeff: t.coeff,
            coeff_left: t.coeff_left,
            scaled: t.scaled,
        })
    }

    /// Matches a leaf: tap, `c·tap`, `tap ⊕ tap`, or a constant.
    fn value(&mut self, s: u16) -> Option<JitValue> {
        match self.slot(s) {
            SlotKind::Tap(t) => Some(JitValue::Tap(self.tap(t)?)),
            SlotKind::Const(c) => {
                self.charge(1)?;
                Some(JitValue::Const(c))
            }
            SlotKind::Node(WsNode::Bin { op: op @ (BinOp::Add | BinOp::Sub), a, b }) => {
                let (SlotKind::Tap(ta), SlotKind::Tap(tb)) = (self.slot(*a), self.slot(*b)) else {
                    return None;
                };
                let (a, b) = (self.tap(ta)?, self.tap(tb)?);
                self.charge(1)?;
                Some(JitValue::Pair { op: *op, a, b })
            }
            SlotKind::Node(WsNode::Bin { op: BinOp::Mul, a, b }) => {
                // An unfused `const · tap` (the weighted-sum matcher only
                // fuses coefficients into single-use taps).
                let (c, t, left) = match (self.slot(*a), self.slot(*b)) {
                    (SlotKind::Const(c), SlotKind::Tap(t)) => (c, t, true),
                    (SlotKind::Tap(t), SlotKind::Const(c)) => (c, t, false),
                    _ => return None,
                };
                if t.scaled {
                    return None; // nested scaling: stay on weighted-sum
                }
                let mut tap = self.tap(t)?;
                self.charge(1)?;
                tap.coeff = c;
                tap.coeff_left = left;
                tap.scaled = true;
                Some(JitValue::Tap(tap))
            }
            _ => None,
        }
    }

    /// Linearizes the left spine of `Add`/`Sub` nodes rooted at `s` into
    /// `(seed, [(op, term), …])`, mirroring the DAG's exact association.
    fn linearize(&self, s: u16) -> (u16, Vec<(BinOp, u16)>) {
        let mut rev: Vec<(BinOp, u16)> = Vec::new();
        let mut cur = s;
        while rev.len() < MAX_TERMS.max(MAX_GROUP_ELEMS) {
            match self.slot(cur) {
                SlotKind::Node(WsNode::Bin { op: op @ (BinOp::Add | BinOp::Sub), a, b }) => {
                    rev.push((*op, *b));
                    cur = *a;
                }
                _ => break,
            }
        }
        rev.reverse();
        (cur, rev)
    }

    /// Matches a group fold (second fold level): every term must be a
    /// leaf value.
    fn group_elems(&mut self, s: u16) -> Option<Vec<JitElem>> {
        let (seed, folds) = self.linearize(s);
        if folds.len() + 1 > MAX_GROUP_ELEMS {
            return None;
        }
        let mut elems = vec![JitElem { op: BinOp::Add, value: self.value(seed)? }];
        for (op, slot) in folds {
            self.charge(1)?;
            elems.push(JitElem { op, value: self.value(slot)? });
        }
        Some(elems)
    }

    /// Matches one top-level term: a leaf, or a (possibly const-scaled)
    /// group fold.
    fn term_value(&mut self, s: u16) -> Option<JitTermValue> {
        if let Some(v) = self.value(s) {
            return Some(JitTermValue::Elem(v));
        }
        match self.slot(s) {
            SlotKind::Node(WsNode::Bin { op: BinOp::Mul, a, b }) => {
                let (c, inner, left) = match (self.slot(*a), self.slot(*b)) {
                    (SlotKind::Const(c), _) => (c, *b, true),
                    (_, SlotKind::Const(c)) => (c, *a, false),
                    _ => return None,
                };
                self.charge(1)?;
                Some(JitTermValue::Group {
                    scale: Some((c, left)),
                    elems: self.group_elems(inner)?,
                })
            }
            SlotKind::Node(WsNode::Bin { op: BinOp::Add | BinOp::Sub, .. }) => {
                Some(JitTermValue::Group { scale: None, elems: self.group_elems(s)? })
            }
            _ => None,
        }
    }

    fn out(&mut self, s: u16) -> Option<JitOut> {
        let (seed, folds) = self.linearize(s);
        if folds.len() + 1 > MAX_TERMS {
            return None;
        }
        let mut terms = vec![JitTerm { op: BinOp::Add, value: self.term_value(seed)? }];
        for (op, slot) in folds {
            self.charge(1)?;
            terms.push(JitTerm { op, value: self.term_value(slot)? });
        }
        Some(JitOut { terms })
    }
}

/// Tries to match a weighted-sum program against the template catalog.
/// Returns `None` when the kernel needs a shape the catalog doesn't
/// pre-compile — the caller then stays on the weighted-sum tier.
pub fn match_template(ws: &WsProgram) -> Option<JitProgram> {
    if !ws.index_taps.is_empty() || ws.outs.is_empty() || ws.outs.len() > MAX_OUTS {
        return None;
    }
    let mut m = Matcher { ws, ops: 0 };
    let outs: Vec<JitOut> = ws.outs.iter().map(|&o| m.out(o)).collect::<Option<_>>()?;
    let chain = match &outs[..] {
        [o] if o.terms.iter().all(|t| matches!(t.value, JitTermValue::Elem(JitValue::Tap(_)))) => {
            Some(
                o.terms
                    .iter()
                    .map(|t| match &t.value {
                        JitTermValue::Elem(JitValue::Tap(tap)) => (t.op, tap.clone()),
                        _ => unreachable!("just matched pure tap terms"),
                    })
                    .collect::<Vec<_>>(),
            )
        }
        _ => None,
    };
    Some(JitProgram {
        chain_len: chain.as_ref().map(Vec::len),
        chain,
        outs,
        tap_count: ws.taps.len(),
        rel_bounds: ws.rel_bounds.clone(),
        use_avx2: avx2_available(),
    })
}

// ---------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------

/// A block of `W` consecutive grid points processed together. Every
/// operation applies the identical scalar IEEE op per lane — lane width
/// only batches points, it never changes any point's op sequence.
trait Lanes: Copy {
    /// Points per block.
    const W: usize;
    /// # Safety
    /// `p .. p + W` must be readable.
    unsafe fn load(p: *const f64) -> Self;
    fn splat(c: f64) -> Self;
    fn add(self, o: Self) -> Self;
    fn sub(self, o: Self) -> Self;
    fn mul(self, o: Self) -> Self;
    /// # Safety
    /// `p .. p + W` must be writable.
    unsafe fn store(self, p: *mut f64);
}

/// Portable lanes: fixed-width loops the compiler auto-vectorizes.
#[derive(Copy, Clone)]
struct Portable([f64; 8]);

impl Lanes for Portable {
    const W: usize = 8;
    #[inline(always)]
    unsafe fn load(p: *const f64) -> Self {
        let mut v = [0.0; 8];
        std::ptr::copy_nonoverlapping(p, v.as_mut_ptr(), 8);
        Portable(v)
    }
    #[inline(always)]
    fn splat(c: f64) -> Self {
        Portable([c; 8])
    }
    #[inline(always)]
    fn add(mut self, o: Self) -> Self {
        for i in 0..8 {
            self.0[i] += o.0[i];
        }
        self
    }
    #[inline(always)]
    fn sub(mut self, o: Self) -> Self {
        for i in 0..8 {
            self.0[i] -= o.0[i];
        }
        self
    }
    #[inline(always)]
    fn mul(mut self, o: Self) -> Self {
        for i in 0..8 {
            self.0[i] *= o.0[i];
        }
        self
    }
    #[inline(always)]
    unsafe fn store(self, p: *mut f64) {
        std::ptr::copy_nonoverlapping(self.0.as_ptr(), p, 8);
    }
}

/// Explicit AVX2 lanes (two `__m256d` halves). `vaddpd`/`vsubpd`/
/// `vmulpd` are lane-wise IEEE ops — no FMA contraction, so results
/// match the scalar path bit for bit.
#[cfg(all(target_arch = "x86_64", feature = "simd"))]
mod avx2 {
    use super::Lanes;
    use std::arch::x86_64::*;

    #[derive(Copy, Clone)]
    pub struct Avx2(__m256d, __m256d);

    impl Lanes for Avx2 {
        const W: usize = 8;
        #[inline(always)]
        unsafe fn load(p: *const f64) -> Self {
            Avx2(_mm256_loadu_pd(p), _mm256_loadu_pd(p.add(4)))
        }
        #[inline(always)]
        fn splat(c: f64) -> Self {
            unsafe { Avx2(_mm256_set1_pd(c), _mm256_set1_pd(c)) }
        }
        #[inline(always)]
        fn add(self, o: Self) -> Self {
            unsafe { Avx2(_mm256_add_pd(self.0, o.0), _mm256_add_pd(self.1, o.1)) }
        }
        #[inline(always)]
        fn sub(self, o: Self) -> Self {
            unsafe { Avx2(_mm256_sub_pd(self.0, o.0), _mm256_sub_pd(self.1, o.1)) }
        }
        #[inline(always)]
        fn mul(self, o: Self) -> Self {
            unsafe { Avx2(_mm256_mul_pd(self.0, o.0), _mm256_mul_pd(self.1, o.1)) }
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f64) {
            _mm256_storeu_pd(p, self.0);
            _mm256_storeu_pd(p.add(4), self.1);
        }
    }
}

/// Row-start base pointer of a tap.
///
/// # Safety
/// Caller validated `flats[input] + rel` (and the row extent) per
/// [`JitProgram::rel_bounds`].
#[inline(always)]
unsafe fn tap_base(t: &JitTap, inputs: &[&[f64]], flats: &[i64]) -> *const f64 {
    let f = *flats.get_unchecked(t.input as usize);
    inputs.get_unchecked(t.input as usize).as_ptr().offset((f + t.rel) as isize)
}

#[inline(always)]
fn fold_op<L: Lanes>(op: BinOp, acc: L, v: L) -> L {
    match op {
        BinOp::Sub => acc.sub(v),
        // Only Add/Sub folds are matched.
        _ => acc.add(v),
    }
}

/// Loads and scales one tap for the block at `x`.
///
/// # Safety
/// See [`tap_base`]; `x .. x + W` must be within the validated row.
#[inline(always)]
unsafe fn tap_block<L: Lanes>(t: &JitTap, inputs: &[&[f64]], flats: &[i64], x: i64) -> L {
    let v = L::load(tap_base(t, inputs, flats).offset(x as isize));
    if !t.scaled {
        v
    } else if t.coeff_left {
        L::splat(t.coeff).mul(v)
    } else {
        v.mul(L::splat(t.coeff))
    }
}

/// # Safety
/// See [`tap_block`].
#[inline(always)]
unsafe fn value_block<L: Lanes>(v: &JitValue, inputs: &[&[f64]], flats: &[i64], x: i64) -> L {
    match v {
        JitValue::Tap(t) => tap_block(t, inputs, flats, x),
        JitValue::Pair { op, a, b } => {
            fold_op(*op, tap_block::<L>(a, inputs, flats, x), tap_block::<L>(b, inputs, flats, x))
        }
        JitValue::Const(c) => L::splat(*c),
    }
}

/// # Safety
/// See [`tap_block`].
#[inline(always)]
unsafe fn term_block<L: Lanes>(t: &JitTermValue, inputs: &[&[f64]], flats: &[i64], x: i64) -> L {
    match t {
        JitTermValue::Elem(v) => value_block(v, inputs, flats, x),
        JitTermValue::Group { scale, elems } => {
            let mut acc = value_block::<L>(&elems[0].value, inputs, flats, x);
            for e in &elems[1..] {
                acc = fold_op(e.op, acc, value_block(&e.value, inputs, flats, x));
            }
            match *scale {
                Some((c, true)) => L::splat(c).mul(acc),
                Some((c, false)) => acc.mul(L::splat(c)),
                None => acc,
            }
        }
    }
}

/// General fused row kernel over `L`-blocks; the scalar remainder runs
/// [`eval_point`] (bit-identical by construction).
///
/// Generic core only — the callable micro-kernels are the
/// monomorphizing wrappers below ([`fold_row_portable`],
/// [`avx2::fold_row_avx2`]). It must inline into them: a `std::arch`
/// intrinsic only compiles to its instruction inside a function carrying
/// the matching `#[target_feature]`; an out-of-line generic body would
/// turn every lane op of the AVX2 instantiation into a real function
/// call with `__m256d` operands spilled through memory (measured ~9×
/// *slower* than weighted-sum on jacobi-1d).
///
/// # Safety
/// Caller validated the row per [`JitProgram::rel_bounds`]; `out` must
/// cover `of .. of + len`.
#[inline(always)]
unsafe fn fold_row<L: Lanes>(
    plan: &JitOut,
    inputs: &[&[f64]],
    flats: &[i64],
    out: &mut [f64],
    of: i64,
    len: i64,
) {
    let w = L::W as i64;
    let mut x = 0i64;
    while x + w <= len {
        let mut acc = term_block::<L>(&plan.terms[0].value, inputs, flats, x);
        for t in &plan.terms[1..] {
            acc = fold_op(t.op, acc, term_block(&t.value, inputs, flats, x));
        }
        acc.store(out.as_mut_ptr().offset((of + x) as isize));
        x += w;
    }
    for x in x..len {
        *out.get_unchecked_mut((of + x) as usize) = eval_point(plan, inputs, flats, x);
    }
}

/// Const-generic pure-chain row kernel: `T` taps folded left to right,
/// fully unrolled. Generic core — see [`fold_row`] on why it must
/// inline into the per-ISA wrappers.
///
/// # Safety
/// Same contract as [`fold_row`]; the plan must be a pure tap chain of
/// exactly `T` terms.
#[inline(always)]
unsafe fn chain_row<L: Lanes, const T: usize>(
    taps: &[(BinOp, JitTap)],
    inputs: &[&[f64]],
    flats: &[i64],
    out: &mut [f64],
    of: i64,
    len: i64,
) {
    debug_assert_eq!(taps.len(), T);
    let w = L::W as i64;
    let mut x = 0i64;
    while x + w <= len {
        let mut acc = tap_block::<L>(&taps.get_unchecked(0).1, inputs, flats, x);
        for i in 1..T {
            let (op, t) = taps.get_unchecked(i);
            acc = fold_op(*op, acc, tap_block(t, inputs, flats, x));
        }
        acc.store(out.as_mut_ptr().offset((of + x) as isize));
        x += w;
    }
    for x in x..len {
        let mut acc = tap_point(&taps.get_unchecked(0).1, inputs, flats, x);
        for i in 1..T {
            let (op, t) = taps.get_unchecked(i);
            acc = op.eval(acc, tap_point(t, inputs, flats, x));
        }
        *out.get_unchecked_mut((of + x) as usize) = acc;
    }
}

/// # Safety
/// See [`tap_block`] (single-point form).
#[inline(always)]
unsafe fn tap_point(t: &JitTap, inputs: &[&[f64]], flats: &[i64], x: i64) -> f64 {
    let v = *tap_base(t, inputs, flats).offset(x as isize);
    // The multiplication operand order is semantic (NaN payload
    // propagation matches the bytecode).
    #[allow(clippy::if_same_then_else)]
    if !t.scaled {
        v
    } else if t.coeff_left {
        t.coeff * v
    } else {
        v * t.coeff
    }
}

/// # Safety
/// See [`tap_point`].
#[inline(always)]
unsafe fn value_point(v: &JitValue, inputs: &[&[f64]], flats: &[i64], x: i64) -> f64 {
    match v {
        JitValue::Tap(t) => tap_point(t, inputs, flats, x),
        JitValue::Pair { op, a, b } => {
            op.eval(tap_point(a, inputs, flats, x), tap_point(b, inputs, flats, x))
        }
        JitValue::Const(c) => *c,
    }
}

/// Scalar single-point evaluation — the reference op sequence every lane
/// path reproduces.
///
/// # Safety
/// See [`tap_point`].
#[inline(always)]
unsafe fn eval_point(plan: &JitOut, inputs: &[&[f64]], flats: &[i64], x: i64) -> f64 {
    let term = |t: &JitTermValue| -> f64 {
        match t {
            JitTermValue::Elem(v) => value_point(v, inputs, flats, x),
            JitTermValue::Group { scale, elems } => {
                let mut acc = value_point(&elems[0].value, inputs, flats, x);
                for e in &elems[1..] {
                    acc = e.op.eval(acc, value_point(&e.value, inputs, flats, x));
                }
                match *scale {
                    Some((c, true)) => c * acc,
                    Some((c, false)) => acc * c,
                    None => acc,
                }
            }
        }
    };
    let mut acc = term(&plan.terms[0].value);
    for t in &plan.terms[1..] {
        acc = t.op.eval(acc, term(&t.value));
    }
    acc
}

/// Expands to the `taps.len()` match dispatching a chain to the
/// const-generic monomorphizations of the named wrapper.
macro_rules! chain_match {
    ($row:ident, $taps:expr, $inputs:expr, $flats:expr, $out:expr, $of:expr, $len:expr) => {
        match $taps.len() {
            1 => $row::<1>($taps, $inputs, $flats, $out, $of, $len),
            2 => $row::<2>($taps, $inputs, $flats, $out, $of, $len),
            3 => $row::<3>($taps, $inputs, $flats, $out, $of, $len),
            4 => $row::<4>($taps, $inputs, $flats, $out, $of, $len),
            5 => $row::<5>($taps, $inputs, $flats, $out, $of, $len),
            6 => $row::<6>($taps, $inputs, $flats, $out, $of, $len),
            7 => $row::<7>($taps, $inputs, $flats, $out, $of, $len),
            8 => $row::<8>($taps, $inputs, $flats, $out, $of, $len),
            9 => $row::<9>($taps, $inputs, $flats, $out, $of, $len),
            10 => $row::<10>($taps, $inputs, $flats, $out, $of, $len),
            11 => $row::<11>($taps, $inputs, $flats, $out, $of, $len),
            12 => $row::<12>($taps, $inputs, $flats, $out, $of, $len),
            13 => $row::<13>($taps, $inputs, $flats, $out, $of, $len),
            14 => $row::<14>($taps, $inputs, $flats, $out, $of, $len),
            15 => $row::<15>($taps, $inputs, $flats, $out, $of, $len),
            16 => $row::<16>($taps, $inputs, $flats, $out, $of, $len),
            _ => unreachable!("chain length bounded by MAX_TERMS"),
        }
    };
}

/// Portable monomorphized micro-kernels: distinct `#[inline(never)]`
/// symbols per shape, auto-vectorized for the build's baseline ISA.
#[inline(never)]
unsafe fn fold_row_portable(
    plan: &JitOut,
    inputs: &[&[f64]],
    flats: &[i64],
    out: &mut [f64],
    of: i64,
    len: i64,
) {
    fold_row::<Portable>(plan, inputs, flats, out, of, len)
}

/// # Safety
/// Same contract as [`fold_row`]; `taps.len() == T`.
#[inline(never)]
unsafe fn chain_row_portable<const T: usize>(
    taps: &[(BinOp, JitTap)],
    inputs: &[&[f64]],
    flats: &[i64],
    out: &mut [f64],
    of: i64,
    len: i64,
) {
    chain_row::<Portable, T>(taps, inputs, flats, out, of, len)
}

/// AVX2 monomorphized micro-kernels. `#[target_feature]` compiles the
/// inlined generic cores (and the `_mm256_*` intrinsics inside them)
/// with AVX2 codegen, and is itself a hard inline boundary from the
/// non-AVX2 caller — these are the out-of-line kernel symbols of the
/// SIMD path.
#[cfg(all(target_arch = "x86_64", feature = "simd"))]
mod avx2_rows {
    use super::*;

    /// # Safety
    /// Caller checked `is_x86_feature_detected!("avx2")` (recorded in
    /// [`JitProgram::use_avx2`]) and validated the row per `rel_bounds`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn fold_row_avx2(
        plan: &JitOut,
        inputs: &[&[f64]],
        flats: &[i64],
        out: &mut [f64],
        of: i64,
        len: i64,
    ) {
        fold_row::<avx2::Avx2>(plan, inputs, flats, out, of, len)
    }

    /// # Safety
    /// As [`fold_row_avx2`]; `taps.len() == T`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn chain_row_avx2<const T: usize>(
        taps: &[(BinOp, JitTap)],
        inputs: &[&[f64]],
        flats: &[i64],
        out: &mut [f64],
        of: i64,
        len: i64,
    ) {
        chain_row::<avx2::Avx2, T>(taps, inputs, flats, out, of, len)
    }
}

impl JitProgram {
    /// Evaluates one stride-1 row of `len` points for every output.
    ///
    /// # Safety
    /// The caller validated (per [`JitProgram::rel_bounds`]) that every
    /// `flats[i] + rel + x` for `x < len` is in bounds for `inputs[i]`
    /// and that `out_flats[o] .. out_flats[o] + len` is in bounds for
    /// `outs[o]`.
    pub unsafe fn eval_row(
        &self,
        inputs: &[&[f64]],
        flats: &[i64],
        outs: &mut [&mut [f64]],
        out_flats: &[i64],
        len: i64,
    ) {
        for (oi, plan) in self.outs.iter().enumerate() {
            let of = out_flats[oi];
            let out: &mut [f64] = outs[oi];
            let chain = self.chain.as_deref();
            #[cfg(all(target_arch = "x86_64", feature = "simd"))]
            if self.use_avx2 {
                use avx2_rows::{chain_row_avx2, fold_row_avx2};
                match chain {
                    Some(taps) => chain_match!(chain_row_avx2, taps, inputs, flats, out, of, len),
                    None => fold_row_avx2(plan, inputs, flats, out, of, len),
                }
                continue;
            }
            match chain {
                Some(taps) => chain_match!(chain_row_portable, taps, inputs, flats, out, of, len),
                None => fold_row_portable(plan, inputs, flats, out, of, len),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specialize::{SpecializedKernel, Tier, TierKind};

    fn heat_jit() -> SpecializedKernel {
        let mut m = sten_stencil::samples::heat_2d(16, 0.1);
        let k = crate::specialize::tests::kernel_of(
            &mut m,
            "heat",
            crate::program::InputDesc::new(vec![18, 18], vec![-1, -1]),
        );
        SpecializedKernel::specialize(k, Some(TierKind::TemplateJit))
    }

    #[test]
    fn heat_matches_term_template() {
        let spec = heat_jit();
        assert_eq!(spec.tier_kind(), TierKind::TemplateJit);
        let Tier::TemplateJit(jit) = &spec.tier else { panic!() };
        // heat-2d: `c + s·(((u+d)+(l+r)) − k·c)` — one plain term plus
        // one scaled group. The group's left spine linearizes through
        // the leading tap pair: [tap, tap, pair, scaled tap], preserving
        // the exact left-nested association.
        assert_eq!(jit.outs.len(), 1);
        assert_eq!(jit.outs[0].terms.len(), 2);
        assert!(jit.chain_len.is_none());
        let JitTermValue::Group { scale: Some(_), elems } = &jit.outs[0].terms[1].value else {
            panic!("second term is a scaled group: {jit:?}");
        };
        assert_eq!(elems.len(), 4);
        assert!(matches!(elems[2].value, JitValue::Pair { .. }));
        assert!(matches!(elems[3].value, JitValue::Tap(JitTap { scaled: true, .. })));
    }

    #[test]
    fn shape_label_reports_chain_and_terms() {
        let spec = heat_jit();
        let Tier::TemplateJit(jit) = &spec.tier else { panic!() };
        assert_eq!(jit.shape_label(), "2 terms");
    }
}
