//! Kernel specialization: executor tiers over [`KernelProgram`].
//!
//! `KernelProgram::eval` pays a full `match` dispatch, bounds-checked
//! register-file traffic, and re-executed loop-invariant `Const`
//! instructions at every grid point — exactly the address-computation and
//! interpretation overheads whose elimination the source paper credits
//! for its performance. This module compiles each kernel **once, at
//! pipeline-build time**, into the fastest applicable executor tier:
//!
//! 1. **[`TierKind::TemplateJit`]** — a template-JIT (see [`crate::jit`])
//!    for kernels whose weighted-sum combine DAG matches a catalog of
//!    pre-compiled, monomorphized fused micro-kernels: all taps loaded
//!    and combined in registers in one pass per row, const-generic tap
//!    counts for pure chains, optional explicit AVX2 lanes behind the
//!    `simd` cargo feature + runtime CPU detection.
//! 2. **[`TierKind::WeightedSum`]** — the ubiquitous
//!    weighted-sum-of-taps stencil shape (jacobi/heat/wave all qualify):
//!    every multiplication has a constant operand, so the kernel is an
//!    affine function of its loads. It runs as a flat tap table
//!    (`(input, rel, coeff)`) plus a combine schedule that preserves the
//!    bytecode's exact association — **no register file, no
//!    full-dispatch interpretation, no reassociation**. Rows are
//!    strip-mined into [`WS_TILE`]-point tiles evaluated
//!    stage-at-a-time, so every tap load and combine node becomes a
//!    straight-line elementwise loop the compiler auto-vectorizes.
//!    Fused multi-output applies and `Index`-using kernels qualify too
//!    (index slots broadcast or iota-fill per tile).
//! 3. **[`TierKind::OptBytecode`]** — everything else: bytecode-level
//!    CSE (identical `LoadInput`/`Const`/`Index` deduped), constant
//!    folding of `Const ⊕ Const`, hoisting of loop-invariant `Const`
//!    writes into a pre-initialized register file, dead-code
//!    elimination, and an unchecked (bounds-validated once per chunk)
//!    evaluation loop.
//! 4. **[`TierKind::Eval`]** — the seed interpreter path, kept as the
//!    reference semantics and selectable for A/B measurement.
//!
//! All tiers are bit-for-bit identical to [`KernelProgram::eval`]: the
//! transformations only deduplicate or pre-compute identical operations
//! and reorder *independent* ones — no floating-point expression is
//! reassociated. The workspace property suite enforces this on random
//! stencils, serial and parallel.
//!
//! Inner loops are rank-specialized: 1D/2D/3D row walkers are
//! monomorphized per tier (the generic odometer only drives rank ≥ 4).
//!
//! Tier selection is automatic (`TemplateJit` when a pre-compiled
//! template matches the weighted-sum form, `WeightedSum` when only the
//! shape matches, else `OptBytecode`) and can be overridden with the
//! `STEN_EXEC_TIER` environment variable (`eval` | `opt-bytecode` |
//! `weighted-sum` | `template-jit` | `auto`) or per pipeline via
//! [`crate::Pipeline::respecialize`]. Forcing a tier a kernel doesn't
//! qualify for falls back down the ladder.

use crate::jit::JitProgram;
use crate::program::{BinOp, CompiledKernel, ExecScratch, Instr};
use std::collections::HashMap;
use std::sync::Arc;
use sten_ir::Bounds;

/// Names an executor tier (the ladder: `eval` → `opt-bytecode` →
/// `weighted-sum` → `template-jit`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TierKind {
    /// The seed `KernelProgram::eval` interpreter (reference semantics).
    Eval,
    /// Pre-optimized bytecode: CSE + constant folding + const hoisting.
    OptBytecode,
    /// Flat weighted-sum tap table with an exact combine schedule.
    WeightedSum,
    /// Monomorphized fused micro-kernels from the template catalog.
    TemplateJit,
}

impl TierKind {
    /// The stable name used by `STEN_EXEC_TIER`, `--timing` reports and
    /// `BENCH_exec.json`.
    pub fn name(self) -> &'static str {
        match self {
            TierKind::Eval => "eval",
            TierKind::OptBytecode => "opt-bytecode",
            TierKind::WeightedSum => "weighted-sum",
            TierKind::TemplateJit => "template-jit",
        }
    }

    /// Parses a tier name (`auto`/empty → `None`).
    pub fn parse(s: &str) -> Result<Option<TierKind>, String> {
        match s.trim() {
            "" | "auto" => Ok(None),
            "eval" => Ok(Some(TierKind::Eval)),
            "opt" | "opt-bytecode" => Ok(Some(TierKind::OptBytecode)),
            "ws" | "weighted-sum" => Ok(Some(TierKind::WeightedSum)),
            "jit" | "template-jit" => Ok(Some(TierKind::TemplateJit)),
            other => Err(format!(
                "unknown STEN_EXEC_TIER '{other}' \
                 (expected auto|eval|opt-bytecode|weighted-sum|template-jit)"
            )),
        }
    }

    /// Reads the `STEN_EXEC_TIER` override (unset/`auto` → `None`;
    /// invalid values are reported once to stderr and ignored).
    pub fn from_env() -> Option<TierKind> {
        match std::env::var("STEN_EXEC_TIER") {
            Ok(v) => match TierKind::parse(&v) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("// sten-exec: {e}; using auto");
                    None
                }
            },
            Err(_) => None,
        }
    }
}

/// Pre-optimized bytecode (tier 2): per-point instructions with all
/// loop-invariant `Const`s hoisted into a pre-initialized register file.
#[derive(Clone, Debug)]
pub struct OptProgram {
    /// Per-point instructions (never `Const`).
    pub instrs: Vec<Instr>,
    /// `(register, value)` pairs written once before the point loop.
    pub preinit: Vec<(u32, f64)>,
    /// Registers holding runtime scalar arguments, preloaded from
    /// [`ExecScratch::scalars`] once per chunk (like `preinit`, but the
    /// values are only known at execution time).
    pub scalar_regs: Vec<u32>,
    /// Registers needed.
    pub num_regs: u32,
    /// Registers holding the per-point results.
    pub outputs: Vec<u32>,
    /// Whether any `Index` instruction survives (needs the coordinate).
    pub has_index: bool,
    /// Per-input `(min, max)` relative displacement actually loaded
    /// (`None` when the input is never loaded).
    pub rel_bounds: Vec<Option<(i64, i64)>>,
}

impl OptProgram {
    /// Evaluates one point. `x` is the offset along the last (stride-1)
    /// dimension from the row-start `flats`/`point`.
    ///
    /// # Safety
    /// Register indices were validated at build time; the caller must
    /// have validated (per [`OptProgram::rel_bounds`]) that every
    /// `flats[i] + rel + x` this row produces is in bounds for
    /// `inputs[i]`.
    #[inline(always)]
    unsafe fn eval(
        &self,
        inputs: &[&[f64]],
        flats: &[i64],
        point: &[i64],
        x: i64,
        regs: &mut [f64],
    ) {
        for instr in &self.instrs {
            match *instr {
                Instr::LoadInput { input, rel, dst } => {
                    *regs.get_unchecked_mut(dst as usize) = *inputs
                        .get_unchecked(input as usize)
                        .get_unchecked((*flats.get_unchecked(input as usize) + rel + x) as usize);
                }
                Instr::Bin { op, a, b, dst } => {
                    *regs.get_unchecked_mut(dst as usize) =
                        op.eval(*regs.get_unchecked(a as usize), *regs.get_unchecked(b as usize));
                }
                Instr::Neg { a, dst } => {
                    *regs.get_unchecked_mut(dst as usize) = -*regs.get_unchecked(a as usize);
                }
                Instr::Index { dim, offset, dst } => {
                    let coord = *point.get_unchecked(dim as usize)
                        + offset
                        + if dim as usize == point.len() - 1 { x } else { 0 };
                    *regs.get_unchecked_mut(dst as usize) = coord as f64;
                }
                // Hoisted into `preinit` by construction.
                Instr::Const { v, dst } => *regs.get_unchecked_mut(dst as usize) = v,
            }
        }
    }
}

/// One tap of a weighted sum: a load, optionally fused with its constant
/// coefficient. `coeff_left` records which multiplication operand the
/// constant was, so even NaN payload propagation matches the bytecode.
#[derive(Clone, Debug)]
pub struct WsTap {
    /// Which apply input the tap reads.
    pub input: u32,
    /// Constant flat displacement from the centre point.
    pub rel: i64,
    /// Fused coefficient (ignored unless `scaled`).
    pub coeff: f64,
    /// Whether the constant was the left multiplication operand.
    pub coeff_left: bool,
    /// Whether the tap is multiplied by `coeff`.
    pub scaled: bool,
}

/// One combine step over the slot array (taps, then consts, then node
/// results). Entry `i` writes slot `taps + consts + i`.
#[derive(Clone, Debug)]
pub enum WsNode {
    /// `slot[dst] = slot[a] ⊕ slot[b]`.
    Bin {
        /// The operator.
        op: BinOp,
        /// Left operand slot.
        a: u16,
        /// Right operand slot.
        b: u16,
    },
    /// `slot[dst] = -slot[a]`.
    Neg {
        /// Operand slot.
        a: u16,
    },
}

/// A kernel in weighted-sum form (tier 2). Slot layout: taps, then
/// index taps, then consts, then combine nodes.
#[derive(Clone, Debug)]
pub struct WsProgram {
    /// The taps, loaded (and coefficient-scaled) each point.
    pub taps: Vec<WsTap>,
    /// `Index` slots `(dim, offset)`: the coordinate along `dim` plus
    /// `offset`, as f64 (slots `taps.len()..`). A last-dimension index
    /// varies along the row (iota fill); any other dimension is
    /// row-invariant (broadcast).
    pub index_taps: Vec<(u8, i64)>,
    /// Loop-invariant constant slot values.
    pub consts: Vec<f64>,
    /// Combine schedule preserving the bytecode's exact association.
    pub nodes: Vec<WsNode>,
    /// Slots holding the per-point results, one per apply output
    /// (horizontally fused applies have several).
    pub outs: Vec<u16>,
    /// Fold schedule when the combine tree is a linear chain
    /// (`acc = tap[chain_first]; acc = op(acc, tap)` per entry,
    /// `acc_left == false` swapping the operands). Only single-output,
    /// index-free kernels qualify. Shape metadata: the strip-mined
    /// executor handles chains and trees uniformly, but the distinction
    /// is reported in tier labels and pinned by tests.
    pub chain: Option<Vec<(BinOp, u16, bool)>>,
    /// First tap of the chain fold.
    pub chain_first: u16,
    /// Per-input `(min, max)` relative displacement loaded.
    pub rel_bounds: Vec<Option<(i64, i64)>>,
}

/// Points per strip-mined tile: small enough that the whole slot matrix
/// (`slot_count × WS_TILE` f64s) stays L1-resident for realistic
/// kernels, large enough that the vectorized stage loops amortize their
/// setup.
pub const WS_TILE: usize = 128;

/// One elementwise binary stage over a tile. The operator `match` is
/// hoisted out of the lane loop, so each arm is a straight-line
/// auto-vectorizable loop. `dst` never aliases `a`/`b` (a node's slot
/// index is strictly greater than its operands').
#[inline]
fn vbin(op: BinOp, dst: &mut [f64], a: &[f64], b: &[f64]) {
    match op {
        BinOp::Add => dst.iter_mut().zip(a.iter().zip(b)).for_each(|(d, (&x, &y))| *d = x + y),
        BinOp::Sub => dst.iter_mut().zip(a.iter().zip(b)).for_each(|(d, (&x, &y))| *d = x - y),
        BinOp::Mul => dst.iter_mut().zip(a.iter().zip(b)).for_each(|(d, (&x, &y))| *d = x * y),
        BinOp::Div => dst.iter_mut().zip(a.iter().zip(b)).for_each(|(d, (&x, &y))| *d = x / y),
    }
}

impl WsProgram {
    /// Evaluates one stride-1 row of `len` points, strip-mined into
    /// [`WS_TILE`]-point tiles: every tap and combine node is evaluated
    /// stage-at-a-time over the tile in a simple elementwise loop, which
    /// the compiler vectorizes. Reordering across *points* is the only
    /// reordering — each point still sees exactly the bytecode's
    /// operations in its association order, so results stay bit-for-bit
    /// identical to `KernelProgram::eval`.
    ///
    /// # Safety
    /// The caller validated (per [`WsProgram::rel_bounds`]) that every
    /// `flats[i] + rel + x` for `x < len` is in bounds for `inputs[i]`,
    /// that `out_flats[o] + len` is in bounds for `outs[o]`, and that
    /// `slots` holds `slot_count() * WS_TILE` elements with the const
    /// rows pre-filled. `point` is the row-start coordinate (its last
    /// entry drives `Index` slots along the row).
    #[allow(clippy::too_many_arguments)]
    unsafe fn eval_row(
        &self,
        inputs: &[&[f64]],
        flats: &[i64],
        outs: &mut [&mut [f64]],
        out_flats: &[i64],
        point: &[i64],
        len: i64,
        slots: &mut [f64],
    ) {
        let node_base = self.taps.len() + self.index_taps.len() + self.consts.len();
        let last = point.len() - 1;
        // Rows of the slot matrix never alias: taps/index/consts/nodes
        // each own one WS_TILE-sized row, and a node's operands have
        // strictly smaller slot ids than its destination.
        let base = slots.as_mut_ptr();
        let mut start = 0i64;
        while start < len {
            let tl = (len - start).min(WS_TILE as i64) as usize;
            for (k, t) in self.taps.iter().enumerate() {
                let src_base = (*flats.get_unchecked(t.input as usize) + t.rel + start) as usize;
                let src: &[f64] = inputs.get_unchecked(t.input as usize);
                let src = src.get_unchecked(src_base..src_base + tl);
                let dst = std::slice::from_raw_parts_mut(base.add(k * WS_TILE), tl);
                if !t.scaled {
                    dst.copy_from_slice(src);
                } else if t.coeff_left {
                    let c = t.coeff;
                    dst.iter_mut().zip(src).for_each(|(d, &x)| *d = c * x);
                } else {
                    let c = t.coeff;
                    dst.iter_mut().zip(src).for_each(|(d, &x)| *d = x * c);
                }
            }
            for (k, &(dim, offset)) in self.index_taps.iter().enumerate() {
                let dst =
                    std::slice::from_raw_parts_mut(base.add((self.taps.len() + k) * WS_TILE), tl);
                let coord = *point.get_unchecked(dim as usize) + offset;
                if dim as usize == last {
                    // Varies along the row: iota from the tile start.
                    let c0 = coord + start;
                    dst.iter_mut().enumerate().for_each(|(j, d)| *d = (c0 + j as i64) as f64);
                } else {
                    dst.fill(coord as f64);
                }
            }
            for (j, n) in self.nodes.iter().enumerate() {
                let dst = std::slice::from_raw_parts_mut(base.add((node_base + j) * WS_TILE), tl);
                match *n {
                    WsNode::Bin { op, a, b } => {
                        let ra = std::slice::from_raw_parts(base.add(a as usize * WS_TILE), tl);
                        let rb = std::slice::from_raw_parts(base.add(b as usize * WS_TILE), tl);
                        vbin(op, dst, ra, rb);
                    }
                    WsNode::Neg { a } => {
                        let ra = std::slice::from_raw_parts(base.add(a as usize * WS_TILE), tl);
                        dst.iter_mut().zip(ra).for_each(|(d, &x)| *d = -x);
                    }
                }
            }
            for (o, &slot) in self.outs.iter().enumerate() {
                let out_row = std::slice::from_raw_parts(base.add(slot as usize * WS_TILE), tl);
                let dst_base = (*out_flats.get_unchecked(o) + start) as usize;
                outs.get_unchecked_mut(o)
                    .get_unchecked_mut(dst_base..dst_base + tl)
                    .copy_from_slice(out_row);
            }
            start += WS_TILE as i64;
        }
    }

    /// Scalar evaluation of one short row: one point at a time through a
    /// flat slot array, skipping the tile machinery entirely. Each point
    /// still executes exactly the tile path's operations in the same
    /// order (taps, then nodes, same association), so results are
    /// bit-identical — this is a constant-factor fast path for the
    /// narrow boundary shells of overlapped halo exchanges, whose
    /// stride-1 rows are only a halo-width long.
    ///
    /// # Safety
    /// Same contract as [`WsProgram::eval_row`], with `slots` holding
    /// `slot_count()` elements whose const entries are pre-filled.
    #[allow(clippy::too_many_arguments)]
    unsafe fn eval_row_scalar(
        &self,
        inputs: &[&[f64]],
        flats: &[i64],
        outs: &mut [&mut [f64]],
        out_flats: &[i64],
        point: &[i64],
        len: i64,
        slots: &mut [f64],
    ) {
        let node_base = self.taps.len() + self.index_taps.len() + self.consts.len();
        let last = point.len() - 1;
        for x in 0..len {
            for (k, t) in self.taps.iter().enumerate() {
                let src: &[f64] = inputs.get_unchecked(t.input as usize);
                let v = *src
                    .get_unchecked((*flats.get_unchecked(t.input as usize) + t.rel + x) as usize);
                // The multiplication operand order is semantic (NaN
                // payload propagation matches the bytecode), even though
                // the branches look interchangeable.
                #[allow(clippy::if_same_then_else)]
                let scaled = if !t.scaled {
                    v
                } else if t.coeff_left {
                    t.coeff * v
                } else {
                    v * t.coeff
                };
                *slots.get_unchecked_mut(k) = scaled;
            }
            for (k, &(dim, offset)) in self.index_taps.iter().enumerate() {
                let coord = *point.get_unchecked(dim as usize)
                    + offset
                    + if dim as usize == last { x } else { 0 };
                *slots.get_unchecked_mut(self.taps.len() + k) = coord as f64;
            }
            for (j, n) in self.nodes.iter().enumerate() {
                let v = match *n {
                    WsNode::Bin { op, a, b } => {
                        op.eval(*slots.get_unchecked(a as usize), *slots.get_unchecked(b as usize))
                    }
                    WsNode::Neg { a } => -*slots.get_unchecked(a as usize),
                };
                *slots.get_unchecked_mut(node_base + j) = v;
            }
            for (o, &slot) in self.outs.iter().enumerate() {
                *outs
                    .get_unchecked_mut(o)
                    .get_unchecked_mut((*out_flats.get_unchecked(o) + x) as usize) =
                    *slots.get_unchecked(slot as usize);
            }
        }
    }

    fn slot_count(&self) -> usize {
        self.taps.len() + self.index_taps.len() + self.consts.len() + self.nodes.len()
    }
}

/// Rows at most this long take the scalar path instead of the
/// strip-mined tile path: below this length the tile setup (slice
/// bookkeeping per tap and node) costs more than the points themselves.
const WS_SCALAR_MAX_ROW: i64 = 8;

/// The executable form a kernel was specialized into.
///
/// Tier payloads are `Arc`-shared: cloning a [`SpecializedKernel`] —
/// which the pipeline does when it splits an apply into
/// interior/boundary-shell region steps — shares the same tap tables
/// and combine schedules instead of rebuilding per-shell state.
#[derive(Clone, Debug)]
pub enum Tier {
    /// Reference interpreter over the original bytecode.
    Eval,
    /// Pre-optimized bytecode.
    OptBytecode(Arc<OptProgram>),
    /// Weighted-sum tap table.
    WeightedSum(Arc<WsProgram>),
    /// Template-JIT fused micro-kernels (see [`crate::jit`]).
    TemplateJit(Arc<JitProgram>),
}

/// A [`CompiledKernel`] plus its chosen executor tier.
///
/// Dereferences to the underlying kernel, so geometry and cost-model
/// consumers (`.program`, `.range`, `.points()`) are unchanged.
#[derive(Clone, Debug)]
pub struct SpecializedKernel {
    /// The original kernel (geometry + reference bytecode).
    pub kernel: CompiledKernel,
    /// The selected tier.
    pub tier: Tier,
}

impl std::ops::Deref for SpecializedKernel {
    type Target = CompiledKernel;
    fn deref(&self) -> &CompiledKernel {
        &self.kernel
    }
}

impl SpecializedKernel {
    /// Specializes `kernel` into the fastest applicable tier (`force`
    /// pins one; forcing a tier the kernel doesn't qualify for falls
    /// back down the ladder — `TemplateJit` without a matching template
    /// becomes `WeightedSum`, `WeightedSum` on a non-matching kernel
    /// becomes `OptBytecode`).
    pub fn specialize(kernel: CompiledKernel, force: Option<TierKind>) -> SpecializedKernel {
        let tier = match force {
            Some(TierKind::Eval) => Tier::Eval,
            Some(TierKind::OptBytecode) => Tier::OptBytecode(Arc::new(optimize(&kernel))),
            Some(TierKind::WeightedSum) => {
                let opt = optimize(&kernel);
                match match_weighted_sum(&opt) {
                    Some(ws) => Tier::WeightedSum(Arc::new(ws)),
                    None => Tier::OptBytecode(Arc::new(opt)),
                }
            }
            Some(TierKind::TemplateJit) | None => {
                let opt = optimize(&kernel);
                match match_weighted_sum(&opt) {
                    Some(ws) => match crate::jit::match_template(&ws) {
                        Some(jit) => Tier::TemplateJit(Arc::new(jit)),
                        None => Tier::WeightedSum(Arc::new(ws)),
                    },
                    None => Tier::OptBytecode(Arc::new(opt)),
                }
            }
        };
        SpecializedKernel { kernel, tier }
    }

    /// The selected tier.
    pub fn tier_kind(&self) -> TierKind {
        match &self.tier {
            Tier::Eval => TierKind::Eval,
            Tier::OptBytecode(_) => TierKind::OptBytecode,
            Tier::WeightedSum(_) => TierKind::WeightedSum,
            Tier::TemplateJit(_) => TierKind::TemplateJit,
        }
    }

    /// A one-line human description, e.g.
    /// `weighted-sum (5 taps, tree; rank 2)` or
    /// `template-jit (3 taps, chain<3>; rank 1)`.
    pub fn tier_label(&self) -> String {
        match &self.tier {
            Tier::Eval => {
                format!("eval ({} instrs; rank {})", self.program.instrs.len(), self.program.rank)
            }
            Tier::OptBytecode(o) => format!(
                "opt-bytecode ({} instrs, {} hoisted consts; rank {})",
                o.instrs.len(),
                o.preinit.len(),
                self.program.rank
            ),
            Tier::WeightedSum(w) => format!(
                "weighted-sum ({} taps, {}; rank {})",
                w.taps.len(),
                if w.chain.is_some() { "chain" } else { "tree" },
                self.program.rank
            ),
            Tier::TemplateJit(j) => format!(
                "template-jit ({} taps, {}; rank {})",
                j.tap_count,
                j.shape_label(),
                self.program.rank
            ),
        }
    }

    /// Executes over `inputs` into `outs`, serially, with fresh scratch.
    pub fn execute(&self, inputs: &[&[f64]], outs: &mut [&mut [f64]]) {
        let range = self.range.clone();
        self.execute_rows(inputs, outs, &range, &mut ExecScratch::new());
    }

    /// Executes with `threads` scoped workers, chunking the longest
    /// dimension (see [`crate::program::split_longest_dim`]).
    pub fn execute_parallel(&self, inputs: &[&[f64]], outs: &mut [&mut [f64]], threads: usize) {
        let subs = crate::program::split_longest_dim(&self.range, threads);
        if threads <= 1 || subs.len() <= 1 {
            self.execute(inputs, outs);
            return;
        }
        crate::program::scoped_parallel(subs, outs, |sub, outs| {
            self.execute_rows(inputs, outs, sub, &mut ExecScratch::new());
        });
    }

    /// Executes rows of `range` (a sub-range of `self.range`) through the
    /// selected tier, reusing `scratch`.
    ///
    /// # Panics
    /// Panics if buffer lengths don't cover the displacements the kernel
    /// loads/stores over `range`.
    pub fn execute_rows(
        &self,
        inputs: &[&[f64]],
        outs: &mut [&mut [f64]],
        range: &Bounds,
        scratch: &mut ExecScratch,
    ) {
        if range.0.iter().any(|&(lb, ub)| ub <= lb) {
            return;
        }
        match &self.tier {
            Tier::Eval => self.kernel.execute_rows(inputs, outs, range, scratch),
            Tier::OptBytecode(opt) => {
                self.validate(inputs, outs, range, &opt.rel_bounds);
                scratch.ensure(
                    opt.num_regs as usize,
                    0,
                    self.inputs.len(),
                    self.outputs.len(),
                    range.rank(),
                );
                for &(r, v) in &opt.preinit {
                    scratch.regs[r as usize] = v;
                }
                crate::program::preload_scalars(&opt.scalar_regs, scratch);
                walk_rows(&self.kernel, range, scratch, |sc, len| unsafe {
                    for x in 0..len {
                        opt.eval(inputs, &sc.flats, &sc.point, x, &mut sc.regs);
                        for (o, &reg) in opt.outputs.iter().enumerate() {
                            *outs[o].get_unchecked_mut((sc.out_flats[o] + x) as usize) =
                                *sc.regs.get_unchecked(reg as usize);
                        }
                    }
                });
            }
            Tier::WeightedSum(ws) => {
                self.validate(inputs, outs, range, &ws.rel_bounds);
                let last = range.rank() - 1;
                let row_len = range.0[last].1 - range.0[last].0;
                let const_base = ws.taps.len() + ws.index_taps.len();
                if row_len <= WS_SCALAR_MAX_ROW {
                    // Narrow rows (boundary shells of overlapped
                    // exchanges): scalar per-point evaluation over a
                    // flat slot array.
                    scratch.ensure(
                        0,
                        ws.slot_count(),
                        self.inputs.len(),
                        self.outputs.len(),
                        range.rank(),
                    );
                    for (k, &v) in ws.consts.iter().enumerate() {
                        scratch.slots[const_base + k] = v;
                    }
                    walk_rows(&self.kernel, range, scratch, |sc, len| unsafe {
                        ws.eval_row_scalar(
                            inputs,
                            &sc.flats,
                            outs,
                            &sc.out_flats,
                            &sc.point,
                            len,
                            &mut sc.slots,
                        );
                    });
                    return;
                }
                scratch.ensure(
                    0,
                    ws.slot_count() * WS_TILE,
                    self.inputs.len(),
                    self.outputs.len(),
                    range.rank(),
                );
                // Broadcast the loop-invariant consts into their tile
                // rows once per chunk.
                for (k, &v) in ws.consts.iter().enumerate() {
                    let at = (const_base + k) * WS_TILE;
                    scratch.slots[at..at + WS_TILE].fill(v);
                }
                walk_rows(&self.kernel, range, scratch, |sc, len| unsafe {
                    ws.eval_row(
                        inputs,
                        &sc.flats,
                        outs,
                        &sc.out_flats,
                        &sc.point,
                        len,
                        &mut sc.slots,
                    );
                });
            }
            Tier::TemplateJit(jit) => {
                self.validate(inputs, outs, range, &jit.rel_bounds);
                // No slot scratch: the fused micro-kernels keep all
                // intermediates in registers.
                scratch.ensure(0, 0, self.inputs.len(), self.outputs.len(), range.rank());
                walk_rows(&self.kernel, range, scratch, |sc, len| unsafe {
                    jit.eval_row(inputs, &sc.flats, outs, &sc.out_flats, len);
                });
            }
        }
    }

    /// Validates, once per chunk, that every flat index the unchecked
    /// tiers will form over `range` is in bounds — the strides are
    /// positive, so corners bound the whole range.
    fn validate(
        &self,
        inputs: &[&[f64]],
        outs: &[&mut [f64]],
        range: &Bounds,
        rel_bounds: &[Option<(i64, i64)>],
    ) {
        let lower = range.lower();
        let upper: Vec<i64> = range.0.iter().map(|&(_, ub)| ub - 1).collect();
        for (i, desc) in self.inputs.iter().enumerate() {
            let Some((rel_min, rel_max)) = rel_bounds.get(i).copied().flatten() else {
                continue;
            };
            let lo = desc.flat(&lower) + rel_min;
            let hi = desc.flat(&upper) + rel_max;
            assert!(
                lo >= 0 && hi < inputs[i].len() as i64,
                "input {i}: flat range [{lo}, {hi}] outside buffer of {} elements",
                inputs[i].len()
            );
        }
        for (o, desc) in self.outputs.iter().enumerate() {
            let lo = desc.flat(&lower);
            let hi = desc.flat(&upper);
            assert!(
                lo >= 0 && hi < outs[o].len() as i64,
                "output {o}: flat range [{lo}, {hi}] outside buffer of {} elements",
                outs[o].len()
            );
        }
    }
}

/// Drives `row(scratch, row_len)` over every stride-1 row of `range`,
/// with the row-start coordinate in `scratch.point` and the row-start
/// flat cursors in `scratch.flats`/`scratch.out_flats`. Monomorphized
/// loops for ranks 1–3; generic odometer above.
#[inline]
fn walk_rows<F>(kernel: &CompiledKernel, range: &Bounds, scratch: &mut ExecScratch, mut row: F)
where
    F: FnMut(&mut ExecScratch, i64),
{
    let rank = range.rank();
    debug_assert!(rank >= 1);
    let last = rank - 1;
    let (last_lb, last_ub) = range.0[last];
    let len = last_ub - last_lb;
    if len <= 0 {
        return;
    }
    let fill = |sc: &mut ExecScratch, kernel: &CompiledKernel| {
        for (i, d) in kernel.inputs.iter().enumerate() {
            sc.flats[i] = d.flat(&sc.point);
        }
        for (i, d) in kernel.outputs.iter().enumerate() {
            sc.out_flats[i] = d.flat(&sc.point);
        }
    };
    match rank {
        1 => {
            scratch.point[0] = last_lb;
            fill(scratch, kernel);
            row(scratch, len);
        }
        2 => {
            let (lb0, ub0) = range.0[0];
            for i in lb0..ub0 {
                scratch.point[0] = i;
                scratch.point[1] = last_lb;
                fill(scratch, kernel);
                row(scratch, len);
            }
        }
        3 => {
            let (lb0, ub0) = range.0[0];
            let (lb1, ub1) = range.0[1];
            for i in lb0..ub0 {
                for j in lb1..ub1 {
                    scratch.point[0] = i;
                    scratch.point[1] = j;
                    scratch.point[2] = last_lb;
                    fill(scratch, kernel);
                    row(scratch, len);
                }
            }
        }
        _ => {
            for d in 0..rank {
                scratch.point[d] = range.0[d].0;
            }
            loop {
                scratch.point[last] = last_lb;
                fill(scratch, kernel);
                row(scratch, len);
                let mut d = last;
                let mut done = false;
                loop {
                    if d == 0 {
                        done = true;
                        break;
                    }
                    d -= 1;
                    scratch.point[d] += 1;
                    if scratch.point[d] < range.0[d].1 {
                        break;
                    }
                    scratch.point[d] = range.0[d].0;
                }
                if done {
                    return;
                }
            }
        }
    }
}

/// Builds the [`OptProgram`] for a kernel: value-numbering CSE over
/// `LoadInput`/`Const`/`Index`, constant folding of `Const ⊕ Const` and
/// `-Const` (computed with the identical f64 operation at build time),
/// dead-code elimination, and hoisting of the surviving constants into
/// the pre-initialized register file. No expression is reassociated.
fn optimize(kernel: &CompiledKernel) -> OptProgram {
    let p = &kernel.program;
    // Pass 1: value-number into a new instruction list.
    let mut map: HashMap<u32, u32> = HashMap::new(); // old reg -> new reg
    let mut const_vn: HashMap<u64, u32> = HashMap::new(); // f64 bits -> new reg
    let mut load_vn: HashMap<(u32, i64), u32> = HashMap::new();
    let mut index_vn: HashMap<(u8, i64), u32> = HashMap::new();
    let mut const_val: HashMap<u32, f64> = HashMap::new(); // new reg -> value
    let mut instrs: Vec<Instr> = Vec::new();
    let mut next: u32 = 0;
    // Runtime scalar registers have no defining instruction: give them
    // stable value numbers up front so operand lookups resolve.
    let mut scalar_vn: Vec<u32> = Vec::new();
    for &sr in &p.scalar_regs {
        let d = next;
        next += 1;
        map.insert(sr, d);
        scalar_vn.push(d);
    }
    let intern_const = |v: f64,
                        const_vn: &mut HashMap<u64, u32>,
                        const_val: &mut HashMap<u32, f64>,
                        instrs: &mut Vec<Instr>,
                        next: &mut u32|
     -> u32 {
        *const_vn.entry(v.to_bits()).or_insert_with(|| {
            let dst = *next;
            *next += 1;
            instrs.push(Instr::Const { v, dst });
            const_val.insert(dst, v);
            dst
        })
    };
    for instr in &p.instrs {
        match *instr {
            Instr::Const { v, dst } => {
                let r = intern_const(v, &mut const_vn, &mut const_val, &mut instrs, &mut next);
                map.insert(dst, r);
            }
            Instr::LoadInput { input, rel, dst } => {
                let r = *load_vn.entry((input, rel)).or_insert_with(|| {
                    let d = next;
                    next += 1;
                    instrs.push(Instr::LoadInput { input, rel, dst: d });
                    d
                });
                map.insert(dst, r);
            }
            Instr::Index { dim, offset, dst } => {
                let r = *index_vn.entry((dim, offset)).or_insert_with(|| {
                    let d = next;
                    next += 1;
                    instrs.push(Instr::Index { dim, offset, dst: d });
                    d
                });
                map.insert(dst, r);
            }
            Instr::Bin { op, a, b, dst } => {
                let (a, b) = (map[&a], map[&b]);
                if let (Some(&ca), Some(&cb)) = (const_val.get(&a), const_val.get(&b)) {
                    let r = intern_const(
                        op.eval(ca, cb),
                        &mut const_vn,
                        &mut const_val,
                        &mut instrs,
                        &mut next,
                    );
                    map.insert(dst, r);
                } else {
                    let d = next;
                    next += 1;
                    instrs.push(Instr::Bin { op, a, b, dst: d });
                    map.insert(dst, d);
                }
            }
            Instr::Neg { a, dst } => {
                let a = map[&a];
                if let Some(&ca) = const_val.get(&a) {
                    let r =
                        intern_const(-ca, &mut const_vn, &mut const_val, &mut instrs, &mut next);
                    map.insert(dst, r);
                } else {
                    let d = next;
                    next += 1;
                    instrs.push(Instr::Neg { a, dst: d });
                    map.insert(dst, d);
                }
            }
        }
    }
    let outputs: Vec<u32> = p.outputs.iter().map(|r| map[r]).collect();

    // Pass 2: dead-code elimination (backwards liveness).
    let mut live = vec![false; next as usize];
    for &o in &outputs {
        live[o as usize] = true;
    }
    for instr in instrs.iter().rev() {
        let (dst, ops) = instr_uses(instr);
        if live[dst as usize] {
            for o in ops {
                live[o as usize] = true;
            }
        }
    }
    // Pass 3: compact renumbering, splitting consts into preinit.
    let mut renum = vec![u32::MAX; next as usize];
    let mut num_regs: u32 = 0;
    let mut out_instrs = Vec::new();
    let mut preinit = Vec::new();
    let mut has_index = false;
    let mut rel_bounds: Vec<Option<(i64, i64)>> = vec![None; kernel.inputs.len()];
    // Scalar registers survive unconditionally (index-aligned with the
    // kernel's `scalar_args`) and are preloaded like hoisted consts.
    let mut scalar_regs = Vec::with_capacity(scalar_vn.len());
    for &sr in &scalar_vn {
        let d = num_regs;
        num_regs += 1;
        renum[sr as usize] = d;
        scalar_regs.push(d);
    }
    for instr in &instrs {
        let (dst, _) = instr_uses(instr);
        if !live[dst as usize] {
            continue;
        }
        let d = num_regs;
        num_regs += 1;
        renum[dst as usize] = d;
        match *instr {
            Instr::Const { v, .. } => preinit.push((d, v)),
            Instr::LoadInput { input, rel, .. } => {
                let e = rel_bounds[input as usize].get_or_insert((rel, rel));
                e.0 = e.0.min(rel);
                e.1 = e.1.max(rel);
                out_instrs.push(Instr::LoadInput { input, rel, dst: d });
            }
            Instr::Index { dim, offset, .. } => {
                has_index = true;
                out_instrs.push(Instr::Index { dim, offset, dst: d });
            }
            Instr::Bin { op, a, b, .. } => out_instrs.push(Instr::Bin {
                op,
                a: renum[a as usize],
                b: renum[b as usize],
                dst: d,
            }),
            Instr::Neg { a, .. } => out_instrs.push(Instr::Neg { a: renum[a as usize], dst: d }),
        }
    }
    let outputs = outputs.iter().map(|&o| renum[o as usize]).collect();
    OptProgram {
        instrs: out_instrs,
        preinit,
        scalar_regs,
        num_regs,
        outputs,
        has_index,
        rel_bounds,
    }
}

fn instr_uses(instr: &Instr) -> (u32, Vec<u32>) {
    match *instr {
        Instr::Const { dst, .. } | Instr::LoadInput { dst, .. } | Instr::Index { dst, .. } => {
            (dst, vec![])
        }
        Instr::Bin { a, b, dst, .. } => (dst, vec![a, b]),
        Instr::Neg { a, dst } => (dst, vec![a]),
    }
}

/// What a register holds during weighted-sum matching.
#[derive(Copy, Clone, Debug)]
enum WsVal {
    Tap(u16),
    Ix(u16),
    Const(f64),
    Node(u16),
}

/// Tries to match the optimized program as a weighted sum of taps:
/// every output an affine function of its loads and index values (every
/// multiplication has a constant operand, every division a constant
/// divisor). Horizontally fused multi-output applies and `Index`-using
/// kernels qualify — `Index` values become dedicated slots filled per
/// tile. The combine schedule preserves the bytecode's exact
/// association; a single-output pure left-fold additionally gets the
/// chain fast path.
fn match_weighted_sum(opt: &OptProgram) -> Option<WsProgram> {
    // Runtime scalars are loop-invariant but not known at specialization
    // time, so they can't fuse into a constant tap table — such kernels
    // gracefully fall back to the opt-bytecode tier.
    if opt.outputs.is_empty() || !opt.scalar_regs.is_empty() {
        return None;
    }
    // Use counts decide whether a `const * load` can fuse into the tap.
    let mut uses = vec![0usize; opt.num_regs as usize];
    for instr in &opt.instrs {
        for o in instr_uses(instr).1 {
            uses[o as usize] += 1;
        }
    }
    for &o in &opt.outputs {
        uses[o as usize] += 1;
    }
    let consts: HashMap<u32, f64> = opt.preinit.iter().map(|&(r, v)| (r, v)).collect();
    let mut vals: HashMap<u32, WsVal> = HashMap::new();
    for (&r, &v) in &consts {
        vals.insert(r, WsVal::Const(v));
    }
    let mut taps: Vec<WsTap> = Vec::new();
    let mut tap_of_reg: HashMap<u32, u16> = HashMap::new(); // load reg -> tap
    let mut index_taps: Vec<(u8, i64)> = Vec::new();
    let mut const_slots: Vec<f64> = Vec::new();
    let mut const_slot_vn: HashMap<u64, u16> = HashMap::new();
    let mut nodes: Vec<WsNode> = Vec::new();
    // Slot ids are only final once the tap/index/const counts are known,
    // so collect symbolic slots first.
    #[derive(Copy, Clone, PartialEq)]
    enum Slot {
        Tap(u16),
        Ix(u16),
        Const(u16),
        Node(u16),
    }
    let mut node_ops: Vec<(WsNode, [Slot; 2])> = Vec::new(); // ops resolved later
    let slot_of =
        |v: WsVal, const_slots: &mut Vec<f64>, const_slot_vn: &mut HashMap<u64, u16>| -> Slot {
            match v {
                WsVal::Tap(t) => Slot::Tap(t),
                WsVal::Ix(i) => Slot::Ix(i),
                WsVal::Node(n) => Slot::Node(n),
                WsVal::Const(c) => {
                    let id = *const_slot_vn.entry(c.to_bits()).or_insert_with(|| {
                        const_slots.push(c);
                        (const_slots.len() - 1) as u16
                    });
                    Slot::Const(id)
                }
            }
        };
    for instr in &opt.instrs {
        match *instr {
            Instr::LoadInput { input, rel, dst } => {
                let t = taps.len() as u16;
                taps.push(WsTap { input, rel, coeff: 1.0, coeff_left: false, scaled: false });
                tap_of_reg.insert(dst, t);
                vals.insert(dst, WsVal::Tap(t));
            }
            Instr::Index { dim, offset, dst } => {
                // The opt pass already deduped identical `Index`
                // instructions, so each one gets a fresh slot.
                let i = index_taps.len() as u16;
                index_taps.push((dim, offset));
                vals.insert(dst, WsVal::Ix(i));
            }
            Instr::Bin { op, a, b, dst } => {
                let va = *vals.get(&a)?;
                let vb = *vals.get(&b)?;
                match op {
                    BinOp::Mul => match (va, vb) {
                        (WsVal::Const(c), WsVal::Tap(t))
                            if uses[b as usize] == 1
                                && !taps[t as usize].scaled
                                && tap_of_reg.get(&b) == Some(&t) =>
                        {
                            taps[t as usize].coeff = c;
                            taps[t as usize].coeff_left = true;
                            taps[t as usize].scaled = true;
                            vals.insert(dst, WsVal::Tap(t));
                        }
                        (WsVal::Tap(t), WsVal::Const(c))
                            if uses[a as usize] == 1
                                && !taps[t as usize].scaled
                                && tap_of_reg.get(&a) == Some(&t) =>
                        {
                            taps[t as usize].coeff = c;
                            taps[t as usize].coeff_left = false;
                            taps[t as usize].scaled = true;
                            vals.insert(dst, WsVal::Tap(t));
                        }
                        (WsVal::Const(_), _) | (_, WsVal::Const(_)) => {
                            let sa = slot_of(va, &mut const_slots, &mut const_slot_vn);
                            let sb = slot_of(vb, &mut const_slots, &mut const_slot_vn);
                            let n = node_ops.len() as u16;
                            node_ops.push((WsNode::Bin { op, a: 0, b: 0 }, [sa, sb]));
                            vals.insert(dst, WsVal::Node(n));
                        }
                        // load * load etc. is not a weighted sum.
                        _ => return None,
                    },
                    BinOp::Div => {
                        // Only a constant divisor keeps the kernel affine.
                        let WsVal::Const(_) = vb else { return None };
                        if matches!(va, WsVal::Const(_)) {
                            return None; // folded already; be conservative
                        }
                        let sa = slot_of(va, &mut const_slots, &mut const_slot_vn);
                        let sb = slot_of(vb, &mut const_slots, &mut const_slot_vn);
                        let n = node_ops.len() as u16;
                        node_ops.push((WsNode::Bin { op, a: 0, b: 0 }, [sa, sb]));
                        vals.insert(dst, WsVal::Node(n));
                    }
                    BinOp::Add | BinOp::Sub => {
                        let sa = slot_of(va, &mut const_slots, &mut const_slot_vn);
                        let sb = slot_of(vb, &mut const_slots, &mut const_slot_vn);
                        let n = node_ops.len() as u16;
                        node_ops.push((WsNode::Bin { op, a: 0, b: 0 }, [sa, sb]));
                        vals.insert(dst, WsVal::Node(n));
                    }
                }
            }
            Instr::Neg { a, dst } => {
                let va = *vals.get(&a)?;
                let sa = slot_of(va, &mut const_slots, &mut const_slot_vn);
                let n = node_ops.len() as u16;
                node_ops.push((WsNode::Neg { a: 0 }, [sa, sa]));
                vals.insert(dst, WsVal::Node(n));
            }
            Instr::Const { .. } => return None,
        }
    }
    if taps.len() > 2000
        || index_taps.len() > 2000
        || node_ops.len() > 2000
        || const_slots.len() > 2000
    {
        return None; // keep slot ids comfortably within u16
    }
    // Intern every output into a symbolic slot first (a pure-constant
    // output may still grow the const table), then resolve: taps, then
    // index slots, then consts, then nodes.
    let out_slots: Vec<Slot> = opt
        .outputs
        .iter()
        .map(|r| vals.get(r).map(|&v| slot_of(v, &mut const_slots, &mut const_slot_vn)))
        .collect::<Option<_>>()?;
    let tap_n = taps.len() as u16;
    let index_n = index_taps.len() as u16;
    let const_n = const_slots.len() as u16;
    let resolve = |s: Slot| -> u16 {
        match s {
            Slot::Tap(t) => t,
            Slot::Ix(i) => tap_n + i,
            Slot::Const(c) => tap_n + index_n + c,
            Slot::Node(n) => tap_n + index_n + const_n + n,
        }
    };
    for (node, ops) in &node_ops {
        let n = match *node {
            WsNode::Bin { op, .. } => WsNode::Bin { op, a: resolve(ops[0]), b: resolve(ops[1]) },
            WsNode::Neg { .. } => WsNode::Neg { a: resolve(ops[0]) },
        };
        nodes.push(n);
    }
    let outs: Vec<u16> = out_slots.into_iter().map(resolve).collect();

    // Chain detection (single-output, index-free kernels only): a
    // consts-free fold `((tap ⊕ tap) ⊕ tap) ⊕ …` whose last node is the
    // output.
    let mut chain = None;
    let mut chain_first = 0u16;
    let single_out = outs.len() == 1 && index_taps.is_empty();
    let out0 = outs.first().copied().unwrap_or(u16::MAX);
    if single_out
        && const_slots.is_empty()
        && !nodes.is_empty()
        && out0 == tap_n + (nodes.len() as u16 - 1)
        && taps.len() >= 2
    {
        let is_tap = |s: u16| s < tap_n;
        let mut fold: Vec<(BinOp, u16, bool)> = Vec::new();
        let mut ok = true;
        for (k, n) in nodes.iter().enumerate() {
            let WsNode::Bin { op, a, b } = *n else {
                ok = false;
                break;
            };
            if !matches!(op, BinOp::Add | BinOp::Sub) {
                ok = false;
                break;
            }
            if k == 0 {
                if is_tap(a) && is_tap(b) {
                    chain_first = a;
                    fold.push((op, b, true));
                } else {
                    ok = false;
                    break;
                }
            } else {
                let prev = tap_n + (k as u16 - 1);
                if a == prev && is_tap(b) {
                    fold.push((op, b, true));
                } else if b == prev && is_tap(a) {
                    fold.push((op, a, false));
                } else {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            chain = Some(fold);
        }
    } else if single_out && nodes.is_empty() && const_slots.is_empty() && out0 < tap_n {
        // Single-tap kernel: a zero-entry fold.
        chain = Some(Vec::new());
        chain_first = out0;
    }
    Some(WsProgram {
        rel_bounds: opt.rel_bounds.clone(),
        taps,
        index_taps,
        consts: const_slots,
        nodes,
        outs,
        chain,
        chain_first,
    })
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::program::{compile_apply, InputDesc};
    use std::collections::HashMap as Map;
    use sten_ir::Pass as _;

    pub(crate) fn kernel_of(
        module: &mut sten_ir::Module,
        func: &str,
        desc: InputDesc,
    ) -> CompiledKernel {
        sten_stencil::ShapeInference.run(module).unwrap();
        let f = module.lookup_symbol(func).unwrap();
        let apply = f.region_block(0).ops.iter().find(|o| o.name == "stencil.apply").unwrap();
        compile_apply(
            apply,
            &module.values,
            vec![Some(desc.clone())],
            vec![desc],
            &Map::new(),
            &Map::new(),
        )
        .unwrap()
    }

    /// `arith.*f` body op without pulling in the dialect crate.
    fn binf(
        vt: &mut sten_ir::ValueTable,
        name: &str,
        a: sten_ir::Value,
        b: sten_ir::Value,
    ) -> sten_ir::Op {
        let mut op = sten_ir::Op::new(name);
        op.operands = vec![a, b];
        op.results.push(vt.alloc(sten_ir::Type::F64));
        op
    }

    #[test]
    fn jacobi_specializes_to_weighted_sum_chain() {
        let mut m = sten_stencil::samples::jacobi_1d(64);
        let k = kernel_of(&mut m, "jacobi", InputDesc::new(vec![64], vec![0]));
        let spec = SpecializedKernel::specialize(k, Some(TierKind::WeightedSum));
        assert_eq!(spec.tier_kind(), TierKind::WeightedSum);
        let Tier::WeightedSum(ws) = &spec.tier else { panic!() };
        assert_eq!(ws.taps.len(), 3);
        assert!(ws.chain.is_some(), "jacobi folds left-to-right: {ws:?}");
    }

    #[test]
    fn heat_specializes_to_weighted_sum_tree() {
        let mut m = sten_stencil::samples::heat_2d(16, 0.1);
        let k = kernel_of(&mut m, "heat", InputDesc::new(vec![18, 18], vec![-1, -1]));
        let spec = SpecializedKernel::specialize(k, Some(TierKind::WeightedSum));
        assert_eq!(spec.tier_kind(), TierKind::WeightedSum);
        let Tier::WeightedSum(ws) = &spec.tier else { panic!() };
        assert_eq!(ws.taps.len(), 5, "5-point star");
        assert!(ws.chain.is_none(), "heat's (l+r)+(u+d) association is a tree");
    }

    #[test]
    fn auto_selection_prefers_template_jit() {
        let mut m = sten_stencil::samples::jacobi_1d(64);
        let k = kernel_of(&mut m, "jacobi", InputDesc::new(vec![64], vec![0]));
        let spec = SpecializedKernel::specialize(k, None);
        assert_eq!(spec.tier_kind(), TierKind::TemplateJit);
        assert!(
            spec.tier_label().starts_with("template-jit (3 taps, chain<3>"),
            "{}",
            spec.tier_label()
        );

        let mut m = sten_stencil::samples::heat_2d(16, 0.1);
        let k = kernel_of(&mut m, "heat", InputDesc::new(vec![18, 18], vec![-1, -1]));
        let spec = SpecializedKernel::specialize(k, None);
        assert_eq!(spec.tier_kind(), TierKind::TemplateJit);
    }

    #[test]
    fn all_tiers_bit_identical_on_heat() {
        let n = 20i64;
        let mut m = sten_stencil::samples::heat_2d(n, 0.1);
        let d = InputDesc::new(vec![n + 2, n + 2], vec![-1, -1]);
        let k = kernel_of(&mut m, "heat", d);
        let size = ((n + 2) * (n + 2)) as usize;
        let input: Vec<f64> = (0..size).map(|i| (i as f64 * 0.013).sin()).collect();
        let mut want = vec![0.0; size];
        k.execute(&[&input], &mut [&mut want]);
        for tier in
            [TierKind::Eval, TierKind::OptBytecode, TierKind::WeightedSum, TierKind::TemplateJit]
        {
            let spec = SpecializedKernel::specialize(k.clone(), Some(tier));
            assert_eq!(spec.tier_kind(), tier);
            let mut got = vec![0.0; size];
            spec.execute(&[&input], &mut [&mut got]);
            assert_eq!(got, want, "tier {}", tier.name());
            let mut par = vec![0.0; size];
            spec.execute_parallel(&[&input], &mut [&mut par], 3);
            assert_eq!(par, want, "tier {} parallel", tier.name());
        }
    }

    #[test]
    fn fused_two_output_apply_selects_weighted_sum() {
        use sten_ir::{Attribute, TempType, Type};
        // A horizontally fused apply (two results over one input), as
        // stencil-horizontal-fusion produces: out0 = l + r, out1 = l - r.
        let mut m = sten_ir::Module::new();
        let temp = m.values.alloc(Type::Temp(TempType::unknown(1, Type::F64)));
        let mut apply = sten_stencil::ops::apply(
            &mut m.values,
            vec![temp],
            vec![
                Type::Temp(TempType::unknown(1, Type::F64)),
                Type::Temp(TempType::unknown(1, Type::F64)),
            ],
            |vt, a| {
                let l = sten_stencil::ops::access(vt, a[0], vec![-1]);
                let r = sten_stencil::ops::access(vt, a[0], vec![1]);
                let s = binf(vt, "arith.addf", l.result(0), r.result(0));
                let d = binf(vt, "arith.subf", l.result(0), r.result(0));
                let (sum_v, diff_v) = (s.result(0), d.result(0));
                vec![l, r, s, d, sten_stencil::ops::ret(vec![sum_v, diff_v])]
            },
        );
        apply.set_attr("lb", Attribute::DenseI64(vec![1]));
        apply.set_attr("ub", Attribute::DenseI64(vec![31]));
        let desc = InputDesc::new(vec![32], vec![0]);
        let kernel = compile_apply(
            &apply,
            &m.values,
            vec![Some(desc.clone())],
            vec![desc.clone(), desc],
            &Map::new(),
            &Map::new(),
        )
        .unwrap();

        // The multi-output matcher accepts it (it used to fall back to
        // opt-bytecode).
        let spec = SpecializedKernel::specialize(kernel.clone(), Some(TierKind::WeightedSum));
        assert_eq!(spec.tier_kind(), TierKind::WeightedSum);
        let Tier::WeightedSum(ws) = &spec.tier else { panic!() };
        assert_eq!(ws.outs.len(), 2);
        assert_eq!(ws.taps.len(), 2, "both outputs share the two taps");

        // Bit-identical to eval on both outputs, on every tier.
        let input: Vec<f64> = (0..32).map(|i| (i as f64 * 0.17).sin()).collect();
        let mut want = (vec![0.0; 32], vec![0.0; 32]);
        kernel.execute(&[&input], &mut [&mut want.0, &mut want.1]);
        for tier in [TierKind::OptBytecode, TierKind::WeightedSum, TierKind::TemplateJit] {
            let spec = SpecializedKernel::specialize(kernel.clone(), Some(tier));
            let mut got = (vec![0.0; 32], vec![0.0; 32]);
            spec.execute(&[&input], &mut [&mut got.0, &mut got.1]);
            assert_eq!(got, want, "tier {}", tier.name());
        }
    }

    #[test]
    fn index_kernel_selects_weighted_sum() {
        use sten_ir::{Attribute, TempType, Type};
        // out = u[i,j] + (i+1) + j: one broadcast index slot (dim 0) and
        // one row-varying iota slot (dim 1).
        let mut m = sten_ir::Module::new();
        let temp = m.values.alloc(Type::Temp(TempType::unknown(2, Type::F64)));
        let mut apply = sten_stencil::ops::apply(
            &mut m.values,
            vec![temp],
            vec![Type::Temp(TempType::unknown(2, Type::F64))],
            |vt, a| {
                let c = sten_stencil::ops::access(vt, a[0], vec![0, 0]);
                let i0 = sten_stencil::ops::index(vt, 0, 1);
                let i1 = sten_stencil::ops::index(vt, 1, 0);
                let s0 = binf(vt, "arith.addf", c.result(0), i0.result(0));
                let s1 = binf(vt, "arith.addf", s0.result(0), i1.result(0));
                let out = s1.result(0);
                vec![c, i0, i1, s0, s1, sten_stencil::ops::ret(vec![out])]
            },
        );
        apply.set_attr("lb", Attribute::DenseI64(vec![0, 0]));
        apply.set_attr("ub", Attribute::DenseI64(vec![5, 40]));
        let desc = InputDesc::new(vec![5, 40], vec![0, 0]);
        let kernel = compile_apply(
            &apply,
            &m.values,
            vec![Some(desc.clone())],
            vec![desc],
            &Map::new(),
            &Map::new(),
        )
        .unwrap();

        // Index kernels used to fall back to opt-bytecode; the tile path
        // now fills index slots per tile.
        let spec = SpecializedKernel::specialize(kernel.clone(), Some(TierKind::WeightedSum));
        assert_eq!(spec.tier_kind(), TierKind::WeightedSum);
        let Tier::WeightedSum(ws) = &spec.tier else { panic!() };
        assert_eq!(ws.index_taps, vec![(0, 1), (1, 0)]);
        assert!(ws.chain.is_none(), "index kernels never take the chain path");

        // The template-JIT has no index micro-kernels: forcing it falls
        // back to weighted-sum.
        let spec = SpecializedKernel::specialize(kernel.clone(), Some(TierKind::TemplateJit));
        assert_eq!(spec.tier_kind(), TierKind::WeightedSum);

        let size = 5 * 40;
        let input: Vec<f64> = (0..size).map(|i| (i as f64 * 0.013).sin()).collect();
        let mut want = vec![0.0; size];
        kernel.execute(&[&input], &mut [&mut want]);
        for tier in [TierKind::OptBytecode, TierKind::WeightedSum] {
            let spec = SpecializedKernel::specialize(kernel.clone(), Some(tier));
            let mut got = vec![0.0; size];
            spec.execute(&[&input], &mut [&mut got]);
            assert_eq!(got, want, "tier {}", tier.name());
        }
        // Short rows take the scalar slot path — exercise it too.
        let sub = Bounds::new(vec![(0, 5), (12, 17)]);
        let mut got = vec![0.0; size];
        let spec = SpecializedKernel::specialize(kernel.clone(), Some(TierKind::WeightedSum));
        spec.execute_rows(&[&input], &mut [&mut got], &sub, &mut ExecScratch::new());
        let mut short_want = vec![0.0; size];
        kernel.execute_rows(&[&input], &mut [&mut short_want], &sub, &mut ExecScratch::new());
        assert_eq!(got, short_want);
    }

    #[test]
    fn opt_bytecode_hoists_and_dedupes() {
        let mut m = sten_stencil::samples::heat_2d(16, 0.1);
        let k = kernel_of(&mut m, "heat", InputDesc::new(vec![18, 18], vec![-1, -1]));
        let opt = optimize(&k);
        assert!(opt.preinit.len() >= 2, "4.0 and alpha hoisted");
        assert!(opt.instrs.iter().all(|i| !matches!(i, Instr::Const { .. })));
        assert!(opt.instrs.len() < k.program.instrs.len());
    }

    #[test]
    fn runtime_scalar_kernel_falls_back_from_weighted_sum() {
        use sten_ir::{Bounds, Type, Value};
        let n = 32i64;
        let full = Bounds::new(vec![(0, n)]);
        let mut m = sten_stencil::samples::axpy(full.clone(), full);
        sten_stencil::ShapeInference.run(&mut m).unwrap();
        let f = m.lookup_symbol("axpy").unwrap();
        let apply = f.region_block(0).ops.iter().find(|o| o.name == "stencil.apply").unwrap();
        let alpha: Value =
            *f.region_block(0).args.iter().find(|&&a| *m.values.ty(a) == Type::F64).unwrap();
        let slots: Map<Value, usize> = Map::from([(alpha, 0)]);
        let d = InputDesc::new(vec![n], vec![0]);
        let kernel = compile_apply(
            apply,
            &m.values,
            vec![Some(d.clone()), Some(d.clone()), None],
            vec![d],
            &Map::new(),
            &slots,
        )
        .unwrap();

        // Forcing weighted-sum (or the template-JIT above it) must fall
        // back: the coefficient isn't a compile-time constant.
        let spec = SpecializedKernel::specialize(kernel.clone(), Some(TierKind::WeightedSum));
        assert_eq!(spec.tier_kind(), TierKind::OptBytecode);
        let spec = SpecializedKernel::specialize(kernel.clone(), Some(TierKind::TemplateJit));
        assert_eq!(spec.tier_kind(), TierKind::OptBytecode);

        // All applicable tiers agree bit-for-bit with the reference.
        let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).sin()).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.47).cos()).collect();
        let mut scratch = ExecScratch::new();
        scratch.scalars = vec![0.37];
        let range = kernel.range.clone();
        let mut want = vec![0.0; n as usize];
        kernel.execute_rows(&[&a, &b], &mut [&mut want], &range, &mut scratch);
        for tier in [TierKind::Eval, TierKind::OptBytecode] {
            let spec = SpecializedKernel::specialize(kernel.clone(), Some(tier));
            let mut got = vec![0.0; n as usize];
            let mut scratch = ExecScratch::new();
            scratch.scalars = vec![0.37];
            spec.execute_rows(&[&a, &b], &mut [&mut got], &range, &mut scratch);
            assert_eq!(got, want, "tier {}", tier.name());
        }
    }

    #[test]
    fn tier_env_parse() {
        assert_eq!(TierKind::parse("auto").unwrap(), None);
        assert_eq!(TierKind::parse("eval").unwrap(), Some(TierKind::Eval));
        assert_eq!(TierKind::parse("weighted-sum").unwrap(), Some(TierKind::WeightedSum));
        assert_eq!(TierKind::parse("template-jit").unwrap(), Some(TierKind::TemplateJit));
        assert_eq!(TierKind::parse("jit").unwrap(), Some(TierKind::TemplateJit));
        assert!(TierKind::parse("nope").is_err());
    }
}
