//! Checkpoint/restart: self-healing distributed execution.
//!
//! A cohort of ranks snapshots its owned state every `N` timesteps into
//! a content-addressed [`CheckpointStore`]; when a rank crashes (an
//! injected [`FaultAction::RankCrash`], or any error that poisons the
//! world), [`run_resilient`] respawns the cohort on a **fresh**
//! [`SimWorld`] — empty mailboxes are a clean global cut — and rolls
//! every rank back to the latest *consistent* checkpoint (the newest
//! step at which every rank deposited a snapshot). The same
//! [`FaultPlan`] is carried across attempts: its fire-once flags
//! guarantee the crash that triggered the rollback cannot re-fire during
//! the replay, so the cohort makes forward progress.
//!
//! [`FaultAction::RankCrash`]: sten_interp::FaultAction::RankCrash

use crate::pipeline::{ExecError, Pipeline, RankSnapshot, Runner};
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use sten_interp::{FaultPlan, MpiError, Reliability, SimWorld};
use sten_trace::{Counter, SpanKind, Tracer};

/// A content-addressed snapshot store: blobs are filed under the
/// FNV-1a-128 digest of their bytes (identical states — e.g. a field
/// that converged — are stored once), and an index maps `(step, rank)`
/// to the digest deposited there. Optionally backed by a directory,
/// where each blob lands as `<digest>.ckpt`.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    inner: Mutex<StoreInner>,
    disk: Option<PathBuf>,
}

#[derive(Debug, Default)]
struct StoreInner {
    blobs: HashMap<u128, Arc<Vec<u8>>>,
    by_step: BTreeMap<u64, HashMap<usize, u128>>,
}

impl CheckpointStore {
    /// An in-memory store.
    pub fn in_memory() -> CheckpointStore {
        CheckpointStore::default()
    }

    /// A store that additionally persists every new blob under `dir`.
    ///
    /// # Errors
    /// Reports a directory that cannot be created.
    pub fn on_disk(dir: impl Into<PathBuf>) -> std::io::Result<CheckpointStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { inner: Mutex::default(), disk: Some(dir) })
    }

    /// Deposits `rank`'s snapshot at its step. Returns the bytes newly
    /// stored — 0 when the content address already existed (dedup hit).
    pub fn put(&self, rank: usize, snap: &RankSnapshot) -> u64 {
        let bytes = snap.to_bytes();
        let digest = sten_ir::content_hash(&bytes);
        let mut inner = self.inner.lock().unwrap();
        inner.by_step.entry(snap.step).or_default().insert(rank, digest);
        if inner.blobs.contains_key(&digest) {
            return 0;
        }
        let stored = bytes.len() as u64;
        if let Some(dir) = &self.disk {
            // Best-effort persistence; the in-memory copy is
            // authoritative within a run.
            let _ = std::fs::write(dir.join(format!("{digest:032x}.ckpt")), &bytes);
        }
        inner.blobs.insert(digest, Arc::new(bytes));
        stored
    }

    /// The snapshot `rank` deposited at `step`, if any (falling back to
    /// the disk copy when the in-memory blob is gone).
    pub fn get(&self, step: u64, rank: usize) -> Option<RankSnapshot> {
        let (digest, blob) = {
            let inner = self.inner.lock().unwrap();
            let digest = *inner.by_step.get(&step)?.get(&rank)?;
            (digest, inner.blobs.get(&digest).cloned())
        };
        let bytes = match blob {
            Some(b) => b,
            None => {
                let dir = self.disk.as_ref()?;
                Arc::new(std::fs::read(dir.join(format!("{digest:032x}.ckpt"))).ok()?)
            }
        };
        RankSnapshot::from_bytes(&bytes).ok()
    }

    /// The newest step at which all `ranks` ranks deposited a snapshot —
    /// the rollback target of a recovery.
    pub fn latest_consistent(&self, ranks: usize) -> Option<u64> {
        let inner = self.inner.lock().unwrap();
        inner
            .by_step
            .iter()
            .rev()
            .find(|(_, per_rank)| (0..ranks).all(|r| per_rank.contains_key(&r)))
            .map(|(&step, _)| step)
    }

    /// Distinct blobs currently stored.
    pub fn num_blobs(&self) -> usize {
        self.inner.lock().unwrap().blobs.len()
    }

    /// Total bytes of distinct blobs currently stored.
    pub fn bytes_stored(&self) -> u64 {
        self.inner.lock().unwrap().blobs.values().map(|b| b.len() as u64).sum()
    }
}

/// Knobs for [`run_resilient`].
#[derive(Clone, Debug)]
pub struct ResilientConfig {
    /// Timesteps to execute.
    pub steps: u64,
    /// Checkpoint every this many steps (0 is treated as 1). The final
    /// step never checkpoints — the run is already over.
    pub checkpoint_interval: u64,
    /// Rollbacks tolerated before the driver gives up and reports the
    /// underlying error.
    pub max_recoveries: u32,
    /// Timeout/retry knobs for the reliable exchanges.
    pub reliability: Reliability,
    /// Worker threads per rank runner.
    pub threads: usize,
    /// Rotate each rank's argument buffers left by one after every step
    /// — the external time-marching convention (`src`/`dst` ping-pong,
    /// or an `nb`-buffer cycle). Snapshots capture the rotated state, so
    /// rollbacks restart with the right parity.
    pub rotate_args: bool,
}

impl Default for ResilientConfig {
    fn default() -> ResilientConfig {
        ResilientConfig {
            steps: 1,
            checkpoint_interval: 4,
            max_recoveries: 3,
            reliability: Reliability::default(),
            threads: 1,
            rotate_args: false,
        }
    }
}

/// What a [`run_resilient`] cohort did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResilientReport {
    /// Rollbacks performed.
    pub recoveries: u32,
    /// Checkpoint deposits across all ranks and attempts (the step-0
    /// baseline included).
    pub checkpoints: u64,
    /// Timesteps re-executed during recovery replays, summed over ranks.
    pub replayed_steps: u64,
}

/// Runs `cfg.steps` timesteps of `pipeline` across
/// `args_per_rank.len()` ranks with checkpoint/restart: each attempt
/// executes on a fresh fault-injected [`SimWorld`] (same `plan`, so
/// fired faults stay fired), every rank checkpoints into `store` each
/// `checkpoint_interval` steps behind a collective digest barrier, and
/// an injected crash rolls the whole cohort back to the latest
/// consistent checkpoint. On success `args_per_rank` holds each rank's
/// final owned state — bit-identical to a fault-free run.
///
/// # Errors
/// Returns the underlying [`ExecError`] when the recovery budget is
/// exhausted or a non-recoverable error (shape mismatch, retry-budget
/// exhaustion that no crash explains) surfaces.
///
/// # Panics
/// Panics if `args_per_rank` is empty.
pub fn run_resilient(
    pipeline: &Pipeline,
    args_per_rank: &mut [Vec<Vec<f64>>],
    plan: Arc<FaultPlan>,
    store: &CheckpointStore,
    cfg: &ResilientConfig,
    tracer: &Tracer,
) -> Result<ResilientReport, ExecError> {
    let ranks = args_per_rank.len();
    assert!(ranks > 0, "run_resilient needs at least one rank");
    let interval = cfg.checkpoint_interval.max(1);
    let mut report = ResilientReport::default();

    // The step-0 baseline: a rollback target that always exists, taken
    // before any step (and any fault) executes.
    for (rank, args) in args_per_rank.iter().enumerate() {
        let mut snap = RankSnapshot {
            step: 0,
            args: args.clone(),
            scalar_slots: vec![0.0; pipeline.num_slots],
            digest: 0,
        };
        snap.digest = sten_ir::content_hash(&snap.to_bytes());
        store.put(rank, &snap);
        report.checkpoints += 1;
    }

    let mut recoveries = 0u32;
    loop {
        let start =
            store.latest_consistent(ranks).expect("the step-0 baseline checkpoint always exists");
        if recoveries > 0 {
            report.replayed_steps += (cfg.steps - start) * ranks as u64;
        }
        let world = SimWorld::new_resilient(
            ranks,
            std::time::Duration::ZERO,
            tracer.clone(),
            Some(plan.clone()),
            Some(cfg.reliability.clone()),
        );
        let checkpoints = std::sync::atomic::AtomicU64::new(0);
        let results: Vec<Result<(), ExecError>> = std::thread::scope(|s| {
            let handles: Vec<_> = args_per_rank
                .iter_mut()
                .enumerate()
                .map(|(rank, args)| {
                    let world = Arc::clone(&world);
                    let pipeline = pipeline.clone();
                    let checkpoints = &checkpoints;
                    s.spawn(move || -> Result<(), ExecError> {
                        let mut runner =
                            Runner::new(pipeline, cfg.threads).with_trace(tracer, rank as u32);
                        let snap = store.get(start, rank).ok_or_else(|| {
                            ExecError::Exec(format!(
                                "rank {rank}: no checkpoint at step {start} to restore from"
                            ))
                        })?;
                        runner.restore(args, &snap);
                        for step in start..cfg.steps {
                            runner.step_distributed_checked(args, &world, rank as i64)?;
                            if cfg.rotate_args {
                                args.rotate_left(1);
                            }
                            if (step + 1) % interval == 0 && step + 1 < cfg.steps {
                                let t0 = tracer.now();
                                let snap = runner.snapshot(args);
                                store.put(rank, &snap);
                                // Checkpoint barrier: exchanging the
                                // digest certifies every rank deposited
                                // this step before anyone advances —
                                // the step becomes a consistent cut.
                                let wire = vec![
                                    f64::from_bits(snap.digest as u64),
                                    f64::from_bits((snap.digest >> 64) as u64),
                                ];
                                world.exchange_all(rank, wire).map_err(|e| {
                                    world.poison(rank as i32, e.to_string());
                                    ExecError::Mpi(e)
                                })?;
                                checkpoints.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                tracer.count(Counter::Checkpoints, 1);
                                let bytes =
                                    8 * snap.args.iter().map(Vec::len).sum::<usize>() as u64;
                                tracer.record_span(rank as u32, 0, t0, || SpanKind::Checkpoint {
                                    step: snap.step,
                                    bytes,
                                });
                            }
                        }
                        Ok(())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("rank thread panicked")).collect()
        });
        report.checkpoints += checkpoints.into_inner();
        if results.iter().all(Result::is_ok) {
            return Ok(report);
        }
        // A crash is recoverable by rollback; anything else propagates.
        let mut errs: Vec<ExecError> = results.into_iter().filter_map(Result::err).collect();
        let recoverable = errs.iter().any(|e| matches!(e, ExecError::InjectedCrash { .. }));
        if !recoverable || recoveries >= cfg.max_recoveries {
            // Report the root cause, not the poison it spread to peers.
            let root = errs
                .iter()
                .position(|e| !matches!(e, ExecError::Mpi(MpiError::Poisoned { .. })))
                .unwrap_or(0);
            return Err(errs.swap_remove(root));
        }
        recoveries += 1;
        report.recoveries = recoveries;
        let t0 = tracer.now();
        let back_to = store.latest_consistent(ranks).unwrap_or(0);
        tracer.count(Counter::Recoveries, 1);
        tracer.record_span(0, 0, t0, || SpanKind::Recovery { attempt: recoveries, step: back_to });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::compile_module;
    use sten_interp::FaultAction;
    use sten_ir::Pass as _;
    use sten_stencil::{samples, ShapeInference};

    fn snap(step: u64, vals: &[f64]) -> RankSnapshot {
        let mut s =
            RankSnapshot { step, args: vec![vals.to_vec()], scalar_slots: vec![], digest: 0 };
        s.digest = sten_ir::content_hash(&s.to_bytes());
        s
    }

    #[test]
    fn store_roundtrips_and_dedups_by_content() {
        let store = CheckpointStore::in_memory();
        let a = snap(0, &[1.0, 2.0]);
        assert!(store.put(0, &a) > 0, "first deposit stores bytes");
        // The same content from another rank is a dedup hit.
        assert_eq!(store.put(1, &a), 0);
        assert_eq!(store.num_blobs(), 1);
        let b = snap(4, &[3.0, 4.0]);
        store.put(0, &b);
        assert_eq!(store.num_blobs(), 2);
        assert!(store.bytes_stored() > 0);
        let got = store.get(4, 0).expect("deposited snapshot present");
        assert_eq!(got.args, b.args);
        assert_eq!(got.step, 4);
        assert_eq!(got.digest, b.digest, "content address survives the roundtrip");
        assert!(store.get(4, 1).is_none(), "rank 1 never deposited at step 4");
    }

    #[test]
    fn latest_consistent_needs_every_rank() {
        let store = CheckpointStore::in_memory();
        store.put(0, &snap(0, &[0.0]));
        store.put(1, &snap(0, &[1.0]));
        store.put(0, &snap(4, &[2.0]));
        store.put(1, &snap(4, &[3.0]));
        store.put(0, &snap(8, &[4.0]));
        // Step 8 has only rank 0 — not a consistent cut.
        assert_eq!(store.latest_consistent(2), Some(4));
        assert_eq!(store.latest_consistent(1), Some(8));
        assert_eq!(CheckpointStore::in_memory().latest_consistent(1), None);
    }

    #[test]
    fn disk_store_survives_losing_its_memory() {
        let dir = std::env::temp_dir().join(format!("sten-ckpt-{:x}", std::process::id()));
        let s = snap(2, &[5.0, 6.0, 7.0]);
        {
            let store = CheckpointStore::on_disk(&dir).unwrap();
            store.put(0, &s);
        }
        // A fresh store over the same directory has the index gone but
        // the blob on disk; get() must fall back to it.
        let store = CheckpointStore::on_disk(&dir).unwrap();
        store.inner.lock().unwrap().by_step.entry(2).or_default().insert(0, s.digest);
        let got = store.get(2, 0).expect("blob recovered from disk");
        assert_eq!(got.args, s.args);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// End-to-end recovery: a mid-run crash rolls the cohort back to the
    /// last consistent checkpoint and the healed result is bit-identical
    /// to a fault-free run.
    #[test]
    fn crash_mid_run_heals_to_fault_free_bytes() {
        let n = 64i64;
        let steps = 6u64;
        let mut m = samples::jacobi_1d(n);
        ShapeInference.run(&mut m).unwrap();
        sten_dmp::DistributeStencil::new(vec![2]).run(&mut m).unwrap();
        ShapeInference.run(&mut m).unwrap();
        let pipeline = compile_module(&m, "jacobi").unwrap();
        let local = pipeline.arg_shapes[0][0];
        let core = (n - 2) / 2;
        let global: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin()).collect();
        let init = |rank: usize| -> Vec<Vec<f64>> {
            let start = rank as i64 * core;
            let data: Vec<f64> = (0..local).map(|i| global[(start + i) as usize]).collect();
            vec![data.clone(), data]
        };

        let tracer = Tracer::new();
        let cfg = ResilientConfig {
            steps,
            checkpoint_interval: 2,
            max_recoveries: 2,
            rotate_args: true,
            ..ResilientConfig::default()
        };

        let mut clean = vec![init(0), init(1)];
        let report = run_resilient(
            &pipeline,
            &mut clean,
            Arc::new(FaultPlan::new()),
            &CheckpointStore::in_memory(),
            &cfg,
            &tracer,
        )
        .unwrap();
        assert_eq!(report.recoveries, 0);

        let plan = Arc::new(FaultPlan::new().with_rank_fault(1, 3, FaultAction::RankCrash));
        let store = CheckpointStore::in_memory();
        let mut healed = vec![init(0), init(1)];
        let report = run_resilient(&pipeline, &mut healed, plan, &store, &cfg, &tracer).unwrap();
        assert_eq!(report.recoveries, 1, "one rollback heals one crash");
        assert!(
            report.replayed_steps > 0,
            "the crash at step 3 forces a replay from the step-2 checkpoint"
        );
        assert_eq!(healed, clean, "recovery is bit-identical to the fault-free run");
    }

    /// Exhausting the recovery budget surfaces the root cause, not the
    /// poison it spread.
    #[test]
    fn recovery_budget_exhaustion_reports_the_crash() {
        let n = 32i64;
        let mut m = samples::jacobi_1d(n);
        ShapeInference.run(&mut m).unwrap();
        sten_dmp::DistributeStencil::new(vec![2]).run(&mut m).unwrap();
        ShapeInference.run(&mut m).unwrap();
        let pipeline = compile_module(&m, "jacobi").unwrap();
        let local = pipeline.arg_shapes[0][0];
        let data: Vec<f64> = (0..local).map(|i| i as f64 * 0.01).collect();
        let mut args = vec![vec![data.clone(), data.clone()], vec![data.clone(), data]];
        // Two crashes on rank 1, zero recoveries allowed.
        let plan = Arc::new(
            FaultPlan::new().with_rank_fault(1, 0, FaultAction::RankCrash).with_rank_fault(
                1,
                1,
                FaultAction::RankCrash,
            ),
        );
        let cfg = ResilientConfig {
            steps: 4,
            max_recoveries: 0,
            rotate_args: true,
            ..ResilientConfig::default()
        };
        let err = run_resilient(
            &pipeline,
            &mut args,
            plan,
            &CheckpointStore::in_memory(),
            &cfg,
            &Tracer::disabled(),
        )
        .unwrap_err();
        assert_eq!(err, ExecError::InjectedCrash { rank: 1, step: 0 });
    }
}
