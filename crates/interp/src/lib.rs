//! # sten-interp — executing the IR, at every lowering level
//!
//! The paper compiles its IR through LLVM and runs on ARCHER2 with mpich.
//! This crate is the corresponding execution substrate of the
//! reproduction: a tree-walking interpreter ([`interp::Interpreter`]) that
//! executes modules at **any** lowering level — stencil-level reference
//! semantics, `scf`+`memref` loop nests, `dmp.swap` exchanges, `mpi.*`
//! operations, and the final `func.call @MPI_*` form — plus **SimMPI**
//! ([`sim_mpi`]), a simulated message-passing runtime where ranks are OS
//! threads and messages travel through FIFO mailboxes, honouring MPI's
//! non-overtaking ordering and the mpich ABI constants the lowering
//! substitutes.
//!
//! Running the same program at every level and comparing the resulting
//! fields is the core semantic test of the stack (see `tests/` at the
//! workspace root).

pub mod distributed;
pub mod exact;
pub mod fault;
pub mod interp;
pub mod sim_mpi;
pub mod sync_shim;
pub mod value;

pub use distributed::{run_spmd, run_spmd_modules, ArgSpec, RankResult};
pub use exact::{ExactSum, ReduceAcc, ReduceKind};
pub use fault::{FaultAction, FaultPlan, Reliability};
pub use interp::{InterpError, Interpreter};
pub use sim_mpi::{MpiEnv, MpiError, SimWorld};
pub use value::{BufView, RtValue};
