//! SimMPI — the simulated message-passing runtime.
//!
//! Plays the role mpich plays on ARCHER2: the lowered program calls
//! `MPI_*` symbols with the mpich ABI constants, and this runtime executes
//! them. Ranks are OS threads sharing one [`SimWorld`]; messages travel
//! through per-`(src, dst, tag)` FIFO mailboxes, preserving MPI's
//! non-overtaking guarantee, on which the halo-exchange tag scheme relies.
//!
//! Collectives use a generation-counted rendezvous (every rank deposits
//! its contribution and receives everyone's), which is sufficient for the
//! SPMD programs the stack generates.

use crate::fault::{FaultAction, FaultPlan, Reliability};
use crate::sync_shim::{Condvar, Mutex};
use crate::value::{RequestList, RequestState, RtValue, SharedData};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sten_trace::{Counter, SpanKind, Tracer};

/// A structured communication failure: every blocking SimMPI entry point
/// returns one instead of hanging or panicking, so ranks running under
/// injected faults always terminate with a diagnosis naming the rank (and
/// the collective generation, where one applies).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MpiError {
    /// The world was poisoned (another rank failed); names the failing
    /// rank and why, so the survivor's error points at the root cause.
    Poisoned {
        /// Rank that poisoned the world.
        by_rank: i32,
        /// The poisoner's reason.
        reason: String,
    },
    /// A bounded receive expired without a matching delivery.
    RecvTimeout {
        /// Receiving rank.
        rank: i32,
        /// Expected sender.
        src: i32,
        /// Message tag.
        tag: i32,
        /// How long the receive waited, milliseconds.
        waited_ms: u64,
    },
    /// A collective rendezvous expired before every rank deposited.
    CollectiveTimeout {
        /// The waiting rank.
        rank: usize,
        /// Rendezvous generation the rank was waiting on.
        generation: u64,
        /// Ranks that had not deposited when the budget ran out.
        missing: Vec<usize>,
        /// How long the rank waited, milliseconds.
        waited_ms: u64,
    },
    /// A rank deposited twice into the same rendezvous generation (a
    /// protocol violation — previously an `assert!`).
    DoubleDeposit {
        /// The offending rank.
        rank: usize,
        /// The generation it deposited into.
        generation: u64,
    },
    /// Rendezvous bookkeeping lost a contribution or result (previously
    /// `expect("deposited")` / `expect("result present")` panics).
    CollectiveCorrupted {
        /// The observing rank.
        rank: usize,
        /// The generation whose state is inconsistent.
        generation: u64,
        /// What was missing.
        what: &'static str,
    },
    /// A scheduled [`FaultAction::RankCrash`] fired on this rank.
    InjectedCrash {
        /// The crashed rank.
        rank: i32,
        /// The timestep it crashed at.
        step: u64,
    },
}

impl std::fmt::Display for MpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpiError::Poisoned { by_rank, reason } => {
                write!(f, "world poisoned by rank {by_rank}: {reason}")
            }
            MpiError::RecvTimeout { rank, src, tag, waited_ms } => write!(
                f,
                "rank {rank}: receive from rank {src} tag {tag} timed out after {waited_ms} ms"
            ),
            MpiError::CollectiveTimeout { rank, generation, missing, waited_ms } => write!(
                f,
                "rank {rank}: collective generation {generation} timed out after {waited_ms} ms \
                 (missing deposits from ranks {missing:?})"
            ),
            MpiError::DoubleDeposit { rank, generation } => {
                write!(f, "rank {rank} double-deposited into collective generation {generation}")
            }
            MpiError::CollectiveCorrupted { rank, generation, what } => write!(
                f,
                "rank {rank}: collective generation {generation} corrupted ({what} missing)"
            ),
            MpiError::InjectedCrash { rank, step } => {
                write!(f, "rank {rank}: injected crash at step {step}")
            }
        }
    }
}

impl std::error::Error for MpiError {}

/// Validated mpich magic constants (mirrors `sten_mpi::abi`).
mod abi {
    pub const MPI_COMM_WORLD: i64 = 0x4400_0000;
    pub const MPI_FLOAT: i64 = 0x4c00_040a;
    pub const MPI_DOUBLE: i64 = 0x4c00_080b;
    pub const MPI_INT: i64 = 0x4c00_0405;
    pub const MPI_INT64: i64 = 0x4c00_0843;
    pub const MPI_OP_SUM: i64 = 0x5800_0003;
    pub const MPI_OP_MIN: i64 = 0x5800_0002;
    pub const MPI_OP_MAX: i64 = 0x5800_0001;

    pub fn valid_datatype(handle: i64) -> bool {
        matches!(handle, MPI_FLOAT | MPI_DOUBLE | MPI_INT | MPI_INT64)
    }
}

/// One in-flight message: payload plus its simulated arrival time
/// (`None` = already delivered, the zero-latency fast path).
struct Msg {
    arrival: Option<std::time::Instant>,
    data: Vec<f64>,
}

impl Msg {
    fn arrived(&self) -> bool {
        match self.arrival {
            None => true,
            Some(at) => std::time::Instant::now() >= at,
        }
    }
}

#[derive(Default)]
struct Mailboxes {
    /// (src, dst, tag) → FIFO queue of messages.
    queues: HashMap<(i32, i32, i32), Vec<Msg>>,
    /// (src, dst) → messages sent so far on the channel (the fault
    /// plan's deterministic message index).
    sent_count: HashMap<(i32, i32), u64>,
    /// (src, dst, tag) → payloads of dropped messages, oldest first.
    /// [`SimWorld::rerequest`] re-delivers from here — the model of a
    /// link-layer retransmission triggered by a receiver-side NACK.
    lost: HashMap<(i32, i32, i32), Vec<Vec<f64>>>,
}

struct CollectiveState {
    generation: u64,
    deposits: Vec<Option<Vec<f64>>>,
    /// generation → (all contributions, readers remaining).
    results: HashMap<u64, (Vec<Vec<f64>>, usize)>,
}

/// The shared state of one simulated MPI world.
pub struct SimWorld {
    size: usize,
    /// Simulated per-message delivery latency: a sent message becomes
    /// visible to receives only after this much wall-clock time. Zero
    /// (the default) means instant delivery, as before.
    latency: std::time::Duration,
    mail: Mutex<Mailboxes>,
    mail_cv: Condvar,
    coll: Mutex<CollectiveState>,
    coll_cv: Condvar,
    /// Total elements sent (communication-volume accounting for the
    /// benchmarks). Lock-free: counters sit on the send/recv hot path.
    sent_elements: AtomicU64,
    /// Total messages sent.
    sent_messages: AtomicU64,
    /// Receives whose message had already arrived at the first attempt —
    /// the observable signature of communication/computation overlap.
    recv_immediate: AtomicU64,
    /// Receives that had to block for their message.
    recv_blocked: AtomicU64,
    /// Structured trace sink for message-level events (disabled by
    /// default: [`SimWorld::new_traced`] turns it on).
    tracer: Tracer,
    /// The fault schedule, if this world injects faults.
    faults: Option<Arc<FaultPlan>>,
    /// Timeout/retry knobs; `Some` switches the executor's exchanges to
    /// the sequence-numbered reliable protocol.
    reliability: Option<Reliability>,
    /// Set once by the first failing rank; blocking waits re-check it
    /// and return [`MpiError::Poisoned`] so no peer hangs forever.
    poison: Mutex<Option<(i32, String)>>,
}

impl SimWorld {
    /// Creates a world of `size` ranks with instant message delivery.
    pub fn new(size: usize) -> Arc<SimWorld> {
        SimWorld::new_with_latency(size, std::time::Duration::ZERO)
    }

    /// Creates a world whose messages arrive only after `latency` — a
    /// stand-in for network transit time, so the sync-vs-overlap gap is
    /// measurable instead of hidden by the shared-memory mailboxes.
    /// Payloads are unaffected; results stay bit-identical to the
    /// zero-latency world.
    pub fn new_with_latency(size: usize, latency: std::time::Duration) -> Arc<SimWorld> {
        SimWorld::new_traced(size, latency, Tracer::disabled())
    }

    /// Creates a world that records message-level events (sends as
    /// instants, receives as spans covering any delivery wait) and
    /// counters into `tracer`. Tracing never perturbs payloads or
    /// matching: results stay bit-identical to an untraced world.
    pub fn new_traced(size: usize, latency: std::time::Duration, tracer: Tracer) -> Arc<SimWorld> {
        SimWorld::new_resilient(size, latency, tracer, None, None)
    }

    /// Creates a world that injects the faults scheduled in `plan`, with
    /// default [`Reliability`] knobs so the executor runs its reliable
    /// exchange protocol. The plan is an `Arc` so a resilient driver can
    /// reuse it (with its fired flags) across world re-creations.
    pub fn new_with_faults(size: usize, plan: Arc<FaultPlan>) -> Arc<SimWorld> {
        SimWorld::new_resilient(
            size,
            std::time::Duration::ZERO,
            Tracer::disabled(),
            Some(plan),
            Some(Reliability::default()),
        )
    }

    /// The fully-general constructor: latency, tracing, an optional
    /// fault schedule, and optional reliability knobs (reliable exchange
    /// can run without faults, e.g. to measure its fault-free overhead).
    pub fn new_resilient(
        size: usize,
        latency: std::time::Duration,
        tracer: Tracer,
        faults: Option<Arc<FaultPlan>>,
        reliability: Option<Reliability>,
    ) -> Arc<SimWorld> {
        Arc::new(SimWorld {
            size,
            latency,
            mail: Mutex::new(Mailboxes::default()),
            mail_cv: Condvar::new(),
            coll: Mutex::new(CollectiveState {
                generation: 0,
                deposits: vec![None; size],
                results: HashMap::new(),
            }),
            coll_cv: Condvar::new(),
            sent_elements: AtomicU64::new(0),
            sent_messages: AtomicU64::new(0),
            recv_immediate: AtomicU64::new(0),
            recv_blocked: AtomicU64::new(0),
            tracer,
            faults,
            reliability,
            poison: Mutex::new(None),
        })
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The attached fault schedule, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// The reliability knobs, if the reliable protocol is on.
    pub fn reliability(&self) -> Option<&Reliability> {
        self.reliability.as_ref()
    }

    /// The world's trace sink (disabled unless constructed traced).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Marks the world failed on behalf of `rank`: every blocked or
    /// future wait returns [`MpiError::Poisoned`] instead of hanging, so
    /// a rank that errors mid-block never strands its peers.
    pub fn poison(&self, rank: i32, reason: impl Into<String>) {
        {
            let mut p = self.poison.lock();
            if p.is_none() {
                *p = Some((rank, reason.into()));
            }
        }
        // Lock each wait's mutex before notifying so a peer between its
        // poison check and its wait cannot miss the wakeup.
        drop(self.mail.lock());
        self.mail_cv.notify_all();
        drop(self.coll.lock());
        self.coll_cv.notify_all();
    }

    /// The poison marker, if the world has failed.
    pub fn poison_info(&self) -> Option<(i32, String)> {
        self.poison.lock().clone()
    }

    fn check_poison(&self) -> Result<(), MpiError> {
        match &*self.poison.lock() {
            Some((by_rank, reason)) => {
                Err(MpiError::Poisoned { by_rank: *by_rank, reason: reason.clone() })
            }
            None => Ok(()),
        }
    }

    /// Total elements sent so far (all ranks).
    pub fn total_sent_elements(&self) -> u64 {
        self.sent_elements.load(Ordering::Relaxed)
    }

    /// Total messages sent so far (all ranks).
    pub fn total_sent_messages(&self) -> u64 {
        self.sent_messages.load(Ordering::Relaxed)
    }

    /// Receives that found their message already delivered on the first
    /// attempt (overlap hid the transit time).
    pub fn total_recv_immediate(&self) -> u64 {
        self.recv_immediate.load(Ordering::Relaxed)
    }

    /// Receives that blocked waiting for delivery.
    pub fn total_recv_blocked(&self) -> u64 {
        self.recv_blocked.load(Ordering::Relaxed)
    }

    /// Buffered send: deposits the message and returns immediately; the
    /// message completes delivery in the background (after the world's
    /// simulated latency, if any).
    pub fn send(&self, src: i32, dst: i32, tag: i32, data: Vec<f64>) {
        self.sent_elements.fetch_add(data.len() as u64, Ordering::Relaxed);
        self.sent_messages.fetch_add(1, Ordering::Relaxed);
        self.tracer.count(Counter::MsgsSent, 1);
        self.tracer.count(Counter::ElementsSent, data.len() as u64);
        let bytes = 8 * data.len() as u64;
        let latency_us = self.latency.as_micros() as u64;
        self.tracer.record_instant(src.max(0) as u32, 0, || SpanKind::MsgSend {
            src,
            dst,
            tag,
            bytes,
            latency_us,
        });
        let arrival = (!self.latency.is_zero()).then(|| std::time::Instant::now() + self.latency);
        let mut mail = self.mail.lock();
        // The fault plan keys on the channel's deterministic message
        // index (this rank is the only sender on `src → dst`, so the
        // count is interleaving-independent).
        let fault = self.faults.as_ref().and_then(|plan| {
            let count = mail.sent_count.entry((src, dst)).or_insert(0);
            let index = *count;
            *count += 1;
            let action = plan.on_send(src, dst, index)?;
            Some((action, index))
        });
        match fault {
            None => {
                mail.queues.entry((src, dst, tag)).or_default().push(Msg { arrival, data });
            }
            Some((action, index)) => {
                self.tracer.count(Counter::FaultsInjected, 1);
                self.tracer.record_instant(src.max(0) as u32, 0, || SpanKind::Fault {
                    fault: action.name(),
                    rank: dst,
                    detail: format!("src {src} dst {dst} tag {tag} msg#{index}"),
                });
                match action {
                    FaultAction::Drop => {
                        // Never enqueued: the payload moves to the lost
                        // store, recoverable through `rerequest`.
                        mail.lost.entry((src, dst, tag)).or_default().push(data);
                    }
                    FaultAction::Duplicate => {
                        let q = mail.queues.entry((src, dst, tag)).or_default();
                        q.push(Msg { arrival, data: data.clone() });
                        q.push(Msg { arrival, data });
                    }
                    FaultAction::Reorder => {
                        // Jumps the queue: overtakes older undelivered
                        // messages on the channel.
                        mail.queues
                            .entry((src, dst, tag))
                            .or_default()
                            .insert(0, Msg { arrival, data });
                    }
                    FaultAction::DelaySpike { extra_ms } => {
                        let spiked = std::time::Instant::now()
                            + self.latency
                            + std::time::Duration::from_millis(extra_ms);
                        mail.queues
                            .entry((src, dst, tag))
                            .or_default()
                            .push(Msg { arrival: Some(spiked), data });
                    }
                    // Rank faults never match `on_send`.
                    FaultAction::RankStall { .. } | FaultAction::RankCrash => unreachable!(),
                }
            }
        }
        self.mail_cv.notify_all();
    }

    /// Re-delivers the oldest *lost* (dropped) message on `(src → dst,
    /// tag)`, if one exists — the receiver-driven retransmission a timed
    /// out reliable exchange requests. Returns whether a message was
    /// recovered.
    pub fn rerequest(&self, dst: i32, src: i32, tag: i32) -> bool {
        let mut mail = self.mail.lock();
        let Some(stash) = mail.lost.get_mut(&(src, dst, tag)) else { return false };
        if stash.is_empty() {
            return false;
        }
        let data = stash.remove(0);
        self.tracer.count(Counter::Retries, 1);
        mail.queues.entry((src, dst, tag)).or_default().push(Msg { arrival: None, data });
        self.mail_cv.notify_all();
        true
    }

    /// Pops the oldest matching message if it has been delivered
    /// (nonblocking). MPI's non-overtaking order is preserved: an
    /// undelivered message at the queue head blocks younger ones.
    fn pop_arrived(mail: &mut Mailboxes, dst: i32, src: i32, tag: i32) -> Option<Vec<f64>> {
        let q = mail.queues.get_mut(&(src, dst, tag))?;
        if q.first()?.arrived() {
            Some(q.remove(0).data)
        } else {
            None
        }
    }

    /// Nonblocking receive: the oldest matching *delivered* message.
    pub fn try_recv(&self, dst: i32, src: i32, tag: i32) -> Option<Vec<f64>> {
        let mut mail = self.mail.lock();
        Self::pop_arrived(&mut mail, dst, src, tag)
    }

    /// Blocking receive of the oldest matching message.
    ///
    /// # Errors
    /// Returns [`MpiError::Poisoned`] if the world fails while waiting —
    /// a receive never hangs on a crashed peer.
    pub fn recv(&self, dst: i32, src: i32, tag: i32) -> Result<Vec<f64>, MpiError> {
        let t0 = self.tracer.now();
        let (data, blocked) = self.recv_inner(dst, src, tag, None)?;
        let data = data.expect("unbounded receive returned without a message");
        let bytes = 8 * data.len() as u64;
        self.tracer.record_span(dst.max(0) as u32, 0, t0, || SpanKind::MsgRecv {
            src,
            dst,
            tag,
            bytes,
            blocked,
        });
        Ok(data)
    }

    /// Bounded blocking receive: `Ok(None)` when `timeout` elapses with
    /// no matching delivery (the reliable exchange's retry trigger).
    ///
    /// # Errors
    /// Returns [`MpiError::Poisoned`] if the world fails while waiting.
    pub fn recv_timeout(
        &self,
        dst: i32,
        src: i32,
        tag: i32,
        timeout: std::time::Duration,
    ) -> Result<Option<Vec<f64>>, MpiError> {
        let t0 = self.tracer.now();
        let (data, blocked) = self.recv_inner(dst, src, tag, Some(timeout))?;
        if let Some(data) = &data {
            let bytes = 8 * data.len() as u64;
            self.tracer.record_span(dst.max(0) as u32, 0, t0, || SpanKind::MsgRecv {
                src,
                dst,
                tag,
                bytes,
                blocked,
            });
        }
        Ok(data)
    }

    /// The receive itself; reports whether it had to block for delivery.
    /// `Ok(None)` only when `deadline` is bounded and expired.
    fn recv_inner(
        &self,
        dst: i32,
        src: i32,
        tag: i32,
        timeout: Option<std::time::Duration>,
    ) -> Result<(Option<Vec<f64>>, bool), MpiError> {
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        let mut mail = self.mail.lock();
        self.check_poison()?;
        if let Some(data) = Self::pop_arrived(&mut mail, dst, src, tag) {
            self.recv_immediate.fetch_add(1, Ordering::Relaxed);
            self.tracer.count(Counter::RecvImmediate, 1);
            return Ok((Some(data), false));
        }
        self.recv_blocked.fetch_add(1, Ordering::Relaxed);
        self.tracer.count(Counter::RecvBlocked, 1);
        loop {
            if let Some(data) = Self::pop_arrived(&mut mail, dst, src, tag) {
                return Ok((Some(data), true));
            }
            self.check_poison()?;
            // An in-flight message needs a timed wait (no notification
            // fires when its latency elapses).
            let in_flight = mail
                .queues
                .get(&(src, dst, tag))
                .and_then(|q| q.first())
                .and_then(|m| m.arrival)
                .map(|at| at.saturating_duration_since(std::time::Instant::now()));
            let until_deadline = deadline.map(|at| {
                let now = std::time::Instant::now();
                if at <= now {
                    std::time::Duration::ZERO
                } else {
                    at - now
                }
            });
            if until_deadline == Some(std::time::Duration::ZERO) {
                return Ok((None, true));
            }
            let bounded = match (in_flight, until_deadline) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (Some(a), None) => Some(a),
                (None, Some(b)) => Some(b),
                (None, None) => None,
            };
            match bounded {
                Some(remaining) => {
                    let _ = self.mail_cv.wait_timeout(
                        &mut mail,
                        remaining.max(std::time::Duration::from_micros(1)),
                    );
                }
                None => self.mail_cv.wait(&mut mail),
            }
        }
    }

    /// All-to-all rendezvous: every rank deposits `data` and receives the
    /// contributions of all ranks, indexed by rank. On a world with
    /// [`Reliability`] knobs the wait is bounded by
    /// `collective_timeout_ms`; otherwise it is unbounded (but still
    /// poison-interruptible).
    ///
    /// # Errors
    /// [`MpiError::Poisoned`] if the world fails while waiting,
    /// [`MpiError::CollectiveTimeout`] naming the missing ranks when the
    /// budget runs out, and [`MpiError::DoubleDeposit`] /
    /// [`MpiError::CollectiveCorrupted`] on protocol violations.
    pub fn exchange_all(&self, rank: usize, data: Vec<f64>) -> Result<Vec<Vec<f64>>, MpiError> {
        let budget = self
            .reliability
            .as_ref()
            .map(|r| std::time::Duration::from_millis(r.collective_timeout_ms));
        let start = std::time::Instant::now();
        let mut st = self.coll.lock();
        self.check_poison()?;
        let my_gen = st.generation;
        if st.deposits[rank].is_some() {
            return Err(MpiError::DoubleDeposit { rank, generation: my_gen });
        }
        st.deposits[rank] = Some(data);
        let arrived = st.deposits.iter().filter(|d| d.is_some()).count();
        if arrived == self.size {
            let mut all = Vec::with_capacity(self.size);
            for d in st.deposits.iter_mut() {
                match d.take() {
                    Some(v) => all.push(v),
                    None => {
                        return Err(MpiError::CollectiveCorrupted {
                            rank,
                            generation: my_gen,
                            what: "deposit",
                        })
                    }
                }
            }
            st.results.insert(my_gen, (all, self.size));
            st.generation += 1;
            self.coll_cv.notify_all();
        } else {
            while !st.results.contains_key(&my_gen) {
                self.check_poison()?;
                match budget {
                    None => self.coll_cv.wait(&mut st),
                    Some(budget) => {
                        let waited = start.elapsed();
                        if waited >= budget {
                            // Identify the stragglers: their slot for
                            // this generation is still empty.
                            let missing: Vec<usize> = if st.generation == my_gen {
                                (0..self.size).filter(|&r| st.deposits[r].is_none()).collect()
                            } else {
                                Vec::new()
                            };
                            return Err(MpiError::CollectiveTimeout {
                                rank,
                                generation: my_gen,
                                missing,
                                waited_ms: waited.as_millis() as u64,
                            });
                        }
                        let _ = self.coll_cv.wait_timeout(
                            &mut st,
                            (budget - waited).max(std::time::Duration::from_micros(1)),
                        );
                    }
                }
            }
        }
        let Some((all, readers)) = st.results.get_mut(&my_gen) else {
            return Err(MpiError::CollectiveCorrupted { rank, generation: my_gen, what: "result" });
        };
        let copy = all.clone();
        *readers -= 1;
        if *readers == 0 {
            st.results.remove(&my_gen);
        }
        Ok(copy)
    }
}

/// Combines rank contributions element-wise with a **fixed association
/// tree**: `combine(lo..hi) = combine(lo..mid) ⊕ combine(mid..hi)` with
/// `mid = lo + (hi-lo)/2`, leaves in ascending rank order.
///
/// `exchange_all` already indexes contributions by rank (the rendezvous
/// deposits into `deposits[rank]`), so the tree is a pure function of the
/// rank count — message *arrival* order cannot perturb the result. The
/// result is reproducible run-to-run for a fixed decomposition, but this
/// is IEEE arithmetic: it is *not* invariant under changing the rank
/// count (the executor's exact superaccumulator path is).
fn reduce(op: i64, contributions: &[Vec<f64>]) -> Vec<f64> {
    fn combine(op: i64, contributions: &[Vec<f64>], i: usize, lo: usize, hi: usize) -> f64 {
        if hi - lo == 1 {
            return contributions[lo][i];
        }
        let mid = lo + (hi - lo) / 2;
        let a = combine(op, contributions, i, lo, mid);
        let b = combine(op, contributions, i, mid, hi);
        match op {
            abi::MPI_OP_SUM => a + b,
            abi::MPI_OP_MIN => a.min(b),
            abi::MPI_OP_MAX => a.max(b),
            _ => a,
        }
    }
    let n = contributions[0].len();
    (0..n).map(|i| combine(op, contributions, i, 0, contributions.len())).collect()
}

/// Implementations of external functions callable from interpreted code.
pub trait Externals {
    /// Invokes external function `name` with `args`.
    ///
    /// # Errors
    /// Reports unknown symbols or invalid arguments.
    fn call(&mut self, name: &str, args: &[RtValue]) -> Result<Vec<RtValue>, String>;

    /// Executes a `dmp.swap` directly (for interpretation at the dmp
    /// level). Default: unsupported.
    ///
    /// # Errors
    /// Reports lack of a communication substrate.
    fn dmp_swap(
        &mut self,
        _data: &crate::value::BufView,
        _grid: &[i64],
        _exchanges: &[sten_ir::ExchangeAttr],
    ) -> Result<(), String> {
        Err("dmp.swap requires an MPI environment (rank context)".into())
    }

    /// All-to-all exchange of an opaque payload (the wire form of a
    /// reduction accumulator), returning every rank's contribution indexed
    /// by rank. The *caller* performs the combine — keeping exact-sum limb
    /// merging out of the communication substrate. Default: unsupported.
    ///
    /// # Errors
    /// Reports lack of a communication substrate.
    fn allreduce_exchange(&mut self, _payload: Vec<f64>) -> Result<Vec<Vec<f64>>, String> {
        Err("dmp.allreduce requires an MPI environment (rank context)".into())
    }

    /// The rank of this interpreter instance, if it runs inside a world.
    fn rank(&self) -> Option<i32> {
        None
    }
}

/// No external functions available (single-process interpretation).
#[derive(Default)]
pub struct NoExternals;

impl Externals for NoExternals {
    fn call(&mut self, name: &str, _args: &[RtValue]) -> Result<Vec<RtValue>, String> {
        Err(format!("call to unknown external function '{name}'"))
    }
}

/// The per-rank MPI environment: implements the `MPI_*` ABI against a
/// shared [`SimWorld`].
pub struct MpiEnv {
    world: Arc<SimWorld>,
    rank: i32,
}

impl MpiEnv {
    /// Creates the environment for `rank` in `world`.
    pub fn new(world: Arc<SimWorld>, rank: i32) -> Self {
        assert!((rank as usize) < world.size(), "rank out of range");
        MpiEnv { world, rank }
    }

    fn check_comm(comm: i64) -> Result<(), String> {
        if comm != abi::MPI_COMM_WORLD {
            return Err(format!("invalid communicator handle {comm:#x}"));
        }
        Ok(())
    }

    fn check_dtype(dtype: i64) -> Result<(), String> {
        if !abi::valid_datatype(dtype) {
            return Err(format!("invalid MPI datatype handle {dtype:#x}"));
        }
        Ok(())
    }

    fn ptr_of(v: &RtValue) -> Result<(SharedData, usize), String> {
        match v {
            RtValue::Ptr { data, offset } => Ok((Rc::clone(data), *offset)),
            other => Err(format!("expected pointer argument, got {other:?}")),
        }
    }

    fn read_elems(ptr: &SharedData, offset: usize, count: usize) -> Result<Vec<f64>, String> {
        let data = ptr.borrow();
        if offset + count > data.len() {
            return Err(format!("pointer read out of bounds: {offset}+{count} > {}", data.len()));
        }
        Ok(data[offset..offset + count].to_vec())
    }

    fn write_elems(ptr: &SharedData, offset: usize, elems: &[f64]) -> Result<(), String> {
        let mut data = ptr.borrow_mut();
        if offset + elems.len() > data.len() {
            return Err(format!(
                "pointer write out of bounds: {offset}+{} > {}",
                elems.len(),
                data.len()
            ));
        }
        data[offset..offset + elems.len()].copy_from_slice(elems);
        Ok(())
    }

    fn request_list(v: &RtValue) -> Result<RequestList, String> {
        match v {
            RtValue::Requests(l) => Ok(Rc::clone(l)),
            other => Err(format!("expected request list, got {other:?}")),
        }
    }

    fn request_slot(v: &RtValue) -> Result<(RequestList, usize), String> {
        match v {
            RtValue::Request { list, index } => Ok((Rc::clone(list), *index)),
            other => Err(format!("expected request handle, got {other:?}")),
        }
    }

    fn complete(&self, state: &mut RequestState) -> Result<(), String> {
        match std::mem::replace(state, RequestState::Null) {
            RequestState::Null | RequestState::SendDone => Ok(()),
            RequestState::PendingRecv { src, tag, dst, offset, count } => {
                let msg = self.world.recv(self.rank, src, tag).map_err(|e| e.to_string())?;
                if msg.len() != count {
                    return Err(format!(
                        "message length {} does not match posted receive {count}",
                        msg.len()
                    ));
                }
                Self::write_elems(&dst, offset, &msg)
            }
        }
    }

    /// Attempts to complete a request without blocking: posted receives
    /// whose message has already been delivered are drained into their
    /// destination (background completion); returns whether the request
    /// is now complete.
    fn try_complete(&self, state: &mut RequestState) -> Result<bool, String> {
        match state {
            RequestState::Null | RequestState::SendDone => Ok(true),
            RequestState::PendingRecv { src, tag, dst, offset, count } => {
                let Some(msg) = self.world.try_recv(self.rank, *src, *tag) else {
                    return Ok(false);
                };
                if msg.len() != *count {
                    return Err(format!(
                        "message length {} does not match posted receive {count}",
                        msg.len()
                    ));
                }
                Self::write_elems(dst, *offset, &msg)?;
                *state = RequestState::Null;
                Ok(true)
            }
        }
    }
}

impl Externals for MpiEnv {
    fn rank(&self) -> Option<i32> {
        Some(self.rank)
    }

    fn call(&mut self, name: &str, args: &[RtValue]) -> Result<Vec<RtValue>, String> {
        let int = |i: usize| args[i].as_int();
        match name {
            "MPI_Init" | "MPI_Finalize" => Ok(vec![RtValue::Int(0)]),
            "MPI_Comm_rank" => {
                Self::check_comm(int(0)?)?;
                Ok(vec![RtValue::Int(self.rank as i64)])
            }
            "MPI_Comm_size" => {
                Self::check_comm(int(0)?)?;
                Ok(vec![RtValue::Int(self.world.size() as i64)])
            }
            "MPI_Send" => {
                let (ptr, off) = Self::ptr_of(&args[0])?;
                let count = int(1)? as usize;
                Self::check_dtype(int(2)?)?;
                let (dest, tag) = (int(3)? as i32, int(4)? as i32);
                Self::check_comm(int(5)?)?;
                let data = Self::read_elems(&ptr, off, count)?;
                self.world.send(self.rank, dest, tag, data);
                Ok(vec![RtValue::Int(0)])
            }
            "MPI_Recv" => {
                let (ptr, off) = Self::ptr_of(&args[0])?;
                let count = int(1)? as usize;
                Self::check_dtype(int(2)?)?;
                let (src, tag) = (int(3)? as i32, int(4)? as i32);
                Self::check_comm(int(5)?)?;
                let msg = self.world.recv(self.rank, src, tag).map_err(|e| e.to_string())?;
                if msg.len() != count {
                    return Err(format!("received {} elements, expected {count}", msg.len()));
                }
                Self::write_elems(&ptr, off, &msg)?;
                Ok(vec![RtValue::Int(0)])
            }
            "MPI_Isend" => {
                let (ptr, off) = Self::ptr_of(&args[0])?;
                let count = int(1)? as usize;
                Self::check_dtype(int(2)?)?;
                let (dest, tag) = (int(3)? as i32, int(4)? as i32);
                Self::check_comm(int(5)?)?;
                let (list, idx) = Self::request_slot(&args[6])?;
                let data = Self::read_elems(&ptr, off, count)?;
                self.world.send(self.rank, dest, tag, data);
                list.borrow_mut()[idx] = RequestState::SendDone;
                Ok(vec![RtValue::Int(0)])
            }
            "MPI_Irecv" => {
                let (ptr, off) = Self::ptr_of(&args[0])?;
                let count = int(1)? as usize;
                Self::check_dtype(int(2)?)?;
                let (src, tag) = (int(3)? as i32, int(4)? as i32);
                Self::check_comm(int(5)?)?;
                let (list, idx) = Self::request_slot(&args[6])?;
                let mut slot = RequestState::PendingRecv { src, tag, dst: ptr, offset: off, count };
                // Asynchronous semantics: an already-delivered message
                // completes the request at post time, in the background
                // of whatever the rank does next.
                self.try_complete(&mut slot)?;
                list.borrow_mut()[idx] = slot;
                Ok(vec![RtValue::Int(0)])
            }
            "MPI_Wait" => {
                let (list, idx) = Self::request_slot(&args[0])?;
                let mut slot = list.borrow()[idx].clone();
                self.complete(&mut slot)?;
                list.borrow_mut()[idx] = slot;
                Ok(vec![RtValue::Int(0)])
            }
            "MPI_Test" => {
                let (list, idx) = Self::request_slot(&args[0])?;
                let mut slot = list.borrow()[idx].clone();
                let done = self.try_complete(&mut slot)?;
                list.borrow_mut()[idx] = slot;
                Ok(vec![RtValue::Int(i64::from(done))])
            }
            "MPI_Waitall" => {
                let count = int(0)? as usize;
                let list = Self::request_list(&args[1])?;
                if list.borrow().len() < count {
                    return Err(format!(
                        "waitall count {count} exceeds request list length {}",
                        list.borrow().len()
                    ));
                }
                for i in 0..count {
                    let mut slot = list.borrow()[i].clone();
                    self.complete(&mut slot)?;
                    list.borrow_mut()[i] = slot;
                }
                Ok(vec![RtValue::Int(0)])
            }
            "MPI_Request_alloc" => {
                let n = int(0)? as usize;
                Ok(vec![RtValue::Requests(Rc::new(std::cell::RefCell::new(vec![
                    RequestState::Null;
                    n
                ])))])
            }
            "MPI_Request_get" => {
                let list = Self::request_list(&args[0])?;
                let idx = int(1)? as usize;
                Ok(vec![RtValue::Request { list, index: idx }])
            }
            "MPI_Request_set_null" => {
                let list = Self::request_list(&args[0])?;
                let idx = int(1)? as usize;
                list.borrow_mut()[idx] = RequestState::Null;
                Ok(vec![])
            }
            "MPI_Allreduce" => {
                let (sptr, soff) = Self::ptr_of(&args[0])?;
                let (rptr, roff) = Self::ptr_of(&args[1])?;
                let count = int(2)? as usize;
                Self::check_dtype(int(3)?)?;
                let op = int(4)?;
                Self::check_comm(int(5)?)?;
                let mine = Self::read_elems(&sptr, soff, count)?;
                let all =
                    self.world.exchange_all(self.rank as usize, mine).map_err(|e| e.to_string())?;
                Self::write_elems(&rptr, roff, &reduce(op, &all))?;
                Ok(vec![RtValue::Int(0)])
            }
            "MPI_Reduce" => {
                let (sptr, soff) = Self::ptr_of(&args[0])?;
                let (rptr, roff) = Self::ptr_of(&args[1])?;
                let count = int(2)? as usize;
                Self::check_dtype(int(3)?)?;
                let op = int(4)?;
                let root = int(5)? as i32;
                Self::check_comm(int(6)?)?;
                let mine = Self::read_elems(&sptr, soff, count)?;
                let all =
                    self.world.exchange_all(self.rank as usize, mine).map_err(|e| e.to_string())?;
                if self.rank == root {
                    Self::write_elems(&rptr, roff, &reduce(op, &all))?;
                }
                Ok(vec![RtValue::Int(0)])
            }
            "MPI_Bcast" => {
                let (ptr, off) = Self::ptr_of(&args[0])?;
                let count = int(1)? as usize;
                Self::check_dtype(int(2)?)?;
                let root = int(3)? as i32;
                Self::check_comm(int(4)?)?;
                let mine = if self.rank == root {
                    Self::read_elems(&ptr, off, count)?
                } else {
                    Vec::new()
                };
                let all =
                    self.world.exchange_all(self.rank as usize, mine).map_err(|e| e.to_string())?;
                Self::write_elems(&ptr, off, &all[root as usize])?;
                Ok(vec![RtValue::Int(0)])
            }
            "MPI_Gather" => {
                let (sptr, soff) = Self::ptr_of(&args[0])?;
                let count = int(1)? as usize;
                Self::check_dtype(int(2)?)?;
                let (rptr, roff) = Self::ptr_of(&args[3])?;
                let root = int(6)? as i32;
                Self::check_comm(int(7)?)?;
                let mine = Self::read_elems(&sptr, soff, count)?;
                let all =
                    self.world.exchange_all(self.rank as usize, mine).map_err(|e| e.to_string())?;
                if self.rank == root {
                    let flat: Vec<f64> = all.into_iter().flatten().collect();
                    Self::write_elems(&rptr, roff, &flat)?;
                }
                Ok(vec![RtValue::Int(0)])
            }
            other => Err(format!("call to unknown external function '{other}'")),
        }
    }

    fn allreduce_exchange(&mut self, payload: Vec<f64>) -> Result<Vec<Vec<f64>>, String> {
        let t0 = self.world.tracer.now();
        let bytes = 8 * payload.len() as u64;
        let all =
            self.world.exchange_all(self.rank as usize, payload).map_err(|e| e.to_string())?;
        self.world.tracer.record_span(self.rank as u32, 0, t0, || SpanKind::Reduce {
            phase: "allreduce",
            bytes,
            parts: all.len() as u32,
        });
        Ok(all)
    }

    fn dmp_swap(
        &mut self,
        data: &crate::value::BufView,
        grid: &[i64],
        exchanges: &[sten_ir::ExchangeAttr],
    ) -> Result<(), String> {
        use sten_dmp::decomposition::neighbor_rank;
        // Buffered sends first (deadlock-free), then blocking receives.
        for e in exchanges {
            if let Some(n) = neighbor_rank(self.rank as i64, grid, &e.to)? {
                let send_view = data.subview(&e.send_at(), &e.size).map_err(|m| m.to_string())?;
                let tag = sten_mpi::dmp_to_mpi::tag_for_direction(&e.to) as i32;
                self.world.send(self.rank, n as i32, tag, send_view.to_vec());
            }
        }
        for e in exchanges {
            if let Some(n) = neighbor_rank(self.rank as i64, grid, &e.to)? {
                let neg: Vec<i64> = e.to.iter().map(|t| -t).collect();
                let tag = sten_mpi::dmp_to_mpi::tag_for_direction(&neg) as i32;
                let msg = self.world.recv(self.rank, n as i32, tag).map_err(|e| e.to_string())?;
                let recv_view = data.subview(&e.at, &e.size).map_err(|m| m.to_string())?;
                let expected: i64 = e.size.iter().product();
                if msg.len() as i64 != expected {
                    return Err(format!(
                        "rank {}: halo from rank {n} tag {tag} has {} elements, \
                         expected {expected} (region {:?})",
                        self.rank,
                        msg.len(),
                        e.size
                    ));
                }
                let mut idx = vec![0i64; e.size.len()];
                for v in msg {
                    recv_view.store(&idx, v)?;
                    let mut d = e.size.len();
                    loop {
                        if d == 0 {
                            break;
                        }
                        d -= 1;
                        idx[d] += 1;
                        if idx[d] < e.size[d] {
                            break;
                        }
                        idx[d] = 0;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn point_to_point_fifo_ordering() {
        let world = SimWorld::new(2);
        let w = Arc::clone(&world);
        let sender = thread::spawn(move || {
            w.send(0, 1, 7, vec![1.0]);
            w.send(0, 1, 7, vec![2.0]);
        });
        let first = world.recv(1, 0, 7).unwrap();
        let second = world.recv(1, 0, 7).unwrap();
        sender.join().unwrap();
        assert_eq!(first, vec![1.0]);
        assert_eq!(second, vec![2.0], "non-overtaking order preserved");
    }

    #[test]
    fn tags_isolate_channels() {
        let world = SimWorld::new(2);
        world.send(0, 1, 1, vec![1.0]);
        world.send(0, 1, 2, vec![2.0]);
        assert_eq!(world.recv(1, 0, 2).unwrap(), vec![2.0]);
        assert_eq!(world.recv(1, 0, 1).unwrap(), vec![1.0]);
    }

    #[test]
    fn exchange_all_rendezvous() {
        let world = SimWorld::new(4);
        let handles: Vec<_> = (0..4)
            .map(|r| {
                let w = Arc::clone(&world);
                thread::spawn(move || w.exchange_all(r, vec![r as f64]).unwrap())
            })
            .collect();
        for h in handles {
            let all = h.join().unwrap();
            assert_eq!(all, vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        }
    }

    #[test]
    fn reduce_uses_the_documented_balanced_tree() {
        // Values where the association matters: with three ranks the
        // tree is a ⊕ (b ⊕ c), a linear fold is (a ⊕ b) ⊕ c.
        let contributions: Vec<Vec<f64>> = vec![vec![1.0], vec![1e16], vec![-1e16]];
        let got = reduce(abi::MPI_OP_SUM, &contributions)[0];
        let want: f64 = 1.0 + (1e16 + -1e16); // = 1.0
        assert_eq!(got.to_bits(), want.to_bits());
        let linear: f64 = (1.0 + 1e16) + -1e16; // = 0.0 (the 1.0 is absorbed)
        assert_ne!(got.to_bits(), linear.to_bits(), "tree shape is observable");
    }

    #[test]
    fn reduce_is_arrival_order_independent() {
        // Property: because `exchange_all` deposits by rank, the combine
        // sees contributions in rank order no matter when each rank
        // arrives — every interleaving of 4 ranks produces bit-identical
        // allreduce results on every rank.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let vals: Vec<f64> = (0..4)
            .map(|_| {
                let exp = (next() % 120) as i32 - 60;
                let mant = (next() % 1_000_000) as f64 - 500_000.0;
                mant * 2f64.powi(exp)
            })
            .collect();
        let mut reference: Option<Vec<u64>> = None;
        for trial in 0..8 {
            let world = SimWorld::new(4);
            let handles: Vec<_> = (0..4usize)
                .map(|r| {
                    let w = Arc::clone(&world);
                    let mine = vals[r];
                    // Stagger arrivals differently every trial.
                    let delay = ((r + trial) % 4) as u64;
                    thread::spawn(move || {
                        std::thread::sleep(std::time::Duration::from_millis(delay));
                        let all = w.exchange_all(r, vec![mine]).unwrap();
                        reduce(abi::MPI_OP_SUM, &all)[0].to_bits()
                    })
                })
                .collect();
            let bits: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert!(bits.windows(2).all(|w| w[0] == w[1]), "ranks agree");
            match &reference {
                None => reference = Some(bits),
                Some(want) => assert_eq!(&bits, want, "trial {trial} deviates"),
            }
        }
    }

    #[test]
    fn consecutive_collectives_do_not_mix() {
        let world = SimWorld::new(2);
        let handles: Vec<_> = (0..2)
            .map(|r| {
                let w = Arc::clone(&world);
                thread::spawn(move || {
                    let first = w.exchange_all(r, vec![r as f64]).unwrap();
                    let second = w.exchange_all(r, vec![10.0 + r as f64]).unwrap();
                    (first, second)
                })
            })
            .collect();
        for h in handles {
            let (first, second) = h.join().unwrap();
            assert_eq!(first, vec![vec![0.0], vec![1.0]]);
            assert_eq!(second, vec![vec![10.0], vec![11.0]]);
        }
    }

    #[test]
    fn mpi_env_validates_handles() {
        let world = SimWorld::new(1);
        let mut env = MpiEnv::new(world, 0);
        let err = env.call("MPI_Comm_rank", &[RtValue::Int(0)]).unwrap_err();
        assert!(err.contains("invalid communicator"), "{err}");
        let ok = env.call("MPI_Comm_rank", &[RtValue::Int(abi::MPI_COMM_WORLD)]).unwrap();
        assert!(matches!(ok[0], RtValue::Int(0)));
    }

    #[test]
    fn latency_delays_delivery_without_changing_data() {
        let world = SimWorld::new_with_latency(2, std::time::Duration::from_millis(20));
        world.send(0, 1, 3, vec![4.0, 5.0]);
        // In flight: not yet visible to a nonblocking receive.
        assert!(world.try_recv(1, 0, 3).is_none(), "message still in transit");
        // The blocking receive waits out the latency and gets the exact
        // payload.
        let t0 = std::time::Instant::now();
        assert_eq!(world.recv(1, 0, 3).unwrap(), vec![4.0, 5.0]);
        assert!(t0.elapsed() >= std::time::Duration::from_millis(5), "recv waited for delivery");
        assert_eq!(world.total_recv_blocked(), 1);
        assert_eq!(world.total_recv_immediate(), 0);
    }

    #[test]
    fn delivered_messages_complete_receives_immediately() {
        let world = SimWorld::new(2);
        world.send(0, 1, 7, vec![1.0]);
        assert_eq!(world.try_recv(1, 0, 7), Some(vec![1.0]));
        world.send(0, 1, 7, vec![2.0]);
        assert_eq!(world.recv(1, 0, 7).unwrap(), vec![2.0]);
        assert_eq!(world.total_recv_immediate(), 1);
        assert_eq!(world.total_recv_blocked(), 0);
    }

    #[test]
    fn irecv_completes_in_the_background() {
        use crate::value::BufView;
        let world = SimWorld::new(2);
        // The message is already in the mailbox when the receive is
        // posted: the request completes at post time, and MPI_Wait on it
        // never touches the world.
        world.send(1, 0, 5, vec![9.0, 8.0]);
        let mut env = MpiEnv::new(world, 0);
        let buf = BufView::alloc(vec![2]);
        let list = env.call("MPI_Request_alloc", &[RtValue::Int(1)]).unwrap();
        let req = env.call("MPI_Request_get", &[list[0].clone(), RtValue::Int(0)]).unwrap();
        env.call(
            "MPI_Irecv",
            &[
                RtValue::Ptr { data: std::rc::Rc::clone(&buf.data), offset: 0 },
                RtValue::Int(2),
                RtValue::Int(abi::MPI_DOUBLE),
                RtValue::Int(1),
                RtValue::Int(5),
                RtValue::Int(abi::MPI_COMM_WORLD),
                req[0].clone(),
            ],
        )
        .unwrap();
        // Completed in the background: data is in place before any wait.
        assert_eq!(buf.to_vec(), vec![9.0, 8.0]);
        let done = env.call("MPI_Test", &[req[0].clone()]).unwrap();
        assert!(matches!(done[0], RtValue::Int(1)));
        env.call("MPI_Wait", &[req[0].clone()]).unwrap();
        assert_eq!(buf.to_vec(), vec![9.0, 8.0]);
    }

    #[test]
    fn test_polls_pending_receives() {
        use crate::value::BufView;
        let world = SimWorld::new(2);
        let w = Arc::clone(&world);
        let mut env = MpiEnv::new(world, 0);
        let buf = BufView::alloc(vec![1]);
        let list = env.call("MPI_Request_alloc", &[RtValue::Int(1)]).unwrap();
        let req = env.call("MPI_Request_get", &[list[0].clone(), RtValue::Int(0)]).unwrap();
        env.call(
            "MPI_Irecv",
            &[
                RtValue::Ptr { data: std::rc::Rc::clone(&buf.data), offset: 0 },
                RtValue::Int(1),
                RtValue::Int(abi::MPI_DOUBLE),
                RtValue::Int(1),
                RtValue::Int(9),
                RtValue::Int(abi::MPI_COMM_WORLD),
                req[0].clone(),
            ],
        )
        .unwrap();
        let not_done = env.call("MPI_Test", &[req[0].clone()]).unwrap();
        assert!(matches!(not_done[0], RtValue::Int(0)), "nothing sent yet");
        w.send(1, 0, 9, vec![3.5]);
        let done = env.call("MPI_Test", &[req[0].clone()]).unwrap();
        assert!(matches!(done[0], RtValue::Int(1)));
        assert_eq!(buf.to_vec(), vec![3.5]);
    }

    #[test]
    fn volume_accounting() {
        let world = SimWorld::new(2);
        world.send(0, 1, 0, vec![0.0; 100]);
        world.send(1, 0, 0, vec![0.0; 50]);
        assert_eq!(world.total_sent_elements(), 150);
        assert_eq!(world.total_sent_messages(), 2);
    }

    #[test]
    fn dropped_message_is_recoverable_by_rerequest() {
        let plan = Arc::new(FaultPlan::new().with_msg_fault(0, 1, 0, FaultAction::Drop));
        let world = SimWorld::new_with_faults(2, plan);
        world.send(0, 1, 7, vec![1.5, 2.5]);
        assert!(world.try_recv(1, 0, 7).is_none(), "dropped message never arrives");
        let got = world.recv_timeout(1, 0, 7, std::time::Duration::from_millis(10)).unwrap();
        assert_eq!(got, None, "bounded receive times out cleanly");
        assert!(world.rerequest(1, 0, 7), "lost payload is retransmittable");
        assert_eq!(world.recv(1, 0, 7).unwrap(), vec![1.5, 2.5]);
        assert!(!world.rerequest(1, 0, 7), "one loss, one retransmission");
    }

    #[test]
    fn duplicate_and_reorder_faults_perturb_the_channel() {
        let plan = Arc::new(
            FaultPlan::new().with_msg_fault(0, 1, 0, FaultAction::Duplicate).with_msg_fault(
                0,
                1,
                2,
                FaultAction::Reorder,
            ),
        );
        let world = SimWorld::new_with_faults(2, plan);
        world.send(0, 1, 3, vec![1.0]); // duplicated
        world.send(0, 1, 3, vec![2.0]);
        world.send(0, 1, 3, vec![3.0]); // reordered to the head
        assert_eq!(world.recv(1, 0, 3).unwrap(), vec![3.0], "reorder overtakes");
        assert_eq!(world.recv(1, 0, 3).unwrap(), vec![1.0]);
        assert_eq!(world.recv(1, 0, 3).unwrap(), vec![1.0], "duplicate delivered twice");
        assert_eq!(world.recv(1, 0, 3).unwrap(), vec![2.0]);
    }

    #[test]
    fn delay_spike_holds_delivery_without_losing_data() {
        let plan = Arc::new(FaultPlan::new().with_msg_fault(
            0,
            1,
            0,
            FaultAction::DelaySpike { extra_ms: 20 },
        ));
        let world = SimWorld::new_with_faults(2, plan);
        world.send(0, 1, 5, vec![9.0]);
        assert!(world.try_recv(1, 0, 5).is_none(), "spiked message is in flight");
        assert_eq!(world.recv(1, 0, 5).unwrap(), vec![9.0], "arrives after the spike");
    }

    #[test]
    fn poison_unblocks_receives_and_collectives() {
        let world = SimWorld::new(2);
        let w = Arc::clone(&world);
        let recv_side = thread::spawn(move || w.recv(1, 0, 7));
        let w = Arc::clone(&world);
        let coll_side = thread::spawn(move || w.exchange_all(0, vec![1.0]));
        thread::sleep(std::time::Duration::from_millis(20));
        world.poison(1, "injected crash at step 3");
        let recv_err = recv_side.join().unwrap().unwrap_err();
        assert_eq!(
            recv_err,
            MpiError::Poisoned { by_rank: 1, reason: "injected crash at step 3".into() }
        );
        let coll_err = coll_side.join().unwrap().unwrap_err();
        assert!(matches!(coll_err, MpiError::Poisoned { by_rank: 1, .. }), "{coll_err}");
    }

    #[test]
    fn double_deposit_is_a_diagnosis_not_a_panic() {
        let world = SimWorld::new(2);
        let w = Arc::clone(&world);
        let peer = thread::spawn(move || w.exchange_all(1, vec![2.0]));
        let first = world.exchange_all(0, vec![1.0]).unwrap();
        assert_eq!(first, vec![vec![1.0], vec![2.0]]);
        peer.join().unwrap().unwrap();
        // Generation 1: rank 0 deposits, then deposits again before the
        // rendezvous completes.
        let mut st = world.coll.lock();
        st.deposits[0] = Some(vec![7.0]);
        drop(st);
        let err = world.exchange_all(0, vec![8.0]).unwrap_err();
        assert_eq!(err, MpiError::DoubleDeposit { rank: 0, generation: 1 });
        assert!(err.to_string().contains("rank 0"), "diagnosis names the rank");
        assert!(err.to_string().contains("generation 1"), "and the generation");
    }

    #[test]
    fn bounded_collective_names_the_missing_ranks() {
        let plan = Arc::new(FaultPlan::new());
        let world = SimWorld::new_resilient(
            3,
            std::time::Duration::ZERO,
            Tracer::disabled(),
            Some(plan),
            Some(Reliability { collective_timeout_ms: 30, ..Reliability::default() }),
        );
        let w = Arc::clone(&world);
        let peer = thread::spawn(move || w.exchange_all(1, vec![1.0]));
        // Rank 2 never deposits: both waiters time out naming it.
        let err = world.exchange_all(0, vec![0.0]).unwrap_err();
        match err {
            MpiError::CollectiveTimeout { rank: 0, generation: 0, ref missing, .. } => {
                assert_eq!(missing, &vec![2]);
            }
            other => panic!("unexpected error {other}"),
        }
        let peer_err = peer.join().unwrap().unwrap_err();
        assert!(matches!(peer_err, MpiError::CollectiveTimeout { rank: 1, .. }), "{peer_err}");
    }

    #[test]
    fn fault_free_worlds_have_no_resilience_state() {
        let world = SimWorld::new(2);
        assert!(world.fault_plan().is_none());
        assert!(world.reliability().is_none());
        assert!(world.poison_info().is_none());
        world.send(0, 1, 1, vec![1.0]);
        assert_eq!(world.recv(1, 0, 1).unwrap(), vec![1.0]);
    }
}
