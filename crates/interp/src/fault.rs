//! Deterministic fault injection for the SimMPI runtime.
//!
//! A [`FaultPlan`] is a *schedule* of faults, fixed before the run
//! starts, so an injected failure is exactly reproducible: message
//! faults key on the per-channel message index (the `index`-th message
//! sent from `src` to `dst`, which is deterministic because each rank
//! is one thread sending in program order), and rank faults key on the
//! (rank, timestep) pair. Thread interleaving cannot perturb which
//! message gets injured.
//!
//! Every fault fires **once**: the plan carries a fired flag per entry,
//! shared across world re-creations (the resilient driver reuses the
//! same `Arc<FaultPlan>` after a rollback), which guarantees forward
//! progress — a crash that already fired cannot re-kill the respawned
//! cohort when it replays the same steps.

use std::sync::atomic::{AtomicBool, Ordering};

/// What a scheduled fault does to its target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// The message never arrives: its payload moves to the world's lost
    /// store, recoverable through [`rerequest`] (the model of a
    /// link-layer retransmission after a receiver-side timeout).
    ///
    /// [`rerequest`]: crate::SimWorld::rerequest
    Drop,
    /// The message is delivered twice (idempotent receivers must
    /// suppress the duplicate).
    Duplicate,
    /// The message jumps to the head of its channel queue, overtaking
    /// any older undelivered messages.
    Reorder,
    /// Delivery is delayed by `extra_ms` on top of the world's latency.
    DelaySpike {
        /// Extra in-flight time in milliseconds.
        extra_ms: u64,
    },
    /// The rank sleeps `for_ms` at the top of the step (a slow node; the
    /// run must still complete, possibly after peers time out and
    /// retry).
    RankStall {
        /// Stall duration in milliseconds.
        for_ms: u64,
    },
    /// The rank aborts at the top of the step with a typed error,
    /// poisoning the cohort; the resilient driver respawns it and rolls
    /// everyone back to the last consistent checkpoint.
    RankCrash,
}

impl FaultAction {
    /// Stable kind name (trace event labels, report keys).
    pub fn name(&self) -> &'static str {
        match self {
            FaultAction::Drop => "drop",
            FaultAction::Duplicate => "duplicate",
            FaultAction::Reorder => "reorder",
            FaultAction::DelaySpike { .. } => "delay-spike",
            FaultAction::RankStall { .. } => "rank-stall",
            FaultAction::RankCrash => "rank-crash",
        }
    }
}

/// A fault scheduled on the `msg_index`-th message (0-based, counting
/// every tag) of the `src → dst` channel.
#[derive(Clone, Debug)]
pub struct MsgFault {
    /// Sending rank.
    pub src: i32,
    /// Receiving rank.
    pub dst: i32,
    /// 0-based index into the channel's send sequence.
    pub msg_index: u64,
    /// What happens to that message.
    pub action: FaultAction,
}

/// A fault scheduled when `rank` reaches the top of timestep `at_step`.
#[derive(Clone, Debug)]
pub struct RankFault {
    /// Target rank.
    pub rank: i32,
    /// 0-based timestep at which the fault fires.
    pub at_step: u64,
    /// What happens to the rank ([`FaultAction::RankStall`] or
    /// [`FaultAction::RankCrash`]).
    pub action: FaultAction,
}

/// A seeded, schedulable fault model. Build one explicitly with
/// [`FaultPlan::new`] + the `with_*` methods, or draw a random schedule
/// with [`FaultPlan::random`]; attach it via
/// [`SimWorld::new_with_faults`](crate::SimWorld::new_with_faults).
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    msg_faults: Vec<MsgFault>,
    rank_faults: Vec<RankFault>,
    fired_msg: Vec<AtomicBool>,
    fired_rank: Vec<AtomicBool>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules a message fault.
    #[must_use]
    pub fn with_msg_fault(
        mut self,
        src: i32,
        dst: i32,
        msg_index: u64,
        action: FaultAction,
    ) -> FaultPlan {
        debug_assert!(!matches!(action, FaultAction::RankStall { .. } | FaultAction::RankCrash));
        self.msg_faults.push(MsgFault { src, dst, msg_index, action });
        self.fired_msg.push(AtomicBool::new(false));
        self
    }

    /// Schedules a rank fault.
    #[must_use]
    pub fn with_rank_fault(mut self, rank: i32, at_step: u64, action: FaultAction) -> FaultPlan {
        debug_assert!(matches!(action, FaultAction::RankStall { .. } | FaultAction::RankCrash));
        self.rank_faults.push(RankFault { rank, at_step, action });
        self.fired_rank.push(AtomicBool::new(false));
        self
    }

    /// Draws a random schedule of `faults` faults for a run of `ranks`
    /// ranks over `steps` timesteps. Deterministic in `seed`. Message
    /// indices are drawn from a small range so they land on traffic that
    /// actually occurs; at most one crash is scheduled (the recovery
    /// path is exercised without demanding an unbounded retry budget).
    pub fn random(seed: u64, ranks: usize, steps: u64, faults: usize) -> FaultPlan {
        let mut plan = FaultPlan { seed, ..FaultPlan::default() };
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            // xorshift64* — matches the repo's test RNG.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
            state
        };
        let ranks = ranks.max(2) as u64;
        let mut crashes = 0;
        for _ in 0..faults {
            let roll = next() % 100;
            let src = (next() % ranks) as i32;
            let dst = {
                let mut d = (next() % ranks) as i32;
                if d == src {
                    d = (d + 1) % ranks as i32;
                }
                d
            };
            // Early indices: each neighbor pair exchanges a handful of
            // messages per step, so small indices hit real traffic.
            let msg_index = next() % (2 * steps.max(1));
            let at_step = next() % steps.max(1);
            if roll < 30 {
                plan = plan.with_msg_fault(src, dst, msg_index, FaultAction::Drop);
            } else if roll < 50 {
                plan = plan.with_msg_fault(src, dst, msg_index, FaultAction::Duplicate);
            } else if roll < 65 {
                plan = plan.with_msg_fault(src, dst, msg_index, FaultAction::Reorder);
            } else if roll < 80 {
                let extra_ms = 1 + next() % 20;
                plan =
                    plan.with_msg_fault(src, dst, msg_index, FaultAction::DelaySpike { extra_ms });
            } else if roll < 90 || crashes > 0 {
                let for_ms = 1 + next() % 30;
                plan = plan.with_rank_fault(src, at_step, FaultAction::RankStall { for_ms });
            } else {
                crashes += 1;
                plan = plan.with_rank_fault(src, at_step, FaultAction::RankCrash);
            }
        }
        plan
    }

    /// The seed this plan was drawn from (0 for hand-built plans).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan schedules any [`FaultAction::RankCrash`].
    pub fn has_crash(&self) -> bool {
        self.rank_faults.iter().any(|f| f.action == FaultAction::RankCrash)
    }

    /// Total faults scheduled.
    pub fn len(&self) -> usize {
        self.msg_faults.len() + self.rank_faults.len()
    }

    /// Whether no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every scheduled action (message faults first, then rank faults).
    pub fn actions(&self) -> impl Iterator<Item = &FaultAction> {
        self.msg_faults.iter().map(|f| &f.action).chain(self.rank_faults.iter().map(|f| &f.action))
    }

    /// Consulted by [`SimWorld::send`](crate::SimWorld::send): the
    /// action to apply to the `index`-th message on `src → dst`, if an
    /// unfired fault matches. Fire-once: a second call with the same
    /// coordinates returns `None`.
    pub fn on_send(&self, src: i32, dst: i32, index: u64) -> Option<FaultAction> {
        for (i, f) in self.msg_faults.iter().enumerate() {
            if f.src == src
                && f.dst == dst
                && f.msg_index == index
                && self.fired_msg[i]
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                return Some(f.action.clone());
            }
        }
        None
    }

    /// Consulted by the executor at the top of each timestep: the action
    /// to apply when `rank` starts `step`, if an unfired fault matches.
    /// Fire-once across rollbacks (the respawned cohort replays the same
    /// steps without re-triggering).
    pub fn on_step(&self, rank: i32, step: u64) -> Option<FaultAction> {
        for (i, f) in self.rank_faults.iter().enumerate() {
            if f.rank == rank
                && f.at_step == step
                && self.fired_rank[i]
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                return Some(f.action.clone());
            }
        }
        None
    }
}

/// Timeout/retry knobs for reliable exchanges. Attached to a world by
/// [`SimWorld::new_with_faults`](crate::SimWorld::new_with_faults) (or
/// explicitly via
/// [`SimWorld::new_resilient`](crate::SimWorld::new_resilient)); a world
/// without one runs the original zero-overhead protocol.
#[derive(Clone, Debug)]
pub struct Reliability {
    /// Initial per-wait timeout for a halo receive, milliseconds. Each
    /// retry doubles it (bounded exponential backoff).
    pub swap_timeout_ms: u64,
    /// Retry budget per receive; exhausting it is a typed error.
    pub max_retries: u32,
    /// Total wait budget for a collective rendezvous, milliseconds.
    pub collective_timeout_ms: u64,
}

impl Default for Reliability {
    fn default() -> Reliability {
        Reliability { swap_timeout_ms: 40, max_retries: 6, collective_timeout_ms: 4000 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_exactly_once() {
        let plan = FaultPlan::new().with_msg_fault(0, 1, 2, FaultAction::Drop).with_rank_fault(
            1,
            3,
            FaultAction::RankCrash,
        );
        assert_eq!(plan.on_send(0, 1, 1), None, "index mismatch");
        assert_eq!(plan.on_send(1, 0, 2), None, "channel mismatch");
        assert_eq!(plan.on_send(0, 1, 2), Some(FaultAction::Drop));
        assert_eq!(plan.on_send(0, 1, 2), None, "fire-once");
        assert_eq!(plan.on_step(1, 2), None);
        assert_eq!(plan.on_step(1, 3), Some(FaultAction::RankCrash));
        assert_eq!(plan.on_step(1, 3), None, "crash cannot refire after rollback");
    }

    #[test]
    fn random_plans_are_deterministic_in_the_seed() {
        let a = FaultPlan::random(42, 4, 10, 8);
        let b = FaultPlan::random(42, 4, 10, 8);
        assert_eq!(a.len(), 8);
        assert_eq!(format!("{:?}", a.msg_faults), format!("{:?}", b.msg_faults));
        assert_eq!(format!("{:?}", a.rank_faults), format!("{:?}", b.rank_faults));
        let c = FaultPlan::random(43, 4, 10, 8);
        assert_ne!(
            format!("{:?}", (&a.msg_faults, &a.rank_faults)),
            format!("{:?}", (&c.msg_faults, &c.rank_faults)),
            "different seeds draw different schedules"
        );
    }

    #[test]
    fn random_plans_schedule_at_most_one_crash() {
        for seed in 0..64 {
            let plan = FaultPlan::random(seed, 4, 8, 12);
            let crashes =
                plan.rank_faults.iter().filter(|f| f.action == FaultAction::RankCrash).count();
            assert!(crashes <= 1, "seed {seed} scheduled {crashes} crashes");
        }
    }
}
