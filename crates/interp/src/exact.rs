//! Exact, order-invariant f64 accumulation for global reductions.
//!
//! Floating-point addition is not associative, so a distributed sum
//! whose per-rank partials depend on the decomposition cannot be made
//! bit-identical across rank counts by *any* fixed combine tree — the
//! tree's leaves move when the strategy changes. [`ExactSum`] sidesteps
//! the problem: every input is accumulated **exactly** into a
//! fixed-point superaccumulator wide enough for the entire f64 range,
//! and the single rounding to f64 happens once, at the end. Exact
//! addition is associative and commutative, so *any* partitioning of
//! the inputs — per thread, per rank, per strategy — merges to the
//! same accumulator state and rounds to the same bits as a serial
//! left-to-right pass. This is the determinism guarantee behind
//! `stencil.reduce`: the result is the **correctly rounded exact sum**
//! of the inputs, an order-free mathematical function of the multiset.
//!
//! # Representation
//!
//! A finite f64 is an integer multiple of 2⁻¹⁰⁷⁴ with at most 2098
//! significant bits (max exponent 2¹⁰²³ × 53-bit mantissa). The
//! accumulator stores that integer in [`NLIMBS`] signed 64-bit limbs
//! of radix 2³², value = Σ `limbs[i]`·2^(32·i − 1074): 66 limbs cover
//! the f64 range, one more absorbs carries. Each `add` deposits the
//! (up to three) 32-bit windows of the shifted mantissa with plain
//! wrapping-free i64 adds; a counter renormalizes every 2³⁰ deposits,
//! long before any limb can overflow.
//!
//! Non-finite inputs are siphoned into a separate IEEE sum: over a
//! *set* of specials the result class (NaN, or the common infinity) is
//! order-independent, so determinism survives; the exact path then
//! never sees them.
//!
//! Min/max reductions need no such machinery — [`ReduceAcc`] folds
//! them with [`f64::total_cmp`], a total order on bit patterns, which
//! is equally order-invariant.

/// Limbs in the superaccumulator: 66 cover every finite f64 in units
/// of 2⁻¹⁰⁷⁴, plus one carry-headroom limb.
const NLIMBS: usize = 67;

/// Deposits between forced renormalizations. Each deposit perturbs a
/// limb by < 2³², so 2³⁰ of them keep every limb below 2⁶³.
const RENORM_EVERY: u32 = 1 << 30;

/// Exact f64 accumulator: order-invariant sum with one final rounding.
#[derive(Clone, Debug)]
pub struct ExactSum {
    limbs: [i64; NLIMBS],
    pending: u32,
    special: f64,
    has_special: bool,
}

impl Default for ExactSum {
    fn default() -> Self {
        ExactSum::new()
    }
}

impl ExactSum {
    /// Number of f64 words in the wire encoding ([`ExactSum::to_wire`]).
    pub const WIRE_LEN: usize = NLIMBS + 2;

    /// An empty accumulator (rounds to `+0.0`).
    pub fn new() -> ExactSum {
        ExactSum { limbs: [0; NLIMBS], pending: 0, special: 0.0, has_special: false }
    }

    /// Accumulates `x` exactly. `±0.0` deposits nothing (the empty sum
    /// rounds to `+0.0`, so a sum of zeros is `+0.0` regardless of the
    /// signs — consistently on every path). Non-finite values divert to
    /// the IEEE special sum.
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            self.special += x;
            self.has_special = true;
            return;
        }
        let bits = x.to_bits();
        let frac = bits & ((1u64 << 52) - 1);
        let e = ((bits >> 52) & 0x7ff) as u32;
        // value = mant · 2^(s − 1074): subnormals sit at the bottom,
        // normals carry the implicit bit and shift by e − 1.
        let (mant, s) = if e == 0 { (frac, 0) } else { (frac | (1u64 << 52), e - 1) };
        if mant == 0 {
            return;
        }
        let q = (s / 32) as usize;
        let wide = (mant as u128) << (s % 32); // ≤ 84 bits: three 32-bit windows
        let w =
            [(wide & 0xffff_ffff) as i64, ((wide >> 32) & 0xffff_ffff) as i64, (wide >> 64) as i64];
        if bits >> 63 == 0 {
            self.limbs[q] += w[0];
            self.limbs[q + 1] += w[1];
            self.limbs[q + 2] += w[2];
        } else {
            self.limbs[q] -= w[0];
            self.limbs[q + 1] -= w[1];
            self.limbs[q + 2] -= w[2];
        }
        self.pending += 1;
        if self.pending >= RENORM_EVERY {
            self.renormalize();
        }
    }

    /// Restores the canonical form: `limbs[..N-1]` in `[0, 2³²)`, the
    /// top limb carrying the (signed) remainder. The canonical limbs
    /// are a pure function of the accumulated value, which is what
    /// makes the wire encoding deterministic.
    fn renormalize(&mut self) {
        for i in 0..NLIMBS - 1 {
            let carry = self.limbs[i] >> 32; // arithmetic: floor division
            self.limbs[i] -= carry << 32;
            self.limbs[i + 1] += carry;
        }
        self.pending = 0;
    }

    /// Merges another accumulator in: exactly equivalent to having
    /// added all of `other`'s inputs to `self`, in any order.
    pub fn merge(&mut self, mut other: ExactSum) {
        self.renormalize();
        other.renormalize();
        for (a, b) in self.limbs.iter_mut().zip(other.limbs) {
            *a += b;
        }
        self.pending = 1;
        if other.has_special {
            self.special += other.special;
            self.has_special = true;
        }
    }

    /// Rounds the exact value to the nearest f64 (ties to even) — the
    /// one place the sum meets floating point.
    pub fn round(&self) -> f64 {
        if self.has_special {
            return self.special;
        }
        let mut t = self.clone();
        t.renormalize();
        let mut sign = 1.0f64;
        if t.limbs[NLIMBS - 1] < 0 {
            sign = -1.0;
            for l in &mut t.limbs {
                *l = -*l;
            }
            t.renormalize();
        }
        let Some(h) = t.limbs.iter().rposition(|&l| l != 0) else {
            return 0.0;
        };
        let bits_h = 64 - (t.limbs[h] as u64).leading_zeros() as u64;
        let lbits = 32 * h as u64 + bits_h;
        if lbits <= 53 {
            // The value fits a mantissa: both conversions below are
            // exact, so no rounding happens at all.
            let m = (t.limbs[0] as u64) | ((t.limbs[1] as u64) << 32);
            return sign * (m as f64) * f64::from_bits(1); // × 2⁻¹⁰⁷⁴
        }
        // Extract the top 53 bits plus guard/sticky from a 3-limb
        // window ending at the highest set bit.
        let mut sh = lbits - 53; // final exponent, in units of 2⁻¹⁰⁷⁴
        let base = h.saturating_sub(2);
        let mut window: u128 = 0;
        for i in (base..=h).rev() {
            window = (window << 32) | (t.limbs[i] as u64 as u128);
        }
        let off = (sh - 32 * base as u64) as u32; // ≥ 1 by construction
        let mut mant = (window >> off) as u64;
        let guard = (window >> (off - 1)) & 1 == 1;
        let sticky =
            window & ((1u128 << (off - 1)) - 1) != 0 || t.limbs[..base].iter().any(|&l| l != 0);
        if guard && (sticky || mant & 1 == 1) {
            mant += 1;
            if mant == 1u64 << 53 {
                mant >>= 1;
                sh += 1;
            }
        }
        // lbits > 53 ⇒ the value is ≥ 2⁻¹⁰²¹: always normal, so the
        // exponent assembles directly (no double rounding possible).
        let e2 = sh as i64 - 1022;
        if e2 > 1023 {
            return sign * f64::INFINITY;
        }
        let out = (((e2 + 1023) as u64) << 52) | (mant & ((1u64 << 52) - 1));
        sign * f64::from_bits(out)
    }

    /// Serializes to [`ExactSum::WIRE_LEN`] f64 words for an exact
    /// cross-rank exchange: the canonical limbs (each below 2⁵³, hence
    /// exactly representable), then the special flag and special sum.
    pub fn to_wire(&self) -> Vec<f64> {
        let mut t = self.clone();
        t.renormalize();
        let mut w: Vec<f64> = t.limbs.iter().map(|&l| l as f64).collect();
        w.push(f64::from(u8::from(self.has_special)));
        w.push(self.special);
        w
    }

    /// Deserializes a [`ExactSum::to_wire`] payload.
    ///
    /// # Errors
    /// Rejects payloads of the wrong length.
    pub fn from_wire(w: &[f64]) -> Result<ExactSum, String> {
        if w.len() != Self::WIRE_LEN {
            return Err(format!(
                "exact-sum wire has {} words, expected {}",
                w.len(),
                Self::WIRE_LEN
            ));
        }
        let mut s = ExactSum::new();
        for (l, &v) in s.limbs.iter_mut().zip(w) {
            *l = v as i64;
        }
        s.has_special = w[NLIMBS] != 0.0;
        s.special = w[NLIMBS + 1];
        Ok(s)
    }
}

/// The reduction kinds `stencil.reduce` supports.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ReduceKind {
    /// Correctly rounded exact sum of the field's points.
    Sum,
    /// Correctly rounded exact sum of pointwise products of two fields.
    Dot,
    /// Minimum under [`f64::total_cmp`] (empty range → `+∞`).
    Min,
    /// Maximum under [`f64::total_cmp`] (empty range → `−∞`).
    Max,
}

impl ReduceKind {
    /// All kinds, for matrix-style tests.
    pub const ALL: [ReduceKind; 4] =
        [ReduceKind::Sum, ReduceKind::Dot, ReduceKind::Min, ReduceKind::Max];

    /// The attribute spelling (`sum`/`dot`/`min`/`max`).
    pub fn name(self) -> &'static str {
        match self {
            ReduceKind::Sum => "sum",
            ReduceKind::Dot => "dot",
            ReduceKind::Min => "min",
            ReduceKind::Max => "max",
        }
    }

    /// Parses the attribute spelling.
    pub fn parse(s: &str) -> Option<ReduceKind> {
        match s {
            "sum" => Some(ReduceKind::Sum),
            "dot" => Some(ReduceKind::Dot),
            "min" => Some(ReduceKind::Min),
            "max" => Some(ReduceKind::Max),
            _ => None,
        }
    }

    /// Number of field operands (`dot` combines two).
    pub fn arity(self) -> usize {
        if self == ReduceKind::Dot {
            2
        } else {
            1
        }
    }
}

/// A running reduction of one [`ReduceKind`]: exact accumulation for
/// sum/dot, a `total_cmp` lattice fold for min/max. Every operation is
/// order-invariant, so partials may be split per thread, per rank, or
/// per strategy and merged in any order with bit-identical results.
#[derive(Clone, Debug)]
// One accumulator exists per thread-chunk / rank, not per element, so
// the Exact variant's superaccumulator being large is irrelevant;
// boxing it would put an indirection on the per-point add path instead.
#[allow(clippy::large_enum_variant)]
pub enum ReduceAcc {
    /// Exact sum state (sum and dot).
    Exact(ExactSum),
    /// Current lattice extremum (min and max), with the kind.
    Lattice(ReduceKind, f64),
}

impl ReduceAcc {
    /// The identity accumulator for `kind`.
    pub fn new(kind: ReduceKind) -> ReduceAcc {
        match kind {
            ReduceKind::Sum | ReduceKind::Dot => ReduceAcc::Exact(ExactSum::new()),
            ReduceKind::Min => ReduceAcc::Lattice(kind, f64::INFINITY),
            ReduceKind::Max => ReduceAcc::Lattice(kind, f64::NEG_INFINITY),
        }
    }

    /// Accumulates one point's contribution (for `dot`, pass the
    /// already-formed product — per-point products are deterministic).
    pub fn add(&mut self, x: f64) {
        match self {
            ReduceAcc::Exact(s) => s.add(x),
            ReduceAcc::Lattice(kind, cur) => {
                let take = match kind {
                    ReduceKind::Min => x.total_cmp(cur) == std::cmp::Ordering::Less,
                    _ => x.total_cmp(cur) == std::cmp::Ordering::Greater,
                };
                if take {
                    *cur = x;
                }
            }
        }
    }

    /// Merges another partial of the same kind.
    ///
    /// # Panics
    /// Panics if the kinds disagree (a compiler bug, not a data error).
    pub fn merge(&mut self, other: ReduceAcc) {
        match (self, other) {
            (ReduceAcc::Exact(a), ReduceAcc::Exact(b)) => a.merge(b),
            (acc @ ReduceAcc::Lattice(..), ReduceAcc::Lattice(_, v)) => acc.add(v),
            _ => panic!("merging reduce partials of different kinds"),
        }
    }

    /// The wire length for `kind` ([`ReduceAcc::to_wire`]).
    pub fn wire_len(kind: ReduceKind) -> usize {
        match kind {
            ReduceKind::Sum | ReduceKind::Dot => ExactSum::WIRE_LEN,
            ReduceKind::Min | ReduceKind::Max => 1,
        }
    }

    /// Serializes the partial for a cross-rank exchange.
    pub fn to_wire(&self) -> Vec<f64> {
        match self {
            ReduceAcc::Exact(s) => s.to_wire(),
            ReduceAcc::Lattice(_, v) => vec![*v],
        }
    }

    /// Deserializes a peer's [`ReduceAcc::to_wire`] payload.
    ///
    /// # Errors
    /// Rejects payloads of the wrong length for `kind`.
    pub fn from_wire(kind: ReduceKind, w: &[f64]) -> Result<ReduceAcc, String> {
        match kind {
            ReduceKind::Sum | ReduceKind::Dot => Ok(ReduceAcc::Exact(ExactSum::from_wire(w)?)),
            ReduceKind::Min | ReduceKind::Max => {
                if w.len() != 1 {
                    return Err(format!("min/max wire has {} words, expected 1", w.len()));
                }
                let mut acc = ReduceAcc::new(kind);
                acc.add(w[0]);
                Ok(acc)
            }
        }
    }

    /// The reduction result (one rounding for sum/dot; the extremum's
    /// exact bits for min/max).
    pub fn finish(&self) -> f64 {
        match self {
            ReduceAcc::Exact(s) => s.round(),
            ReduceAcc::Lattice(_, v) => *v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_of(xs: &[f64]) -> f64 {
        let mut s = ExactSum::new();
        for &x in xs {
            s.add(x);
        }
        s.round()
    }

    #[test]
    fn empty_and_zero_sums() {
        assert_eq!(sum_of(&[]).to_bits(), 0.0f64.to_bits());
        assert_eq!(sum_of(&[0.0, -0.0, 0.0]).to_bits(), 0.0f64.to_bits());
        assert_eq!(sum_of(&[42.5]), 42.5);
        assert_eq!(sum_of(&[-42.5]), -42.5);
    }

    #[test]
    fn cancellation_is_exact() {
        // Naive summation loses the 1.0 entirely; the exact sum keeps it.
        assert_eq!(sum_of(&[1e300, 1.0, -1e300]), 1.0);
        assert_eq!(sum_of(&[1e-300, 1e300, -1e300, -1e-300]), 0.0);
        assert_eq!(sum_of(&[f64::MAX, f64::MIN_POSITIVE, -f64::MAX]), f64::MIN_POSITIVE);
    }

    #[test]
    fn subnormals_accumulate_exactly() {
        let tiny = f64::from_bits(1); // 2⁻¹⁰⁷⁴
        let mut s = ExactSum::new();
        for _ in 0..1000 {
            s.add(tiny);
        }
        assert_eq!(s.round(), f64::from_bits(1000));
    }

    #[test]
    fn permutation_and_chunking_invariance() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Scatter magnitudes across ~120 binades to force carries.
            let m = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            m * (2.0f64).powi((state % 120) as i32 - 60)
        };
        let xs: Vec<f64> = (0..4096).map(|_| rnd()).collect();
        let want = sum_of(&xs);
        let mut rev = xs.clone();
        rev.reverse();
        assert_eq!(sum_of(&rev).to_bits(), want.to_bits(), "reversal changed the sum");
        for chunks in [2usize, 3, 7, 64] {
            let mut total = ExactSum::new();
            for c in xs.chunks(xs.len() / chunks) {
                let mut part = ExactSum::new();
                for &x in c {
                    part.add(x);
                }
                total.merge(part);
            }
            assert_eq!(total.round().to_bits(), want.to_bits(), "{chunks} chunks");
        }
    }

    #[test]
    fn rounding_is_nearest_even() {
        let ulp = f64::from_bits(1.0f64.to_bits() + 1) - 1.0;
        // Exactly halfway with even mantissa: stays at 1.0.
        assert_eq!(sum_of(&[1.0, ulp / 2.0]), 1.0);
        // Halfway plus a sliver: rounds up.
        assert_eq!(sum_of(&[1.0, ulp / 2.0, f64::from_bits(1)]), 1.0 + ulp);
        // Halfway from an odd mantissa: rounds up to even.
        assert_eq!(sum_of(&[1.0 + ulp, ulp / 2.0]), 1.0 + 2.0 * ulp);
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        assert_eq!(sum_of(&[f64::MAX, f64::MAX]), f64::INFINITY);
        assert_eq!(sum_of(&[-f64::MAX, -f64::MAX]), f64::NEG_INFINITY);
        // ...but cancellation brings it back in range.
        assert_eq!(sum_of(&[f64::MAX, f64::MAX, -f64::MAX]), f64::MAX);
    }

    #[test]
    fn specials_divert_to_ieee_semantics() {
        assert_eq!(sum_of(&[1.0, f64::INFINITY, 2.0]), f64::INFINITY);
        assert!(sum_of(&[f64::INFINITY, f64::NEG_INFINITY]).is_nan());
        assert!(sum_of(&[f64::NAN, 1.0]).is_nan());
    }

    #[test]
    fn wire_round_trips_canonically() {
        let mut s = ExactSum::new();
        for i in 0..500 {
            s.add((f64::from(i) * 0.37).sin() * 1e10);
            s.add(-(f64::from(i) * 0.11).cos() * 1e-10);
        }
        let w = s.to_wire();
        assert_eq!(w.len(), ExactSum::WIRE_LEN);
        let back = ExactSum::from_wire(&w).unwrap();
        assert_eq!(back.round().to_bits(), s.round().to_bits());
        assert_eq!(back.to_wire(), w, "wire form is canonical");
        assert!(ExactSum::from_wire(&w[1..]).is_err());
    }

    #[test]
    fn renormalization_under_pressure() {
        // Alternate signs at one magnitude so limbs swing negative.
        let mut s = ExactSum::new();
        for i in 0..10_000 {
            s.add(if i % 2 == 0 { 3.25e8 } else { -1.25e8 });
        }
        assert_eq!(s.round(), 5000.0 * 3.25e8 - 5000.0 * 1.25e8);
    }

    #[test]
    fn lattice_min_max_total_order() {
        for kind in [ReduceKind::Min, ReduceKind::Max] {
            let mut a = ReduceAcc::new(kind);
            for x in [3.0, -0.0, 0.0, -7.5, 2.0] {
                a.add(x);
            }
            let fwd = a.finish();
            let mut b = ReduceAcc::new(kind);
            for x in [2.0, -7.5, 0.0, -0.0, 3.0] {
                b.add(x);
            }
            assert_eq!(fwd.to_bits(), b.finish().to_bits());
        }
        // total_cmp distinguishes signed zero deterministically.
        let mut m = ReduceAcc::new(ReduceKind::Min);
        m.add(0.0);
        m.add(-0.0);
        assert_eq!(m.finish().to_bits(), (-0.0f64).to_bits());
        // Identities of the empty range.
        assert_eq!(ReduceAcc::new(ReduceKind::Min).finish(), f64::INFINITY);
        assert_eq!(ReduceAcc::new(ReduceKind::Max).finish(), f64::NEG_INFINITY);
    }

    #[test]
    fn reduce_acc_wire_round_trip() {
        for kind in ReduceKind::ALL {
            let mut a = ReduceAcc::new(kind);
            for x in [1.5, -2.25, 1e-9] {
                a.add(x);
            }
            let w = a.to_wire();
            assert_eq!(w.len(), ReduceAcc::wire_len(kind));
            let b = ReduceAcc::from_wire(kind, &w).unwrap();
            assert_eq!(b.finish().to_bits(), a.finish().to_bits(), "{kind:?}");
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in ReduceKind::ALL {
            assert_eq!(ReduceKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(ReduceKind::parse("prod"), None);
        assert_eq!(ReduceKind::Dot.arity(), 2);
        assert_eq!(ReduceKind::Sum.arity(), 1);
    }
}
