//! The tree-walking interpreter.
//!
//! Executes modules at any lowering level of the stack: stencil-dialect
//! reference semantics, structured control flow over memrefs, `dmp.swap`,
//! `mpi.*`, and the final `func.call @MPI_*` form (dispatched to
//! [`crate::sim_mpi::Externals`]). The workspace test-suite compares the
//! results of the same program executed at each level.

use crate::exact::{ReduceAcc, ReduceKind};
use crate::sim_mpi::{Externals, NoExternals};
use crate::value::{BufView, RequestState, RtValue};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use sten_dialects::arith::CmpIPredicate;
#[cfg(test)]
use sten_ir::Pass as _;
use sten_ir::{Attribute, Block, Bounds, Module, Op, TempType, Type, Value};

/// An execution failure.
#[derive(Debug, Clone)]
pub struct InterpError {
    /// Description, including the op that failed.
    pub message: String,
}

impl InterpError {
    fn new(op: &Op, message: impl fmt::Display) -> Self {
        InterpError { message: format!("while executing '{}': {message}", op.name) }
    }
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interpreter error: {}", self.message)
    }
}

impl std::error::Error for InterpError {}

enum Flow {
    Normal,
    Yield(Vec<RtValue>),
    Return(Vec<RtValue>),
}

/// Iterates all points of `bounds` in row-major order.
fn iter_points(
    bounds: &Bounds,
    mut f: impl FnMut(&[i64]) -> Result<(), InterpError>,
) -> Result<(), InterpError> {
    if bounds.num_points() <= 0 {
        return Ok(());
    }
    let mut p: Vec<i64> = bounds.lower();
    loop {
        f(&p)?;
        let mut d = bounds.rank();
        loop {
            if d == 0 {
                return Ok(());
            }
            d -= 1;
            p[d] += 1;
            if p[d] < bounds.0[d].1 {
                break;
            }
            p[d] = bounds.0[d].0;
        }
    }
}

/// The interpreter for one module (and, in SPMD runs, one rank).
pub struct Interpreter<'m> {
    module: &'m Module,
    externals: Box<dyn Externals + 'm>,
    env: HashMap<Value, RtValue>,
    /// Local reduction partials keyed by the `stencil.reduce` result, so
    /// a downstream `dmp.allreduce` can exchange the full accumulator
    /// (wire form) instead of the already-rounded scalar.
    reduce_partials: HashMap<Value, ReduceAcc>,
    /// Current grid point of the innermost `stencil.apply`.
    apply_points: Vec<Vec<i64>>,
    steps: u64,
    /// Step budget guarding against runaway loops.
    pub max_steps: u64,
}

impl<'m> Interpreter<'m> {
    /// Creates an interpreter with no external functions.
    pub fn new(module: &'m Module) -> Self {
        Self::with_externals(module, Box::new(NoExternals))
    }

    /// Creates an interpreter dispatching external calls to `externals`
    /// (e.g. [`crate::MpiEnv`]).
    pub fn with_externals(module: &'m Module, externals: Box<dyn Externals + 'm>) -> Self {
        Interpreter {
            module,
            externals,
            env: HashMap::new(),
            reduce_partials: HashMap::new(),
            apply_points: Vec::new(),
            steps: 0,
            max_steps: 2_000_000_000,
        }
    }

    /// Number of ops executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    fn get(&self, op: &Op, v: Value) -> Result<RtValue, InterpError> {
        self.env
            .get(&v)
            .cloned()
            .ok_or_else(|| InterpError::new(op, format!("value {v:?} has no runtime binding")))
    }

    fn get_int(&self, op: &Op, v: Value) -> Result<i64, InterpError> {
        self.get(op, v)?.as_int().map_err(|m| InterpError::new(op, m))
    }

    fn get_float(&self, op: &Op, v: Value) -> Result<f64, InterpError> {
        self.get(op, v)?.as_float().map_err(|m| InterpError::new(op, m))
    }

    fn get_buffer(&self, op: &Op, v: Value) -> Result<BufView, InterpError> {
        match self.get(op, v)? {
            RtValue::Buffer(b) => Ok(b),
            other => Err(InterpError::new(op, format!("expected buffer, got {other:?}"))),
        }
    }

    fn set(&mut self, v: Value, rt: RtValue) {
        self.env.insert(v, rt);
    }

    /// Calls a function by symbol name.
    ///
    /// # Errors
    /// Reports unknown symbols, arity mismatches, and any execution error.
    pub fn call_function(
        &mut self,
        name: &str,
        args: Vec<RtValue>,
    ) -> Result<Vec<RtValue>, InterpError> {
        let func = self
            .module
            .lookup_symbol(name)
            .ok_or_else(|| InterpError { message: format!("no function named '{name}'") })?;
        if func.regions.is_empty() || func.regions[0].blocks.is_empty() {
            return self
                .externals
                .call(name, &args)
                .map_err(|m| InterpError { message: format!("external '{name}': {m}") });
        }
        let block = func.region_block(0);
        if block.args.len() != args.len() {
            return Err(InterpError {
                message: format!(
                    "function '{name}' takes {} arguments, got {}",
                    block.args.len(),
                    args.len()
                ),
            });
        }
        for (&formal, actual) in block.args.iter().zip(args) {
            self.set(formal, actual);
        }
        match self.exec_block(block)? {
            Flow::Return(vals) => Ok(vals),
            _ => Ok(vec![]),
        }
    }

    fn exec_block(&mut self, block: &'m Block) -> Result<Flow, InterpError> {
        for op in &block.ops {
            match self.exec_op(op)? {
                Flow::Normal => {}
                flow => return Ok(flow),
            }
        }
        Ok(Flow::Normal)
    }

    fn bin_int(
        &mut self,
        op: &Op,
        f: impl Fn(i64, i64) -> Result<i64, String>,
    ) -> Result<(), InterpError> {
        let a = self.get_int(op, op.operand(0))?;
        let b = self.get_int(op, op.operand(1))?;
        let r = f(a, b).map_err(|m| InterpError::new(op, m))?;
        self.set(op.result(0), RtValue::Int(r));
        Ok(())
    }

    fn bin_float(&mut self, op: &Op, f: impl Fn(f64, f64) -> f64) -> Result<(), InterpError> {
        let a = self.get_float(op, op.operand(0))?;
        let b = self.get_float(op, op.operand(1))?;
        self.set(op.result(0), RtValue::Float(f(a, b)));
        Ok(())
    }

    /// Bounds of a temp-typed SSA value (from the type system).
    fn temp_bounds(&self, op: &Op, v: Value) -> Result<Bounds, InterpError> {
        match self.module.values.ty(v) {
            Type::Temp(TempType { bounds: Some(b), .. }) => Ok(b.clone()),
            other => Err(InterpError::new(
                op,
                format!("temp bounds unknown (run shape inference): {other:?}"),
            )),
        }
    }

    /// Logical lower bound of a field/temp-typed value.
    fn logical_lb(&self, op: &Op, v: Value) -> Result<Vec<i64>, InterpError> {
        match self.module.values.ty(v) {
            Type::Field(f) => Ok(f.bounds.lower()),
            Type::Temp(TempType { bounds: Some(b), .. }) => Ok(b.lower()),
            Type::MemRef(m) => Ok(vec![0; m.rank()]),
            other => Err(InterpError::new(op, format!("no logical bounds for {other:?}"))),
        }
    }

    fn exec_op(&mut self, op: &'m Op) -> Result<Flow, InterpError> {
        self.steps += 1;
        if self.steps > self.max_steps {
            return Err(InterpError::new(op, "step budget exhausted"));
        }
        match op.name.as_str() {
            // -------------------------------------------------- arith ----
            "arith.constant" => {
                let rt = match op.attr("value") {
                    Some(Attribute::Int(v, _)) => RtValue::Int(*v),
                    Some(Attribute::Float(f)) => RtValue::Float(f.value()),
                    other => return Err(InterpError::new(op, format!("bad constant {other:?}"))),
                };
                self.set(op.result(0), rt);
            }
            "arith.addi" => self.bin_int(op, |a, b| Ok(a.wrapping_add(b)))?,
            "arith.subi" => self.bin_int(op, |a, b| Ok(a.wrapping_sub(b)))?,
            "arith.muli" => self.bin_int(op, |a, b| Ok(a.wrapping_mul(b)))?,
            "arith.divsi" => self.bin_int(op, |a, b| {
                if b == 0 {
                    Err("division by zero".into())
                } else {
                    Ok(a.wrapping_div(b))
                }
            })?,
            "arith.remsi" => self.bin_int(op, |a, b| {
                if b == 0 {
                    Err("remainder by zero".into())
                } else {
                    Ok(a.wrapping_rem(b))
                }
            })?,
            "arith.minsi" => self.bin_int(op, |a, b| Ok(a.min(b)))?,
            "arith.maxsi" => self.bin_int(op, |a, b| Ok(a.max(b)))?,
            "arith.andi" => self.bin_int(op, |a, b| Ok(a & b))?,
            "arith.addf" => self.bin_float(op, |a, b| a + b)?,
            "arith.subf" => self.bin_float(op, |a, b| a - b)?,
            "arith.mulf" => self.bin_float(op, |a, b| a * b)?,
            "arith.divf" => self.bin_float(op, |a, b| a / b)?,
            "arith.minimumf" => self.bin_float(op, f64::min)?,
            "arith.maximumf" => self.bin_float(op, f64::max)?,
            "arith.negf" => {
                let a = self.get_float(op, op.operand(0))?;
                self.set(op.result(0), RtValue::Float(-a));
            }
            "arith.cmpi" => {
                let pred = op
                    .attr("predicate")
                    .and_then(Attribute::as_str)
                    .and_then(CmpIPredicate::from_str)
                    .ok_or_else(|| InterpError::new(op, "bad predicate"))?;
                let a = self.get_int(op, op.operand(0))?;
                let b = self.get_int(op, op.operand(1))?;
                self.set(op.result(0), RtValue::Int(pred.eval(a, b) as i64));
            }
            "arith.select" => {
                let c = self.get_int(op, op.operand(0))?;
                let v = if c != 0 {
                    self.get(op, op.operand(1))?
                } else {
                    self.get(op, op.operand(2))?
                };
                self.set(op.result(0), v);
            }
            "arith.index_cast"
            | "llvm.inttoptr"
            | "llvm.ptrtoint"
            | "builtin.unrealized_conversion_cast" => {
                let v = self.get(op, op.operand(0))?;
                self.set(op.result(0), v);
            }
            "arith.sitofp" => {
                let a = self.get_int(op, op.operand(0))?;
                self.set(op.result(0), RtValue::Float(a as f64));
            }
            // ------------------------------------------------- memref ----
            "memref.alloc" => {
                let Type::MemRef(m) = self.module.values.ty(op.result(0)) else {
                    return Err(InterpError::new(op, "alloc of non-memref"));
                };
                self.set(op.result(0), RtValue::Buffer(BufView::alloc(m.shape.clone())));
            }
            "memref.dealloc" => {}
            "memref.load" => {
                let buf = self.get_buffer(op, op.operand(0))?;
                let idx: Vec<i64> = op.operands[1..]
                    .iter()
                    .map(|&v| self.get_int(op, v))
                    .collect::<Result<_, _>>()?;
                let v = buf.load(&idx).map_err(|m| InterpError::new(op, m))?;
                self.set(op.result(0), RtValue::Float(v));
            }
            "memref.store" => {
                let v = match self.get(op, op.operand(0))? {
                    RtValue::Float(f) => f,
                    RtValue::Int(i) => i as f64,
                    other => return Err(InterpError::new(op, format!("cannot store {other:?}"))),
                };
                let buf = self.get_buffer(op, op.operand(1))?;
                let idx: Vec<i64> = op.operands[2..]
                    .iter()
                    .map(|&v| self.get_int(op, v))
                    .collect::<Result<_, _>>()?;
                buf.store(&idx, v).map_err(|m| InterpError::new(op, m))?;
            }
            "memref.copy" => {
                let src = self.get_buffer(op, op.operand(0))?;
                let dst = self.get_buffer(op, op.operand(1))?;
                if src.shape != dst.shape {
                    return Err(InterpError::new(op, "copy shape mismatch"));
                }
                let data = src.to_vec();
                let bounds = Bounds::from_shape(&dst.shape);
                let mut i = 0;
                iter_points(&bounds, |p| {
                    dst.store(p, data[i]).map_err(|m| InterpError::new(op, m))?;
                    i += 1;
                    Ok(())
                })?;
            }
            "memref.subview" => {
                let buf = self.get_buffer(op, op.operand(0))?;
                let offsets = op.attr("offsets").and_then(Attribute::as_dense).unwrap_or(&[]);
                let sizes = op.attr("sizes").and_then(Attribute::as_dense).unwrap_or(&[]);
                let sv = buf.subview(offsets, sizes).map_err(|m| InterpError::new(op, m))?;
                self.set(op.result(0), RtValue::Buffer(sv));
            }
            "memref.extract_aligned_pointer_as_index" => {
                let buf = self.get_buffer(op, op.operand(0))?;
                let origin = vec![0i64; buf.shape.len()];
                let offset = if buf.is_empty() {
                    0
                } else {
                    buf.flat(&origin).map_err(|m| InterpError::new(op, m))?
                };
                self.set(op.result(0), RtValue::Ptr { data: Rc::clone(&buf.data), offset });
            }
            // ---------------------------------------------------- scf ----
            "scf.for" => {
                let lo = self.get_int(op, op.operand(0))?;
                let hi = self.get_int(op, op.operand(1))?;
                let step = self.get_int(op, op.operand(2))?;
                if step <= 0 {
                    return Err(InterpError::new(op, "non-positive loop step"));
                }
                let mut iter: Vec<RtValue> =
                    op.operands[3..].iter().map(|&v| self.get(op, v)).collect::<Result<_, _>>()?;
                let block = op.region_block(0);
                let mut i = lo;
                while i < hi {
                    self.set(block.args[0], RtValue::Int(i));
                    for (&arg, v) in block.args[1..].iter().zip(iter.iter().cloned()) {
                        self.set(arg, v);
                    }
                    match self.exec_block(block)? {
                        Flow::Yield(vals) => iter = vals,
                        Flow::Return(vals) => return Ok(Flow::Return(vals)),
                        Flow::Normal => {}
                    }
                    i += step;
                }
                for (&r, v) in op.results.iter().zip(iter) {
                    self.set(r, v);
                }
            }
            "scf.parallel" => {
                let rank = op.attr("rank").and_then(Attribute::as_int).unwrap_or(0) as usize;
                let los: Vec<i64> =
                    (0..rank).map(|d| self.get_int(op, op.operand(d))).collect::<Result<_, _>>()?;
                let his: Vec<i64> = (0..rank)
                    .map(|d| self.get_int(op, op.operand(rank + d)))
                    .collect::<Result<_, _>>()?;
                let steps: Vec<i64> = (0..rank)
                    .map(|d| self.get_int(op, op.operand(2 * rank + d)))
                    .collect::<Result<_, _>>()?;
                if steps.iter().any(|&s| s <= 0) {
                    return Err(InterpError::new(op, "non-positive parallel step"));
                }
                let block = op.region_block(0);
                // Sequential odometer over the iteration space.
                let mut ivs = los.clone();
                if (0..rank).any(|d| los[d] >= his[d]) {
                    return Ok(Flow::Normal);
                }
                loop {
                    for (&arg, &i) in block.args.iter().zip(&ivs) {
                        self.set(arg, RtValue::Int(i));
                    }
                    if let Flow::Return(vals) = self.exec_block(block)? {
                        return Ok(Flow::Return(vals));
                    }
                    let mut d = rank;
                    let mut done = false;
                    loop {
                        if d == 0 {
                            done = true;
                            break;
                        }
                        d -= 1;
                        ivs[d] += steps[d];
                        if ivs[d] < his[d] {
                            break;
                        }
                        ivs[d] = los[d];
                    }
                    if done {
                        break;
                    }
                }
            }
            "scf.if" => {
                let c = self.get_int(op, op.operand(0))?;
                let block = if c != 0 { op.region_block(0) } else { op.regions[1].block() };
                match self.exec_block(block)? {
                    Flow::Yield(vals) => {
                        for (&r, v) in op.results.iter().zip(vals) {
                            self.set(r, v);
                        }
                    }
                    Flow::Return(vals) => return Ok(Flow::Return(vals)),
                    Flow::Normal => {}
                }
            }
            "scf.yield" => {
                let vals: Vec<RtValue> =
                    op.operands.iter().map(|&v| self.get(op, v)).collect::<Result<_, _>>()?;
                return Ok(Flow::Yield(vals));
            }
            // --------------------------------------------------- func ----
            "func.return" => {
                let vals: Vec<RtValue> =
                    op.operands.iter().map(|&v| self.get(op, v)).collect::<Result<_, _>>()?;
                return Ok(Flow::Return(vals));
            }
            "func.call" => {
                let callee = op
                    .attr("callee")
                    .and_then(Attribute::as_symbol)
                    .ok_or_else(|| InterpError::new(op, "call without callee"))?;
                let args: Vec<RtValue> =
                    op.operands.iter().map(|&v| self.get(op, v)).collect::<Result<_, _>>()?;
                let has_body = self
                    .module
                    .lookup_symbol(callee)
                    .map(|f| !f.regions.is_empty() && !f.regions[0].blocks.is_empty())
                    .unwrap_or(false);
                let results = if has_body {
                    // Save and restore the environment around the call to
                    // keep SSA bindings of recursive/multiple calls apart.
                    let saved = std::mem::take(&mut self.env);
                    let callee = callee.to_string();
                    let out = self.call_function(&callee, args);
                    self.env = saved;
                    out?
                } else {
                    self.externals.call(callee, &args).map_err(|m| InterpError::new(op, m))?
                };
                if results.len() < op.results.len() {
                    return Err(InterpError::new(
                        op,
                        format!(
                            "callee returned {} values, op defines {}",
                            results.len(),
                            op.results.len()
                        ),
                    ));
                }
                for (&r, v) in op.results.iter().zip(results) {
                    self.set(r, v);
                }
            }
            // ---------------------------------------------------- mpi ----
            "mpi.init" | "mpi.finalize" => {}
            "mpi.comm_rank" => {
                let r = self
                    .externals
                    .rank()
                    .ok_or_else(|| InterpError::new(op, "no MPI environment"))?;
                self.set(op.result(0), RtValue::Int(r as i64));
            }
            "mpi.comm_size" => {
                let out = self
                    .externals
                    .call("MPI_Comm_size", &[RtValue::Int(sten_mpi::abi::MPI_COMM_WORLD)])
                    .map_err(|m| InterpError::new(op, m))?;
                self.set(op.result(0), out[0].clone());
            }
            "mpi.unwrap_memref" => {
                let buf = self.get_buffer(op, op.operand(0))?;
                let Type::MemRef(m) = self.module.values.ty(op.operand(0)) else {
                    return Err(InterpError::new(op, "unwrap of non-memref"));
                };
                let count =
                    m.num_elements().ok_or_else(|| InterpError::new(op, "dynamic memref"))?;
                let dtype =
                    sten_mpi::abi::datatype_for(&m.elem).map_err(|m| InterpError::new(op, m))?;
                let origin = vec![0i64; buf.shape.len()];
                let offset = buf.flat(&origin).map_err(|m| InterpError::new(op, m))?;
                self.set(op.result(0), RtValue::Ptr { data: Rc::clone(&buf.data), offset });
                self.set(op.result(1), RtValue::Int(count));
                self.set(op.result(2), RtValue::Int(dtype));
            }
            "mpi.request_alloc" => {
                let n = op.attr("count").and_then(Attribute::as_int).unwrap_or(0) as usize;
                self.set(
                    op.result(0),
                    RtValue::Requests(Rc::new(std::cell::RefCell::new(vec![
                        RequestState::Null;
                        n
                    ]))),
                );
            }
            "mpi.request_get" => {
                let i = op.attr("index").and_then(Attribute::as_int).unwrap_or(0) as usize;
                let RtValue::Requests(list) = self.get(op, op.operand(0))? else {
                    return Err(InterpError::new(op, "expected request list"));
                };
                self.set(op.result(0), RtValue::Request { list, index: i });
            }
            "mpi.request_set_null" => {
                let i = op.attr("index").and_then(Attribute::as_int).unwrap_or(0) as usize;
                let RtValue::Requests(list) = self.get(op, op.operand(0))? else {
                    return Err(InterpError::new(op, "expected request list"));
                };
                list.borrow_mut()[i] = RequestState::Null;
            }
            "mpi.send" | "mpi.recv" | "mpi.isend" | "mpi.irecv" | "mpi.wait" | "mpi.test"
            | "mpi.waitall" | "mpi.reduce" | "mpi.allreduce" | "mpi.bcast" | "mpi.gather" => {
                self.exec_mpi_via_externals(op)?;
            }
            // ---------------------------------------------------- dmp ----
            "dmp.swap" => {
                let buf = self.get_buffer(op, op.operand(0))?;
                let grid = op
                    .attr("grid")
                    .and_then(Attribute::as_grid)
                    .ok_or_else(|| InterpError::new(op, "swap without grid"))?;
                let exchanges: Vec<sten_ir::ExchangeAttr> = op
                    .attr("swaps")
                    .and_then(Attribute::as_array)
                    .map(|a| a.iter().filter_map(Attribute::as_exchange).cloned().collect())
                    .unwrap_or_default();
                self.externals
                    .dmp_swap(&buf, grid, &exchanges)
                    .map_err(|m| InterpError::new(op, m))?;
            }
            "dmp.allreduce" => {
                let x = self.get_float(op, op.operand(0))?;
                let rt = if self.externals.rank().is_none() {
                    // Serial interpretation: a world of one rank — the
                    // global value *is* the local value.
                    RtValue::Float(x)
                } else if let Some(acc) = self.reduce_partials.get(&op.operand(0)).cloned() {
                    // The operand is a tracked reduction partial: exchange
                    // the full accumulator so the combine is exact (sum /
                    // dot) or total-order (min/max) — bit-identical for
                    // any rank count.
                    let kind = match &acc {
                        ReduceAcc::Exact(_) => ReduceKind::Sum,
                        ReduceAcc::Lattice(k, _) => *k,
                    };
                    let all = self
                        .externals
                        .allreduce_exchange(acc.to_wire())
                        .map_err(|m| InterpError::new(op, m))?;
                    let mut merged = ReduceAcc::new(kind);
                    for w in &all {
                        let c =
                            ReduceAcc::from_wire(kind, w).map_err(|m| InterpError::new(op, m))?;
                        merged.merge(c);
                    }
                    RtValue::Float(merged.finish())
                } else {
                    // Plain scalar operand (no tracked partial): combine
                    // the rank contributions with the same accumulator
                    // semantics, leaves in ascending rank order.
                    let kind = op
                        .attr("op")
                        .and_then(Attribute::as_str)
                        .and_then(ReduceKind::parse)
                        .unwrap_or(ReduceKind::Sum);
                    let all = self
                        .externals
                        .allreduce_exchange(vec![x])
                        .map_err(|m| InterpError::new(op, m))?;
                    let mut acc = ReduceAcc::new(kind);
                    for w in &all {
                        acc.add(w[0]);
                    }
                    RtValue::Float(acc.finish())
                };
                self.set(op.result(0), rt);
            }
            // ------------------------------------------------ stencil ----
            "stencil.reduce" => {
                let view = sten_stencil::ops::ReduceOp(op);
                let kind = ReduceKind::parse(view.kind()).ok_or_else(|| {
                    InterpError::new(op, format!("unknown reduce kind '{}'", view.kind()))
                })?;
                let range = view.range();
                let mut bufs = Vec::new();
                let mut lbs = Vec::new();
                for &v in view.inputs() {
                    bufs.push(self.get_buffer(op, v)?);
                    lbs.push(self.logical_lb(op, v)?);
                }
                let mut acc = ReduceAcc::new(kind);
                iter_points(&range, |p| {
                    let mut vals = [0.0f64; 2];
                    for (i, (buf, lb)) in bufs.iter().zip(&lbs).enumerate() {
                        let idx: Vec<i64> = p.iter().zip(lb).map(|(a, b)| a - b).collect();
                        vals[i] = buf.load(&idx).map_err(|m| InterpError::new(op, m))?;
                    }
                    // Dot forms one rounded product per point; the *sum*
                    // of those products is exact.
                    acc.add(if kind == ReduceKind::Dot { vals[0] * vals[1] } else { vals[0] });
                    Ok(())
                })?;
                self.set(op.result(0), RtValue::Float(acc.finish()));
                self.reduce_partials.insert(op.result(0), acc);
            }
            "stencil.external_load" | "stencil.cast" | "stencil.buffer" => {
                let v = self.get(op, op.operand(0))?;
                self.set(op.result(0), v);
            }
            "stencil.external_store" => {
                let field = self.get_buffer(op, op.operand(0))?;
                let mem = self.get_buffer(op, op.operand(1))?;
                if !Rc::ptr_eq(&field.data, &mem.data) {
                    let data = field.to_vec();
                    let bounds = Bounds::from_shape(&mem.shape);
                    let mut i = 0;
                    iter_points(&bounds, |p| {
                        mem.store(p, data[i]).map_err(|m| InterpError::new(op, m))?;
                        i += 1;
                        Ok(())
                    })?;
                }
            }
            "stencil.load" => {
                let field = self.get_buffer(op, op.operand(0))?;
                let field_lb = self.logical_lb(op, op.operand(0))?;
                let tb = self.temp_bounds(op, op.result(0))?;
                // Value semantics: copy the covered range.
                let out = BufView::alloc(tb.shape());
                iter_points(&tb, |p| {
                    let src: Vec<i64> = p.iter().zip(&field_lb).map(|(a, b)| a - b).collect();
                    let dst: Vec<i64> = p.iter().zip(&tb.lower()).map(|(a, b)| a - b).collect();
                    let v = field.load(&src).map_err(|m| InterpError::new(op, m))?;
                    out.store(&dst, v).map_err(|m| InterpError::new(op, m))?;
                    Ok(())
                })?;
                self.set(op.result(0), RtValue::Buffer(out));
            }
            "stencil.store" => {
                let temp = self.get_buffer(op, op.operand(0))?;
                let temp_lb = self.logical_lb(op, op.operand(0))?;
                let field = self.get_buffer(op, op.operand(1))?;
                let field_lb = self.logical_lb(op, op.operand(1))?;
                let range = sten_stencil::ops::StoreOp(op).range();
                iter_points(&range, |p| {
                    let src: Vec<i64> = p.iter().zip(&temp_lb).map(|(a, b)| a - b).collect();
                    let dst: Vec<i64> = p.iter().zip(&field_lb).map(|(a, b)| a - b).collect();
                    let v = temp.load(&src).map_err(|m| InterpError::new(op, m))?;
                    field.store(&dst, v).map_err(|m| InterpError::new(op, m))?;
                    Ok(())
                })?;
            }
            "stencil.apply" => {
                // Bind region args to operand values.
                let block = op.region_block(0);
                for (&operand, &arg) in op.operands.iter().zip(&block.args) {
                    let v = self.get(op, operand)?;
                    self.set(arg, v);
                }
                let out_bounds = self.temp_bounds(op, op.result(0))?;
                let outs: Vec<BufView> = op
                    .results
                    .iter()
                    .map(|&r| self.temp_bounds(op, r).map(|b| BufView::alloc(b.shape())))
                    .collect::<Result<_, _>>()?;
                let out_lbs: Vec<Vec<i64>> = op
                    .results
                    .iter()
                    .map(|&r| self.temp_bounds(op, r).map(|b| b.lower()))
                    .collect::<Result<_, _>>()?;
                self.apply_points.push(vec![0; out_bounds.rank()]);
                let mut failure = None;
                iter_points(&out_bounds, |p| {
                    *self.apply_points.last_mut().expect("pushed") = p.to_vec();
                    match self.exec_block(block)? {
                        Flow::Yield(vals) => {
                            for (i, v) in vals.iter().enumerate() {
                                let f = v.as_float().map_err(|m| InterpError::new(op, m))?;
                                let dst: Vec<i64> =
                                    p.iter().zip(&out_lbs[i]).map(|(a, b)| a - b).collect();
                                outs[i].store(&dst, f).map_err(|m| InterpError::new(op, m))?;
                            }
                            Ok(())
                        }
                        _ => {
                            failure = Some("apply body did not return".to_string());
                            Ok(())
                        }
                    }
                })?;
                self.apply_points.pop();
                if let Some(m) = failure {
                    return Err(InterpError::new(op, m));
                }
                for (&r, out) in op.results.iter().zip(outs) {
                    self.set(r, RtValue::Buffer(out));
                }
            }
            "stencil.return" => {
                let vals: Vec<RtValue> =
                    op.operands.iter().map(|&v| self.get(op, v)).collect::<Result<_, _>>()?;
                return Ok(Flow::Yield(vals));
            }
            "stencil.access" => {
                let temp = self.get_buffer(op, op.operand(0))?;
                let lb = self.logical_lb(op, op.operand(0))?;
                let offset = op.attr("offset").and_then(Attribute::as_dense).unwrap_or(&[]);
                let point = self
                    .apply_points
                    .last()
                    .ok_or_else(|| InterpError::new(op, "access outside apply"))?;
                let idx: Vec<i64> = (0..lb.len()).map(|d| point[d] + offset[d] - lb[d]).collect();
                let v = temp.load(&idx).map_err(|m| InterpError::new(op, m))?;
                self.set(op.result(0), RtValue::Float(v));
            }
            "stencil.dyn_access" => {
                let temp = self.get_buffer(op, op.operand(0))?;
                let lb = self.logical_lb(op, op.operand(0))?;
                let idx: Vec<i64> = op.operands[1..]
                    .iter()
                    .enumerate()
                    .map(|(d, &v)| self.get_int(op, v).map(|i| i - lb[d]))
                    .collect::<Result<_, _>>()?;
                let v = temp.load(&idx).map_err(|m| InterpError::new(op, m))?;
                self.set(op.result(0), RtValue::Float(v));
            }
            "stencil.index" => {
                let dim = op.attr("dim").and_then(Attribute::as_int).unwrap_or(0) as usize;
                let off = op.attr("offset").and_then(Attribute::as_int).unwrap_or(0);
                let point = self
                    .apply_points
                    .last()
                    .ok_or_else(|| InterpError::new(op, "index outside apply"))?;
                self.set(op.result(0), RtValue::Int(point[dim] + off));
            }
            "stencil.combine" => {
                let dim = op.attr("dim").and_then(Attribute::as_int).unwrap_or(0) as usize;
                let split = op.attr("index").and_then(Attribute::as_int).unwrap_or(0);
                let lower = self.get_buffer(op, op.operand(0))?;
                let lower_lb = self.logical_lb(op, op.operand(0))?;
                let upper = self.get_buffer(op, op.operand(1))?;
                let upper_lb = self.logical_lb(op, op.operand(1))?;
                let ob = self.temp_bounds(op, op.result(0))?;
                let out = BufView::alloc(ob.shape());
                let out_lb = ob.lower();
                iter_points(&ob, |p| {
                    let (src, src_lb) =
                        if p[dim] < split { (&lower, &lower_lb) } else { (&upper, &upper_lb) };
                    let sidx: Vec<i64> = p.iter().zip(src_lb).map(|(a, b)| a - b).collect();
                    let didx: Vec<i64> = p.iter().zip(&out_lb).map(|(a, b)| a - b).collect();
                    let v = src.load(&sidx).map_err(|m| InterpError::new(op, m))?;
                    out.store(&didx, v).map_err(|m| InterpError::new(op, m))?;
                    Ok(())
                })?;
                self.set(op.result(0), RtValue::Buffer(out));
            }
            other => {
                return Err(InterpError::new(op, format!("unsupported operation '{other}'")));
            }
        }
        Ok(Flow::Normal)
    }

    /// Executes an `mpi.*` op by composing the same argument list the
    /// `mpi-to-func` lowering would produce and dispatching to the
    /// externals table.
    fn exec_mpi_via_externals(&mut self, op: &Op) -> Result<(), InterpError> {
        use sten_mpi::abi::{MPI_COMM_WORLD, MPI_STATUSES_IGNORE};
        let comm = RtValue::Int(MPI_COMM_WORLD);
        let status = RtValue::Int(MPI_STATUSES_IGNORE);
        let mut args: Vec<RtValue> =
            op.operands.iter().map(|&v| self.get(op, v)).collect::<Result<_, _>>()?;
        let (name, results): (&str, Vec<Value>) = match op.name.as_str() {
            "mpi.send" => {
                args.push(comm);
                ("MPI_Send", vec![])
            }
            "mpi.recv" => {
                args.push(comm);
                args.push(status);
                ("MPI_Recv", vec![])
            }
            "mpi.isend" | "mpi.irecv" => {
                let req = args.pop().expect("request operand");
                args.push(comm);
                args.push(req);
                (if op.name == "mpi.isend" { "MPI_Isend" } else { "MPI_Irecv" }, vec![])
            }
            "mpi.wait" => {
                args.push(status);
                ("MPI_Wait", vec![])
            }
            "mpi.test" => {
                args.push(status);
                ("MPI_Test", vec![op.result(0)])
            }
            "mpi.waitall" => {
                // C order: (count, requests, statuses).
                args.swap(0, 1);
                args.push(status);
                ("MPI_Waitall", vec![])
            }
            "mpi.allreduce" | "mpi.reduce" => {
                let o = match op.attr("op").and_then(Attribute::as_str).unwrap_or("sum") {
                    "min" => sten_mpi::abi::MPI_OP_MIN,
                    "max" => sten_mpi::abi::MPI_OP_MAX,
                    _ => sten_mpi::abi::MPI_OP_SUM,
                };
                if op.name == "mpi.reduce" {
                    let root = args.pop().expect("root");
                    args.push(RtValue::Int(o));
                    args.push(root);
                    args.push(comm);
                    ("MPI_Reduce", vec![])
                } else {
                    args.push(RtValue::Int(o));
                    args.push(comm);
                    ("MPI_Allreduce", vec![])
                }
            }
            "mpi.bcast" => {
                args.push(comm);
                ("MPI_Bcast", vec![])
            }
            "mpi.gather" => {
                // (sendbuf, sendcount, dtype, recvbuf, root) →
                // (sendbuf, count, type, recvbuf, count, type, root, comm)
                let root = args.pop().expect("root");
                let recvbuf = args.pop().expect("recvbuf");
                args.push(recvbuf);
                args.push(args[1].clone());
                args.push(args[2].clone());
                args.push(root);
                args.push(comm);
                ("MPI_Gather", vec![])
            }
            other => return Err(InterpError::new(op, format!("not an mpi op: {other}"))),
        };
        let out = self.externals.call(name, &args).map_err(|m| InterpError::new(op, m))?;
        for (&r, v) in results.iter().zip(out) {
            self.set(r, v);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sten_stencil::{samples, ShapeInference, StencilToLoops};

    fn jacobi_step_reference(input: &[f64]) -> Vec<f64> {
        let n = input.len();
        let mut out = input.to_vec();
        for i in 1..n - 1 {
            out[i] = input[i - 1] + input[i + 1] - 2.0 * input[i];
        }
        out
    }

    fn run_jacobi(module: &Module, n: usize) -> Vec<f64> {
        let input: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let src = BufView::from_data(vec![n as i64], input.clone());
        let dst = BufView::from_data(vec![n as i64], input.clone());
        let mut interp = Interpreter::new(module);
        interp
            .call_function("jacobi", vec![RtValue::Buffer(src), RtValue::Buffer(dst.clone())])
            .unwrap();
        dst.to_vec()
    }

    #[test]
    fn stencil_level_matches_reference() {
        let mut m = samples::jacobi_1d(64);
        ShapeInference.run(&mut m).unwrap();
        let got = run_jacobi(&m, 64);
        let input: Vec<f64> = (0..64).map(|i| (i as f64).sin()).collect();
        let want = jacobi_step_reference(&input);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12, "{g} vs {w}");
        }
    }

    #[test]
    fn lowered_level_matches_stencil_level() {
        let mut m = samples::jacobi_1d(64);
        ShapeInference.run(&mut m).unwrap();
        let at_stencil = run_jacobi(&m, 64);
        StencilToLoops.run(&mut m).unwrap();
        let at_loops = run_jacobi(&m, 64);
        assert_eq!(at_stencil, at_loops, "lowering preserves semantics exactly");
    }

    #[test]
    fn heat2d_levels_agree() {
        let n = 16i64;
        let mut m = samples::heat_2d(n, 0.1);
        ShapeInference.run(&mut m).unwrap();
        let run = |m: &Module| {
            let size = ((n + 2) * (n + 2)) as usize;
            let input: Vec<f64> = (0..size).map(|i| (i as f64 * 0.1).cos()).collect();
            let src = BufView::from_data(vec![n + 2, n + 2], input.clone());
            let dst = BufView::from_data(vec![n + 2, n + 2], input);
            let mut interp = Interpreter::new(m);
            interp
                .call_function("heat", vec![RtValue::Buffer(src), RtValue::Buffer(dst.clone())])
                .unwrap();
            dst.to_vec()
        };
        let a = run(&m);
        StencilToLoops.run(&mut m).unwrap();
        let b = run(&m);
        assert_eq!(a, b);
    }

    #[test]
    fn canonicalized_ir_executes_identically() {
        let mut m = samples::heat_2d(12, 0.25);
        ShapeInference.run(&mut m).unwrap();
        StencilToLoops.run(&mut m).unwrap();
        let run = |m: &Module| {
            let size = 14 * 14;
            let input: Vec<f64> = (0..size).map(|i| (i as f64 * 0.3).sin()).collect();
            let src = BufView::from_data(vec![14, 14], input.clone());
            let dst = BufView::from_data(vec![14, 14], input);
            let mut interp = Interpreter::new(m);
            interp
                .call_function("heat", vec![RtValue::Buffer(src), RtValue::Buffer(dst.clone())])
                .unwrap();
            dst.to_vec()
        };
        let before = run(&m);
        sten_dialects::canonicalize::Canonicalize.run(&mut m).unwrap();
        let mut reg = sten_ir::DialectRegistry::new();
        sten_dialects::register_all(&mut reg);
        sten_stencil::register(&mut reg);
        let reg = std::sync::Arc::new(reg);
        sten_ir::transforms::CommonSubexprElimination::new(std::sync::Arc::clone(&reg))
            .run(&mut m)
            .unwrap();
        sten_ir::transforms::DeadCodeElimination::new(reg).run(&mut m).unwrap();
        let after = run(&m);
        assert_eq!(before, after, "optimizations preserve semantics");
    }

    #[test]
    fn errors_carry_op_context() {
        let m = Module::new();
        let mut interp = Interpreter::new(&m);
        let err = interp.call_function("missing", vec![]).unwrap_err();
        assert!(err.message.contains("missing"));
    }

    #[test]
    fn step_budget_guards_runaway_loops() {
        let mut m = samples::jacobi_1d(64);
        ShapeInference.run(&mut m).unwrap();
        let src = BufView::alloc(vec![64]);
        let dst = BufView::alloc(vec![64]);
        let mut interp = Interpreter::new(&m);
        interp.max_steps = 10;
        let err = interp
            .call_function("jacobi", vec![RtValue::Buffer(src), RtValue::Buffer(dst)])
            .unwrap_err();
        assert!(err.message.contains("step budget"), "{err}");
    }
}
