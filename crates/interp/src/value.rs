//! Runtime values for the interpreter.
//!
//! The interpreter is dynamically typed: each SSA [`sten_ir::Value`] maps
//! to one [`RtValue`]. Buffers store `f64` internally regardless of the
//! static element type (the element type is kept for MPI datatype checks
//! and byte accounting); `f32` programs therefore interpret with slightly
//! higher precision than compiled execution — tests compare with
//! tolerances.

use std::cell::RefCell;
use std::rc::Rc;

/// Shared storage underlying buffers and views.
pub type SharedData = Rc<RefCell<Vec<f64>>>;

/// A (possibly strided) rectangular view onto shared storage — the runtime
/// representation of `memref` values, including `memref.subview` results.
#[derive(Clone, Debug)]
pub struct BufView {
    /// The underlying storage, shared between views.
    pub data: SharedData,
    /// Shape of the *allocation* (row-major strides derive from this).
    pub full_shape: Vec<i64>,
    /// Offset of this view inside the allocation, per dimension.
    pub offsets: Vec<i64>,
    /// Shape of the view.
    pub shape: Vec<i64>,
}

impl BufView {
    /// Allocates a zero-initialised buffer of `shape`.
    pub fn alloc(shape: Vec<i64>) -> BufView {
        let n: i64 = shape.iter().product();
        BufView {
            data: Rc::new(RefCell::new(vec![0.0; n.max(0) as usize])),
            full_shape: shape.clone(),
            offsets: vec![0; shape.len()],
            shape,
        }
    }

    /// Wraps existing data (length must equal the product of `shape`).
    ///
    /// # Panics
    /// Panics on a length mismatch.
    pub fn from_data(shape: Vec<i64>, data: Vec<f64>) -> BufView {
        let n: i64 = shape.iter().product();
        assert_eq!(n as usize, data.len(), "data length must match shape");
        BufView {
            data: Rc::new(RefCell::new(data)),
            full_shape: shape.clone(),
            offsets: vec![0; shape.len()],
            shape,
        }
    }

    /// Number of elements in the view.
    pub fn len(&self) -> usize {
        self.shape.iter().product::<i64>().max(0) as usize
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat index into the allocation for view-relative `idx`.
    ///
    /// # Errors
    /// Reports out-of-bounds accesses.
    pub fn flat(&self, idx: &[i64]) -> Result<usize, String> {
        if idx.len() != self.shape.len() {
            return Err(format!(
                "rank mismatch: {} indices into rank-{} view",
                idx.len(),
                self.shape.len()
            ));
        }
        let mut flat: i64 = 0;
        #[allow(clippy::needless_range_loop)] // parallel indexing into idx/shape/offsets
        for d in 0..idx.len() {
            if idx[d] < 0 || idx[d] >= self.shape[d] {
                return Err(format!(
                    "index {} out of bounds [0, {}) in dim {d}",
                    idx[d], self.shape[d]
                ));
            }
            flat = flat * self.full_shape[d] + self.offsets[d] + idx[d];
        }
        Ok(flat as usize)
    }

    /// Reads one element.
    ///
    /// # Errors
    /// Reports out-of-bounds accesses.
    pub fn load(&self, idx: &[i64]) -> Result<f64, String> {
        let flat = self.flat(idx)?;
        Ok(self.data.borrow()[flat])
    }

    /// Writes one element.
    ///
    /// # Errors
    /// Reports out-of-bounds accesses.
    pub fn store(&self, idx: &[i64], v: f64) -> Result<(), String> {
        let flat = self.flat(idx)?;
        self.data.borrow_mut()[flat] = v;
        Ok(())
    }

    /// Creates a subview at `offsets` of `shape` (unit strides).
    ///
    /// # Errors
    /// Reports out-of-bounds regions.
    pub fn subview(&self, offsets: &[i64], shape: &[i64]) -> Result<BufView, String> {
        for d in 0..self.shape.len() {
            if offsets[d] < 0 || offsets[d] + shape[d] > self.shape[d] {
                return Err(format!("subview out of bounds in dim {d}"));
            }
        }
        Ok(BufView {
            data: Rc::clone(&self.data),
            full_shape: self.full_shape.clone(),
            offsets: self.offsets.iter().zip(offsets).map(|(a, b)| a + b).collect(),
            shape: shape.to_vec(),
        })
    }

    /// Copies the whole view out as a dense row-major vector.
    pub fn to_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len());
        let mut idx = vec![0i64; self.shape.len()];
        if self.shape.is_empty() {
            return out;
        }
        loop {
            out.push(self.load(&idx).expect("in-bounds iteration"));
            // Row-major increment.
            let mut d = self.shape.len();
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < self.shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
    }
}

/// The state of one slot in a request list (see [`crate::sim_mpi`]).
#[derive(Clone, Debug)]
pub enum RequestState {
    /// `MPI_REQUEST_NULL` — completes immediately.
    Null,
    /// A buffered send whose data has already been deposited.
    SendDone,
    /// A receive still waiting for its message.
    PendingRecv {
        /// Source rank.
        src: i32,
        /// Message tag.
        tag: i32,
        /// Destination storage.
        dst: SharedData,
        /// Flat element offset into `dst`.
        offset: usize,
        /// Number of elements expected.
        count: usize,
    },
}

/// A shared request list (the runtime form of `!mpi.requests`).
pub type RequestList = Rc<RefCell<Vec<RequestState>>>;

/// One dynamically typed runtime value.
#[derive(Clone, Debug)]
pub enum RtValue {
    /// Integers of any width, plus `index` and `i1`.
    Int(i64),
    /// Floats of any width.
    Float(f64),
    /// A buffer or buffer view (`memref`, `!stencil.field`).
    Buffer(BufView),
    /// A raw pointer into a buffer (element-granular).
    Ptr {
        /// The pointed-to storage.
        data: SharedData,
        /// Flat element offset.
        offset: usize,
    },
    /// A request list (`!mpi.requests`).
    Requests(RequestList),
    /// One slot of a request list (`!mpi.request`).
    Request {
        /// The owning list.
        list: RequestList,
        /// Slot index.
        index: usize,
    },
    /// Placeholder for ops with no meaningful value.
    Unit,
}

impl RtValue {
    /// The integer payload.
    ///
    /// # Errors
    /// Reports non-integer values.
    pub fn as_int(&self) -> Result<i64, String> {
        match self {
            RtValue::Int(v) => Ok(*v),
            other => Err(format!("expected integer, got {other:?}")),
        }
    }

    /// The float payload.
    ///
    /// # Errors
    /// Reports non-float values.
    pub fn as_float(&self) -> Result<f64, String> {
        match self {
            RtValue::Float(v) => Ok(*v),
            other => Err(format!("expected float, got {other:?}")),
        }
    }

    /// The buffer payload.
    ///
    /// # Errors
    /// Reports non-buffer values.
    pub fn as_buffer(&self) -> Result<&BufView, String> {
        match self {
            RtValue::Buffer(b) => Ok(b),
            other => Err(format!("expected buffer, got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_rw() {
        let b = BufView::alloc(vec![4, 4]);
        assert_eq!(b.len(), 16);
        b.store(&[2, 3], 7.5).unwrap();
        assert_eq!(b.load(&[2, 3]).unwrap(), 7.5);
        assert_eq!(b.load(&[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn bounds_are_checked() {
        let b = BufView::alloc(vec![4]);
        assert!(b.load(&[4]).is_err());
        assert!(b.load(&[-1]).is_err());
        assert!(b.load(&[0, 0]).is_err());
        assert!(b.store(&[99], 0.0).is_err());
    }

    #[test]
    fn subview_shares_storage() {
        let b = BufView::from_data(vec![4, 4], (0..16).map(f64::from).collect());
        let sv = b.subview(&[1, 1], &[2, 2]).unwrap();
        assert_eq!(sv.load(&[0, 0]).unwrap(), 5.0);
        sv.store(&[1, 1], -1.0).unwrap();
        assert_eq!(b.load(&[2, 2]).unwrap(), -1.0);
        assert!(b.subview(&[3, 3], &[2, 2]).is_err());
    }

    #[test]
    fn to_vec_is_row_major() {
        let b = BufView::from_data(vec![2, 3], vec![0., 1., 2., 3., 4., 5.]);
        assert_eq!(b.to_vec(), vec![0., 1., 2., 3., 4., 5.]);
        let sv = b.subview(&[0, 1], &[2, 2]).unwrap();
        assert_eq!(sv.to_vec(), vec![1., 2., 4., 5.]);
    }

    #[test]
    fn rt_value_accessors() {
        assert_eq!(RtValue::Int(3).as_int().unwrap(), 3);
        assert_eq!(RtValue::Float(2.5).as_float().unwrap(), 2.5);
        assert!(RtValue::Unit.as_int().is_err());
        assert!(RtValue::Int(1).as_float().is_err());
        let b = RtValue::Buffer(BufView::alloc(vec![1]));
        assert!(b.as_buffer().is_ok());
    }
}
