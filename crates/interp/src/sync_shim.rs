//! Minimal `parking_lot`-compatible synchronisation primitives over `std`.
//!
//! The build environment has no access to crates.io, so instead of a
//! `parking_lot` dependency the SimMPI runtime uses these wrappers: a
//! [`Mutex`] whose `lock()` returns the guard directly (poisoning is
//! treated as a bug and panics) and a [`Condvar`] whose `wait` takes the
//! guard by `&mut`, matching the `parking_lot` API shape.

use std::ops::{Deref, DerefMut};

/// A mutex whose `lock()` never returns a poison error.
pub struct Mutex<T>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the mutex, blocking until it is available.
    ///
    /// # Panics
    /// Panics if another thread panicked while holding the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().expect("mutex poisoned")))
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard taken during wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard taken during wait")
    }
}

/// A condition variable usable with [`MutexGuard`] held by `&mut`.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar::default()
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already waiting");
        guard.0 = Some(self.0.wait(inner).expect("mutex poisoned"));
    }

    /// Blocks until notified or `dur` elapses; returns `true` on timeout.
    /// Used by the SimMPI runtime to re-check in-flight messages whose
    /// simulated delivery latency has not elapsed yet.
    pub fn wait_timeout<T>(&self, guard: &mut MutexGuard<'_, T>, dur: std::time::Duration) -> bool {
        let inner = guard.0.take().expect("guard already waiting");
        let (inner, result) = self.0.wait_timeout(inner, dur).expect("mutex poisoned");
        guard.0 = Some(inner);
        result.timed_out()
    }

    /// Wakes all threads blocked in [`Condvar::wait`].
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}
