//! SPMD execution driver: one interpreter thread per rank over a shared
//! [`SimWorld`].
//!
//! This is the reproduction's equivalent of `mpirun -n N ./kernel` on
//! ARCHER2: every rank executes the same (rank-local) module; SimMPI
//! carries the halo exchanges.

use crate::interp::{InterpError, Interpreter};
use crate::sim_mpi::{MpiEnv, SimWorld};
use crate::value::{BufView, RtValue};
use std::sync::Arc;
use sten_ir::Module;
#[cfg(test)]
use sten_ir::Pass as _;

/// A plain-data argument specification (constructed per rank, inside the
/// rank's thread — runtime values are not `Send`).
#[derive(Clone, Debug)]
pub enum ArgSpec {
    /// A float scalar.
    F64(f64),
    /// An integer/index scalar.
    Int(i64),
    /// A buffer with initial contents.
    Buffer {
        /// Buffer shape.
        shape: Vec<i64>,
        /// Row-major initial data.
        data: Vec<f64>,
    },
}

/// The observable outcome of one rank: the final contents of every buffer
/// argument (in argument order).
#[derive(Clone, Debug)]
pub struct RankResult {
    /// Final buffer contents, one entry per `ArgSpec::Buffer`.
    pub buffers: Vec<Vec<f64>>,
    /// Ops executed by this rank.
    pub steps: u64,
}

/// Runs `func` on `world_size` ranks; `args_for_rank` builds each rank's
/// argument list. Returns per-rank results in rank order, along with
/// communication statistics from the shared world.
///
/// # Errors
/// Returns the first rank's error if any rank fails (all threads are
/// joined regardless).
///
/// # Panics
/// Panics if a rank thread panics.
pub fn run_spmd(
    module: &Module,
    func: &str,
    world_size: usize,
    args_for_rank: &(dyn Fn(usize) -> Vec<ArgSpec> + Sync),
) -> Result<(Vec<RankResult>, Arc<SimWorld>), InterpError> {
    let world = SimWorld::new(world_size);
    let mut results: Vec<Option<Result<RankResult, InterpError>>> =
        (0..world_size).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (rank, slot) in results.iter_mut().enumerate() {
            let world = Arc::clone(&world);
            handles.push(scope.spawn(move || {
                let specs = args_for_rank(rank);
                let mut buffers: Vec<BufView> = Vec::new();
                let args: Vec<RtValue> = specs
                    .into_iter()
                    .map(|spec| match spec {
                        ArgSpec::F64(v) => RtValue::Float(v),
                        ArgSpec::Int(v) => RtValue::Int(v),
                        ArgSpec::Buffer { shape, data } => {
                            let view = BufView::from_data(shape, data);
                            buffers.push(view.clone());
                            RtValue::Buffer(view)
                        }
                    })
                    .collect();
                let env = MpiEnv::new(world, rank as i32);
                let mut interp = Interpreter::with_externals(module, Box::new(env));
                let out = interp.call_function(func, args).map(|_| RankResult {
                    buffers: buffers.iter().map(BufView::to_vec).collect(),
                    steps: interp.steps(),
                });
                *slot = Some(out);
            }));
        }
        for h in handles {
            h.join().expect("rank thread panicked");
        }
    });
    let mut out = Vec::with_capacity(world_size);
    for slot in results {
        out.push(slot.expect("rank completed")?);
    }
    Ok((out, world))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sten_ir::Bounds;
    use sten_stencil::{samples, ShapeInference, StencilToLoops};

    /// Distributes jacobi over `ranks` ranks, scatters a global input,
    /// runs one step at the chosen lowering level, gathers, and compares
    /// against the single-process stencil-level result.
    fn distributed_jacobi_matches_serial(ranks: i64, lower_to_func: bool) {
        let n = 128i64;
        let global_input: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin()).collect();

        // Serial reference at stencil level.
        let mut serial = samples::jacobi_1d(n);
        ShapeInference.run(&mut serial).unwrap();
        let src = BufView::from_data(vec![n], global_input.clone());
        let dst = BufView::from_data(vec![n], global_input.clone());
        let mut interp = Interpreter::new(&serial);
        interp
            .call_function("jacobi", vec![RtValue::Buffer(src), RtValue::Buffer(dst.clone())])
            .unwrap();
        let want = dst.to_vec();

        // Distributed pipeline.
        let mut m = samples::jacobi_1d(n);
        ShapeInference.run(&mut m).unwrap();
        sten_dmp::DistributeStencil::new(vec![ranks]).run(&mut m).unwrap();
        ShapeInference.run(&mut m).unwrap();
        StencilToLoops.run(&mut m).unwrap();
        if lower_to_func {
            sten_mpi::DmpToMpi.run(&mut m).unwrap();
            sten_mpi::MpiToFunc.run(&mut m).unwrap();
        }

        // Local field bounds after distribution: derive scatter mapping.
        let func = m.lookup_symbol("jacobi").unwrap();
        let fty = sten_dialects::func::FuncOp(func).function_type().clone();
        let local_extent = match &fty.inputs[0] {
            sten_ir::Type::MemRef(mt) => mt.shape[0],
            sten_ir::Type::Field(f) => f.bounds.size(0),
            other => panic!("unexpected arg type {other:?}"),
        };
        let core = (n - 2) / ranks; // global core is [1, n-1)

        let input = &global_input;
        let (results, world) = run_spmd(&m, "jacobi", ranks as usize, &move |rank| {
            // Rank r's local buffer covers global [r*core, r*core + local).
            let start = rank as i64 * core;
            let data: Vec<f64> = (0..local_extent)
                .map(|i| {
                    let g = start + i;
                    if g < n {
                        input[g as usize]
                    } else {
                        0.0
                    }
                })
                .collect();
            vec![
                ArgSpec::Buffer { shape: vec![local_extent], data: data.clone() },
                ArgSpec::Buffer { shape: vec![local_extent], data },
            ]
        })
        .unwrap();

        // Gather: rank r owns global [1 + r*core, 1 + (r+1)*core).
        let mut got = global_input.clone();
        for (rank, res) in results.iter().enumerate() {
            let out = &res.buffers[1];
            let start = rank as i64 * core;
            for l in 1..=core {
                got[(start + l) as usize] = out[l as usize];
            }
        }
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!((g - w).abs() < 1e-12, "mismatch at {i}: {g} vs {w}");
        }
        if ranks > 1 {
            assert!(world.total_sent_messages() > 0, "halo exchange happened");
        }
    }

    #[test]
    fn two_ranks_at_dmp_level() {
        distributed_jacobi_matches_serial(2, false);
    }

    #[test]
    fn two_ranks_at_func_level() {
        distributed_jacobi_matches_serial(2, true);
    }

    #[test]
    fn seven_ranks_at_func_level() {
        // 126 divides by 7.
        distributed_jacobi_matches_serial(7, true);
    }

    #[test]
    fn heat2d_distributed_matches_serial() {
        let n = 16i64;
        let shape = vec![n + 2, n + 2];
        let size = ((n + 2) * (n + 2)) as usize;
        let global: Vec<f64> = (0..size).map(|i| (i as f64 * 0.05).cos()).collect();

        // Serial reference.
        let mut serial = samples::heat_2d(n, 0.1);
        ShapeInference.run(&mut serial).unwrap();
        let src = BufView::from_data(shape.clone(), global.clone());
        let dst = BufView::from_data(shape.clone(), global.clone());
        Interpreter::new(&serial)
            .call_function("heat", vec![RtValue::Buffer(src), RtValue::Buffer(dst.clone())])
            .unwrap();
        let want = dst.to_vec();

        // 2x2 distributed, fully lowered.
        let mut m = samples::heat_2d(n, 0.1);
        ShapeInference.run(&mut m).unwrap();
        sten_dmp::DistributeStencil::new(vec![2, 2]).run(&mut m).unwrap();
        ShapeInference.run(&mut m).unwrap();
        StencilToLoops.run(&mut m).unwrap();
        sten_mpi::DmpToMpi.run(&mut m).unwrap();
        sten_mpi::MpiToFunc.run(&mut m).unwrap();

        let core = n / 2;
        let local = core + 2;
        let g = &global;
        let full = (n + 2) as usize;
        let (results, _) = run_spmd(&m, "heat", 4, &move |rank| {
            let (ry, rx) = ((rank as i64) / 2, (rank as i64) % 2);
            let data: Vec<f64> = Bounds::from_shape(&[local, local]).shape().iter().copied().fold(
                Vec::new(),
                |mut acc, _| {
                    acc.clear();
                    for y in 0..local {
                        for x in 0..local {
                            let gy = (ry * core + y) as usize;
                            let gx = (rx * core + x) as usize;
                            acc.push(g[gy * full + gx]);
                        }
                    }
                    acc
                },
            );
            vec![
                ArgSpec::Buffer { shape: vec![local, local], data: data.clone() },
                ArgSpec::Buffer { shape: vec![local, local], data },
            ]
        })
        .unwrap();

        let mut got = global.clone();
        for (rank, res) in results.iter().enumerate() {
            let (ry, rx) = ((rank as i64) / 2, (rank as i64) % 2);
            let out = &res.buffers[1];
            for y in 1..=core {
                for x in 1..=core {
                    let gy = (ry * core + y) as usize;
                    let gx = (rx * core + x) as usize;
                    got[gy * full + gx] = out[(y * local + x) as usize];
                }
            }
        }
        for (i, (a, b)) in got.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-12, "mismatch at {i}: {a} vs {b}");
        }
    }
}
