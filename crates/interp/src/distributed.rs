//! SPMD execution driver: one interpreter thread per rank over a shared
//! [`SimWorld`].
//!
//! This is the reproduction's equivalent of `mpirun -n N ./kernel` on
//! ARCHER2: every rank executes the same (rank-local) module; SimMPI
//! carries the halo exchanges.

use crate::interp::{InterpError, Interpreter};
use crate::sim_mpi::{MpiEnv, SimWorld};
use crate::value::{BufView, RtValue};
use std::sync::Arc;
use sten_ir::Module;
#[cfg(test)]
use sten_ir::Pass as _;

/// A plain-data argument specification (constructed per rank, inside the
/// rank's thread — runtime values are not `Send`).
#[derive(Clone, Debug)]
pub enum ArgSpec {
    /// A float scalar.
    F64(f64),
    /// An integer/index scalar.
    Int(i64),
    /// A buffer with initial contents.
    Buffer {
        /// Buffer shape.
        shape: Vec<i64>,
        /// Row-major initial data.
        data: Vec<f64>,
    },
}

/// The observable outcome of one rank: the final contents of every buffer
/// argument (in argument order).
#[derive(Clone, Debug)]
pub struct RankResult {
    /// Final buffer contents, one entry per `ArgSpec::Buffer`.
    pub buffers: Vec<Vec<f64>>,
    /// Ops executed by this rank.
    pub steps: u64,
}

/// Runs `func` on `world_size` ranks; `args_for_rank` builds each rank's
/// argument list. Returns per-rank results in rank order, along with
/// communication statistics from the shared world.
///
/// # Errors
/// Returns the first rank's error if any rank fails (all threads are
/// joined regardless).
///
/// # Panics
/// Panics if a rank thread panics.
pub fn run_spmd(
    module: &Module,
    func: &str,
    world_size: usize,
    args_for_rank: &(dyn Fn(usize) -> Vec<ArgSpec> + Sync),
) -> Result<(Vec<RankResult>, Arc<SimWorld>), InterpError> {
    // A module carrying `dmp.coords` was specialised to one rank of an
    // uneven decomposition; running it SPMD would silently compute with
    // another rank's slab geometry.
    if world_size > 1 {
        if let Some((fname, coords)) = rank_specialization(module) {
            return Err(InterpError {
                message: format!(
                    "@{fname} is specialised to rank coordinates {coords:?} (uneven \
                     decomposition): compile one module per rank \
                     (distribute-stencil{{rank=N}}) and use run_spmd_modules"
                ),
            });
        }
    }
    run_spmd_impl(&|_| module, func, world_size, args_for_rank)
}

/// The `(function, dmp.coords)` marker of a rank-specialised module, if
/// any function carries one.
fn rank_specialization(module: &Module) -> Option<(String, Vec<i64>)> {
    let mut found = None;
    module.walk(|op| {
        if found.is_none() && op.name == "func.func" {
            if let Some(coords) = op.attr("dmp.coords").and_then(sten_ir::Attribute::as_dense) {
                let name = op
                    .attr("sym_name")
                    .and_then(sten_ir::Attribute::as_str)
                    .unwrap_or("<unnamed>")
                    .to_string();
                found = Some((name, coords.to_vec()));
            }
        }
    });
    found
}

/// Runs `func` with one module per rank — the uneven-decomposition case,
/// where balanced slabs make each rank's local program rank-specific
/// (`distribute-stencil{rank=N}` emits module N). Even decompositions are
/// congruent and can keep sharing one module via [`run_spmd`].
///
/// # Errors
/// Returns the first rank's error if any rank fails (all threads are
/// joined regardless).
///
/// # Panics
/// Panics if a rank thread panics.
pub fn run_spmd_modules(
    modules: &[Module],
    func: &str,
    args_for_rank: &(dyn Fn(usize) -> Vec<ArgSpec> + Sync),
) -> Result<(Vec<RankResult>, Arc<SimWorld>), InterpError> {
    // Rank-specialised modules carry their coordinates: catch a module
    // list handed over in the wrong order before it computes nonsense.
    for (rank, module) in modules.iter().enumerate() {
        let Some((fname, coords)) = rank_specialization(module) else { continue };
        let grid = {
            let mut grid = None;
            module.walk(|op| {
                if grid.is_none() && op.name == "func.func" {
                    grid = op
                        .attr("dmp.grid")
                        .and_then(sten_ir::Attribute::as_grid)
                        .map(<[i64]>::to_vec);
                }
            });
            grid
        };
        let linear =
            grid.as_deref().and_then(|g| sten_dmp::decomposition::coords_to_rank(&coords, g));
        if linear != Some(rank as i64) {
            return Err(InterpError {
                message: format!(
                    "modules[{rank}]: @{fname} is specialised to coordinates {coords:?} \
                     (rank {linear:?} of grid {grid:?}) — pass modules in rank order"
                ),
            });
        }
    }
    run_spmd_impl(&|rank| &modules[rank], func, modules.len(), args_for_rank)
}

fn run_spmd_impl<'m>(
    module_for_rank: &(dyn Fn(usize) -> &'m Module + Sync),
    func: &str,
    world_size: usize,
    args_for_rank: &(dyn Fn(usize) -> Vec<ArgSpec> + Sync),
) -> Result<(Vec<RankResult>, Arc<SimWorld>), InterpError> {
    let world = SimWorld::new(world_size);
    let mut results: Vec<Option<Result<RankResult, InterpError>>> =
        (0..world_size).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (rank, slot) in results.iter_mut().enumerate() {
            let world = Arc::clone(&world);
            handles.push(scope.spawn(move || {
                let specs = args_for_rank(rank);
                let mut buffers: Vec<BufView> = Vec::new();
                let args: Vec<RtValue> = specs
                    .into_iter()
                    .map(|spec| match spec {
                        ArgSpec::F64(v) => RtValue::Float(v),
                        ArgSpec::Int(v) => RtValue::Int(v),
                        ArgSpec::Buffer { shape, data } => {
                            let view = BufView::from_data(shape, data);
                            buffers.push(view.clone());
                            RtValue::Buffer(view)
                        }
                    })
                    .collect();
                let env = MpiEnv::new(world, rank as i32);
                let mut interp = Interpreter::with_externals(module_for_rank(rank), Box::new(env));
                let out = interp.call_function(func, args).map(|_| RankResult {
                    buffers: buffers.iter().map(BufView::to_vec).collect(),
                    steps: interp.steps(),
                });
                *slot = Some(out);
            }));
        }
        for h in handles {
            h.join().expect("rank thread panicked");
        }
    });
    let mut out = Vec::with_capacity(world_size);
    for slot in results {
        out.push(slot.expect("rank completed")?);
    }
    Ok((out, world))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sten_ir::Bounds;
    use sten_stencil::{samples, ShapeInference, StencilToLoops};

    /// Distributes jacobi over `ranks` ranks, scatters a global input,
    /// runs one step at the chosen lowering level, gathers, and compares
    /// against the single-process stencil-level result.
    fn distributed_jacobi_matches_serial(ranks: i64, lower_to_func: bool) {
        let n = 128i64;
        let global_input: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin()).collect();

        // Serial reference at stencil level.
        let mut serial = samples::jacobi_1d(n);
        ShapeInference.run(&mut serial).unwrap();
        let src = BufView::from_data(vec![n], global_input.clone());
        let dst = BufView::from_data(vec![n], global_input.clone());
        let mut interp = Interpreter::new(&serial);
        interp
            .call_function("jacobi", vec![RtValue::Buffer(src), RtValue::Buffer(dst.clone())])
            .unwrap();
        let want = dst.to_vec();

        // Distributed pipeline.
        let mut m = samples::jacobi_1d(n);
        ShapeInference.run(&mut m).unwrap();
        sten_dmp::DistributeStencil::new(vec![ranks]).run(&mut m).unwrap();
        ShapeInference.run(&mut m).unwrap();
        StencilToLoops.run(&mut m).unwrap();
        if lower_to_func {
            sten_mpi::DmpToMpi.run(&mut m).unwrap();
            sten_mpi::MpiToFunc.run(&mut m).unwrap();
        }

        // Local field bounds after distribution: derive scatter mapping.
        let func = m.lookup_symbol("jacobi").unwrap();
        let fty = sten_dialects::func::FuncOp(func).function_type().clone();
        let local_extent = match &fty.inputs[0] {
            sten_ir::Type::MemRef(mt) => mt.shape[0],
            sten_ir::Type::Field(f) => f.bounds.size(0),
            other => panic!("unexpected arg type {other:?}"),
        };
        let core = (n - 2) / ranks; // global core is [1, n-1)

        let input = &global_input;
        let (results, world) = run_spmd(&m, "jacobi", ranks as usize, &move |rank| {
            // Rank r's local buffer covers global [r*core, r*core + local).
            let start = rank as i64 * core;
            let data: Vec<f64> = (0..local_extent)
                .map(|i| {
                    let g = start + i;
                    if g < n {
                        input[g as usize]
                    } else {
                        0.0
                    }
                })
                .collect();
            vec![
                ArgSpec::Buffer { shape: vec![local_extent], data: data.clone() },
                ArgSpec::Buffer { shape: vec![local_extent], data },
            ]
        })
        .unwrap();

        // Gather: rank r owns global [1 + r*core, 1 + (r+1)*core).
        let mut got = global_input.clone();
        for (rank, res) in results.iter().enumerate() {
            let out = &res.buffers[1];
            let start = rank as i64 * core;
            for l in 1..=core {
                got[(start + l) as usize] = out[l as usize];
            }
        }
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!((g - w).abs() < 1e-12, "mismatch at {i}: {g} vs {w}");
        }
        if ranks > 1 {
            assert!(world.total_sent_messages() > 0, "halo exchange happened");
        }
    }

    #[test]
    fn two_ranks_at_dmp_level() {
        distributed_jacobi_matches_serial(2, false);
    }

    #[test]
    fn two_ranks_at_func_level() {
        distributed_jacobi_matches_serial(2, true);
    }

    #[test]
    fn seven_ranks_at_func_level() {
        // 126 divides by 7.
        distributed_jacobi_matches_serial(7, true);
    }

    /// Distributes a module once per rank (balanced slabs are
    /// rank-dependent on uneven domains) and fully lowers each module to
    /// the func/MPI level.
    fn per_rank_modules(
        make: &dyn Fn() -> sten_ir::Module,
        grid: &[i64],
        ranks: usize,
    ) -> Vec<sten_ir::Module> {
        (0..ranks)
            .map(|rank| {
                let mut m = make();
                ShapeInference.run(&mut m).unwrap();
                sten_dmp::DistributeStencil::new(grid.to_vec())
                    .for_rank(rank as i64)
                    .run(&mut m)
                    .unwrap();
                ShapeInference.run(&mut m).unwrap();
                StencilToLoops.run(&mut m).unwrap();
                sten_mpi::DmpToMpi.run(&mut m).unwrap();
                sten_mpi::MpiToFunc.run(&mut m).unwrap();
                m
            })
            .collect()
    }

    #[test]
    fn uneven_jacobi_per_rank_modules_match_serial() {
        // n = 129 → global core 127, which no rank count > 1 divides:
        // 2 ranks get balanced slabs of 64 and 63.
        let n = 129i64;
        let ranks = 2usize;
        let global_input: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin()).collect();

        let mut serial = samples::jacobi_1d(n);
        ShapeInference.run(&mut serial).unwrap();
        let src = BufView::from_data(vec![n], global_input.clone());
        let dst = BufView::from_data(vec![n], global_input.clone());
        Interpreter::new(&serial)
            .call_function("jacobi", vec![RtValue::Buffer(src), RtValue::Buffer(dst.clone())])
            .unwrap();
        let want = dst.to_vec();

        let modules = per_rank_modules(&|| samples::jacobi_1d(n), &[ranks as i64], ranks);
        let core_extent = n - 2;
        let input = &global_input;
        let (results, world) = run_spmd_modules(&modules, "jacobi", &move |rank| {
            let (offset, size) = sten_dmp::balanced_chunk(core_extent, ranks as i64, rank as i64);
            // Rank r's buffer covers global [offset, offset + size + 2)
            // (local core plus the 1-cell halos).
            let data: Vec<f64> = (0..size + 2).map(|i| input[(offset + i) as usize]).collect();
            vec![
                ArgSpec::Buffer { shape: vec![size + 2], data: data.clone() },
                ArgSpec::Buffer { shape: vec![size + 2], data },
            ]
        })
        .unwrap();
        assert!(world.total_sent_messages() > 0, "halo exchange happened");

        let mut got = global_input.clone();
        for (rank, res) in results.iter().enumerate() {
            let (offset, size) = sten_dmp::balanced_chunk(core_extent, ranks as i64, rank as i64);
            for l in 1..=size {
                got[(offset + l) as usize] = res.buffers[1][l as usize];
            }
        }
        assert_eq!(got, want, "uneven distributed jacobi must match serial bit-for-bit");
    }

    #[test]
    fn spmd_guards_against_rank_specialised_modules() {
        let distribute = |rank: i64| {
            let mut m = samples::jacobi_1d(129); // core 127: uneven on 2 ranks
            ShapeInference.run(&mut m).unwrap();
            sten_dmp::DistributeStencil::new(vec![2]).for_rank(rank).run(&mut m).unwrap();
            ShapeInference.run(&mut m).unwrap();
            m
        };
        // One rank-specialised module must not run SPMD on many ranks.
        let err =
            run_spmd(&distribute(0), "jacobi", 2, &|_| Vec::new()).err().expect("must reject");
        assert!(err.message.contains("run_spmd_modules"), "{}", err.message);
        // Per-rank modules handed over out of order are caught, too.
        let swapped = vec![distribute(1), distribute(0)];
        let err = run_spmd_modules(&swapped, "jacobi", &|_| Vec::new()).err().expect("must reject");
        assert!(err.message.contains("rank order"), "{}", err.message);
    }

    #[test]
    fn uneven_heat2d_bitwise_matches_serial() {
        // A 15×15 core on a 2×2 grid: balanced slabs of 8 and 7 per dim.
        let n = 15i64;
        let shape = vec![n + 2, n + 2];
        let size = ((n + 2) * (n + 2)) as usize;
        let global: Vec<f64> = (0..size).map(|i| (i as f64 * 0.05).cos()).collect();

        let mut serial = samples::heat_2d(n, 0.1);
        ShapeInference.run(&mut serial).unwrap();
        let src = BufView::from_data(shape.clone(), global.clone());
        let dst = BufView::from_data(shape.clone(), global.clone());
        Interpreter::new(&serial)
            .call_function("heat", vec![RtValue::Buffer(src), RtValue::Buffer(dst.clone())])
            .unwrap();
        let want = dst.to_vec();

        let modules = per_rank_modules(&|| samples::heat_2d(n, 0.1), &[2, 2], 4);
        let g = &global;
        let full = (n + 2) as usize;
        let (results, _) = run_spmd_modules(&modules, "heat", &move |rank| {
            let (ry, rx) = ((rank as i64) / 2, (rank as i64) % 2);
            let (oy, sy) = sten_dmp::balanced_chunk(n, 2, ry);
            let (ox, sx) = sten_dmp::balanced_chunk(n, 2, rx);
            // Local buffer index (y, x) maps to the global buffer cell
            // (oy + y, ox + x): the core starts at global buffer index
            // offset + 1 and the buffer keeps a 1-cell halo around it.
            let mut data = Vec::with_capacity(((sy + 2) * (sx + 2)) as usize);
            for y in 0..sy + 2 {
                for x in 0..sx + 2 {
                    data.push(g[(oy + y) as usize * full + (ox + x) as usize]);
                }
            }
            vec![
                ArgSpec::Buffer { shape: vec![sy + 2, sx + 2], data: data.clone() },
                ArgSpec::Buffer { shape: vec![sy + 2, sx + 2], data },
            ]
        })
        .unwrap();

        let mut got = global.clone();
        for (rank, res) in results.iter().enumerate() {
            let (ry, rx) = ((rank as i64) / 2, (rank as i64) % 2);
            let (oy, sy) = sten_dmp::balanced_chunk(n, 2, ry);
            let (ox, sx) = sten_dmp::balanced_chunk(n, 2, rx);
            let out = &res.buffers[1];
            for y in 1..=sy {
                for x in 1..=sx {
                    got[(oy + y) as usize * full + (ox + x) as usize] =
                        out[(y * (sx + 2) + x) as usize];
                }
            }
        }
        assert_eq!(got, want, "uneven distributed heat2d must match serial bit-for-bit");
    }

    #[test]
    fn heat2d_distributed_matches_serial() {
        let n = 16i64;
        let shape = vec![n + 2, n + 2];
        let size = ((n + 2) * (n + 2)) as usize;
        let global: Vec<f64> = (0..size).map(|i| (i as f64 * 0.05).cos()).collect();

        // Serial reference.
        let mut serial = samples::heat_2d(n, 0.1);
        ShapeInference.run(&mut serial).unwrap();
        let src = BufView::from_data(shape.clone(), global.clone());
        let dst = BufView::from_data(shape.clone(), global.clone());
        Interpreter::new(&serial)
            .call_function("heat", vec![RtValue::Buffer(src), RtValue::Buffer(dst.clone())])
            .unwrap();
        let want = dst.to_vec();

        // 2x2 distributed, fully lowered.
        let mut m = samples::heat_2d(n, 0.1);
        ShapeInference.run(&mut m).unwrap();
        sten_dmp::DistributeStencil::new(vec![2, 2]).run(&mut m).unwrap();
        ShapeInference.run(&mut m).unwrap();
        StencilToLoops.run(&mut m).unwrap();
        sten_mpi::DmpToMpi.run(&mut m).unwrap();
        sten_mpi::MpiToFunc.run(&mut m).unwrap();

        let core = n / 2;
        let local = core + 2;
        let g = &global;
        let full = (n + 2) as usize;
        let (results, _) = run_spmd(&m, "heat", 4, &move |rank| {
            let (ry, rx) = ((rank as i64) / 2, (rank as i64) % 2);
            let data: Vec<f64> = Bounds::from_shape(&[local, local]).shape().iter().copied().fold(
                Vec::new(),
                |mut acc, _| {
                    acc.clear();
                    for y in 0..local {
                        for x in 0..local {
                            let gy = (ry * core + y) as usize;
                            let gx = (rx * core + x) as usize;
                            acc.push(g[gy * full + gx]);
                        }
                    }
                    acc
                },
            );
            vec![
                ArgSpec::Buffer { shape: vec![local, local], data: data.clone() },
                ArgSpec::Buffer { shape: vec![local, local], data },
            ]
        })
        .unwrap();

        let mut got = global.clone();
        for (rank, res) in results.iter().enumerate() {
            let (ry, rx) = ((rank as i64) / 2, (rank as i64) % 2);
            let out = &res.buffers[1];
            for y in 1..=core {
                for x in 1..=core {
                    let gy = (ry * core + y) as usize;
                    let gx = (rx * core + x) as usize;
                    got[gy * full + gx] = out[(y * local + x) as usize];
                }
            }
        }
        for (i, (a, b)) in got.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-12, "mismatch at {i}: {a} vs {b}");
        }
    }
}
