//! Lowering `mpi` operations to library function calls (Listing 4).
//!
//! §4.3: "As LLVM has no concept of MPI, we lower these operations to
//! regular function calls using the func dialect", substituting the mpich
//! magic constants from [`crate::abi`], and appending external function
//! declarations to the module.
//!
//! Deviations from the C MPI API, documented here and honoured by the
//! simulated runtime in `sten-interp`:
//!
//! * out-parameters become return values (`MPI_Comm_rank(comm) -> i32`
//!   instead of `MPI_Comm_rank(comm, int*)`) — MLIR/LLVM-level code has no
//!   ergonomic `alloca` story in this reproduction;
//! * request lists are runtime-managed handles
//!   (`MPI_Request_alloc(n) -> ptr`, `MPI_Request_get(reqs, i) -> ptr`,
//!   `MPI_Request_set_null(reqs, i)`) standing in for C stack arrays of
//!   `MPI_Request`.

use crate::abi;
use std::collections::BTreeMap;
use sten_dialects::{arith, func, llvm, memref};
use sten_ir::{
    Attribute, Block, FunctionType, Module, Op, Pass, PassError, Type, Value, ValueTable,
};

/// The mpi→func lowering. See the module docs.
#[derive(Default)]
pub struct MpiToFunc;

impl MpiToFunc {
    /// Creates the pass.
    pub fn new() -> Self {
        MpiToFunc
    }
}

/// The C-level signature of each runtime symbol.
fn signature(name: &str) -> FunctionType {
    use Type::{LlvmPtr as P, I32};
    let f = |ins: Vec<Type>, outs: Vec<Type>| FunctionType::new(ins, outs);
    match name {
        "MPI_Init" | "MPI_Finalize" => f(vec![], vec![I32]),
        "MPI_Comm_rank" | "MPI_Comm_size" => f(vec![I32], vec![I32]),
        "MPI_Send" => f(vec![P, I32, I32, I32, I32, I32], vec![I32]),
        "MPI_Recv" => f(vec![P, I32, I32, I32, I32, I32, P], vec![I32]),
        "MPI_Isend" | "MPI_Irecv" => f(vec![P, I32, I32, I32, I32, I32, P], vec![I32]),
        "MPI_Wait" => f(vec![P, P], vec![I32]),
        "MPI_Test" => f(vec![P, P], vec![I32]),
        "MPI_Waitall" => f(vec![I32, P, P], vec![I32]),
        "MPI_Reduce" => f(vec![P, P, I32, I32, I32, I32, I32], vec![I32]),
        "MPI_Allreduce" => f(vec![P, P, I32, I32, I32, I32], vec![I32]),
        "MPI_Bcast" => f(vec![P, I32, I32, I32, I32], vec![I32]),
        "MPI_Gather" => f(vec![P, I32, I32, P, I32, I32, I32, I32], vec![I32]),
        "MPI_Request_alloc" => f(vec![I32], vec![P]),
        "MPI_Request_get" => f(vec![P, I32], vec![P]),
        "MPI_Request_set_null" => f(vec![P, I32], vec![]),
        other => panic!("unknown MPI runtime symbol {other}"),
    }
}

fn mpi_op_constant(name: &str) -> i64 {
    match name {
        "sum" => abi::MPI_OP_SUM,
        "min" => abi::MPI_OP_MIN,
        "max" => abi::MPI_OP_MAX,
        other => panic!("unknown reduction op '{other}'"),
    }
}

struct Rewriter<'a> {
    vt: &'a mut ValueTable,
    used: BTreeMap<&'static str, FunctionType>,
}

impl<'a> Rewriter<'a> {
    fn use_symbol(&mut self, name: &'static str) {
        self.used.entry(name).or_insert_with(|| signature(name));
    }

    fn comm_const(&mut self, out: &mut Vec<Op>) -> Value {
        let c = arith::const_i32(self.vt, abi::MPI_COMM_WORLD);
        let v = c.result(0);
        out.push(c);
        v
    }

    fn statuses_ignore(&mut self, out: &mut Vec<Op>) -> Value {
        let c = arith::const_i64(self.vt, abi::MPI_STATUSES_IGNORE);
        let v = c.result(0);
        out.push(c);
        let p = llvm::inttoptr(self.vt, v);
        let pv = p.result(0);
        out.push(p);
        pv
    }

    /// Emits a call whose `i32` status result is fresh (and unused).
    fn call(&mut self, out: &mut Vec<Op>, name: &'static str, args: Vec<Value>) {
        self.use_symbol(name);
        let results = signature(name).results;
        let call = func::call(self.vt, name, args, results);
        out.push(call);
    }

    /// Emits a call and reuses `result` as its (single) result value.
    fn call_into(
        &mut self,
        out: &mut Vec<Op>,
        name: &'static str,
        args: Vec<Value>,
        result: Value,
    ) {
        self.use_symbol(name);
        let mut call = func::call(self.vt, name, args, vec![]);
        let tys = signature(name).results;
        debug_assert_eq!(tys.len(), 1);
        self.vt.set_ty(result, tys[0].clone());
        call.results.push(result);
        out.push(call);
    }

    fn rewrite_op(&mut self, op: Op, out: &mut Vec<Op>) -> Result<(), String> {
        match op.name.as_str() {
            "mpi.init" => self.call(out, "MPI_Init", vec![]),
            "mpi.finalize" => self.call(out, "MPI_Finalize", vec![]),
            "mpi.comm_rank" => {
                let comm = self.comm_const(out);
                self.call_into(out, "MPI_Comm_rank", vec![comm], op.result(0));
            }
            "mpi.comm_size" => {
                let comm = self.comm_const(out);
                self.call_into(out, "MPI_Comm_size", vec![comm], op.result(0));
            }
            "mpi.unwrap_memref" => {
                // Listing 4, lines 1–6.
                let mem = op.operand(0);
                let Type::MemRef(mt) = self.vt.ty(mem).clone() else {
                    return Err("unwrap_memref of non-memref".into());
                };
                let count = mt.num_elements().ok_or("dynamic memref in unwrap")?;
                let dtype = abi::datatype_for(&mt.elem)?;
                let addr = memref::extract_aligned_pointer_as_index(self.vt, mem);
                let addrv = addr.result(0);
                out.push(addr);
                let as_i64 = arith::index_cast(self.vt, addrv, Type::I64);
                let iv = as_i64.result(0);
                out.push(as_i64);
                let mut ptr = llvm::inttoptr(self.vt, iv);
                ptr.results[0] = op.result(0); // reuse the ptr value id
                out.push(ptr);
                let mut cnt = arith::const_i32(self.vt, count);
                cnt.results[0] = op.result(1);
                self.vt.set_ty(op.result(1), Type::I32);
                out.push(cnt);
                let mut dt = arith::const_i32(self.vt, dtype);
                dt.results[0] = op.result(2);
                self.vt.set_ty(op.result(2), Type::I32);
                out.push(dt);
            }
            "mpi.send" => {
                let comm = self.comm_const(out);
                let mut args = op.operands.clone();
                args.push(comm);
                self.call(out, "MPI_Send", args);
            }
            "mpi.recv" => {
                let comm = self.comm_const(out);
                let status = self.statuses_ignore(out);
                let mut args = op.operands.clone();
                args.push(comm);
                args.push(status);
                self.call(out, "MPI_Recv", args);
            }
            "mpi.isend" | "mpi.irecv" => {
                let name: &'static str =
                    if op.name == "mpi.isend" { "MPI_Isend" } else { "MPI_Irecv" };
                let comm = self.comm_const(out);
                // (buff, count, dtype, peer, tag, comm, req)
                let mut args = op.operands[..5].to_vec();
                args.push(comm);
                args.push(op.operand(5));
                self.call(out, name, args);
            }
            "mpi.request_alloc" => {
                let n = op.attr("count").and_then(Attribute::as_int).unwrap_or(0);
                let c = arith::const_i32(self.vt, n);
                let cv = c.result(0);
                out.push(c);
                self.vt.set_ty(op.result(0), Type::LlvmPtr);
                self.call_into(out, "MPI_Request_alloc", vec![cv], op.result(0));
            }
            "mpi.request_get" => {
                let i = op.attr("index").and_then(Attribute::as_int).unwrap_or(0);
                let c = arith::const_i32(self.vt, i);
                let cv = c.result(0);
                out.push(c);
                self.vt.set_ty(op.result(0), Type::LlvmPtr);
                self.call_into(out, "MPI_Request_get", vec![op.operand(0), cv], op.result(0));
            }
            "mpi.request_set_null" => {
                let i = op.attr("index").and_then(Attribute::as_int).unwrap_or(0);
                let c = arith::const_i32(self.vt, i);
                let cv = c.result(0);
                out.push(c);
                self.call(out, "MPI_Request_set_null", vec![op.operand(0), cv]);
            }
            "mpi.wait" => {
                let status = self.statuses_ignore(out);
                self.call(out, "MPI_Wait", vec![op.operand(0), status]);
            }
            "mpi.test" => {
                let status = self.statuses_ignore(out);
                let flag =
                    func::call(self.vt, "MPI_Test", vec![op.operand(0), status], vec![Type::I32]);
                self.use_symbol("MPI_Test");
                let flagv = flag.result(0);
                out.push(flag);
                let zero = arith::const_i32(self.vt, 0);
                let zv = zero.result(0);
                out.push(zero);
                let mut cmp = arith::cmpi(self.vt, arith::CmpIPredicate::Ne, flagv, zv);
                cmp.results[0] = op.result(0);
                out.push(cmp);
            }
            "mpi.waitall" => {
                let status = self.statuses_ignore(out);
                // C order: (count, requests, statuses).
                self.call(out, "MPI_Waitall", vec![op.operand(1), op.operand(0), status]);
            }
            "mpi.reduce" => {
                let o = mpi_op_constant(op.attr("op").and_then(Attribute::as_str).unwrap_or("sum"));
                let oc = arith::const_i32(self.vt, o);
                let ov = oc.result(0);
                out.push(oc);
                let comm = self.comm_const(out);
                // (sendbuf, recvbuf, count, dtype, op, root, comm)
                let mut args = op.operands[..4].to_vec();
                args.push(ov);
                args.push(op.operand(4));
                args.push(comm);
                self.call(out, "MPI_Reduce", args);
            }
            "mpi.allreduce" => {
                let o = mpi_op_constant(op.attr("op").and_then(Attribute::as_str).unwrap_or("sum"));
                let oc = arith::const_i32(self.vt, o);
                let ov = oc.result(0);
                out.push(oc);
                let comm = self.comm_const(out);
                let mut args = op.operands.clone();
                args.push(ov);
                args.push(comm);
                self.call(out, "MPI_Allreduce", args);
            }
            "mpi.bcast" => {
                let comm = self.comm_const(out);
                let mut args = op.operands.clone();
                args.push(comm);
                self.call(out, "MPI_Bcast", args);
            }
            "mpi.gather" => {
                let comm = self.comm_const(out);
                // (sendbuf, sendcount, sendtype, recvbuf, recvcount,
                //  recvtype, root, comm): recv count/type mirror send.
                let args = vec![
                    op.operand(0),
                    op.operand(1),
                    op.operand(2),
                    op.operand(3),
                    op.operand(1),
                    op.operand(2),
                    op.operand(4),
                    comm,
                ];
                self.call(out, "MPI_Gather", args);
            }
            _ => {
                out.push(op);
                return Ok(());
            }
        }
        Ok(())
    }

    fn process_block(&mut self, block: &mut Block) -> Result<(), String> {
        let ops = std::mem::take(&mut block.ops);
        for mut op in ops {
            for region in &mut op.regions {
                for inner in &mut region.blocks {
                    self.process_block(inner)?;
                }
            }
            self.rewrite_op(op, &mut block.ops)?;
        }
        Ok(())
    }
}

impl Pass for MpiToFunc {
    fn name(&self) -> &'static str {
        "mpi-to-func"
    }

    fn run(&self, module: &mut Module) -> Result<(), PassError> {
        let mut regions = std::mem::take(&mut module.op.regions);
        let mut rewriter = Rewriter { vt: &mut module.values, used: BTreeMap::new() };
        let mut result = Ok(());
        'outer: for region in &mut regions {
            for block in &mut region.blocks {
                if let Err(m) = rewriter.process_block(block) {
                    result = Err(PassError::new("mpi-to-func", m));
                    break 'outer;
                }
            }
        }
        // Append external declarations (Listing 4, line 11).
        let decls: Vec<Op> =
            rewriter.used.iter().map(|(name, ty)| func::declaration(name, ty.clone())).collect();
        if let Some(region) = regions.first_mut() {
            if let Some(block) = region.blocks.first_mut() {
                block.ops.extend(decls);
            }
        }
        module.op.regions = regions;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sten_ir::{verify_module, DialectRegistry, MemRefType};

    fn registry() -> DialectRegistry {
        let mut reg = DialectRegistry::new();
        sten_dialects::register_all(&mut reg);
        sten_stencil::register(&mut reg);
        sten_dmp::register(&mut reg);
        crate::ops::register(&mut reg);
        reg
    }

    fn count(m: &Module, name: &str) -> usize {
        let mut n = 0;
        m.walk(|op| {
            if op.name == name {
                n += 1;
            }
        });
        n
    }

    fn callee_names(m: &Module) -> Vec<String> {
        let mut names = Vec::new();
        m.walk(|op| {
            if op.name == "func.call" {
                if let Some(s) = op.attr("callee").and_then(Attribute::as_symbol) {
                    names.push(s.to_string());
                }
            }
        });
        names
    }

    #[test]
    fn listing4_shape_for_unwrap_and_send() {
        let mut m = Module::new();
        let buf =
            sten_dialects::memref::alloc(&mut m.values, MemRefType::new(vec![64, 2], Type::F64));
        let bufv = buf.result(0);
        m.body_mut().ops.push(buf);
        let unwrap = crate::ops::unwrap_memref(&mut m.values, bufv);
        let (ptr, count_v, dtype) = (unwrap.result(0), unwrap.result(1), unwrap.result(2));
        m.body_mut().ops.push(unwrap);
        let dest = arith::const_i32(&mut m.values, 1);
        let tag = arith::const_i32(&mut m.values, 0);
        let (destv, tagv) = (dest.result(0), tag.result(0));
        m.body_mut().ops.push(dest);
        m.body_mut().ops.push(tag);
        m.body_mut().ops.push(crate::ops::send(ptr, count_v, dtype, destv, tagv));
        MpiToFunc.run(&mut m).unwrap();
        verify_module(&m, Some(&registry())).unwrap();
        let text = sten_ir::print_module(&m);
        // The magic constants from Listing 4.
        assert!(text.contains("1275070475"), "MPI_DOUBLE constant:\n{text}");
        assert!(text.contains("1140850688"), "MPI_COMM_WORLD constant");
        assert!(text.contains("128 : i32"), "static element count folded");
        assert!(count(&m, "llvm.inttoptr") >= 1);
        assert!(count(&m, "memref.extract_aligned_pointer_as_index") >= 1);
        assert_eq!(callee_names(&m), vec!["MPI_Send"]);
        // External declaration appended.
        let decl = m.lookup_symbol("MPI_Send").unwrap();
        assert!(sten_dialects::func::FuncOp(decl).is_declaration());
    }

    #[test]
    fn full_pipeline_to_func_level() {
        let mut m = sten_stencil::samples::jacobi_1d(128);
        sten_stencil::ShapeInference.run(&mut m).unwrap();
        sten_dmp::DistributeStencil::new(vec![2]).run(&mut m).unwrap();
        sten_stencil::ShapeInference.run(&mut m).unwrap();
        sten_stencil::StencilToLoops.run(&mut m).unwrap();
        crate::DmpToMpi.run(&mut m).unwrap();
        MpiToFunc.run(&mut m).unwrap();
        verify_module(&m, Some(&registry())).unwrap();
        let text = sten_ir::print_module(&m);
        assert!(!text.contains("\"mpi."), "all mpi ops lowered:\n{text}");
        let names = callee_names(&m);
        assert!(names.iter().any(|n| n == "MPI_Isend"));
        assert!(names.iter().any(|n| n == "MPI_Irecv"));
        assert!(names.iter().any(|n| n == "MPI_Waitall"));
        assert!(names.iter().any(|n| n == "MPI_Comm_rank"));
        // Round-trip of the final form.
        let re = sten_ir::parse_module(&text).unwrap();
        assert_eq!(sten_ir::print_module(&re), text);
    }

    #[test]
    fn collectives_lower_with_op_constants() {
        let mut m = Module::new();
        let buf = sten_dialects::memref::alloc(&mut m.values, MemRefType::new(vec![4], Type::F64));
        let bufv = buf.result(0);
        m.body_mut().ops.push(buf);
        let u = crate::ops::unwrap_memref(&mut m.values, bufv);
        let (ptr, cnt, dt) = (u.result(0), u.result(1), u.result(2));
        m.body_mut().ops.push(u);
        m.body_mut().ops.push(crate::ops::allreduce(ptr, ptr, cnt, dt, "sum"));
        let root = arith::const_i32(&mut m.values, 0);
        let rootv = root.result(0);
        m.body_mut().ops.push(root);
        m.body_mut().ops.push(crate::ops::bcast(ptr, cnt, dt, rootv));
        MpiToFunc.run(&mut m).unwrap();
        verify_module(&m, Some(&registry())).unwrap();
        let text = sten_ir::print_module(&m);
        assert!(text.contains(&crate::abi::MPI_OP_SUM.to_string()));
        let names = callee_names(&m);
        assert!(names.contains(&"MPI_Allreduce".to_string()));
        assert!(names.contains(&"MPI_Bcast".to_string()));
    }
}
