//! Lowering `dmp.swap` to `mpi` operations (Fig. 4, right column).
//!
//! §4.3: "Lowering to mpi involves several steps, including allocating
//! temporary buffers, building the MPI exchange mapping, packing/unpacking
//! data to/from buffers, and issuing non-blocking send/receive calls."
//!
//! For every exchange declaration this pass emits:
//!
//! 1. rank → cartesian-coordinate arithmetic (`remsi`/`divsi` chains over
//!    the `#dmp.grid` topology);
//! 2. neighbour-rank computation and an `scf.if` *boundary guard*
//!    (`%is_in_bounds` in Fig. 4) — edge ranks set their request slots to
//!    the null request instead of communicating;
//! 3. send/receive staging buffers, a pack loop nest, and
//!    `mpi.isend`/`mpi.irecv` into a shared request list;
//! 4. one `mpi.waitall` barrier, then guarded unpack loops and deallocs.
//!
//! **Overlapped lowering.** A `dmp.swap` marked with the `overlap` unit
//! attribute (`distribute-stencil{overlap=true}`) and followed by its
//! compute loop lowers into the four-phase structure instead, hiding halo
//! latency behind interior computation:
//!
//! ```text
//! begin exchange        (packs, mpi.isend / mpi.irecv — phase 1–3 above)
//! interior scf.parallel (iteration space shrunk by the halo widths)
//! per-receive mpi.wait + guarded unpack      ← the waitall barrier split
//! mpi.waitall           (drains the send requests, then deallocs)
//! boundary scf.parallel shells (one per halo side)
//! ```
//!
//! The interior/boundary geometry comes from
//! [`sten_dmp::HaloRegionSplit`], shared with the compiled executor, so
//! both layers agree on the split. When the following compute loop cannot
//! be split (non-constant bounds, empty interior, intervening ops other
//! than constants/allocs) the lowering falls back to the synchronous
//! form, which stays byte-identical to the pre-overlap output.
//!
//! Message tags encode the direction of travel so that the sender's tag
//! matches the mirror exchange's receive tag on the neighbour.
//!
//! `mpi.comm_rank`, the coordinate arithmetic and all constants are pure,
//! so a later LICM pass hoists them out of the time loop — the paper's
//! "any loop invariant calls are hoisted as part of this transformation".

use sten_dialects::{arith, memref, scf};
use sten_dmp::HaloRegionSplit;
use sten_ir::{
    Attribute, Block, Bounds, ExchangeAttr, MemRefType, Module, Op, Pass, PassError, Type, Value,
    ValueTable,
};

/// The dmp→mpi lowering. See the module docs.
#[derive(Default)]
pub struct DmpToMpi;

impl DmpToMpi {
    /// Creates the pass.
    pub fn new() -> Self {
        DmpToMpi
    }
}

/// Encodes a direction vector as an MPI tag: base-16 digits of
/// `component + 8`, most-significant dimension first. Sender and receiver
/// agree on the tag of a message travelling in direction `dir`.
pub fn tag_for_direction(dir: &[i64]) -> i64 {
    dir.iter().fold(0, |acc, &t| {
        debug_assert!((-8..8).contains(&t), "direction component out of range");
        acc * 16 + (t + 8)
    })
}

/// Emits a sequential loop nest over `sizes` (from 0 to size per dim);
/// `body` receives the induction variables and returns the innermost ops
/// (without terminator).
fn for_nest(
    vt: &mut ValueTable,
    out: &mut Vec<Op>,
    sizes: &[i64],
    body: impl FnOnce(&mut ValueTable, &[Value]) -> Vec<Op>,
) {
    let zero = arith::const_index(vt, 0);
    let one = arith::const_index(vt, 1);
    let (zerov, onev) = (zero.result(0), one.result(0));
    out.push(zero);
    out.push(one);
    let mut his = Vec::with_capacity(sizes.len());
    for &s in sizes {
        let hi = arith::const_index(vt, s);
        his.push(hi.result(0));
        out.push(hi);
    }

    #[allow(clippy::too_many_arguments, clippy::type_complexity)] // recursive loop-nest builder threads its full context
    fn rec(
        vt: &mut ValueTable,
        d: usize,
        rank: usize,
        zerov: Value,
        onev: Value,
        his: &[Value],
        ivs: &mut Vec<Value>,
        body: Box<dyn FnOnce(&mut ValueTable, &[Value]) -> Vec<Op> + '_>,
    ) -> Op {
        scf::for_loop(vt, zerov, his[d], onev, vec![], |vt, iv, _| {
            ivs.push(iv);
            let mut ops = if d + 1 == rank {
                body(vt, ivs)
            } else {
                vec![rec(vt, d + 1, rank, zerov, onev, his, ivs, body)]
            };
            ops.push(scf::yield_op(vec![]));
            ops
        })
    }

    let mut ivs = Vec::new();
    let nest = rec(vt, 0, sizes.len(), zerov, onev, &his, &mut ivs, Box::new(body));
    out.push(nest);
}

/// Emits the flattened index `((iv0*s1+iv1)*s2+iv2)...` for a staging
/// buffer of shape `sizes`.
fn flat_index(vt: &mut ValueTable, ops: &mut Vec<Op>, ivs: &[Value], sizes: &[i64]) -> Value {
    let mut flat = ivs[0];
    for d in 1..ivs.len() {
        let c = arith::const_index(vt, sizes[d]);
        let cv = c.result(0);
        ops.push(c);
        let mul = arith::muli(vt, flat, cv);
        let mv = mul.result(0);
        ops.push(mul);
        let add = arith::addi(vt, mv, ivs[d]);
        flat = add.result(0);
        ops.push(add);
    }
    flat
}

/// Emits `base[d] + ivs[d]` buffer indices.
fn based_indices(
    vt: &mut ValueTable,
    ops: &mut Vec<Op>,
    ivs: &[Value],
    base: &[i64],
) -> Vec<Value> {
    let mut out = Vec::with_capacity(ivs.len());
    for (d, &iv) in ivs.iter().enumerate() {
        if base[d] == 0 {
            out.push(iv);
            continue;
        }
        let c = arith::const_index(vt, base[d]);
        let cv = c.result(0);
        ops.push(c);
        let add = arith::addi(vt, iv, cv);
        out.push(add.result(0));
        ops.push(add);
    }
    out
}

/// The state of a begun (posted but not yet completed) exchange: what
/// the wait/unpack phase needs, wherever it is placed.
struct BegunExchange {
    data: Value,
    exchanges: Vec<ExchangeAttr>,
    /// Per-exchange boundary guard (`%is_in_bounds`).
    guards: Vec<Value>,
    /// Per-exchange (send, recv) staging buffers.
    staging: Vec<(Value, Value)>,
    /// Per-exchange receive request handles.
    recv_reqs: Vec<Value>,
    /// The shared request list and its slot count.
    reqs: Value,
    nreq: i64,
}

struct SwapLowerer<'a> {
    vt: &'a mut ValueTable,
}

impl<'a> SwapLowerer<'a> {
    /// Lowers one `dmp.swap` into `out` (the synchronous form:
    /// pack → isend/irecv → waitall → unpack).
    fn lower_swap(&mut self, swap: &Op, out: &mut Vec<Op>) -> Result<(), String> {
        let Some(begun) = self.begin_exchange(swap, out)? else {
            return Ok(()); // nothing to do
        };
        let vt = &mut *self.vt;

        // Synchronization barrier (Fig. 4: `mpi.waitall %requests, %four`).
        let cnt = arith::const_i32(vt, begun.nreq);
        let cntv = cnt.result(0);
        out.push(cnt);
        out.push(crate::ops::waitall(begun.reqs, cntv));

        // Guarded unpack ("copy back") loops + deallocation.
        for (i, e) in begun.exchanges.iter().enumerate() {
            let (sendv, recvv) = begun.staging[i];
            let mut then_ops: Vec<Op> = Vec::new();
            Self::emit_unpack(vt, &mut then_ops, begun.data, recvv, e);
            then_ops.push(scf::yield_op(vec![]));
            out.push(scf::if_op(
                vt,
                begun.guards[i],
                vec![],
                then_ops,
                vec![scf::yield_op(vec![])],
            ));
            out.push(memref::dealloc(sendv));
            out.push(memref::dealloc(recvv));
        }
        Ok(())
    }

    /// Emits one exchange's unpack loop nest into `ops`.
    fn emit_unpack(
        vt: &mut ValueTable,
        ops: &mut Vec<Op>,
        data: Value,
        recvv: Value,
        e: &ExchangeAttr,
    ) {
        let at = e.at.clone();
        let sizes = e.size.clone();
        for_nest(vt, ops, &sizes, |vt, ivs| {
            let mut body = Vec::new();
            let flat = flat_index(vt, &mut body, ivs, &sizes);
            let load = memref::load(vt, recvv, vec![flat]);
            let lv = load.result(0);
            body.push(load);
            let dst_idx = based_indices(vt, &mut body, ivs, &at);
            body.push(memref::store(lv, data, dst_idx));
            body
        });
    }

    /// Lowers one `dmp.allreduce` into `out`: the scalar is staged
    /// through a 1-element buffer, combined across ranks by
    /// `mpi.allreduce`, and loaded back. The load reuses the original
    /// result id so downstream consumers need no renaming.
    fn lower_allreduce(&mut self, ar: &Op, out: &mut Vec<Op>) -> Result<(), String> {
        let vt = &mut *self.vt;
        let op_name = ar
            .attr("op")
            .and_then(Attribute::as_str)
            .ok_or("dmp.allreduce without an 'op' attribute")?
            .to_string();
        let send_alloc = memref::alloc(vt, MemRefType::new(vec![1], Type::F64));
        let sendv = send_alloc.result(0);
        out.push(send_alloc);
        let recv_alloc = memref::alloc(vt, MemRefType::new(vec![1], Type::F64));
        let recvv = recv_alloc.result(0);
        out.push(recv_alloc);
        let zero = arith::const_index(vt, 0);
        let zv = zero.result(0);
        out.push(zero);
        out.push(memref::store(ar.operand(0), sendv, vec![zv]));
        let sunwrap = crate::ops::unwrap_memref(vt, sendv);
        let (sptr, scount, sdtype) = (sunwrap.result(0), sunwrap.result(1), sunwrap.result(2));
        out.push(sunwrap);
        let runwrap = crate::ops::unwrap_memref(vt, recvv);
        let rptr = runwrap.result(0);
        out.push(runwrap);
        out.push(crate::ops::allreduce(sptr, rptr, scount, sdtype, &op_name));
        let mut load = memref::load(vt, recvv, vec![zv]);
        load.results[0] = ar.result(0);
        out.push(load);
        out.push(memref::dealloc(sendv));
        out.push(memref::dealloc(recvv));
        Ok(())
    }

    /// Emits the begin-exchange phase (coordinates, guards, staging,
    /// pack loops, `mpi.isend`/`mpi.irecv`) and returns the state the
    /// completion phase needs, or `None` when the swap has no exchanges.
    fn begin_exchange(
        &mut self,
        swap: &Op,
        out: &mut Vec<Op>,
    ) -> Result<Option<BegunExchange>, String> {
        let data = swap.operand(0);
        let Type::MemRef(data_ty) = self.vt.ty(data).clone() else {
            return Err("dmp.swap operand is not a memref — run convert-stencil-to-loops before \
                 dmp-to-mpi"
                .to_string());
        };
        let elem = (*data_ty.elem).clone();
        let grid =
            swap.attr("grid").and_then(Attribute::as_grid).ok_or("swap without grid")?.to_vec();
        let exchanges: Vec<ExchangeAttr> = swap
            .attr("swaps")
            .and_then(Attribute::as_array)
            .map(|a| a.iter().filter_map(Attribute::as_exchange).cloned().collect())
            .unwrap_or_default();
        if exchanges.is_empty() {
            return Ok(None); // nothing to do
        }

        let vt = &mut *self.vt;
        // Rank and cartesian coordinates.
        let rank32 = crate::ops::comm_rank(vt);
        let rank32v = rank32.result(0);
        out.push(rank32);
        let rank_idx = arith::index_cast(vt, rank32v, Type::Index);
        let rankv = rank_idx.result(0);
        out.push(rank_idx);
        let mut coords = vec![rankv; grid.len()];
        let mut rest = rankv;
        for d in (0..grid.len()).rev() {
            let g = arith::const_index(vt, grid[d]);
            let gv = g.result(0);
            out.push(g);
            let rem = arith::remsi(vt, rest, gv);
            coords[d] = rem.result(0);
            out.push(rem);
            let div = arith::divsi(vt, rest, gv);
            rest = div.result(0);
            out.push(div);
        }

        // Request list: two slots (send, recv) per exchange.
        let nreq = 2 * exchanges.len() as i64;
        let reqs = crate::ops::request_alloc(vt, nreq);
        let reqsv = reqs.result(0);
        out.push(reqs);

        // Per-exchange staging buffers and guards.
        let mut guards: Vec<Value> = Vec::new();
        let mut staging: Vec<(Value, Value)> = Vec::new();
        let mut recv_reqs: Vec<Value> = Vec::new();
        for (i, e) in exchanges.iter().enumerate() {
            // Neighbour coordinates and validity.
            let mut valid: Option<Value> = None;
            let mut ncoords = coords.clone();
            for d in 0..grid.len() {
                let t = e.to.get(d).copied().unwrap_or(0);
                if t == 0 {
                    continue;
                }
                let c = arith::const_index(vt, t);
                let cv = c.result(0);
                out.push(c);
                let add = arith::addi(vt, coords[d], cv);
                let nc = add.result(0);
                out.push(add);
                ncoords[d] = nc;
                let zero = arith::const_index(vt, 0);
                let zv = zero.result(0);
                out.push(zero);
                let ge = arith::cmpi(vt, arith::CmpIPredicate::Sge, nc, zv);
                let gev = ge.result(0);
                out.push(ge);
                let gmax = arith::const_index(vt, grid[d]);
                let gmaxv = gmax.result(0);
                out.push(gmax);
                let lt = arith::cmpi(vt, arith::CmpIPredicate::Slt, nc, gmaxv);
                let ltv = lt.result(0);
                out.push(lt);
                let both = arith::andi(vt, gev, ltv);
                let bothv = both.result(0);
                out.push(both);
                valid = Some(match valid {
                    None => bothv,
                    Some(prev) => {
                        let and = arith::andi(vt, prev, bothv);
                        let v = and.result(0);
                        out.push(and);
                        v
                    }
                });
            }
            let valid = valid.ok_or("exchange with zero direction")?;
            guards.push(valid);

            // Linearized neighbour rank.
            let zero = arith::const_index(vt, 0);
            let mut nrank = zero.result(0);
            out.push(zero);
            for d in 0..grid.len() {
                let g = arith::const_index(vt, grid[d]);
                let gv = g.result(0);
                out.push(g);
                let mul = arith::muli(vt, nrank, gv);
                let mv = mul.result(0);
                out.push(mul);
                let add = arith::addi(vt, mv, ncoords[d]);
                nrank = add.result(0);
                out.push(add);
            }
            let nrank32 = arith::index_cast(vt, nrank, Type::I32);
            let nrank32v = nrank32.result(0);
            out.push(nrank32);

            // Staging buffers (flat 1-D).
            let n = e.num_elements();
            let send_alloc = memref::alloc(vt, MemRefType::new(vec![n], elem.clone()));
            let sendv = send_alloc.result(0);
            out.push(send_alloc);
            let recv_alloc = memref::alloc(vt, MemRefType::new(vec![n], elem.clone()));
            let recvv = recv_alloc.result(0);
            out.push(recv_alloc);
            staging.push((sendv, recvv));

            // Tags: direction of travel.
            let stag = arith::const_i32(vt, tag_for_direction(&e.to));
            let stagv = stag.result(0);
            out.push(stag);
            let neg_to: Vec<i64> = e.to.iter().map(|t| -t).collect();
            let rtag = arith::const_i32(vt, tag_for_direction(&neg_to));
            let rtagv = rtag.result(0);
            out.push(rtag);

            // Request handles.
            let sreq = crate::ops::request_get(vt, reqsv, 2 * i as i64);
            let sreqv = sreq.result(0);
            out.push(sreq);
            let rreq = crate::ops::request_get(vt, reqsv, 2 * i as i64 + 1);
            let rreqv = rreq.result(0);
            out.push(rreq);
            recv_reqs.push(rreqv);

            // then: pack + isend + irecv; else: null the request slots.
            let mut then_ops: Vec<Op> = Vec::new();
            let send_at = e.send_at();
            let sizes = e.size.clone();
            for_nest(vt, &mut then_ops, &sizes, |vt, ivs| {
                let mut ops = Vec::new();
                let src_idx = based_indices(vt, &mut ops, ivs, &send_at);
                let load = memref::load(vt, data, src_idx);
                let lv = load.result(0);
                ops.push(load);
                let flat = flat_index(vt, &mut ops, ivs, &sizes);
                ops.push(memref::store(lv, sendv, vec![flat]));
                ops
            });
            let sunwrap = crate::ops::unwrap_memref(vt, sendv);
            let (sptr, scount, sdtype) = (sunwrap.result(0), sunwrap.result(1), sunwrap.result(2));
            then_ops.push(sunwrap);
            let runwrap = crate::ops::unwrap_memref(vt, recvv);
            let (rptr, rcount, rdtype) = (runwrap.result(0), runwrap.result(1), runwrap.result(2));
            then_ops.push(runwrap);
            then_ops.push(crate::ops::isend(sptr, scount, sdtype, nrank32v, stagv, sreqv));
            then_ops.push(crate::ops::irecv(rptr, rcount, rdtype, nrank32v, rtagv, rreqv));
            then_ops.push(scf::yield_op(vec![]));
            let else_ops = vec![
                crate::ops::request_set_null(reqsv, 2 * i as i64),
                crate::ops::request_set_null(reqsv, 2 * i as i64 + 1),
                scf::yield_op(vec![]),
            ];
            out.push(scf::if_op(vt, valid, vec![], then_ops, else_ops));
        }
        Ok(Some(BegunExchange { data, exchanges, guards, staging, recv_reqs, reqs: reqsv, nreq }))
    }

    /// Lowers a swap marked for overlap together with its compute loop:
    /// begin-exchange, interior compute, per-receive wait + unpack (the
    /// split barrier), send drain, boundary shells.
    ///
    /// `prelude` holds the (pure) ops between the swap and the loop;
    /// `par` is the `scf.parallel` to split; `split` its interior/shell
    /// partition.
    fn lower_swap_overlapped(
        &mut self,
        swap: &Op,
        prelude: Vec<Op>,
        mut par: Op,
        split: &HaloRegionSplit,
        out: &mut Vec<Op>,
    ) -> Result<(), String> {
        let Some(begun) = self.begin_exchange(swap, out)? else {
            // No exchanges: nothing to overlap with.
            out.extend(prelude);
            out.push(par);
            return Ok(());
        };

        // The compute prelude (output allocs, bound constants) is pure —
        // emitting it after the begin phase keeps the messages in flight
        // during every cycle the interior loop runs.
        out.extend(prelude);

        // Interior: the original loop, re-bounded.
        let rank = split.interior.rank();
        let vt = &mut *self.vt;
        let set_bounds = |vt: &mut ValueTable, par: &mut Op, bounds: &Bounds, out: &mut Vec<Op>| {
            for d in 0..rank {
                let (lb, ub) = bounds.0[d];
                let lo = arith::const_index(vt, lb);
                let hi = arith::const_index(vt, ub);
                par.operands[d] = lo.result(0);
                par.operands[rank + d] = hi.result(0);
                out.push(lo);
                out.push(hi);
            }
        };
        set_bounds(vt, &mut par, &split.interior, out);
        let shell_template = par.clone();
        out.push(par);

        // Split barrier: each receive is waited for individually, and
        // its halo slab unpacked, while the send slots drain in the
        // final waitall.
        for (i, e) in begun.exchanges.iter().enumerate() {
            out.push(crate::ops::wait(begun.recv_reqs[i]));
            let (_, recvv) = begun.staging[i];
            let mut then_ops: Vec<Op> = Vec::new();
            Self::emit_unpack(vt, &mut then_ops, begun.data, recvv, e);
            then_ops.push(scf::yield_op(vec![]));
            out.push(scf::if_op(
                vt,
                begun.guards[i],
                vec![],
                then_ops,
                vec![scf::yield_op(vec![])],
            ));
        }
        let cnt = arith::const_i32(vt, begun.nreq);
        let cntv = cnt.result(0);
        out.push(cnt);
        out.push(crate::ops::waitall(begun.reqs, cntv));
        for &(sendv, recvv) in &begun.staging {
            out.push(memref::dealloc(sendv));
            out.push(memref::dealloc(recvv));
        }

        // Boundary shells: fresh clones of the compute loop over the
        // halo-dependent sub-ranges.
        for shell in &split.shells {
            if shell.bounds.num_points() <= 0 {
                continue;
            }
            let mut loop_op = shell_template.clone_with_fresh_defs(vt);
            set_bounds(vt, &mut loop_op, &shell.bounds, out);
            out.push(loop_op);
        }
        Ok(())
    }

    fn process_block(&mut self, block: &mut Block) -> Result<(), String> {
        let mut ops = std::mem::take(&mut block.ops);
        let mut i = 0;
        while i < ops.len() {
            if ops[i].name == "dmp.swap" {
                let swap = std::mem::replace(&mut ops[i], Op::new("dmp.__lowered"));
                if swap.attr("overlap").is_some() {
                    if let Some((end, split)) = self.overlap_target(&block.ops, &ops, i + 1, &swap)
                    {
                        let prelude: Vec<Op> = ops[i + 1..end]
                            .iter_mut()
                            .map(|op| std::mem::replace(op, Op::new("dmp.__lowered")))
                            .collect();
                        let par = std::mem::replace(&mut ops[end], Op::new("dmp.__lowered"));
                        self.lower_swap_overlapped(&swap, prelude, par, &split, &mut block.ops)?;
                        i = end + 1;
                        continue;
                    }
                }
                self.lower_swap(&swap, &mut block.ops)?;
                i += 1;
                continue;
            }
            if ops[i].name == "dmp.allreduce" {
                let ar = std::mem::replace(&mut ops[i], Op::new("dmp.__lowered"));
                self.lower_allreduce(&ar, &mut block.ops)?;
                i += 1;
                continue;
            }
            let mut op = std::mem::replace(&mut ops[i], Op::new("dmp.__lowered"));
            for region in &mut op.regions {
                for inner in &mut region.blocks {
                    self.process_block(inner)?;
                }
            }
            block.ops.push(op);
            i += 1;
        }
        Ok(())
    }

    /// Finds the compute loop an overlap-marked swap can split: scans
    /// past pure prelude ops (constants, allocs) for an `scf.parallel`
    /// with constant unit-step bounds whose interior/shell partition is
    /// worthwhile. Returns the loop's index and the partition, or `None`
    /// to fall back to the synchronous lowering.
    fn overlap_target(
        &self,
        emitted: &[Op],
        ops: &[Op],
        start: usize,
        swap: &Op,
    ) -> Option<(usize, HaloRegionSplit)> {
        let exchanges: Vec<ExchangeAttr> = swap
            .attr("swaps")
            .and_then(Attribute::as_array)
            .map(|a| a.iter().filter_map(Attribute::as_exchange).cloned().collect())
            .unwrap_or_default();
        if exchanges.is_empty() {
            return None;
        }
        let mut j = start;
        while j < ops.len() && matches!(ops[j].name.as_str(), "arith.constant" | "memref.alloc") {
            j += 1;
        }
        if j >= ops.len() || ops[j].name != "scf.parallel" {
            return None;
        }
        let par = &ops[j];
        let rank = par.attr("rank").and_then(Attribute::as_int)? as usize;
        if par.operands.len() != 3 * rank || rank == 0 {
            return None;
        }
        // Resolve the loop bounds against every constant in scope: the
        // already-lowered block prefix plus the pending prelude.
        let mut consts: std::collections::HashMap<Value, i64> = std::collections::HashMap::new();
        for op in emitted.iter().chain(&ops[start..j]) {
            if op.name == "arith.constant" && op.results.len() == 1 {
                if let Some(v) = op.attr("value").and_then(Attribute::as_int) {
                    consts.insert(op.result(0), v);
                }
            }
        }
        let resolve = |v: Value| consts.get(&v).copied();
        let mut dims = Vec::with_capacity(rank);
        for d in 0..rank {
            let lb = resolve(par.operands[d])?;
            let ub = resolve(par.operands[rank + d])?;
            if resolve(par.operands[2 * rank + d])? != 1 {
                return None;
            }
            dims.push((lb, ub));
        }
        let range = Bounds::new(dims);
        // Malformed exchanges are caught by the verifier; here just fall
        // back to the synchronous lowering.
        let (lo_w, hi_w) = sten_dmp::halo_widths(&exchanges, rank).ok()?;
        let split = HaloRegionSplit::compute(&range, &lo_w, &hi_w);
        split.is_splittable().then_some((j, split))
    }
}

impl Pass for DmpToMpi {
    fn name(&self) -> &'static str {
        "dmp-to-mpi"
    }

    fn run(&self, module: &mut Module) -> Result<(), PassError> {
        let mut regions = std::mem::take(&mut module.op.regions);
        let mut lowerer = SwapLowerer { vt: &mut module.values };
        let mut result = Ok(());
        'outer: for region in &mut regions {
            for block in &mut region.blocks {
                if let Err(m) = lowerer.process_block(block) {
                    result = Err(PassError::new("dmp-to-mpi", m));
                    break 'outer;
                }
            }
        }
        module.op.regions = regions;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sten_ir::{verify_module, DialectRegistry};

    fn registry() -> DialectRegistry {
        let mut reg = DialectRegistry::new();
        sten_dialects::register_all(&mut reg);
        sten_stencil::register(&mut reg);
        sten_dmp::register(&mut reg);
        crate::ops::register(&mut reg);
        reg
    }

    fn lowered_jacobi(grid: Vec<i64>) -> Module {
        let mut m = sten_stencil::samples::jacobi_1d(128);
        sten_stencil::ShapeInference.run(&mut m).unwrap();
        sten_dmp::DistributeStencil::new(grid).run(&mut m).unwrap();
        sten_stencil::ShapeInference.run(&mut m).unwrap();
        sten_stencil::StencilToLoops.run(&mut m).unwrap();
        DmpToMpi.run(&mut m).unwrap();
        m
    }

    fn count(m: &Module, name: &str) -> usize {
        let mut n = 0;
        m.walk(|op| {
            if op.name == name {
                n += 1;
            }
        });
        n
    }

    #[test]
    fn swap_becomes_guarded_isend_irecv_waitall() {
        let m = lowered_jacobi(vec![2]);
        verify_module(&m, Some(&registry())).unwrap();
        assert_eq!(count(&m, "dmp.swap"), 0);
        assert_eq!(count(&m, "mpi.isend"), 2);
        assert_eq!(count(&m, "mpi.irecv"), 2);
        assert_eq!(count(&m, "mpi.waitall"), 1);
        assert_eq!(count(&m, "mpi.comm_rank"), 1);
        // 2 exchanges × (pack + unpack guard) = 4 scf.if.
        assert_eq!(count(&m, "scf.if"), 4);
        // Staging buffers: send + recv per exchange.
        assert!(count(&m, "memref.alloc") >= 4);
        assert_eq!(count(&m, "memref.dealloc"), 4);
    }

    #[test]
    fn lowered_module_round_trips() {
        let m = lowered_jacobi(vec![2]);
        let text = sten_ir::print_module(&m);
        let re = sten_ir::parse_module(&text).unwrap();
        assert_eq!(sten_ir::print_module(&re), text);
    }

    #[test]
    fn tags_match_between_mirrored_exchanges() {
        // The tag a sender uses for direction d must equal the tag the
        // receiver's mirror exchange (direction -d) uses for receiving.
        for dir in [vec![1], vec![-1], vec![0, 1], vec![1, 0], vec![0, -1], vec![1, -1]] {
            let neg: Vec<i64> = dir.iter().map(|t| -t).collect();
            let send_tag = tag_for_direction(&dir);
            // Receiver's exchange has to = -dir and receives with
            // tag_for_direction(-(to)) = tag_for_direction(dir).
            let recv_tag_on_mirror = tag_for_direction(&neg.iter().map(|t| -t).collect::<Vec<_>>());
            assert_eq!(send_tag, recv_tag_on_mirror);
            assert_ne!(tag_for_direction(&dir), tag_for_direction(&neg), "directions distinct");
        }
    }

    #[test]
    fn heat2d_on_2x2_lowering() {
        let mut m = sten_stencil::samples::heat_2d(64, 0.1);
        sten_stencil::ShapeInference.run(&mut m).unwrap();
        sten_dmp::DistributeStencil::new(vec![2, 2]).run(&mut m).unwrap();
        sten_stencil::ShapeInference.run(&mut m).unwrap();
        sten_stencil::StencilToLoops.run(&mut m).unwrap();
        DmpToMpi.run(&mut m).unwrap();
        verify_module(&m, Some(&registry())).unwrap();
        assert_eq!(count(&m, "mpi.isend"), 4, "four neighbours in a 2x2 grid");
        assert_eq!(count(&m, "mpi.waitall"), 1);
    }

    fn lowered_overlapped(n: i64, grid: Vec<i64>) -> Module {
        let mut m = sten_stencil::samples::heat_2d(n, 0.1);
        sten_stencil::ShapeInference.run(&mut m).unwrap();
        sten_dmp::DistributeStencil::new(grid).with_overlap(true).run(&mut m).unwrap();
        sten_stencil::ShapeInference.run(&mut m).unwrap();
        sten_stencil::StencilToLoops.run(&mut m).unwrap();
        DmpToMpi.run(&mut m).unwrap();
        m
    }

    #[test]
    fn overlap_splits_the_waitall_barrier() {
        let m = lowered_overlapped(64, vec![2, 2]);
        verify_module(&m, Some(&registry())).unwrap();
        assert_eq!(count(&m, "dmp.swap"), 0);
        assert_eq!(count(&m, "mpi.isend"), 4);
        assert_eq!(count(&m, "mpi.irecv"), 4);
        // The single barrier became one mpi.wait per receive plus a
        // final send drain.
        assert_eq!(count(&m, "mpi.wait"), 4);
        assert_eq!(count(&m, "mpi.waitall"), 1);
        // Interior + 4 boundary shells.
        assert_eq!(count(&m, "scf.parallel"), 5);
    }

    #[test]
    fn overlap_phases_are_ordered_begin_interior_wait_shells() {
        let m = lowered_overlapped(64, vec![2]);
        let func = m.lookup_symbol("heat").unwrap();
        let names: Vec<&str> = func.region_block(0).ops.iter().map(|o| o.name.as_str()).collect();
        let first = |n: &str| names.iter().position(|&x| x == n).unwrap_or_else(|| panic!("{n}"));
        let last = |n: &str| names.iter().rposition(|&x| x == n).unwrap();
        let isend = first("scf.if"); // pack+isend guards come first
        let interior = first("scf.parallel");
        let wait = first("mpi.wait");
        let waitall = first("mpi.waitall");
        let shell = last("scf.parallel");
        assert!(isend < interior, "begin-exchange precedes the interior compute");
        assert!(interior < wait, "interior computes while messages are in flight");
        assert!(wait < waitall, "per-receive waits precede the send drain");
        assert!(waitall < shell, "boundary shells run last");
        // 1D split on a 2D domain: interior + 2 shells.
        assert_eq!(names.iter().filter(|&&n| n == "scf.parallel").count(), 3);
    }

    #[test]
    fn overlapped_module_round_trips_and_interior_is_shrunk() {
        let m = lowered_overlapped(64, vec![2, 2]);
        let text = sten_ir::print_module(&m);
        let re = sten_ir::parse_module(&text).unwrap();
        assert_eq!(sten_ir::print_module(&re), text);
    }

    #[test]
    fn unmarked_swaps_keep_the_synchronous_lowering() {
        // The overlap path must not perturb the default output: lower the
        // same module with and without running through the new
        // process_block and compare op counts.
        let m = lowered_jacobi(vec![2]);
        assert_eq!(count(&m, "mpi.wait"), 0, "sync lowering has no per-receive waits");
        assert_eq!(count(&m, "mpi.waitall"), 1);
        assert_eq!(count(&m, "scf.parallel"), 1, "compute loop left untouched");
    }

    #[test]
    fn tiny_interior_falls_back_to_sync() {
        // A 2-point-per-rank domain has no interior once shrunk by the
        // halos: the lowering must fall back to the synchronous form.
        let mut m = sten_stencil::samples::jacobi_1d(6);
        sten_stencil::ShapeInference.run(&mut m).unwrap();
        sten_dmp::DistributeStencil::new(vec![2]).with_overlap(true).run(&mut m).unwrap();
        sten_stencil::ShapeInference.run(&mut m).unwrap();
        sten_stencil::StencilToLoops.run(&mut m).unwrap();
        DmpToMpi.run(&mut m).unwrap();
        verify_module(&m, Some(&registry())).unwrap();
        assert_eq!(count(&m, "mpi.wait"), 0, "fallback: no split");
        assert_eq!(count(&m, "mpi.waitall"), 1);
        assert_eq!(count(&m, "scf.parallel"), 1);
    }

    #[test]
    fn allreduce_lowers_to_staged_mpi_allreduce() {
        let mut m = sten_stencil::samples::jacobi_with_norm(128);
        sten_stencil::ShapeInference.run(&mut m).unwrap();
        sten_dmp::DistributeStencil::new(vec![2]).run(&mut m).unwrap();
        sten_stencil::ShapeInference.run(&mut m).unwrap();
        sten_stencil::StencilToLoops.run(&mut m).unwrap();
        DmpToMpi.run(&mut m).unwrap();
        verify_module(&m, Some(&registry())).unwrap();
        assert_eq!(count(&m, "dmp.allreduce"), 0);
        assert_eq!(count(&m, "mpi.allreduce"), 1);
        // The returned scalar is the loaded global value: the func.return
        // operand is defined by a memref.load of the recv staging buffer.
        let func = m.lookup_symbol("jacobi_norm").unwrap();
        let body = &func.region_block(0).ops;
        let ret = body.iter().find(|o| o.name == "func.return").unwrap();
        let def = body.iter().find(|o| o.results.contains(&ret.operand(0))).unwrap();
        assert_eq!(def.name, "memref.load");
        let text = sten_ir::print_module(&m);
        let re = sten_ir::parse_module(&text).unwrap();
        assert_eq!(sten_ir::print_module(&re), text);
    }

    #[test]
    fn no_swaps_means_no_mpi() {
        let mut m = sten_stencil::samples::jacobi_1d(128);
        sten_stencil::ShapeInference.run(&mut m).unwrap();
        sten_stencil::StencilToLoops.run(&mut m).unwrap();
        DmpToMpi.run(&mut m).unwrap();
        assert_eq!(count(&m, "mpi.isend"), 0);
    }
}
