//! mpich ABI magic constants.
//!
//! §4.3: "To make use of MPI, it is usually required to include the
//! implementation's C header file, a notion not supported by MLIR. Instead,
//! we extract magic values from our library's header file and substitute
//! them for e.g. datatype constants during the lowering process. This makes
//! our provided MPI lowering specific to the mpich library."
//!
//! The values below are the actual mpich handle encodings (`mpi.h`); the
//! paper's Listing 4 shows `1275070475` (= `MPI_DOUBLE`) and `1140850688`
//! (= `MPI_COMM_WORLD`). The simulated MPI runtime in `sten-interp`
//! validates calls against these same constants, playing the role the real
//! mpich library plays on ARCHER2.

use sten_ir::Type;

/// `MPI_COMM_WORLD` (mpich: `0x44000000`).
pub const MPI_COMM_WORLD: i64 = 0x4400_0000;

/// `MPI_FLOAT` (mpich: `0x4c00040a`).
pub const MPI_FLOAT: i64 = 0x4c00_040a;

/// `MPI_DOUBLE` (mpich: `0x4c00080b`) — the paper's `1275070475`.
pub const MPI_DOUBLE: i64 = 0x4c00_080b;

/// `MPI_INT` (mpich: `0x4c000405`).
pub const MPI_INT: i64 = 0x4c00_0405;

/// `MPI_INT64_T` (mpich: `0x4c000843`).
pub const MPI_INT64: i64 = 0x4c00_0843;

/// `MPI_REQUEST_NULL` (mpich: `0x2c000000`).
pub const MPI_REQUEST_NULL: i64 = 0x2c00_0000;

/// `MPI_SUM` (mpich: `0x58000003`).
pub const MPI_OP_SUM: i64 = 0x5800_0003;

/// `MPI_MIN` (mpich: `0x58000002`).
pub const MPI_OP_MIN: i64 = 0x5800_0002;

/// `MPI_MAX` (mpich: `0x58000001`).
pub const MPI_OP_MAX: i64 = 0x5800_0001;

/// `MPI_STATUSES_IGNORE` (mpich: `(MPI_Status*)1`).
pub const MPI_STATUSES_IGNORE: i64 = 1;

/// The mpich datatype handle for a scalar element type.
///
/// # Errors
/// Returns a message for non-scalar or unsupported types.
pub fn datatype_for(ty: &Type) -> Result<i64, String> {
    match ty {
        Type::F32 => Ok(MPI_FLOAT),
        Type::F64 => Ok(MPI_DOUBLE),
        Type::I32 => Ok(MPI_INT),
        Type::I64 | Type::Index => Ok(MPI_INT64),
        other => Err(format!("no MPI datatype for {other:?}")),
    }
}

/// The element byte width of an mpich datatype handle (used by the
/// simulated runtime).
pub fn datatype_size(handle: i64) -> Option<usize> {
    match handle {
        MPI_FLOAT | MPI_INT => Some(4),
        MPI_DOUBLE | MPI_INT64 => Some(8),
        _ => None,
    }
}

/// Verifies the paper's quoted constants stay in sync with this table.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_listing4_constants() {
        assert_eq!(MPI_DOUBLE, 1275070475, "Listing 4 line 6");
        assert_eq!(MPI_COMM_WORLD, 1140850688, "Listing 4 line 7");
    }

    #[test]
    fn datatype_mapping() {
        assert_eq!(datatype_for(&Type::F64).unwrap(), MPI_DOUBLE);
        assert_eq!(datatype_for(&Type::F32).unwrap(), MPI_FLOAT);
        assert_eq!(datatype_for(&Type::I32).unwrap(), MPI_INT);
        assert!(datatype_for(&Type::LlvmPtr).is_err());
        assert_eq!(datatype_size(MPI_DOUBLE), Some(8));
        assert_eq!(datatype_size(MPI_FLOAT), Some(4));
        assert_eq!(datatype_size(0), None);
    }
}
