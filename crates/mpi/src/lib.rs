//! # sten-mpi — the `mpi` dialect: an IR for message passing
//!
//! The paper's §4.3 contribution (since upstreamed to MLIR proper): SSA
//! operations mirroring MPI's point-to-point and collective communications,
//! plus "operations to reduce the friction between the MPI and the MLIR
//! ecosystems", such as request-object lists and memref interactions
//! (`mpi.unwrap_memref`, Listing 3).
//!
//! * [`ops`] — the dialect: `init/finalize/comm_rank/comm_size`,
//!   blocking and non-blocking point-to-point (`send/recv/isend/irecv`),
//!   request ops (`test/wait/waitall` + request-list glue), reductions
//!   (`reduce/allreduce`), `bcast`/`gather`, and `unwrap_memref`;
//! * [`abi`] — the **mpich** ABI magic constants substituted during
//!   lowering ("we extract magic values from our library's header file and
//!   substitute them for e.g. datatype constants", §4.3);
//! * [`dmp_to_mpi`] — lowers `dmp.swap` into buffer allocation, pack
//!   loops, neighbour-rank arithmetic with `scf.if` boundary guards,
//!   `mpi.isend`/`mpi.irecv`, `mpi.waitall`, and unpack loops (Fig. 4);
//! * [`to_func`] — lowers `mpi.*` into `func.call @MPI_*` with external
//!   declarations appended to the module (Listing 4).

pub mod abi;
pub mod dmp_to_mpi;
pub mod ops;
pub mod to_func;

pub use dmp_to_mpi::DmpToMpi;
pub use ops::register;
pub use to_func::MpiToFunc;
